//! The simulated-GPU pipeline (§5): run MPDP, DPSUB and DPSIZE on the
//! software SIMT machine, show the per-device statistics, and reproduce the
//! §7.2.5 enhancement ablation (kernel fusion + Collaborative Context
//! Collection).
//!
//! ```sh
//! cargo run --release --example gpu_simulation
//! ```

use mpdp::prelude::*;
use mpdp_gpu::drivers::{DpSizeGpu, DpSubGpu, MpdpGpu};

fn main() {
    let model = PgLikeCost::new();
    let query = mpdp_workload::gen::star(14, 11, &model);
    let qi = query.to_query_info().unwrap();
    let ctx = OptContext::new(&qi, &model);

    println!("=== 14-relation star on the simulated GTX 1080 ===\n");
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "driver", "sim time", "warp cycles", "glob writes", "launches", "divergence"
    );
    let mpdp = MpdpGpu::new().run(&ctx).unwrap();
    let dpsub = DpSubGpu::new().run(&ctx).unwrap();
    let dpsize = DpSizeGpu::new().run(&ctx).unwrap();
    for (name, run) in [("MPDP", &mpdp), ("DPSub", &dpsub), ("DPSize", &dpsize)] {
        println!(
            "{:<12} {:>10.2}ms {:>14} {:>12} {:>12} {:>10.2}",
            name,
            run.simulated_time.as_secs_f64() * 1000.0,
            run.stats.warp_cycles,
            run.stats.global_writes,
            run.stats.kernel_launches,
            run.stats.divergence_factor()
        );
    }
    println!(
        "\nMPDP evaluated {} Join-Pairs vs DPSub's {} ({}x fewer) — all three found cost {:.1}",
        mpdp.result.counters.evaluated,
        dpsub.result.counters.evaluated,
        dpsub.result.counters.evaluated / mpdp.result.counters.evaluated.max(1),
        mpdp.result.cost
    );

    println!("\n=== §7.2.5 ablation: MPDP(GPU) enhancements ===\n");
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "configuration", "sim time", "warp cycles", "glob writes"
    );
    for (label, fused, ccc) in [
        ("baseline (no enh.)", false, false),
        ("+ kernel fusion", true, false),
        ("+ CCC", false, true),
        ("+ both (paper cfg)", true, true),
    ] {
        let mut drv = MpdpGpu::new();
        drv.config.fused_prune = fused;
        drv.config.ccc = ccc;
        let run = drv.run(&ctx).unwrap();
        println!(
            "{:<22} {:>10.2}ms {:>14} {:>12}",
            label,
            run.simulated_time.as_secs_f64() * 1000.0,
            run.stats.warp_cycles,
            run.stats.global_writes
        );
    }
}
