//! The simulated-GPU pipeline (§5): run MPDP, DPSUB and DPSIZE on the
//! software SIMT machine via the registry's GPU strategies, show the
//! per-device statistics, and reproduce the §7.2.5 enhancement ablation
//! (kernel fusion + Collaborative Context Collection).
//!
//! ```sh
//! cargo run --release --example gpu_simulation
//! ```

use mpdp::prelude::*;

fn main() {
    let model = PgLikeCost::new();
    let query = mpdp::workload::gen::star(14, 11, &model);

    println!("=== 14-relation star on the simulated GTX 1080 ===\n");
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "driver", "sim time", "warp cycles", "glob writes", "launches", "divergence"
    );
    let runs: Vec<Planned> = ["MPDP (GPU)", "DPSub (GPU)", "DPSize (GPU)"]
        .into_iter()
        .map(|series| {
            mpdp::registry()
                .get(series)
                .expect("registered")
                .plan(&query, &model, None)
                .unwrap()
        })
        .collect();
    for run in &runs {
        let stats = run.gpu.expect("GPU strategies report device stats");
        println!(
            "{:<12} {:>10.2}ms {:>14} {:>12} {:>12} {:>10.2}",
            run.strategy,
            run.reported.as_secs_f64() * 1000.0,
            stats.warp_cycles,
            stats.global_writes,
            stats.kernel_launches,
            stats.divergence_factor()
        );
    }
    let (mpdp_run, dpsub_run) = (&runs[0], &runs[1]);
    let (mc, sc) = (
        mpdp_run.counters.expect("exact runs report counters"),
        dpsub_run.counters.expect("exact runs report counters"),
    );
    println!(
        "\nMPDP evaluated {} Join-Pairs vs DPSub's {} ({}x fewer) — all three found cost {:.1}",
        mc.evaluated,
        sc.evaluated,
        sc.evaluated / mc.evaluated.max(1),
        mpdp_run.cost
    );

    println!("\n=== §7.2.5 ablation: MPDP(GPU) enhancements ===\n");
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "configuration", "sim time", "warp cycles", "glob writes"
    );
    for (label, series) in [
        ("baseline (no enh.)", "MPDP (GPU, baseline)"),
        ("+ kernel fusion", "MPDP (GPU, +fusion)"),
        ("+ CCC", "MPDP (GPU, +CCC)"),
        ("+ both (paper cfg)", "MPDP (GPU)"),
    ] {
        let run = mpdp::registry()
            .get(series)
            .expect("registered")
            .plan(&query, &model, None)
            .unwrap();
        let stats = run.gpu.expect("GPU strategies report device stats");
        println!(
            "{:<22} {:>10.2}ms {:>14} {:>12}",
            label,
            run.reported.as_secs_f64() * 1000.0,
            stats.warp_cycles,
            stats.global_writes
        );
    }
}
