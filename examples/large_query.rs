//! Heuristic optimization of very large queries (the Tables 1–2 regime):
//! a 300-relation snowflake optimized by GOO, IKKBZ, LinDP, GE-QO,
//! IDP2-MPDP and UnionDP-MPDP, with plan quality and optimization time.
//!
//! ```sh
//! cargo run --release --example large_query
//! ```

use mpdp::prelude::*;
use mpdp_heuristics::{idp2_mpdp, Geqo, Goo, Ikkbz, LargeOptimizer, LinDp, UnionDp};
use std::time::{Duration, Instant};

fn main() {
    let model = PgLikeCost::new();
    let n = 300;
    let query = mpdp_workload::gen::snowflake(n, 4, 2024, &model);
    println!(
        "optimizing a {n}-relation snowflake ({} join edges) — 1-minute budget per technique\n",
        query.edges.len()
    );
    let budget = Some(Duration::from_secs(60));

    let mut rows: Vec<(String, f64, Duration)> = Vec::new();
    let mut run = |name: String, r: Result<mpdp_heuristics::LargeOptResult, OptError>, t: Instant| {
        match r {
            Ok(res) => {
                // Every plan must be a valid cross-product-free covering tree.
                assert!(mpdp_heuristics::validate_large(&res.plan, &query).is_none());
                rows.push((name, res.cost, t.elapsed()));
            }
            Err(e) => println!("{name:>20}: failed ({e})"),
        }
    };

    let t = Instant::now();
    run("GOO".into(), Goo.optimize(&query, &model, budget), t);
    let t = Instant::now();
    run("IKKBZ".into(), Ikkbz.optimize(&query, &model, budget), t);
    let t = Instant::now();
    run("LinDP".into(), LinDp::default().optimize(&query, &model, budget), t);
    let t = Instant::now();
    run("GE-QO".into(), Geqo::default().optimize(&query, &model, budget), t);
    let t = Instant::now();
    run("IDP2-MPDP (15)".into(), idp2_mpdp(&query, &model, 15, budget), t);
    let t = Instant::now();
    run(
        "UnionDP-MPDP (15)".into(),
        UnionDp { k: 15 }.optimize(&query, &model, budget),
        t,
    );

    let best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("{:>20}  {:>14}  {:>8}  {:>10}", "technique", "plan cost", "vs best", "opt time");
    for (name, cost, time) in rows {
        println!(
            "{name:>20}  {cost:>14.0}  {:>7.2}x  {:>8.0}ms",
            cost / best,
            time.as_secs_f64() * 1000.0
        );
    }
}
