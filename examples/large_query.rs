//! Heuristic optimization of very large queries (the Tables 1–2 regime):
//! a 300-relation snowflake optimized by GOO, IKKBZ, LinDP, GE-QO,
//! IDP2-MPDP and UnionDP-MPDP — each selected from the strategy registry by
//! its paper label — with plan quality and optimization time.
//!
//! ```sh
//! cargo run --release --example large_query
//! ```

use mpdp::prelude::*;
use mpdp_heuristics::validate_large;
use std::time::Duration;

fn main() {
    let model = PgLikeCost::new();
    let n = 300;
    let query = mpdp::workload::gen::snowflake(n, 4, 2024, &model);
    println!(
        "optimizing a {n}-relation snowflake ({} join edges) — 1-minute budget per technique\n",
        query.edges.len()
    );
    let budget = Some(Duration::from_secs(60));

    let mut rows: Vec<(String, f64, Duration)> = Vec::new();
    for series in [
        "GOO",
        "IKKBZ",
        "LinDP",
        "GE-QO",
        "IDP2-MPDP (15)",
        "UnionDP-MPDP (15)",
    ] {
        let strategy = mpdp::registry().get(series).expect("registered");
        match strategy.plan(&query, &model, budget) {
            Ok(res) => {
                // Every plan must be a valid cross-product-free covering tree.
                assert!(validate_large(&res.plan, &query).is_none());
                rows.push((strategy.name(), res.cost, res.wall));
            }
            Err(e) => println!("{series:>20}: failed ({e})"),
        }
    }

    let best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "{:>20}  {:>14}  {:>8}  {:>10}",
        "technique", "plan cost", "vs best", "opt time"
    );
    for (name, cost, time) in rows {
        println!(
            "{name:>20}  {cost:>14.0}  {:>7.2}x  {:>8.0}ms",
            cost / best,
            time.as_secs_f64() * 1000.0
        );
    }
}
