//! Real-world-schema workload (§7.2.2): random-walk queries over the
//! 56-table MusicBrainz-like schema, optimized exactly through the registry,
//! with the heuristic-fall-back story: how large can a query get before
//! exact optimization exceeds a PostgreSQL-like planning budget?
//!
//! ```sh
//! cargo run --release --example musicbrainz
//! ```

use mpdp::prelude::*;
use mpdp_workload::MusicBrainz;
use std::time::Duration;

fn main() {
    let model = PgLikeCost::new();
    let mb = MusicBrainz::new();
    println!(
        "MusicBrainz-like schema: {} tables, {} PK-FK edges\n",
        mb.num_tables(),
        mb.fks.len()
    );

    // PostgreSQL's geqo_threshold is 12: beyond that it abandons exact
    // search. The paper raises the limit to ~25 with MPDP. Emulate the
    // experiment: find the largest n whose exact MPDP optimization stays
    // within a 2-second budget on this machine.
    let budget = Some(Duration::from_secs(2));
    let mpdp = mpdp::registry().get("MPDP").expect("registered");
    println!("n\tedges\tcycles?\topt_ms\tccp_pairs\tplan_cost");
    let mut fallback_limit = 0;
    for n in [4usize, 8, 12, 14, 16, 18, 20, 22] {
        let q = mb.random_walk_query(n, 7, true, &model);
        let has_cycles = q.edges.len() > n - 1;
        match mpdp.plan(&q, &model, budget) {
            Ok(r) => {
                println!(
                    "{n}\t{}\t{}\t{:.1}\t{}\t{:.0}",
                    q.edges.len(),
                    if has_cycles { "yes" } else { "no" },
                    r.wall.as_secs_f64() * 1000.0,
                    r.counters.expect("exact runs report counters").ccp,
                    r.cost
                );
                fallback_limit = n;
            }
            Err(OptError::Timeout { .. }) => {
                println!(
                    "{n}\t{}\t{}\ttimeout\t-\t-",
                    q.edges.len(),
                    if has_cycles { "yes" } else { "no" }
                );
                break;
            }
            Err(e) => {
                println!("{n}\t-\t-\terror: {e}");
                break;
            }
        }
    }
    println!(
        "\nexact-optimization limit within the budget on this machine: {fallback_limit} relations"
    );
    println!("(PostgreSQL's default heuristic-fall-back limit is 12; the paper reaches 25 with MPDP on a GPU)");
}
