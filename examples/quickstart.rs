//! Quickstart: optimize the Figure 1 TPC-H query through the unified
//! `Planner` API, then compare the exact algorithms on a 12-relation star by
//! selecting them from the strategy registry.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpdp::prelude::*;
use mpdp_cost::catalog::{Catalog, Column, JoinPredicate, Table};

fn pk(name: &str) -> Column {
    Column {
        name: name.into(),
        ndv: 0.0,
        primary_key: true,
    }
}

fn fk(name: &str, ndv: f64) -> Column {
    Column {
        name: name.into(),
        ndv,
        primary_key: false,
    }
}

fn main() {
    let model = PgLikeCost::new();

    // --- The paper's Figure 1 example query -----------------------------
    // select o_orderdate from lineitem, orders, part, customer
    // where p_partkey = l_partkey and o_orderkey = l_orderkey
    //   and o_custkey = c_custkey
    let mut catalog = Catalog::new();
    catalog.add_table(Table::new(
        "lineitem",
        6_000_000.0,
        vec![fk("l_orderkey", 1_500_000.0), fk("l_partkey", 200_000.0)],
    ));
    catalog.add_table(Table::new(
        "orders",
        1_500_000.0,
        vec![pk("o_orderkey"), fk("o_custkey", 150_000.0)],
    ));
    catalog.add_table(Table::new("part", 200_000.0, vec![pk("p_partkey")]));
    catalog.add_table(Table::new("customer", 150_000.0, vec![pk("c_custkey")]));

    let tables = [0usize, 1, 2, 3]; // lineitem, orders, part, customer
    let predicates = [
        JoinPredicate {
            left_table: 2,
            left_col: "p_partkey".into(),
            right_table: 0,
            right_col: "l_partkey".into(),
        },
        JoinPredicate {
            left_table: 1,
            left_col: "o_orderkey".into(),
            right_table: 0,
            right_col: "l_orderkey".into(),
        },
        JoinPredicate {
            left_table: 1,
            left_col: "o_custkey".into(),
            right_table: 3,
            right_col: "c_custkey".into(),
        },
    ];
    let query = catalog.build_query(&tables, &predicates, &model);

    // The adaptive deployment: exact MPDP for small queries, UnionDP-MPDP
    // beyond the exact limit. One front door for any query size.
    let planner = PlannerBuilder::new()
        .exact(ExactAlgo::Mpdp)
        .fallback(LargeAlgo::UnionDp { k: 15 })
        .exact_limit(18)
        .build()
        .expect("valid configuration");
    let result = planner
        .plan_query(&query, &model)
        .expect("optimization succeeds");
    let counters = result.counters.expect("exact runs report counters");
    println!(
        "=== Figure 1 TPC-H query (4 relations) via {} ===",
        result.strategy
    );
    println!(
        "optimal cost: {:.1}   CCP pairs: {}   evaluated: {}",
        result.cost, counters.ccp, counters.evaluated
    );
    println!("{}", result.plan.render());

    // --- A 12-relation star, comparing algorithms by registry name ------
    let star = mpdp::workload::gen::star(12, 7, &model);
    println!("=== 12-relation star: exact algorithms agree ===");
    for series in ["Postgres (1CPU)", "DPSub (1CPU)", "DPCCP (1CPU)", "MPDP"] {
        let strategy = mpdp::registry().get(series).expect("registered");
        let r = strategy.plan(&star, &model, None).unwrap();
        let c = r.counters.expect("exact runs report counters");
        println!(
            "{series:<16} cost={:.1}  evaluated={:>8}  ccp={:>6}  (evaluated/ccp = {:.1})",
            r.cost,
            c.evaluated,
            c.ccp,
            c.inefficiency()
        );
    }
}
