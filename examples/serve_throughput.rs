//! `serve_throughput` — the PlanService serving layer end to end.
//!
//! Builds a [`mpdp::PlanService`], demonstrates the fingerprint cache on a
//! pair of isomorphic queries (same shape, relabeled relations), shows the
//! adaptive router's choices across the size/density grid, then replays a
//! short Zipf stream from a worker pool and prints the throughput report.
//!
//! ```sh
//! cargo run --release --example serve_throughput
//! ```

use mpdp::prelude::*;
use mpdp_bench::serve::{replay, ServeConfig};
use mpdp_workload::{gen, StreamSpec};
use std::time::Duration;

fn main() {
    let model = PgLikeCost::new();
    let service = PlanServiceBuilder::new()
        .cache_capacity(2048)
        .cache_shards(8)
        .budget(Duration::from_secs(30))
        .build();

    // --- one query, twice: cold plan, then an isomorphic relabeled hit ----
    println!("== fingerprint cache on isomorphic queries ==");
    let q = gen::star(14, 3, &model);
    let cold = service.plan(&q, &model).expect("cold plan");
    println!(
        "cold:  strategy={:<12} cost={:.3e}  service_time={:?}  hit={}",
        cold.planned.strategy, cold.planned.cost, cold.service_time, cold.cache_hit
    );
    let relabeled = q.relabel(&(0..14).rev().collect::<Vec<_>>());
    let hit = service.plan(&relabeled, &model).expect("cached plan");
    println!(
        "hit:   strategy={:<12} cost={:.3e}  service_time={:?}  hit={}",
        hit.planned.strategy, hit.planned.cost, hit.service_time, hit.cache_hit
    );
    assert!(hit.cache_hit);
    let qi = relabeled.to_query_info().expect("≤64 rels");
    assert!(
        hit.planned.plan.validate(&qi.graph).is_none(),
        "remapped plan must be valid for the relabeled query"
    );
    println!(
        "speedup: {:.0}x (fingerprint {})\n",
        cold.service_time.as_secs_f64() / hit.service_time.as_secs_f64().max(1e-9),
        hit.fingerprint
    );

    // --- the router across the size/density grid --------------------------
    println!("== adaptive routes ==");
    let req = PlanRequest::default();
    for (label, q) in [
        ("chain(8)   sparse small", gen::chain(8, 1, &model)),
        ("star(16)   sparse mid", gen::star(16, 1, &model)),
        ("clique(12) dense mid", gen::clique(12, 1, &model)),
        ("snowflake(40) large", gen::snowflake(40, 4, 1, &model)),
    ] {
        println!("{label:<24} -> {}", service.route_for(&q, &req));
    }
    println!();

    // --- worker-pool replay ----------------------------------------------
    println!("== Zipf replay (2000 queries, 4 workers) ==");
    let config = ServeConfig {
        total: 2000,
        workers: 4,
        stream: StreamSpec {
            templates: 200,
            ..StreamSpec::default()
        },
    };
    let fresh = PlanServiceBuilder::new()
        .budget(Duration::from_secs(30))
        .build();
    let report = replay(&fresh, &model, &config).expect("replay");
    print!("{}", report.render());
}
