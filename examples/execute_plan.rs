//! Execute a plan: materialize tables from catalog statistics, run the
//! optimizer's chosen join order through the vectorized executor, and close
//! the cardinality-feedback loop when the statistics turn out to be wrong.
//!
//! ```sh
//! cargo run --release --example execute_plan
//! ```

use mpdp::exec::{
    fold_observations, materialize, recost_plan, synthesize_catalog, ExecConfig, Executor,
    GenConfig, SkewedEdge,
};
use mpdp::prelude::*;
use mpdp::PlanServiceBuilder;

fn main() {
    let model = PgLikeCost::new();

    // A 3-relation chain a — b — c: the a⋈b predicate is *estimated* highly
    // selective (1/1000), the b⋈c one moderate (1/100).
    let mut q = LargeQuery::new(
        [500.0, 500.0, 500.0]
            .iter()
            .map(|&rows| RelInfo::new(rows, model.scan_cost(rows)))
            .collect(),
    );
    q.add_edge(0, 1, 1.0 / 1000.0);
    q.add_edge(1, 2, 1.0 / 100.0);
    let mut catalog = synthesize_catalog(&q);

    // Materialize columnar tables from those statistics — but with 30% of
    // the a/b rows sharing one hot join key, which the catalog knows
    // nothing about (true a⋈b selectivity ≈ 0.09, ninety times the
    // estimate).
    let data = materialize(
        &q,
        &GenConfig {
            seed: 7,
            skew: vec![SkewedEdge {
                u: 0,
                v: 1,
                hot_fraction: 0.3,
            }],
            ..Default::default()
        },
        &model,
    );

    // Plan through the serving layer and execute the chosen order.
    let service = PlanServiceBuilder::new().build();
    let served = service.plan(&data.scaled, &model).unwrap();
    println!(
        "— plan under estimated statistics ({}):",
        served.planned.strategy
    );
    print!("{}", served.planned.plan.render());

    let executor = Executor::new(&data.scaled, &data, ExecConfig::default());
    let report = executor.execute(&served.planned.plan).unwrap();
    println!(
        "\nestimated root rows {:>8.0} | observed {:>8} | deviation {:.0}x",
        report.est_root_rows,
        report.root_rows,
        report.root_deviation()
    );
    for s in report.stats.iter().filter(|s| s.probe_rows > 0) {
        println!(
            "  join {:>12}: build {:>6} probe {:>6} -> out {:>7} ({} batches, {:?})",
            format!("{}", s.rels),
            s.build_rows,
            s.probe_rows,
            s.output_rows,
            s.batches,
            s.wall
        );
    }

    // Feed the observation back: the cached plan is invalidated (>10x
    // miss), the catalog learns the observed selectivities, and re-planning
    // the corrected query picks a better join order.
    let invalidated = service.observe(served.fingerprint, &model, &report);
    println!("\ncached plan invalidated: {invalidated}");
    fold_observations(&mut catalog, &report);
    let corrected = catalog.build_query(&model);
    let replanned = service.plan(&corrected, &model).unwrap();
    let stale_recosted = recost_plan(
        &served.planned.plan,
        &corrected.to_query_info().unwrap(),
        &model,
    );
    println!(
        "stale order re-priced under corrected stats: {:.0}",
        stale_recosted.cost()
    );
    println!(
        "re-planned order cost:                       {:.0}",
        replanned.planned.cost
    );
    let report2 = executor.execute(&replanned.planned.plan).unwrap();
    println!(
        "rows touched: stale {} -> re-planned {}",
        report.counters.rows_touched(),
        report2.counters.rows_touched()
    );
    assert!(invalidated, "88x deviation must invalidate");
    assert!(replanned.planned.cost < stale_recosted.cost());
    assert!(report2.counters.rows_touched() < report.counters.rows_touched());
    println!("\nfeedback loop closed: corrected statistics bought a cheaper plan.");
}
