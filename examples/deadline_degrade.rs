//! `deadline_degrade` — per-request deadline budgets and heuristic fallback.
//!
//! Submits the same queries twice through an [`mpdp_serve::ServeFront`]:
//! once with no deadline (exact planning, whatever it costs) and once with
//! a deadline exact planning cannot meet (the affordability check reroutes
//! to the degrade heuristic, `ServedVia::Degraded`). Prints the per-shape
//! latency/cost comparison — the plan-quality price of meeting a deadline.
//!
//! ```sh
//! cargo run --release --example deadline_degrade
//! ```

use mpdp::service::ServedVia;
use mpdp_cost::PgLikeCost;
use mpdp_serve::{ServeConfig, ServeFront, TenantConfig};
use mpdp_workload::gen;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let m = PgLikeCost::new();
    let shapes: Vec<(&str, mpdp_core::LargeQuery)> = vec![
        ("star-12", gen::star(12, 7, &m)),
        ("star-14", gen::star(14, 7, &m)),
        ("cycle-14", gen::cycle(14, 7, &m)),
        ("clique-11", gen::clique(11, 7, &m)),
        ("clique-12", gen::clique(12, 7, &m)),
    ];

    // Two fronts so the exact runs can't serve the degraded runs from cache
    // (and vice versa): same planner stack, only the deadline differs.
    let make_front = |deadline: Option<Duration>| {
        ServeFront::new(
            ServeConfig {
                dispatchers: 1,
                executor_threads: 2,
                default_deadline: deadline,
                tenants: vec![TenantConfig::named("demo")],
                ..ServeConfig::default()
            },
            Arc::new(PgLikeCost::new()),
        )
    };
    let exact_front = make_front(None);
    let deadline = Duration::from_millis(10);
    let degrade_front = make_front(Some(deadline));

    println!("== exact vs degraded (deadline {deadline:?}) ==");
    println!("shape\t\texact_ms\tdegraded_ms\tcost_ratio\tvia");
    for (name, q) in &shapes {
        let t0 = Instant::now();
        let exact = exact_front
            .submit(0, q.clone())
            .expect("admitted")
            .wait()
            .result
            .expect("exact plan");
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_ne!(exact.via, ServedVia::Degraded, "no deadline, no degrade");

        let t1 = Instant::now();
        let degraded = degrade_front
            .submit(0, q.clone())
            .expect("admitted")
            .wait()
            .result
            .expect("degraded requests still resolve with a plan");
        let degraded_ms = t1.elapsed().as_secs_f64() * 1e3;

        println!(
            "{name}\t{exact_ms:>8.2}\t{degraded_ms:>8.2}\t{:>7.3}x\t\t{:?}",
            degraded.planned.cost / exact.planned.cost,
            degraded.via,
        );
    }
    println!(
        "\nA degraded request answers inside its budget with a heuristic plan \
         (GOO); the cost ratio is the plan-quality price paid for the latency \
         bound. Degraded plans are never cached as exact — a later request \
         with headroom plans cold and repairs the cache."
    );
}
