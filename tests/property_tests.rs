//! Property-based tests over random join graphs: the workspace's core
//! invariants must hold for *arbitrary* connected topologies and statistics,
//! not just the hand-picked test graphs.

// Explicit imports (not the facade prelude glob): both `mpdp::prelude` and
// `proptest::prelude` export a `Strategy` trait, and the glob-glob collision
// would make either unusable.
use mpdp::core::combinatorics::KSubsets;
use mpdp::core::enumerate::FrontierEnumerator;
use mpdp::prelude::{DpCcp, DpSize, DpSub, EnumerationMode, LargeQuery, Mpdp, OptContext, RelSet};
use mpdp_cost::{CoutCost, PgLikeCost};
use mpdp_heuristics::{validate_large, Goo, LargeOptimizer, UnionDp};
use mpdp_workload::gen;
use proptest::prelude::*;

/// Strategy: a connected random query with 2..=9 relations and 0..=6 extra
/// (cycle-forming) edges.
fn query_strategy() -> impl Strategy<Value = LargeQuery> {
    (2usize..=9, 0usize..=6, any::<u64>()).prop_map(|(n, extra, seed)| {
        let m = PgLikeCost::new();
        gen::random_connected(n, extra, seed, &m)
    })
}

/// Strategy: a connected random query with up to 12 relations (the frontier
/// enumeration property sweeps every DP level, so sizes stay exhaustive but
/// cheap).
fn enumeration_query_strategy() -> impl Strategy<Value = LargeQuery> {
    (2usize..=12, 0usize..=8, any::<u64>()).prop_map(|(n, extra, seed)| {
        let m = PgLikeCost::new();
        gen::random_connected(n, extra, seed, &m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_algorithms_agree(q in query_strategy()) {
        let m = PgLikeCost::new();
        let qi = q.to_query_info().unwrap();
        let ctx = OptContext::new(&qi, &m);
        let a = DpSub::run(&ctx).unwrap();
        let b = DpCcp::run(&ctx).unwrap();
        let c = Mpdp::run(&ctx).unwrap();
        let d = DpSize::run(&ctx).unwrap();
        let tol = 1e-6 * a.cost.max(1.0);
        prop_assert!((a.cost - b.cost).abs() < tol, "dpccp {} vs dpsub {}", b.cost, a.cost);
        prop_assert!((a.cost - c.cost).abs() < tol, "mpdp {} vs dpsub {}", c.cost, a.cost);
        prop_assert!((a.cost - d.cost).abs() < tol, "dpsize {} vs dpsub {}", d.cost, a.cost);
        // CCP counter is algorithm independent.
        prop_assert_eq!(a.counters.ccp, b.counters.ccp);
        prop_assert_eq!(a.counters.ccp, c.counters.ccp);
        prop_assert_eq!(a.counters.ccp, d.counters.ccp);
        // DPCCP is tight; MPDP evaluates no more than DPSUB.
        prop_assert_eq!(b.counters.evaluated, b.counters.ccp);
        prop_assert!(c.counters.evaluated <= a.counters.evaluated);
    }

    #[test]
    fn optimal_plans_validate(q in query_strategy()) {
        let m = PgLikeCost::new();
        let qi = q.to_query_info().unwrap();
        let ctx = OptContext::new(&qi, &m);
        let r = Mpdp::run(&ctx).unwrap();
        prop_assert!(r.plan.validate(&qi.graph).is_none());
        prop_assert_eq!(r.plan.num_rels(), qi.query_size());
        // The memoized cost/rows at the root must be reproducible bottom-up.
        let re = mpdp_heuristics::recost(&r.plan, &q, &m);
        prop_assert!((re.cost() - r.cost).abs() < 1e-6 * r.cost.max(1.0));
        prop_assert!((re.rows() - r.rows).abs() < 1e-6 * r.rows.max(1.0));
    }

    #[test]
    fn heuristics_bounded_below_by_optimum(q in query_strategy()) {
        let m = PgLikeCost::new();
        let qi = q.to_query_info().unwrap();
        let exact = Mpdp::run(&OptContext::new(&qi, &m)).unwrap();
        let lower = exact.cost * (1.0 - 1e-9);
        let goo = Goo.optimize(&q, &m, None).unwrap();
        prop_assert!(goo.cost >= lower, "goo {} < exact {}", goo.cost, exact.cost);
        prop_assert!(validate_large(&goo.plan, &q).is_none());
        let ud = UnionDp { k: 4 }.optimize(&q, &m, None).unwrap();
        prop_assert!(ud.cost >= lower, "uniondp {} < exact {}", ud.cost, exact.cost);
        prop_assert!(validate_large(&ud.plan, &q).is_none());
    }

    #[test]
    fn cardinality_split_invariance(q in query_strategy()) {
        // rows(S) must be identical however S is split (the property that
        // makes the DP optimum well-defined).
        let qi = q.to_query_info().unwrap();
        let g = &qi.graph;
        let full = g.all_vertices();
        let total = qi.cardinality(full);
        for v in 0..qi.query_size() {
            let part = g.grow(RelSet::singleton(v), full.without((v + 1) % qi.query_size()));
            let rest = full.difference(part);
            if part.is_empty() || rest.is_empty() { continue; }
            let recomposed = qi.cardinality(part)
                * qi.cardinality(rest)
                * g.selectivity_between(part, rest);
            prop_assert!((total - recomposed).abs() <= 1e-9 * total.max(1.0));
        }
    }

    #[test]
    fn frontier_enumeration_matches_filtered_unranking(q in enumeration_query_strategy()) {
        // The tentpole invariant: per DP level, the frontier enumerator must
        // yield exactly the connected sets the KSubsets + is_connected
        // filter yields — same family, same (ascending bitmap) order.
        let qi = q.to_query_info().unwrap();
        let g = &qi.graph;
        let n = qi.query_size();
        let mut fe = FrontierEnumerator::new(g);
        for i in 2..=n {
            let frontier: Vec<RelSet> = fe.advance().to_vec();
            let filtered: Vec<RelSet> = KSubsets::new(n, i)
                .filter(|s| g.is_connected(*s))
                .collect();
            prop_assert_eq!(frontier, filtered, "level {}", i);
        }
        prop_assert!(fe.advance().is_empty());
    }

    #[test]
    fn enumeration_modes_bit_identical(q in query_strategy()) {
        // Frontier and unranked modes must produce bit-identical costs and
        // identical ccp/evaluated counters for every level-structured DP.
        let m = PgLikeCost::new();
        let qi = q.to_query_info().unwrap();
        let frontier = OptContext::new(&qi, &m);
        let unranked = OptContext::new(&qi, &m).with_enumeration(EnumerationMode::Unranked);
        let fs = DpSub::run(&frontier).unwrap();
        let us = DpSub::run(&unranked).unwrap();
        prop_assert_eq!(fs.cost.to_bits(), us.cost.to_bits());
        prop_assert_eq!(fs.counters.evaluated, us.counters.evaluated);
        prop_assert_eq!(fs.counters.ccp, us.counters.ccp);
        prop_assert_eq!(fs.plan.render(), us.plan.render());
        let fm = Mpdp::run(&frontier).unwrap();
        let um = Mpdp::run(&unranked).unwrap();
        prop_assert_eq!(fm.cost.to_bits(), um.cost.to_bits());
        prop_assert_eq!(fm.counters.evaluated, um.counters.evaluated);
        prop_assert_eq!(fm.counters.ccp, um.counters.ccp);
        prop_assert_eq!(fm.plan.render(), um.plan.render());
    }

    #[test]
    fn atomic_memo_hammer_converges_to_sequential_min(
        params in (2u64..48, any::<u64>(), 64usize..1500)
    ) {
        // 8 threads race pseudorandom insert_if_better streams (few distinct
        // costs -> frequent exact ties) against one AtomicMemo; the table
        // must converge to exactly the sequential MemoTable's (cost, left)
        // minimum per key. Streams are derived deterministically from the
        // drawn seed so the parallel run and the sequential replay see the
        // same candidate multiset.
        use mpdp::core::atomic_memo::AtomicMemo;
        use mpdp::core::memo::{murmur3_fmix64, MemoStore, MemoTable};
        let (keys, seed, per_thread) = params;
        let step = |state: &mut u64| -> (RelSet, RelSet, f64) {
            *state = murmur3_fmix64(state.wrapping_add(0xa076_1d64_78bd_642f));
            let raw = *state;
            let key = RelSet(raw % keys + 1);
            let l = RelSet((raw >> 13) & key.bits()).lowest_bit();
            let left = if l.is_empty() { key.lowest_bit() } else { l };
            (key, left, ((raw >> 32) % 5) as f64)
        };
        let mut atomic = AtomicMemo::with_capacity(keys as usize);
        MemoStore::reserve(&mut atomic, keys as usize);
        let atomic_ref = &atomic;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                scope.spawn(move || {
                    let mut state = seed ^ (t + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    for _ in 0..per_thread {
                        let (key, left, cost) = step(&mut state);
                        atomic_ref.insert_if_better(key, left, cost, 1.0);
                    }
                });
            }
        });
        let mut expected = MemoTable::with_capacity(keys as usize);
        for t in 0..8u64 {
            let mut state = seed ^ (t + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..per_thread {
                let (key, left, cost) = step(&mut state);
                expected.insert_if_better(key, left, cost, 1.0);
            }
        }
        prop_assert_eq!(MemoStore::len(&atomic), expected.len());
        for e in expected.iter() {
            let got = atomic.get(e.set).unwrap();
            prop_assert_eq!(got.cost.to_bits(), e.cost.to_bits());
            prop_assert_eq!(got.left, e.left);
        }
    }

    #[test]
    fn parallel_backends_bit_identical_to_sequential(q in query_strategy()) {
        // The shared-memo guarantee over arbitrary topologies: identical
        // plans, costs and counters at any worker count.
        use mpdp_parallel::level_par::{run_level_parallel, LevelAlgo};
        let m = PgLikeCost::new();
        let qi = q.to_query_info().unwrap();
        let ctx = OptContext::new(&qi, &m);
        let seq = Mpdp::run(&ctx).unwrap();
        for w in [2usize, 4] {
            let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, w).unwrap();
            prop_assert_eq!(r.cost.to_bits(), seq.cost.to_bits(), "{} workers", w);
            prop_assert_eq!(&r.plan, &seq.plan, "{} workers", w);
            prop_assert_eq!(r.counters, seq.counters, "{} workers", w);
        }
    }

    #[test]
    fn cout_model_also_consistent(q in query_strategy()) {
        // The whole stack is cost-model generic: rerun equivalence under Cout.
        let m = CoutCost;
        let qi = q.to_query_info().unwrap();
        let ctx = OptContext::new(&qi, &m);
        let a = DpSub::run(&ctx).unwrap();
        let b = Mpdp::run(&ctx).unwrap();
        prop_assert!((a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0));
    }
}
