//! Cross-crate integration for the heuristic layer: the Tables 1–2 pipeline
//! end to end — generators → heuristics → plan validity, quality ordering
//! and budget behaviour.

use mpdp::prelude::*;
use mpdp_cost::PgLikeCost;
use mpdp_heuristics::{
    idp1_mpdp, idp2_mpdp, validate_large, Geqo, Goo, Ikkbz, LargeOptimizer, LinDp, UnionDp,
};
use mpdp_workload::{gen, MusicBrainz};
use std::time::Duration;

#[test]
fn every_heuristic_produces_valid_plans_on_every_workload() {
    let m = PgLikeCost::new();
    let budget = Some(Duration::from_secs(60));
    let queries = vec![
        ("star30", gen::star(30, 1, &m)),
        ("snowflake40", gen::snowflake(40, 4, 2, &m)),
        ("clique15", gen::clique(15, 3, &m)),
        (
            "mb30",
            MusicBrainz::new().random_walk_query(30, 4, true, &m),
        ),
    ];
    for (name, q) in &queries {
        let runs: Vec<(&str, LargeOptResult)> = vec![
            ("goo", Goo.optimize(q, &m, budget).unwrap()),
            ("ikkbz", Ikkbz.optimize(q, &m, budget).unwrap()),
            ("lindp", LinDp::default().optimize(q, &m, budget).unwrap()),
            ("geqo", Geqo::default().optimize(q, &m, budget).unwrap()),
            ("idp2", idp2_mpdp(q, &m, 8, budget).unwrap()),
            ("uniondp", UnionDp { k: 8 }.optimize(q, &m, budget).unwrap()),
        ];
        for (algo, r) in &runs {
            assert!(
                validate_large(&r.plan, q).is_none(),
                "{name}/{algo}: {:?}",
                validate_large(&r.plan, q)
            );
            assert_eq!(r.plan.num_rels(), q.num_rels(), "{name}/{algo}");
            assert!(r.cost.is_finite() && r.cost > 0.0, "{name}/{algo}");
        }
        // IKKBZ is restricted to left-deep trees.
        let ikkbz = &runs.iter().find(|(a, _)| *a == "ikkbz").unwrap().1;
        assert!(ikkbz.plan.is_left_deep(), "{name}");
    }
}

#[test]
fn dp_based_heuristics_dominate_on_small_queries() {
    // Where the exact optimum is computable, IDP2(k≥n) and UnionDP(k≥n)
    // must hit it and the others must not beat it.
    let m = PgLikeCost::new();
    for seed in 0..3u64 {
        let q = gen::snowflake(10, 3, seed, &m);
        let qi = q.to_query_info().unwrap();
        let exact = Mpdp::run(&OptContext::new(&qi, &m)).unwrap();
        let idp = idp2_mpdp(&q, &m, 10, None).unwrap();
        assert!((idp.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
        let tol = exact.cost * (1.0 - 1e-9);
        for r in [
            Goo.optimize(&q, &m, None).unwrap(),
            Ikkbz.optimize(&q, &m, None).unwrap(),
            Geqo::default().optimize(&q, &m, None).unwrap(),
        ] {
            assert!(r.cost >= tol, "seed {seed}");
        }
    }
}

#[test]
fn idp1_and_idp2_agree_with_exact_at_full_k() {
    let m = PgLikeCost::new();
    let q = gen::cycle(7, 9, &m);
    let qi = q.to_query_info().unwrap();
    let exact = Mpdp::run(&OptContext::new(&qi, &m)).unwrap();
    let i1 = idp1_mpdp(&q, &m, 7, None).unwrap();
    let i2 = idp2_mpdp(&q, &m, 7, None).unwrap();
    assert!((i1.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    assert!((i2.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
}

#[test]
fn budgets_time_out_cleanly() {
    let m = PgLikeCost::new();
    let q = gen::snowflake(400, 4, 1, &m);
    // A microsecond budget must produce a Timeout, not a hang or panic.
    let r = idp2_mpdp(&q, &m, 15, Some(Duration::from_micros(1)));
    assert!(matches!(r, Err(OptError::Timeout { .. })));
    let r = UnionDp { k: 15 }.optimize(&q, &m, Some(Duration::from_micros(1)));
    assert!(matches!(r, Err(OptError::Timeout { .. })));
}

#[test]
fn adaptive_planner_handles_both_regimes() {
    let m = PgLikeCost::new();
    let small = gen::chain(6, 1, &m);
    let large = gen::snowflake(120, 4, 1, &m);
    let planner = PlannerBuilder::new()
        .exact(ExactAlgo::Mpdp)
        .fallback(LargeAlgo::UnionDp { k: 15 })
        .budget(Duration::from_secs(60))
        .build()
        .unwrap();
    let rs = planner.plan_query(&small, &m).unwrap();
    assert_eq!(rs.plan.num_rels(), 6);
    assert_eq!(rs.strategy, "MPDP");
    let rl = planner.plan_query(&large, &m).unwrap();
    assert_eq!(rl.plan.num_rels(), 120);
    assert_eq!(rl.strategy, "UnionDP-MPDP (15)");
    assert!(validate_large(&rl.plan, &large).is_none());
}

#[test]
fn adaptive_registry_entry_matches_planner() {
    let m = PgLikeCost::new();
    let q = gen::snowflake(40, 4, 3, &m);
    let via_registry = registry()
        .get("Adaptive")
        .unwrap()
        .plan(&q, &m, Some(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(via_registry.plan.num_rels(), 40);
    assert!(validate_large(&via_registry.plan, &q).is_none());
}

#[test]
fn adaptive_planner_covers_both_regimes() {
    // The composed deployment (successor of the removed pre-Planner
    // `Optimizer` facade) must produce valid plans on both sides of the
    // exact limit.
    let m = PgLikeCost::new();
    let small = gen::chain(6, 1, &m);
    let large = gen::snowflake(120, 4, 1, &m);
    let planner = mpdp::PlannerBuilder::new()
        .budget(Duration::from_secs(60))
        .build()
        .unwrap();
    let rs = planner.plan_query(&small, &m).unwrap();
    assert_eq!(rs.plan.num_rels(), 6);
    let rl = planner.plan_query(&large, &m).unwrap();
    assert_eq!(rl.plan.num_rels(), 120);
    assert!(validate_large(&rl.plan, &large).is_none());
}

#[test]
fn thousand_relation_snowflake_under_a_minute() {
    // The paper's headline heuristic claim: "it also optimizes queries with
    // 1000 relations under 1 minute". GOO + UnionDP both must finish a
    // 1000-relation snowflake within the budget on this machine.
    let m = PgLikeCost::new();
    let q = gen::snowflake(1000, 4, 7, &m);
    let start = std::time::Instant::now();
    let goo = Goo.optimize(&q, &m, Some(Duration::from_secs(60))).unwrap();
    assert!(validate_large(&goo.plan, &q).is_none());
    let ud = UnionDp { k: 10 }
        .optimize(&q, &m, Some(Duration::from_secs(60)))
        .unwrap();
    assert!(validate_large(&ud.plan, &q).is_none());
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "took {:?}",
        start.elapsed()
    );
}
