//! Cross-strategy execution oracle + determinism guarantees.
//!
//! Joins are commutative and associative: *every* valid join order of one
//! query over one dataset must produce the identical root cardinality. The
//! oracle test runs the plans of five registry strategies (three exact, two
//! heuristic) through the executor and asserts exactly that — any
//! divergence is a planner bug (invalid plan) or an executor bug (join
//! order leaking into results).
//!
//! The determinism tests pin the data generator's contract: the same
//! catalog statistics and seed produce bit-identical tables and identical
//! per-operator row counts on every run, from any number of concurrent
//! threads, and at any probe-phase worker count (generation is a pure
//! per-cell hash; parallel execution merges private per-worker buffers in
//! morsel order). Morsel accounting is pinned exactly, including the
//! probe-rows-divide-batch boundary.

use mpdp::exec::{materialize, ExecConfig, ExecStats, Executor, GenConfig};
use mpdp::registry;
use mpdp_bench::exec::{run_case, ExecCase, EXEC_STRATEGIES};
use mpdp_core::{LargeQuery, RelInfo};
use mpdp_cost::{CostModel, PgLikeCost};

/// Executor-scale test queries: key domains commensurate with row counts so
/// multi-way joins produce non-trivial results.
fn oracle_queries(model: &PgLikeCost) -> Vec<(&'static str, LargeQuery)> {
    let rel = |rows: f64| RelInfo::new(rows, model.scan_cost(rows));
    // chain 0-1-2-3-4
    let mut chain = LargeQuery::new((0..5).map(|i| rel(1_000.0 + 300.0 * i as f64)).collect());
    for i in 1..5 {
        chain.add_edge(i - 1, i, 1.0 / 700.0);
    }
    // star: fact + 4 dims
    let mut star = LargeQuery::new(vec![
        rel(4_000.0),
        rel(400.0),
        rel(300.0),
        rel(500.0),
        rel(250.0),
    ]);
    for (i, base) in [(1, 500.0), (2, 450.0), (3, 600.0), (4, 400.0)] {
        star.add_edge(0, i, 1.0 / base);
    }
    // cycle of 5 with a weak closing predicate
    let mut cycle = chain.clone();
    cycle.add_edge(4, 0, 1.0 / 20.0);
    // dense-ish: star plus two dimension-dimension equivalence edges
    let mut dense = star.clone();
    dense.add_edge(1, 2, 1.0 / 25.0);
    dense.add_edge(3, 4, 1.0 / 25.0);
    vec![
        ("chain", chain),
        ("star", star),
        ("cycle", cycle),
        ("dense", dense),
    ]
}

#[test]
fn all_strategies_agree_on_root_cardinality_at_every_worker_count() {
    let model = PgLikeCost::new();
    for (shape, q) in oracle_queries(&model) {
        let data = materialize(
            &q,
            &GenConfig {
                seed: 31,
                ..Default::default()
            },
            &model,
        );
        // The oracle quantifies over join orders AND worker counts: every
        // (strategy, workers) pair must produce the identical root.
        let mut roots = Vec::new();
        for workers in [1usize, 2, 4] {
            let executor = Executor::new(
                &data.scaled,
                &data,
                ExecConfig {
                    workers,
                    ..Default::default()
                },
            );
            for name in EXEC_STRATEGIES {
                let planned = registry()
                    .get(name)
                    .unwrap()
                    .plan(&data.scaled, &model, None)
                    .unwrap_or_else(|e| panic!("{shape}/{name}: {e}"));
                // The plan must be structurally valid before it is executed.
                let qi = data.scaled.to_query_info().unwrap();
                assert!(
                    planned.plan.validate(&qi.graph).is_none(),
                    "{shape}/{name}: invalid plan"
                );
                let report = executor
                    .execute(&planned.plan)
                    .unwrap_or_else(|e| panic!("{shape}/{name}@{workers}w: {e}"));
                roots.push((name, workers, report.root_rows));
            }
        }
        let expected = roots[0].2;
        assert!(
            expected > 0,
            "{shape}: degenerate dataset (0 rows) makes the oracle vacuous"
        );
        for (name, workers, root) in &roots {
            assert_eq!(
                *root, expected,
                "{shape}: {name} at {workers} workers produced {root} root rows, \
                 {} at 1 worker produced {expected}",
                roots[0].0
            );
        }
    }
}

/// Morsel accounting is exact: `batches == ⌈probe_rows / batch⌉` for every
/// batch size — **including when probe rows divide the batch size exactly**
/// (4096/1024: the final morsel is full, the boundary where a loop shaped
/// around "last partial morsel" double-counts) — and the count is invariant
/// under the worker count because per-worker counts sum over a partition of
/// the morsel range.
#[test]
fn morsel_counts_are_exact() {
    let model = PgLikeCost::new();
    let mut q = LargeQuery::new(vec![
        RelInfo::new(4_096.0, model.scan_cost(4_096.0)),
        RelInfo::new(100.0, model.scan_cost(100.0)),
    ]);
    q.add_edge(0, 1, 1.0 / 50.0);
    let data = materialize(&q, &GenConfig::default(), &model);
    assert_eq!(data.tables[0].rows, 4_096, "probe side materialized fully");
    let planned = registry()
        .get("MPDP")
        .unwrap()
        .plan(&data.scaled, &model, None)
        .unwrap();
    for (batch, expected) in [
        (1usize, 4_096u64),
        (7, 586),
        (1_000, 5),
        (1_024, 4), // exact multiple: 4 full morsels, never 5
        (2_048, 2), // exact multiple
        (4_096, 1), // the whole probe side is one exact morsel
        (10_000, 1),
    ] {
        for workers in [1usize, 3, 4] {
            let executor = Executor::new(
                &data.scaled,
                &data,
                ExecConfig {
                    batch,
                    workers,
                    ..Default::default()
                },
            );
            let report = executor.execute(&planned.plan).unwrap();
            let join = report.stats.last().unwrap();
            assert_eq!(
                join.probe_rows, 4_096,
                "build side must be the 100-row table"
            );
            assert_eq!(
                join.batches, expected,
                "batch={batch} workers={workers}: expected exactly {expected} morsels"
            );
            assert_eq!(report.counters.batches, expected);
        }
    }
}

/// The bench harness's own shape set (including the catalog-scaled JOB
/// query) runs end-to-end with the oracle check inside `run_case` — at 1
/// worker and at 4 workers, where `run_case` additionally re-executes every
/// plan sequentially and demands bit-identical results (the in-run
/// determinism gate `exec-par-smoke` relies on).
#[test]
fn bench_cases_pass_oracle_at_reduced_scale() {
    let model = PgLikeCost::new();
    for workers in [1usize, 4] {
        for mut case in mpdp_bench::exec::default_cases(&model) {
            // Reduced scale for test runtime; domains are untouched so the
            // shapes stay non-degenerate except where capping starves
            // matches.
            case = ExecCase {
                max_table_rows: case.max_table_rows.min(4_000),
                ..case
            };
            let report = run_case(&case, &model, 42, workers)
                .unwrap_or_else(|e| panic!("{}@{workers}w: {e}", case.shape));
            assert_eq!(report.runs.len(), EXEC_STRATEGIES.len());
            assert_eq!(report.workers, workers);
        }
    }
}

#[test]
fn same_seed_same_tables_and_stats_across_threads() {
    let model = PgLikeCost::new();
    let (_, q) = oracle_queries(&model).remove(3); // dense
    let config = GenConfig {
        seed: 77,
        ..Default::default()
    };
    /// Wall time legitimately varies between runs; every other stat field
    /// is covered by the determinism contract.
    fn row_counts(stats: &[ExecStats]) -> Vec<(u64, u64, u64, u64, u64)> {
        stats
            .iter()
            .map(|s| {
                (
                    s.rels.bits(),
                    s.build_rows,
                    s.probe_rows,
                    s.output_rows,
                    s.batches,
                )
            })
            .collect()
    }
    type RunResult = (
        Vec<mpdp::exec::ExecTable>,
        Vec<(u64, u64, u64, u64, u64)>,
        u64,
    );
    let run_once = || -> RunResult {
        let model = PgLikeCost::new();
        let data = materialize(&q, &config, &model);
        let planned = registry()
            .get("MPDP")
            .unwrap()
            .plan(&data.scaled, &model, None)
            .unwrap();
        let report = Executor::new(&data.scaled, &data, ExecConfig::default())
            .execute(&planned.plan)
            .unwrap();
        (
            data.tables.clone(),
            row_counts(&report.stats),
            report.root_rows,
        )
    };
    let baseline = run_once();
    // Same thread, run again: bit-identical.
    let again = run_once();
    assert_eq!(baseline.0, again.0, "tables must be bit-identical");
    assert_eq!(baseline.1, again.1, "per-operator stats must be identical");
    // Four concurrent threads: generation and execution have no shared
    // state, so results cannot depend on the thread count.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4).map(|_| scope.spawn(run_once)).collect();
        for h in handles {
            let (tables, stats, root) = h.join().expect("worker panicked");
            assert_eq!(tables, baseline.0);
            assert_eq!(stats, baseline.1);
            assert_eq!(root, baseline.2);
        }
    });
}

/// The modeled build-side choice is visible in the stats: the smaller
/// estimated side is built, whatever side of the tree it is on.
#[test]
fn build_side_follows_model_estimate() {
    let model = PgLikeCost::new();
    let mut q = LargeQuery::new(vec![
        RelInfo::new(5_000.0, model.scan_cost(5_000.0)),
        RelInfo::new(200.0, model.scan_cost(200.0)),
    ]);
    q.add_edge(0, 1, 1.0 / 250.0);
    let data = materialize(&q, &GenConfig::default(), &model);
    let planned = registry()
        .get("MPDP")
        .unwrap()
        .plan(&data.scaled, &model, None)
        .unwrap();
    let report = Executor::new(&data.scaled, &data, ExecConfig::default())
        .execute(&planned.plan)
        .unwrap();
    let join = report.stats.last().unwrap();
    assert_eq!(join.build_rows, 200, "the smaller modeled side is built");
    assert_eq!(join.probe_rows, 5_000);
}
