//! The lock-free shared memo's headline guarantee: plans, costs and
//! counters are **bit-identical** across the sequential, CPU-parallel and
//! simulated-GPU backends at any worker count — including on exact cost
//! ties, which the `(cost, left)` tie-break makes scheduling-independent.

use mpdp::prelude::*;
use mpdp_cost::PgLikeCost;
use mpdp_gpu::drivers::{DpSizeGpu, DpSubGpu, MpdpGpu};
use mpdp_parallel::level_par::{run_dpsize_parallel, run_level_parallel, LevelAlgo};
use mpdp_parallel::Dpe;
use mpdp_workload::{gen, MusicBrainz};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn queries() -> Vec<(String, QueryInfo)> {
    let m = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let mut out = vec![
        ("star8".into(), gen::star(8, 1, &m).to_query_info().unwrap()),
        (
            "chain9".into(),
            gen::chain(9, 3, &m).to_query_info().unwrap(),
        ),
        (
            "cycle8".into(),
            gen::cycle(8, 2, &m).to_query_info().unwrap(),
        ),
        (
            "snowflake9".into(),
            gen::snowflake(9, 3, 2, &m).to_query_info().unwrap(),
        ),
        (
            "clique7".into(),
            gen::clique(7, 4, &m).to_query_info().unwrap(),
        ),
        (
            "mb8".into(),
            mb.random_walk_query(8, 5, true, &m)
                .to_query_info()
                .unwrap(),
        ),
    ];
    for seed in 0..3u64 {
        out.push((
            format!("random{seed}"),
            gen::random_connected(9, 4, seed, &m)
                .to_query_info()
                .unwrap(),
        ));
    }
    out
}

/// A query built to produce *many* exact cost ties: a clique of identical
/// relations with uniform selectivities is fully symmetric, so most sets
/// have several equal-cost winning splits and only the deterministic
/// tie-break keeps backends in agreement.
fn tie_heavy_query() -> QueryInfo {
    let n = 7;
    let mut g = JoinGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b, 0.1);
        }
    }
    QueryInfo::new(g, vec![RelInfo::new(1000.0, 10.0); n])
}

#[test]
fn plans_costs_counters_identical_across_backends_and_workers() {
    let m = PgLikeCost::new();
    for (name, q) in queries() {
        let ctx = OptContext::new(&q, &m);
        let seq = Mpdp::run(&ctx).unwrap();

        // CPU-parallel MPDP at 1/2/8 workers: everything identical to
        // sequential MPDP.
        for w in WORKER_COUNTS {
            let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, w).unwrap();
            assert_eq!(r.plan, seq.plan, "{name}: mpdp plan at {w} workers");
            assert_eq!(r.cost.to_bits(), seq.cost.to_bits(), "{name} ({w}w)");
            assert_eq!(r.counters, seq.counters, "{name}: mpdp counters ({w}w)");
        }
        // Simulated GPU MPDP: same plan and counters as sequential.
        let gpu = MpdpGpu::new().run(&ctx).unwrap();
        assert_eq!(gpu.result.plan, seq.plan, "{name}: gpu plan");
        assert_eq!(gpu.result.cost.to_bits(), seq.cost.to_bits(), "{name}");
        assert_eq!(gpu.result.counters, seq.counters, "{name}: gpu counters");

        // DPSUB family.
        let sub_seq = DpSub::run(&ctx).unwrap();
        assert_eq!(sub_seq.plan, seq.plan, "{name}: dpsub vs mpdp plan");
        for w in WORKER_COUNTS {
            let r = run_level_parallel(&ctx, LevelAlgo::DpSub, w).unwrap();
            assert_eq!(r.plan, sub_seq.plan, "{name}: dpsub plan ({w}w)");
            assert_eq!(
                r.counters, sub_seq.counters,
                "{name}: dpsub counters ({w}w)"
            );
        }
        let sub_gpu = DpSubGpu::new().run(&ctx).unwrap();
        assert_eq!(sub_gpu.result.plan, sub_seq.plan, "{name}: dpsub gpu plan");
        assert_eq!(sub_gpu.result.counters, sub_seq.counters, "{name}");

        // DPSIZE family: sequential Postgres-style, PDP workers, GPU.
        let size_seq = DpSize::run(&ctx).unwrap();
        assert_eq!(size_seq.plan, seq.plan, "{name}: dpsize vs mpdp plan");
        for w in WORKER_COUNTS {
            let r = run_dpsize_parallel(&ctx, w).unwrap();
            assert_eq!(r.plan, size_seq.plan, "{name}: pdp plan ({w}w)");
            assert_eq!(r.counters, size_seq.counters, "{name}: pdp counters ({w}w)");
        }
        let size_gpu = DpSizeGpu::new().run(&ctx).unwrap();
        assert_eq!(
            size_gpu.result.plan, size_seq.plan,
            "{name}: dpsize gpu plan"
        );

        // DPE and DPCCP price the same CCP pairs: identical winners.
        for w in WORKER_COUNTS {
            let dpe = Dpe::run(&ctx, w).unwrap();
            assert_eq!(dpe.plan, seq.plan, "{name}: dpe plan ({w}w)");
        }
        let ccp = DpCcp::run(&ctx).unwrap();
        assert_eq!(ccp.plan, seq.plan, "{name}: dpccp plan");
    }
}

#[test]
fn tie_heavy_query_is_scheduling_independent() {
    let m = PgLikeCost::new();
    let q = tie_heavy_query();
    let ctx = OptContext::new(&q, &m);
    let seq = Mpdp::run(&ctx).unwrap();
    // Run the parallel backend repeatedly at high worker counts: with ~7!
    // symmetric orderings, any arrival-order dependence in the tie-break
    // would show up as a differing `left` somewhere within a few rounds.
    for round in 0..5 {
        for w in [2usize, 4, 8] {
            let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, w).unwrap();
            assert_eq!(r.plan, seq.plan, "round {round}, {w} workers");
            assert_eq!(r.cost.to_bits(), seq.cost.to_bits());
        }
    }
    // And across algorithm families.
    let gpu = MpdpGpu::new().run(&ctx).unwrap();
    assert_eq!(gpu.result.plan, seq.plan);
    let pdp = run_dpsize_parallel(&ctx, 8).unwrap();
    assert_eq!(pdp.plan, seq.plan);
    let sub = run_level_parallel(&ctx, LevelAlgo::DpSub, 8).unwrap();
    assert_eq!(sub.plan, seq.plan);
}

#[test]
fn memo_health_is_reported_end_to_end() {
    // The Planned result carries the memo health the bench reports print.
    let m = PgLikeCost::new();
    let q = gen::star(9, 1, &m);
    let planned = mpdp::registry()
        .get("MPDP (4CPU)")
        .unwrap()
        .plan(&q, &m, None)
        .unwrap();
    let profile = planned.profile.expect("exact strategies profile runs");
    let health = profile.memo.expect("finish stamps memo health");
    assert!(health.entries > 0);
    assert!(health.slots.is_power_of_two());
    assert!(health.load_factor() > 0.0 && health.load_factor() <= 0.7 + 1e-9);
    assert!(health.probes > 0);
    assert!(profile.levels.iter().map(|l| l.memo_probes).sum::<u64>() > 0);
}
