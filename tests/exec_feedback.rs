//! End-to-end cardinality-feedback loop: estimate → execute → observe →
//! invalidate → correct statistics → re-plan → cheaper plan.
//!
//! The scenario is a 3-relation chain a—b—c whose a⋈b predicate the catalog
//! estimates at 1/1000 while the data is 30% hot-key skewed (true
//! selectivity ≈ 0.09). Under the wrong estimate every optimizer joins a⋈b
//! first; after one execution the observation is folded back into the
//! catalog, the service's cached plan is invalidated, and the re-planned
//! order (b⋈c first) is cheaper both under the corrected cost model and in
//! real executor work on the *same* physical data.

use mpdp::exec::{
    fold_observations, materialize, recost_plan, synthesize_catalog, ExecConfig, Executor,
    GenConfig, SkewedEdge,
};
use mpdp::{PlanService, PlanServiceBuilder};
use mpdp_core::{LargeQuery, PlanTree, RelInfo};
use mpdp_cost::{CostModel, PgLikeCost};

fn skewed_chain(model: &PgLikeCost) -> (LargeQuery, mpdp::exec::Dataset) {
    let mut q = LargeQuery::new(
        [500.0, 500.0, 500.0]
            .iter()
            .map(|&rows| RelInfo::new(rows, model.scan_cost(rows)))
            .collect(),
    );
    q.add_edge(0, 1, 1.0 / 1000.0);
    q.add_edge(1, 2, 1.0 / 100.0);
    let data = materialize(
        &q,
        &GenConfig {
            seed: 7,
            skew: vec![SkewedEdge {
                u: 0,
                v: 1,
                hot_fraction: 0.3,
            }],
            ..Default::default()
        },
        model,
    );
    (q, data)
}

/// Which relation pair the plan joins first (the deepest join's leaves).
fn first_join_rels(plan: &PlanTree) -> mpdp_core::RelSet {
    match plan {
        PlanTree::Scan { .. } => plan.rel_set(),
        PlanTree::Join { left, right, .. } => {
            for side in [left, right] {
                if let PlanTree::Join { .. } = side.as_ref() {
                    return first_join_rels(side);
                }
            }
            plan.rel_set()
        }
    }
}

#[test]
fn miss_invalidates_and_replan_is_measurably_cheaper() {
    let model = PgLikeCost::new();
    let (q, data) = skewed_chain(&model);
    let mut catalog = synthesize_catalog(&q);
    let service: PlanService = PlanServiceBuilder::new().build();

    // Cold plan: under the wrong estimate the optimizer joins a⋈b first.
    let served = service.plan(&data.scaled, &model).unwrap();
    assert!(!served.cache_hit);
    assert_eq!(
        first_join_rels(&served.planned.plan),
        mpdp_core::RelSet::from_indices([0, 1])
    );

    let executor = Executor::new(&data.scaled, &data, ExecConfig::default());
    let stale = executor.execute(&served.planned.plan).unwrap();
    assert!(
        stale.root_deviation() > 10.0,
        "skew must blow the estimate: {}",
        stale.root_deviation()
    );

    // The >10x miss evicts the cached plan; counters record it.
    assert!(service.observe(served.fingerprint, &model, &stale));
    let counters = service.cache_counters();
    assert_eq!(counters.feedback_checks, 1);
    assert_eq!(counters.feedback_invalidations, 1);
    assert!(
        !service.plan(&data.scaled, &model).unwrap().cache_hit,
        "invalidated entry must not serve hits"
    );

    // Fold the observation into the catalog: the corrected query carries
    // the observed selectivity and re-plans to b⋈c first.
    assert_eq!(fold_observations(&mut catalog, &stale), 2);
    let corrected = catalog.build_query(&model);
    assert!(
        corrected.edges[0].sel > 0.05,
        "observed a-b selectivity {}",
        corrected.edges[0].sel
    );
    let replanned = service.plan(&corrected, &model).unwrap();
    assert_eq!(
        first_join_rels(&replanned.planned.plan),
        mpdp_core::RelSet::from_indices([1, 2]),
        "corrected statistics must flip the join order"
    );

    // Cheaper under the corrected model…
    let stale_recosted = recost_plan(
        &served.planned.plan,
        &corrected.to_query_info().unwrap(),
        &model,
    );
    assert!(
        replanned.planned.cost < stale_recosted.cost(),
        "replanned {} vs stale-recosted {}",
        replanned.planned.cost,
        stale_recosted.cost()
    );
    // …and in measured executor work on the same physical data.
    let fresh = executor.execute(&replanned.planned.plan).unwrap();
    assert_eq!(
        fresh.root_rows, stale.root_rows,
        "both orders compute the same result"
    );
    assert!(
        fresh.counters.rows_touched() < stale.counters.rows_touched(),
        "replanned {} vs stale {} rows touched",
        fresh.counters.rows_touched(),
        stale.counters.rows_touched()
    );

    // The corrected plan's estimate survives its own execution: the loop
    // converges instead of thrashing.
    assert!(!service.observe(replanned.fingerprint, &model, &fresh));
    let counters = service.cache_counters();
    assert_eq!(counters.feedback_checks, 2);
    assert_eq!(counters.feedback_invalidations, 1);
}

#[test]
fn accurate_estimates_never_invalidate() {
    let model = PgLikeCost::new();
    // Same chain, no skew: uniform keys make the observation match the
    // estimate and the cached plan must survive.
    let mut q = LargeQuery::new(
        [2_000.0, 2_000.0, 2_000.0]
            .iter()
            .map(|&rows| RelInfo::new(rows, model.scan_cost(rows)))
            .collect(),
    );
    q.add_edge(0, 1, 1.0 / 100.0);
    q.add_edge(1, 2, 1.0 / 100.0);
    let data = materialize(
        &q,
        &GenConfig {
            seed: 13,
            ..Default::default()
        },
        &model,
    );
    let service = PlanServiceBuilder::new().build();
    let served = service.plan(&data.scaled, &model).unwrap();
    let report = Executor::new(&data.scaled, &data, ExecConfig::default())
        .execute(&served.planned.plan)
        .unwrap();
    assert!(report.root_deviation() < 2.0, "{}", report.root_deviation());
    assert!(!service.observe(served.fingerprint, &model, &report));
    let counters = service.cache_counters();
    assert_eq!(counters.feedback_checks, 1);
    assert_eq!(counters.feedback_invalidations, 0);
    assert!(
        service.plan(&data.scaled, &model).unwrap().cache_hit,
        "accurate plan stays cached"
    );
}

#[test]
fn custom_threshold_is_honoured() {
    let model = PgLikeCost::new();
    let (_, data) = skewed_chain(&model);
    // A deliberately huge threshold tolerates even the 88x miss.
    let tolerant = PlanServiceBuilder::new().feedback_threshold(1000.0).build();
    assert_eq!(tolerant.feedback_threshold(), 1000.0);
    let served = tolerant.plan(&data.scaled, &model).unwrap();
    let report = Executor::new(&data.scaled, &data, ExecConfig::default())
        .execute(&served.planned.plan)
        .unwrap();
    assert!(report.root_deviation() > 10.0);
    assert!(!tolerant.observe(served.fingerprint, &model, &report));
    assert!(tolerant.plan(&data.scaled, &model).unwrap().cache_hit);
    // Observing an unknown fingerprint is a no-op check, not a panic.
    let ghost = mpdp_core::Fingerprint { hi: 1, lo: 2 };
    assert!(!tolerant.observe(ghost, &model, &report));
}
