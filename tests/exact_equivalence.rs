//! Cross-crate integration: every exact optimizer — sequential, CPU-parallel
//! and simulated-GPU — must find the same optimal cost on the same query,
//! the algorithm-independent invariants of §2.1 must hold, and the strategy
//! registry must agree with the direct algorithm entry points.

use mpdp::prelude::*;
use mpdp_bench::runner::{run_exact, AlgoKind, EXACT_ROSTER};
use mpdp_cost::PgLikeCost;
use mpdp_workload::{gen, MusicBrainz};
use std::time::Duration;

fn queries() -> Vec<(String, QueryInfo)> {
    let m = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let mut out = Vec::new();
    for n in [5usize, 8] {
        out.push((
            format!("star{n}"),
            gen::star(n, 1, &m).to_query_info().unwrap(),
        ));
        out.push((
            format!("snowflake{n}"),
            gen::snowflake(n, 3, 2, &m).to_query_info().unwrap(),
        ));
        out.push((
            format!("chain{n}"),
            gen::chain(n, 3, &m).to_query_info().unwrap(),
        ));
        out.push((
            format!("clique{n}"),
            gen::clique(n, 4, &m).to_query_info().unwrap(),
        ));
        out.push((
            format!("mb{n}"),
            mb.random_walk_query(n, 5, true, &m)
                .to_query_info()
                .unwrap(),
        ));
    }
    for seed in 0..4u64 {
        out.push((
            format!("random{seed}"),
            gen::random_connected(9, 4, seed, &m)
                .to_query_info()
                .unwrap(),
        ));
    }
    out
}

#[test]
fn all_exact_algorithms_agree_on_optimal_cost() {
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let baseline = run_exact(AlgoKind::DpSubSeq, &q, &m, budget).unwrap();
        for kind in EXACT_ROSTER {
            let r = run_exact(kind, &q, &m, budget)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.name()));
            assert!(
                (r.cost - baseline.cost).abs() < 1e-6 * baseline.cost.max(1.0),
                "{name}/{}: {} vs {}",
                kind.name(),
                r.cost,
                baseline.cost
            );
        }
    }
}

#[test]
fn ccp_counter_is_algorithm_independent() {
    // §2.1: "CCP-Counter when profiled on any optimal DP algorithm such as
    // DPSIZE, DPSUB and DPCCP will produce the same value."
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let reference = run_exact(AlgoKind::DpSubSeq, &q, &m, budget).unwrap();
        for kind in [
            AlgoKind::PostgresDpSize,
            AlgoKind::DpCcp,
            AlgoKind::MpdpSeq,
            AlgoKind::Dpe24,
            AlgoKind::MpdpCpu24,
            AlgoKind::DpSubGpu,
            AlgoKind::DpSizeGpu,
            AlgoKind::MpdpGpu,
        ] {
            let r = run_exact(kind, &q, &m, budget).unwrap();
            assert_eq!(
                r.counters.ccp,
                reference.counters.ccp,
                "{name}/{}",
                kind.name()
            );
        }
    }
}

#[test]
fn mpdp_dominates_dpsub_in_evaluated_pairs() {
    // Lemma 7 across whole runs; equality exactly when all blocks are
    // cliques (Lemma 9).
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let sub = run_exact(AlgoKind::DpSubSeq, &q, &m, budget).unwrap();
        let mpdp = run_exact(AlgoKind::MpdpSeq, &q, &m, budget).unwrap();
        assert!(
            mpdp.counters.evaluated <= sub.counters.evaluated,
            "{name}: {} > {}",
            mpdp.counters.evaluated,
            sub.counters.evaluated
        );
        assert!(mpdp.counters.evaluated >= mpdp.counters.ccp, "{name}");
    }
}

#[test]
fn frontier_and_unranked_counters_equivalent_everywhere() {
    // Acceptance invariant of the frontier engine: on every test query, each
    // level-structured backend produces bit-identical costs and identical
    // ccp/evaluated counters in both enumeration modes; only `unranked`
    // (dead candidate visits) differs.
    let m = PgLikeCost::new();
    let budget = Some(Duration::from_secs(60));
    for (name, q) in queries() {
        for series in [
            "MPDP",
            "DPSub (1CPU)",
            "MPDP (GPU)",
            "DPSub (GPU)",
            "MPDP (24CPU)",
        ] {
            let f = mpdp::registry()
                .get(series)
                .unwrap()
                .plan_exact(&q, &m, budget)
                .unwrap_or_else(|e| panic!("{name}/{series}: {e}"));
            let u = mpdp::registry()
                .get(&format!("{series} [unranked]"))
                .unwrap_or_else(|| panic!("{series} [unranked] must resolve"))
                .plan_exact(&q, &m, budget)
                .unwrap_or_else(|e| panic!("{name}/{series} [unranked]: {e}"));
            assert_eq!(
                f.cost.to_bits(),
                u.cost.to_bits(),
                "{name}/{series}: cost must be bit-identical across modes"
            );
            assert_eq!(f.plan.render(), u.plan.render(), "{name}/{series}");
            let (fc, uc) = (f.counters.unwrap(), u.counters.unwrap());
            assert_eq!(fc.ccp, uc.ccp, "{name}/{series}");
            assert_eq!(fc.evaluated, uc.evaluated, "{name}/{series}");
            assert_eq!(fc.sets, uc.sets, "{name}/{series}");
            assert_eq!(fc.unranked, 0, "{name}/{series}: frontier never unranks");
            assert!(uc.unranked >= uc.sets, "{name}/{series}");
        }
    }
}

#[test]
fn unranked_registry_variants_roundtrip() {
    // Registered mode-suffixed names round-trip; the suffix also resolves on
    // the fly for any exact name, parameterized families included.
    for name in ["MPDP [unranked]", "DPSub (GPU) [unranked]"] {
        let s = mpdp::registry().get(name).unwrap();
        assert_eq!(s.name(), name);
    }
    for (query, canonical) in [
        ("mpdp[unranked]", "MPDP [unranked]"),
        ("Postgres (1CPU) [unranked]", "Postgres (1CPU) [unranked]"),
        ("MPDP (4CPU) [unranked]", "MPDP (4CPU) [unranked]"),
    ] {
        let s = mpdp::registry()
            .get(query)
            .unwrap_or_else(|| panic!("{query:?} did not resolve"));
        assert_eq!(s.name(), canonical);
    }
    // Heuristics have no enumeration mode, and DPCCP/DPE enumerate
    // edge-based (they never unrank): the suffix must not resolve rather
    // than return a misleadingly labeled no-op variant.
    assert!(mpdp::registry().get("GOO [unranked]").is_none());
    assert!(mpdp::registry().get("IDP2-MPDP (7) [unranked]").is_none());
    assert!(mpdp::registry().get("DPCCP (1CPU) [unranked]").is_none());
    assert!(mpdp::registry().get("DPE (24CPU) [unranked]").is_none());
    assert!(mpdp::registry().get("DPSize (GPU) [unranked]").is_none());
}

#[test]
fn every_registered_name_resolves_and_roundtrips() {
    let reg = mpdp::registry();
    let names = reg.names();
    assert!(names.len() >= 20, "registry unexpectedly small: {names:?}");
    for name in names {
        let s = reg
            .get(name)
            .unwrap_or_else(|| panic!("registered name {name:?} did not resolve"));
        assert_eq!(s.name(), name, "canonical name must round-trip");
    }
    // Lookup is whitespace/case-insensitive and alias-aware.
    for (query, canonical) in [
        ("mpdp", "MPDP"),
        ("MPDP(GPU)", "MPDP (GPU)"),
        ("Postgres(1CPU)", "Postgres (1CPU)"),
        ("DPSize", "Postgres (1CPU)"),
        ("geqo", "GE-QO"),
    ] {
        assert_eq!(mpdp::registry().get(query).unwrap().name(), canonical);
    }
    // Parameterized families resolve without pre-registration and
    // round-trip their formatted label.
    for name in [
        "IDP2-MPDP (7)",
        "UnionDP-MPDP (20)",
        "DPE (8CPU)",
        "MPDP (4CPU)",
    ] {
        let s = mpdp::registry()
            .get(name)
            .unwrap_or_else(|| panic!("parameterized {name:?} did not resolve"));
        assert_eq!(s.name(), name);
    }
    assert!(mpdp::registry().get("NoSuchOptimizer").is_none());
}

#[test]
fn registry_exact_strategies_agree_on_ten_rel_clique() {
    let m = PgLikeCost::new();
    let q = gen::clique(10, 2, &m);
    let budget = Some(Duration::from_secs(120));
    let reference = mpdp::registry()
        .get("DPSub (1CPU)")
        .unwrap()
        .plan(&q, &m, budget)
        .unwrap();
    for name in mpdp::registry().names() {
        let s = mpdp::registry().get(name).unwrap();
        // MPDP-Tree only accepts tree join graphs; it gets its own check on
        // a star below.
        if !s.is_exact() || name == "MPDP-Tree" {
            continue;
        }
        let r = s
            .plan(&q, &m, budget)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            (r.cost - reference.cost).abs() < 1e-6 * reference.cost.max(1.0),
            "{name}: {} vs {}",
            r.cost,
            reference.cost
        );
        assert_eq!(r.plan.num_rels(), 10, "{name}");
        assert_eq!(r.strategy, s.name(), "{name}");
    }

    // MPDP-Tree on a 10-relation star (a tree) must match general MPDP.
    let star = gen::star(10, 2, &m);
    let tree = mpdp::registry()
        .get("MPDP-Tree")
        .unwrap()
        .plan(&star, &m, budget)
        .unwrap();
    let general = mpdp::registry()
        .get("MPDP")
        .unwrap()
        .plan(&star, &m, budget)
        .unwrap();
    assert!((tree.cost - general.cost).abs() < 1e-6 * general.cost.max(1.0));
}

#[test]
fn registry_mpdp_matches_direct_mpdp_run() {
    // The acceptance check for the API redesign: selecting "MPDP" by name
    // must be byte-for-byte the same optimizer as calling Mpdp::run.
    let m = PgLikeCost::new();
    let strategy = mpdp::registry().get("MPDP").unwrap();
    for (name, q) in queries() {
        let direct = Mpdp::run(&OptContext::new(&q, &m)).unwrap();
        let via_registry = strategy.plan_exact(&q, &m, None).unwrap();
        assert!(
            (via_registry.cost - direct.cost).abs() < 1e-9 * direct.cost.max(1.0),
            "{name}: {} vs {}",
            via_registry.cost,
            direct.cost
        );
        assert_eq!(
            via_registry.counters.unwrap().evaluated,
            direct.counters.evaluated,
            "{name}"
        );
        assert_eq!(via_registry.plan.render(), direct.plan.render(), "{name}");
    }
}

#[test]
fn plans_are_structurally_valid_everywhere() {
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let ctx = OptContext::new(&q, &m);
        for result in [
            Mpdp::run(&ctx).unwrap(),
            DpCcp::run(&ctx).unwrap(),
            DpSize::run(&ctx).unwrap(),
        ] {
            assert!(result.plan.validate(&q.graph).is_none(), "{name}");
            assert_eq!(result.plan.num_rels(), q.query_size(), "{name}");
            assert_eq!(result.plan.num_joins(), q.query_size() - 1, "{name}");
        }
        let _ = budget;
    }
}
