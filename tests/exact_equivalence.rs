//! Cross-crate integration: every exact optimizer — sequential, CPU-parallel
//! and simulated-GPU — must find the same optimal cost on the same query,
//! and the algorithm-independent invariants of §2.1 must hold.

use mpdp::prelude::*;
use mpdp_bench::runner::{run_exact, AlgoKind, EXACT_ROSTER};
use mpdp_cost::PgLikeCost;
use mpdp_workload::{gen, MusicBrainz};
use std::time::Duration;

fn queries() -> Vec<(String, QueryInfo)> {
    let m = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let mut out = Vec::new();
    for n in [5usize, 8] {
        out.push((format!("star{n}"), gen::star(n, 1, &m).to_query_info().unwrap()));
        out.push((
            format!("snowflake{n}"),
            gen::snowflake(n, 3, 2, &m).to_query_info().unwrap(),
        ));
        out.push((format!("chain{n}"), gen::chain(n, 3, &m).to_query_info().unwrap()));
        out.push((format!("clique{n}"), gen::clique(n, 4, &m).to_query_info().unwrap()));
        out.push((
            format!("mb{n}"),
            mb.random_walk_query(n, 5, true, &m).to_query_info().unwrap(),
        ));
    }
    for seed in 0..4u64 {
        out.push((
            format!("random{seed}"),
            gen::random_connected(9, 4, seed, &m).to_query_info().unwrap(),
        ));
    }
    out
}

#[test]
fn all_exact_algorithms_agree_on_optimal_cost() {
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let baseline = run_exact(AlgoKind::DpSubSeq, &q, &m, budget).unwrap();
        for kind in EXACT_ROSTER {
            let r = run_exact(kind, &q, &m, budget)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", kind.name()));
            assert!(
                (r.cost - baseline.cost).abs() < 1e-6 * baseline.cost.max(1.0),
                "{name}/{}: {} vs {}",
                kind.name(),
                r.cost,
                baseline.cost
            );
        }
    }
}

#[test]
fn ccp_counter_is_algorithm_independent() {
    // §2.1: "CCP-Counter when profiled on any optimal DP algorithm such as
    // DPSIZE, DPSUB and DPCCP will produce the same value."
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let reference = run_exact(AlgoKind::DpSubSeq, &q, &m, budget).unwrap();
        for kind in [
            AlgoKind::PostgresDpSize,
            AlgoKind::DpCcp,
            AlgoKind::MpdpSeq,
            AlgoKind::Dpe24,
            AlgoKind::MpdpCpu24,
            AlgoKind::DpSubGpu,
            AlgoKind::DpSizeGpu,
            AlgoKind::MpdpGpu,
        ] {
            let r = run_exact(kind, &q, &m, budget).unwrap();
            assert_eq!(
                r.counters.ccp,
                reference.counters.ccp,
                "{name}/{}",
                kind.name()
            );
        }
    }
}

#[test]
fn mpdp_dominates_dpsub_in_evaluated_pairs() {
    // Lemma 7 across whole runs; equality exactly when all blocks are
    // cliques (Lemma 9).
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let sub = run_exact(AlgoKind::DpSubSeq, &q, &m, budget).unwrap();
        let mpdp = run_exact(AlgoKind::MpdpSeq, &q, &m, budget).unwrap();
        assert!(
            mpdp.counters.evaluated <= sub.counters.evaluated,
            "{name}: {} > {}",
            mpdp.counters.evaluated,
            sub.counters.evaluated
        );
        assert!(mpdp.counters.evaluated >= mpdp.counters.ccp, "{name}");
    }
}

#[test]
fn plans_are_structurally_valid_everywhere() {
    let m = PgLikeCost::new();
    let budget = Duration::from_secs(60);
    for (name, q) in queries() {
        let ctx = OptContext::new(&q, &m);
        for result in [
            Mpdp::run(&ctx).unwrap(),
            DpCcp::run(&ctx).unwrap(),
            DpSize::run(&ctx).unwrap(),
        ] {
            assert!(result.plan.validate(&q.graph).is_none(), "{name}");
            assert_eq!(result.plan.num_rels(), q.query_size(), "{name}");
            assert_eq!(result.plan.num_joins(), q.query_size() - 1, "{name}");
        }
        let _ = budget;
    }
}
