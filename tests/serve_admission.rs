//! Admission-control integration tests: driving a small-queue front-end
//! past capacity must shed explicitly (counted, never silent), every
//! accepted request must still complete with a valid plan, and nothing —
//! submitters, dispatchers, shutdown — may hang.

use mpdp_cost::PgLikeCost;
use mpdp_serve::{Rejected, ServeConfig, ServeFront, TenantConfig};
use mpdp_workload::gen;
use std::sync::Arc;

#[test]
fn overload_sheds_explicitly_and_accepted_requests_complete() {
    const FLOOD: usize = 400;

    let m = PgLikeCost::new();
    // A deliberately tiny queue with one dispatcher, flooded with distinct
    // cold queries (no template repeats, so nothing coalesces away): the
    // queue must fill and subsequent submissions must shed.
    let front = ServeFront::new(
        ServeConfig {
            queue_depth: 8,
            dispatchers: 1,
            executor_threads: 2,
            tenants: vec![TenantConfig::named("flood")],
            ..Default::default()
        },
        Arc::new(PgLikeCost::new()),
    );

    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for i in 0..FLOOD {
        // 10–14 relations: slow enough to plan cold that one dispatcher
        // cannot drain an 8-deep queue as fast as this loop fills it.
        let q = gen::random_connected(10 + i % 5, 2, 9_000 + i as u64, &m);
        match front.submit(0, q.clone()) {
            Ok(t) => tickets.push((q, t)),
            Err(Rejected::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(
        shed > 0,
        "an 8-deep queue must overflow under a {FLOOD}-burst"
    );
    assert!(!tickets.is_empty(), "some submissions must be admitted");

    // Every accepted request completes — admission control sheds at the
    // door; it never abandons work it let in.
    for (q, ticket) in tickets {
        let done = ticket.wait();
        let plan = done.result.expect("accepted requests complete");
        let qi = q.to_query_info().unwrap();
        assert!(plan.planned.plan.validate(&qi.graph).is_none());
    }

    let s = front.serve_counters();
    assert_eq!(s.shed_queue_full, shed, "every shed is counted: {s:?}");
    assert_eq!(s.accepted, FLOOD as u64 - shed, "{s:?}");
    assert_eq!(s.accepted + s.sheds(), FLOOD as u64, "{s:?}");
    assert_eq!(s.completed, s.accepted, "{s:?}");
    assert_eq!(s.failed, 0, "{s:?}");
    // All work drained: the gauges are back to zero.
    assert_eq!((s.queue_depth, s.in_flight), (0, 0), "{s:?}");
    assert!(s.queue_depth_peak <= 8, "peak bounded by capacity: {s:?}");
}

#[test]
fn tenant_quota_sheds_independently_of_queue() {
    let m = PgLikeCost::new();
    let mut strict = TenantConfig::named("strict");
    strict.max_in_flight = 2;
    let front = ServeFront::new(
        ServeConfig {
            queue_depth: 64,
            dispatchers: 1,
            executor_threads: 2,
            tenants: vec![strict, TenantConfig::named("lax")],
            ..Default::default()
        },
        Arc::new(PgLikeCost::new()),
    );

    let mut quota_sheds = 0u64;
    let mut tickets = Vec::new();
    for i in 0..16 {
        let q = gen::random_connected(11, 2, 77_000 + i, &m);
        // The strict tenant trips its own quota long before the queue
        // fills; the lax tenant riding the same queue is never shed.
        match front.submit(0, q) {
            Ok(t) => tickets.push(t),
            Err(Rejected::QuotaExhausted) => quota_sheds += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
        let lax = gen::random_connected(9, 1, 88_000 + i, &m);
        tickets.push(front.submit(1, lax).expect("lax tenant under quota"));
    }
    assert!(
        quota_sheds > 0,
        "max_in_flight=2 must shed under a 16-burst"
    );

    for t in tickets {
        t.wait().result.expect("accepted requests complete");
    }
    let s = front.serve_counters();
    assert_eq!(s.shed_quota, quota_sheds, "{s:?}");
    assert_eq!(s.shed_queue_full, 0, "{s:?}");
    assert_eq!(s.completed, s.accepted, "{s:?}");
}

#[test]
fn aggregate_cache_is_the_exact_fieldwise_sum() {
    use mpdp_cluster::ClusterConfig;
    use mpdp_core::counters::CacheSnapshot;

    let m = PgLikeCost::new();
    // One plain tenant, one cluster-backed tenant: the front-door aggregate
    // must be the exact field-wise [`CacheSnapshot::merge`] fold across
    // both backends — counters are sums, not samples.
    let clustered = TenantConfig::named("sharded").clustered(ClusterConfig {
        shards: 3,
        ..ClusterConfig::default()
    });
    let front = ServeFront::new(
        ServeConfig {
            queue_depth: 64,
            dispatchers: 2,
            executor_threads: 2,
            tenants: vec![TenantConfig::named("plain"), clustered],
            ..Default::default()
        },
        Arc::new(PgLikeCost::new()),
    );

    let mut tickets = Vec::new();
    for i in 0..24u64 {
        let q = gen::random_connected(6 + (i % 3) as usize, 1, 400 + i, &m);
        let tenant = (i % 2) as usize;
        // Submit each query twice so both backends record hits (or
        // coalesced joins) as well as misses.
        tickets.push(front.submit(tenant, q.clone()).expect("under quota"));
        tickets.push(front.submit(tenant, q).expect("under quota"));
    }
    for t in tickets {
        t.wait().result.expect("accepted requests complete");
    }

    let plain = front.cache_counters(0);
    let sharded = front.cache_counters(1);
    let mut manual = plain;
    manual.merge(&sharded);
    assert_eq!(
        front.aggregate_cache(),
        manual,
        "front-door aggregate must equal the field-wise tenant sum"
    );
    // Commutativity: fold order cannot change the totals.
    let mut swapped = sharded;
    swapped.merge(&plain);
    assert_eq!(manual, swapped);

    // The cluster tenant's own counters are in turn the exact fold of its
    // per-shard snapshots (associativity one level down).
    let cluster = front.cluster(1).expect("tenant 1 is cluster-backed");
    let mut fold = CacheSnapshot::default();
    for (_, snap) in cluster.shard_snapshots() {
        fold.merge(&snap);
    }
    assert_eq!(fold, sharded, "cluster aggregate must equal its shard fold");

    // Both backends actually did work: every request is exactly one hit,
    // miss or coalesced join, across tenants and shards.
    assert_eq!(manual.hits + manual.misses + manual.coalesced, 48);
    assert!(manual.hits > 0, "repeat submissions must hit: {manual:?}");
    assert!(manual.misses > 0, "{manual:?}");
}

#[test]
fn shutdown_refuses_new_work_without_hanging() {
    let m = PgLikeCost::new();
    let mut front = ServeFront::new(ServeConfig::default(), Arc::new(PgLikeCost::new()));
    let q = gen::random_connected(8, 1, 5, &m);
    let ticket = front.submit(0, q).expect("open front accepts");
    assert!(ticket.wait().result.is_ok());

    front.shutdown();
    let late = gen::random_connected(8, 1, 6, &m);
    assert_eq!(front.submit(0, late).err(), Some(Rejected::ShuttingDown));
}
