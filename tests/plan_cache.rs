//! Integration tests for the serving layer: fingerprint canonicalization,
//! the sharded LRU plan cache, and `PlanService` under concurrency.

use mpdp::cache::{CacheConfig, PlanCache};
use mpdp::service::{PlanRequest, PlanService, PlanServiceBuilder};
use mpdp_core::fingerprint::canonicalize;
use mpdp_core::LargeQuery;
use mpdp_cost::PgLikeCost;
use mpdp_workload::gen;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random permutation of `0..n`, deterministic in `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

/// A random connected query of 4–14 relations, deterministic in `seed`.
fn random_query(seed: u64) -> LargeQuery {
    let m = PgLikeCost::new();
    let n = 4 + (seed % 11) as usize;
    let extra = (seed % 5) as usize;
    gen::random_connected(n, extra, seed, &m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical fingerprints are equal exactly when the queries are
    /// relabelings of one another — equal across every random permutation
    /// of one query, different across queries from different seeds — and an
    /// equal fingerprint really does mean the cached plan remaps onto the
    /// relabeled query as a valid, cost-identical plan.
    #[test]
    fn fingerprints_collide_iff_plans_remap(seed in 0u64..10_000) {
        let m = PgLikeCost::new();
        let q = random_query(seed);
        let n = q.num_rels();
        let fp = canonicalize(&q).fingerprint;

        // Equal for every relabeling...
        let relabeled = q.relabel(&permutation(n, seed ^ 0xabcd));
        prop_assert_eq!(canonicalize(&relabeled).fingerprint, fp);

        // ...different for a different query (same size family, other seed).
        let other = random_query(seed + 17);
        prop_assert_ne!(canonicalize(&other).fingerprint, fp);

        // Remap equivalence: plan q cold, then serve the relabeling from
        // cache; the remapped plan must be valid for the relabeled query
        // and cost-identical (plan quality survives the round trip).
        let svc = PlanService::new();
        let cold = svc.plan(&q, &m).unwrap();
        prop_assert!(!cold.cache_hit);
        let hit = svc.plan(&relabeled, &m).unwrap();
        prop_assert!(hit.cache_hit, "equal fingerprints must hit");
        let qi = relabeled.to_query_info().unwrap();
        prop_assert!(hit.planned.plan.validate(&qi.graph).is_none());
        let tol = 1e-9 * cold.planned.cost.max(1.0);
        prop_assert!((hit.planned.cost - cold.planned.cost).abs() <= tol);
    }
}

#[test]
fn lru_eviction_order_across_the_facade() {
    // Single shard, capacity 3: inserting a 4th evicts the least recently
    // *used* (not least recently inserted) entry.
    let m = PgLikeCost::new();
    let svc = PlanServiceBuilder::new()
        .cache_capacity(3)
        .cache_shards(1)
        .build();
    let queries: Vec<LargeQuery> = (0..4).map(|i| gen::chain(6, 100 + i, &m)).collect();
    for q in &queries[..3] {
        assert!(!svc.plan(q, &m).unwrap().cache_hit);
    }
    // Touch query 0 so query 1 becomes the LRU victim.
    assert!(svc.plan(&queries[0], &m).unwrap().cache_hit);
    assert!(!svc.plan(&queries[3], &m).unwrap().cache_hit);
    assert_eq!(svc.cache_counters().evictions, 1);
    // 0, 2, 3 still cached; 1 was evicted.
    assert!(svc.plan(&queries[0], &m).unwrap().cache_hit);
    assert!(svc.plan(&queries[2], &m).unwrap().cache_hit);
    assert!(svc.plan(&queries[3], &m).unwrap().cache_hit);
    assert!(!svc.plan(&queries[1], &m).unwrap().cache_hit);
}

#[test]
fn sharded_cache_respects_total_capacity() {
    let cache = PlanCache::new(CacheConfig {
        capacity: 8,
        shards: 4,
        ttl: None,
    });
    assert!(cache.is_empty());
    // The cache only ever holds ceil(capacity/shards) entries per shard.
    let m = PgLikeCost::new();
    let svc = PlanServiceBuilder::new()
        .cache_capacity(8)
        .cache_shards(4)
        .build();
    for i in 0..40 {
        svc.plan(&gen::chain(5, i, &m), &m).unwrap();
    }
    assert!(
        svc.cached_plans() <= 8,
        "40 inserts, capacity 8, got {}",
        svc.cached_plans()
    );
    assert!(svc.cache_counters().evictions >= 32);
}

#[test]
fn concurrent_hammer_counts_stay_consistent() {
    // 8 threads × 200 requests over 10 shapes: every request is exactly one
    // hit or one miss, and every plan is valid for its (relabeled) query.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    const SHAPES: usize = 10;

    let m = PgLikeCost::new();
    let svc = Arc::new(
        PlanServiceBuilder::new()
            .cache_capacity(256)
            .cache_shards(8)
            .build(),
    );
    let shapes: Arc<Vec<LargeQuery>> = Arc::new(
        (0..SHAPES as u64)
            .map(|i| gen::star(8 + (i % 4) as usize, 900 + i, &m))
            .collect(),
    );

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = Arc::clone(&svc);
            let shapes = Arc::clone(&shapes);
            scope.spawn(move || {
                let m = PgLikeCost::new();
                let mut rng = StdRng::seed_from_u64(t as u64);
                for i in 0..PER_THREAD {
                    let shape = &shapes[(t + i) % SHAPES];
                    let q = shape.relabel(&permutation(shape.num_rels(), rng.gen()));
                    let served = svc.plan(&q, &m).expect("plan");
                    let qi = q.to_query_info().unwrap();
                    assert!(
                        served.planned.plan.validate(&qi.graph).is_none(),
                        "thread {t} request {i} got an invalid plan"
                    );
                }
            });
        }
    });

    let s = svc.cache_counters();
    assert_eq!(
        s.hits + s.misses,
        (THREADS * PER_THREAD) as u64,
        "hit/miss accounting lost requests: {s:?}"
    );
    // Every miss leads to exactly one insertion (capacity 256 > 10 shapes,
    // so nothing is evicted and re-planned).
    assert_eq!(s.misses, s.insertions, "{s:?}");
    assert_eq!(s.evictions, 0, "{s:?}");
    // At least one thread must have missed per shape; everything else hits.
    assert!(s.misses >= SHAPES as u64, "{s:?}");
    assert!(
        s.hit_rate() > 0.9,
        "10 shapes over 1600 requests should mostly hit: {s:?}"
    );
}

#[test]
fn per_request_override_and_bypass_coexist_with_concurrency() {
    // A bypassed request must not pollute the cache; an override must
    // resolve through the registry even while other threads hit the cache.
    let m = PgLikeCost::new();
    let svc = Arc::new(PlanService::new());
    let q = gen::cycle(10, 77, &m);
    svc.plan(&q, &m).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let svc = Arc::clone(&svc);
            let q = q.clone();
            scope.spawn(move || {
                let m = PgLikeCost::new();
                let bypass = PlanRequest {
                    bypass_cache: true,
                    strategy: Some("DPSub (1CPU)".into()),
                    ..Default::default()
                };
                for _ in 0..20 {
                    let cold = svc.plan_with(&q, &m, &bypass).unwrap();
                    assert!(!cold.cache_hit);
                    assert_eq!(cold.planned.strategy, "DPSub (1CPU)");
                    let hit = svc.plan(&q, &m).unwrap();
                    assert!(hit.cache_hit);
                }
            });
        }
    });
    // One cold plan populated the cache; bypasses added nothing.
    assert_eq!(svc.cache_counters().insertions, 1);
}
