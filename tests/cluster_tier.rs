//! Sharded planning tier: properties of the consistent-hash ring
//! (balance, minimal disruption, node-loss routability) and of the
//! cluster's feedback gossip (an invalidation recorded on one shard
//! evicts every replica within the documented staleness window — and
//! not instantly, which would mean the bound is vacuous).

use mpdp::exec::{ExecReport, ObservedJoin};
use mpdp_cluster::{ClusterConfig, PlanCluster};
use mpdp_core::ring::HashRing;
use mpdp_core::RelSet;
use mpdp_cost::PgLikeCost;
use mpdp_workload::gen;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const VNODES: usize = 128;
const KEYS: usize = 8_000;

/// Well-spread probe keys: the ring hashes them again internally, so a
/// simple counter-derived sequence is as good as random fingerprints.
fn probe_keys() -> impl Iterator<Item = u128> {
    (0..KEYS as u128).map(|i| i * 0x9e37_79b9_7f4a_7c15 + 0x0123_4567_89ab_cdef)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Load balance: with 128 vnodes per shard, no shard's key share may
    /// stray far from 1/N (max/mean bounded; no shard starves).
    #[test]
    fn ring_balance_is_bounded(params in (any::<u64>(), 2u32..=12)) {
        let (seed, shards) = params;
        let ids: Vec<u32> = (0..shards).collect();
        let ring = HashRing::new(seed, VNODES, &ids);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for key in probe_keys() {
            *counts.entry(ring.shard_of(key)).or_insert(0) += 1;
        }
        let mean = KEYS as f64 / shards as f64;
        let max = *counts.values().max().unwrap() as f64;
        let min = counts.values().copied().min().unwrap_or(0) as f64;
        prop_assert!(
            max / mean <= 1.8,
            "seed {seed}: busiest of {shards} shards owns {max} keys (mean {mean:.0})"
        );
        prop_assert!(
            min / mean >= 0.3,
            "seed {seed}: emptiest of {shards} shards owns {min} keys (mean {mean:.0})"
        );
    }

    /// Minimal disruption: adding a shard moves roughly 1/(N+1) of the
    /// keys, and every mover lands on the new shard — survivors' caches
    /// are never invalidated by a rehash.
    #[test]
    fn adding_a_shard_moves_only_its_fair_share(params in (any::<u64>(), 1u32..=10)) {
        let (seed, shards) = params;
        let ids: Vec<u32> = (0..shards).collect();
        let ring = HashRing::new(seed, VNODES, &ids);
        let grown = ring.with_shard(shards);
        let mut moved = 0usize;
        for key in probe_keys() {
            let before = ring.shard_of(key);
            let after = grown.shard_of(key);
            if before != after {
                prop_assert_eq!(after, shards, "a moved key must land on the new shard");
                moved += 1;
            }
        }
        let fair = KEYS as f64 / (shards + 1) as f64;
        let frac = moved as f64;
        prop_assert!(
            frac <= 1.8 * fair,
            "seed {seed}: {moved} of {KEYS} keys moved at {shards}→{} shards (fair {fair:.0})",
            shards + 1
        );
        prop_assert!(
            frac >= 0.3 * fair,
            "seed {seed}: only {moved} keys moved — the new shard is starved (fair {fair:.0})"
        );
    }

    /// Node loss: removing a shard reassigns exactly its keys (survivors'
    /// assignments are untouched) and every key stays routable to a live
    /// shard, with a full, distinct, live replica set.
    #[test]
    fn removing_a_shard_keeps_every_key_routable(
        params in (any::<u64>(), 2u32..=10, any::<u32>())
    ) {
        let (seed, shards, victim_pick) = params;
        let ids: Vec<u32> = (0..shards).collect();
        let ring = HashRing::new(seed, VNODES, &ids);
        let victim = victim_pick % shards;
        let shrunk = ring.without_shard(victim);
        prop_assert_eq!(shrunk.len(), (shards - 1) as usize);
        let replicas = 3.min(shrunk.len());
        for key in probe_keys().take(2_000) {
            let before = ring.shard_of(key);
            let after = shrunk.shard_of(key);
            prop_assert_ne!(after, victim, "routed to the removed shard");
            if before != victim {
                prop_assert_eq!(
                    before, after,
                    "key not owned by the victim changed owner on removal"
                );
            }
            let set = shrunk.shards_of(key, replicas);
            prop_assert_eq!(set.len(), replicas);
            prop_assert_eq!(set[0], after, "replica set is led by the owner");
            let mut distinct = set.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), set.len(), "replica set has duplicates");
            for s in &set {
                prop_assert!(*s != victim && *s < shards, "replica {s} is not live");
            }
        }
    }
}

/// An [`ExecReport`] carrying only a root-cardinality observation (plus one
/// observed join so selectivity overrides gossip too): what a serving layer
/// would feed back after running the plan and seeing `root_rows`.
fn feedback_report(root_rows: u64, est_root_rows: f64) -> ExecReport {
    ExecReport {
        stats: Vec::new(),
        joins: vec![ObservedJoin {
            left: RelSet::singleton(0),
            right: RelSet::singleton(1),
            edges: vec![0],
            inputs: (100, 100),
            output: 500,
            observed_sel: 0.05,
            est_rows: est_root_rows,
        }],
        root_rows,
        est_root_rows,
        wall: Duration::ZERO,
        counters: Default::default(),
        result_bytes: 0,
        worker_busy: Vec::new(),
    }
}

/// The staleness window, end to end: a hot template is replicated onto R
/// shards; a 20× cardinality miss observed on ONE shard must evict the
/// replica on every OTHER shard within `staleness_bound()` gossip rounds —
/// and must NOT have evicted them before any round ran (gossip is
/// asynchronous; the bound is the contract, not instant coherence).
#[test]
fn invalidation_on_one_shard_evicts_all_replicas_within_the_bound() {
    let model = PgLikeCost::new();
    let cluster = PlanCluster::new(ClusterConfig {
        shards: 5,
        // Hot from the first request: every arrival round-robins over the
        // replica set, so a handful of plans warm all three replicas.
        hot_threshold: 0,
        replicas: 3,
        ..ClusterConfig::default()
    });
    let q = gen::random_connected(8, 2, 42, &model);

    let mut fp = None;
    let mut est = 0.0;
    for _ in 0..9 {
        let served = cluster.plan(&q, &model).expect("plan");
        fp = Some(served.served.fingerprint);
        est = served.served.planned.rows;
    }
    let fp = fp.unwrap();
    assert_eq!(cluster.replica_set(fp).len(), 3);
    assert_eq!(
        cluster.cached_replicas(fp, &model),
        3,
        "nine round-robined arrivals must warm all three replicas"
    );

    // Observe a 20× miss on one caching shard (a replica, not necessarily
    // the owner — feedback arrives wherever the plan executed).
    let observed = (est.max(1.0) * 20.0) as u64;
    let report = feedback_report(observed, est);
    let shard_a = cluster.replica_set(fp)[1];
    assert!(
        cluster.observe_on(shard_a, fp, &model, &report),
        "the observing shard evicts its own replica immediately"
    );

    // Not instant: the other replicas still serve the stale plan until
    // anti-entropy runs.
    assert_eq!(
        cluster.cached_replicas(fp, &model),
        2,
        "gossip has not run yet; remote replicas must still be cached"
    );

    let bound = cluster.staleness_bound();
    assert_eq!(bound, 2, "floor(5/2)");
    let mut rounds = 0;
    while cluster.cached_replicas(fp, &model) > 0 {
        assert!(
            rounds < bound,
            "invalidation still not everywhere after {rounds} rounds (bound {bound})"
        );
        cluster.run_gossip_round();
        rounds += 1;
    }
    assert!(rounds <= bound, "{rounds} rounds used, bound {bound}");

    // The selectivity overrides ride the same flood: after the bound's
    // worth of rounds every shard knows the corrected edge selectivity.
    for _ in rounds..bound {
        cluster.run_gossip_round();
    }
    for id in cluster.shard_ids() {
        let overrides = cluster
            .overrides_for(id, fp)
            .unwrap_or_else(|| panic!("shard {id} never learned the overrides"));
        assert_eq!(overrides, vec![(0, 0.05)]);
    }

    // Idempotence: replaying the same logs delivers nothing new.
    assert_eq!(cluster.run_gossip_round(), 0, "seen-set must dedup");
}

/// Cold traffic stays put: below the hot threshold every request for a
/// fingerprint is served by its primary owner, and only that shard's cache
/// fills.
#[test]
fn cold_templates_are_served_by_their_owner_only() {
    let model = PgLikeCost::new();
    let cluster = PlanCluster::new(ClusterConfig {
        shards: 4,
        hot_threshold: 1_000_000,
        replicas: 2,
        ..ClusterConfig::default()
    });
    let q = gen::random_connected(7, 1, 7, &model);
    let mut shards_seen = std::collections::HashSet::new();
    let mut fp = None;
    for _ in 0..12 {
        let served = cluster.plan(&q, &model).expect("plan");
        shards_seen.insert(served.shard);
        fp = Some(served.served.fingerprint);
    }
    let fp = fp.unwrap();
    assert_eq!(shards_seen.len(), 1, "cold routing is deterministic");
    assert!(shards_seen.contains(&cluster.owner(fp)));
    assert_eq!(cluster.cached_replicas(fp, &model), 1);
    assert_eq!(cluster.hot_count(fp), 12);
}
