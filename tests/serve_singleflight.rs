//! Single-flight integration tests: N concurrent requesters racing
//! relabeled isomorphic queries onto a cold cache must produce exactly one
//! cold plan, with every requester receiving a valid plan in its *own*
//! relation labeling and the hit/miss/coalesced accounting staying exact.

use mpdp::service::{PlanRequest, PlanServiceBuilder, ServedVia};
use mpdp_cost::PgLikeCost;
use mpdp_serve::{ServeConfig, ServeFront, TenantConfig};
use mpdp_workload::gen;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::{Arc, Barrier};

/// A random permutation of `0..n`, deterministic in `seed`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

#[test]
fn racing_relabeled_queries_plan_exactly_once() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;

    let m = PgLikeCost::new();
    let svc = Arc::new(PlanServiceBuilder::new().build());
    // One 12-relation template; every request is a different relabeling of
    // it, so they all canonicalize to one fingerprint but none are
    // byte-identical.
    let template = gen::star(12, 4242, &m);
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = Arc::clone(&svc);
            let template = template.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let m = PgLikeCost::new();
                let req = PlanRequest::default();
                // Line all threads up so the cold window really races.
                barrier.wait();
                for i in 0..PER_THREAD {
                    let q =
                        template.relabel(&permutation(template.num_rels(), (t * 31 + i) as u64));
                    let served = svc.plan_coalesced(&q, &m, &req).expect("plans");
                    // The plan must be valid under THIS requester's labels —
                    // a coalesced result is remapped from the leader's
                    // canonical plan onto this request's permutation.
                    let qi = q.to_query_info().unwrap();
                    assert!(
                        served.planned.plan.validate(&qi.graph).is_none(),
                        "thread {t} request {i} got a plan for the wrong labeling"
                    );
                    assert_eq!(served.planned.plan.num_rels(), 12);
                    assert_eq!(served.cache_hit, served.via == ServedVia::Hit);
                }
            });
        }
    });

    let s = svc.cache_counters();
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(
        s.hits + s.misses + s.coalesced,
        total,
        "every request is exactly one of hit/miss/coalesced: {s:?}"
    );
    // The protocol guarantee, not a timing accident: the flight entry is
    // removed only after the cache insert, so a second cold plan for this
    // fingerprint is impossible.
    assert_eq!(s.misses, 1, "single-flight must plan exactly once: {s:?}");
    assert_eq!(s.insertions, 1, "{s:?}");
    assert_eq!(s.hits + s.coalesced, total - 1, "{s:?}");
}

#[test]
fn async_front_coalesces_relabeled_floods() {
    const REQUESTS: usize = 32;

    let m = PgLikeCost::new();
    let front = ServeFront::new(
        ServeConfig {
            dispatchers: 4,
            executor_threads: 4,
            tenants: vec![TenantConfig::named("flood")],
            ..Default::default()
        },
        Arc::new(PgLikeCost::new()),
    );
    let template = gen::chain(10, 99, &m);

    // Submit a burst of relabelings before waiting on anything: the
    // dispatchers race them through `plan_async`, where all but the flight
    // leader coalesce.
    let submissions: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let q = template.relabel(&permutation(template.num_rels(), 7000 + i as u64));
            (q.clone(), front.submit(0, q).expect("under capacity"))
        })
        .collect();

    let mut via_counts = [0usize; 4];
    for (q, ticket) in submissions {
        let done = ticket.wait();
        let plan = done.result.expect("accepted requests complete");
        let qi = q.to_query_info().unwrap();
        assert!(
            plan.planned.plan.validate(&qi.graph).is_none(),
            "plan not valid under the submitter's labeling"
        );
        via_counts[match plan.via {
            ServedVia::Hit => 0,
            ServedVia::Cold => 1,
            ServedVia::Coalesced => 2,
            ServedVia::Degraded => 3,
        }] += 1;
    }
    assert_eq!(via_counts.iter().sum::<usize>(), REQUESTS);
    assert_eq!(via_counts[1], 1, "exactly one cold plan: {via_counts:?}");

    let c = front.cache_counters(0);
    assert_eq!(c.hits + c.misses + c.coalesced, REQUESTS as u64, "{c:?}");
    assert_eq!(c.misses, 1, "{c:?}");
    let s = front.serve_counters();
    assert_eq!((s.accepted, s.completed, s.failed), (32, 32, 0));
}
