//! Property: probe-phase parallelism is observationally invisible.
//!
//! The executor's contract (DESIGN.md §10) is determinism by construction —
//! each worker owns a contiguous morsel range and a private output buffer,
//! and buffers merge in worker order (= morsel order). So execution at any
//! worker count must produce **byte-identical output columns** and
//! identical per-join observed selectivities to the sequential path, for
//! arbitrary connected catalogs — including deliberately skewed edges,
//! where morsels differ wildly in match counts and a scheduling-dependent
//! merge would scramble row order first.

// Explicit imports (not the facade prelude glob): both `mpdp::prelude` and
// `proptest::prelude` export a `Strategy` trait, and the glob-glob collision
// would make either unusable.
use mpdp::exec::{materialize, ExecConfig, Executor, GenConfig, SkewedEdge};
use mpdp_cost::PgLikeCost;
use mpdp_heuristics::{Goo, LargeOptimizer};
use mpdp_workload::gen;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_execution_is_bit_identical(
        case in (2usize..=6, 0usize..=3, any::<u64>(), any::<bool>())
    ) {
        let (n, extra, seed, skewed) = case;
        let m = PgLikeCost::new();
        let q = gen::random_connected(n, extra, seed, &m);
        // Optionally skew the first edge hard: 40% of both sides' rows
        // collapse onto one hot key, so one morsel can carry thousands of
        // matches while its neighbours carry none — the adversarial case
        // for any merge that isn't strictly morsel-ordered.
        let skew = if skewed {
            let e = &q.edges[0];
            vec![SkewedEdge { u: e.u, v: e.v, hot_fraction: 0.4 }]
        } else {
            Vec::new()
        };
        let data = materialize(
            &q,
            &GenConfig {
                seed: seed ^ 0xA5A5,
                max_table_rows: 2_000,
                skew,
                ..Default::default()
            },
            &m,
        );
        // GOO keeps planning cheap; which plan runs is irrelevant to the
        // property (the oracle tests cover plan-shape agreement).
        let planned = Goo.optimize(&data.scaled, &m, None).unwrap();
        let run = |workers: usize| {
            Executor::new(
                &data.scaled,
                &data,
                ExecConfig { workers, batch: 128, ..Default::default() },
            )
            .execute_with_result(&planned.plan)
        };
        // A cap abort must abort identically at every worker count; the
        // comparisons below only apply to completed runs.
        match run(1) {
            Ok((base_report, base_rows)) => {
                for workers in [2usize, 8] {
                    let (report, rows) = run(workers).unwrap();
                    // Byte-identical output columns, rowid for rowid.
                    prop_assert_eq!(
                        &rows, &base_rows,
                        "output columns diverged at {} workers (n={}, seed={}, skewed={})",
                        workers, n, seed, skewed
                    );
                    prop_assert_eq!(report.root_rows, base_report.root_rows);
                    prop_assert_eq!(&report.counters, &base_report.counters);
                    // Identical per-join observations — bitwise, so the
                    // feedback path (`PlanService::observe`) can never see
                    // the worker count.
                    prop_assert_eq!(report.joins.len(), base_report.joins.len());
                    for (jp, js) in report.joins.iter().zip(&base_report.joins) {
                        prop_assert_eq!(
                            jp.observed_sel.to_bits(),
                            js.observed_sel.to_bits(),
                            "observed selectivity of {:?}⋈{:?} diverged at {} workers",
                            jp.left, jp.right, workers
                        );
                        prop_assert_eq!(jp.output, js.output);
                        prop_assert_eq!(jp.inputs, js.inputs);
                    }
                    // Stats rows (minus wall time) are identical too.
                    let strip: fn(&mpdp::exec::ExecStats) -> (u64, u64, u64, u64, u64) =
                        |s| (s.rels.bits(), s.build_rows, s.probe_rows, s.output_rows, s.batches);
                    let a: Vec<_> = report.stats.iter().map(strip).collect();
                    let b: Vec<_> = base_report.stats.iter().map(strip).collect();
                    prop_assert_eq!(a, b);
                }
            }
            Err(e) => {
                for workers in [2usize, 8] {
                    prop_assert!(
                        run(workers).is_err(),
                        "sequential run aborted ({}) but {} workers succeeded",
                        e, workers
                    );
                }
            }
        }
    }
}
