//! Sharded LRU plan cache keyed by query fingerprint.
//!
//! The memo table already amortizes planning *within* one query by caching
//! canonical subplans; [`PlanCache`] lifts the same idea to whole queries
//! across a serving workload. Keys are the 128-bit canonical fingerprints of
//! `mpdp_core::fingerprint`, so isomorphic (relabeled) queries share one
//! entry; values are the full [`Planned`] result with its plan relabeled
//! into *canonical* relation slots, plus enough information for the service
//! layer to remap leaves back into each caller's own relation ids.
//!
//! Concurrency: the key space is split across N independently mutex-guarded
//! shards (fingerprints are uniform, so `fp mod N` balances). A lookup locks
//! exactly one shard for a hash probe and an LRU-stamp bump — never the
//! whole cache — which keeps the hit path contention-free for realistic
//! worker counts. Eviction is per shard: capacity is divided evenly and the
//! least-recently-used entry of the *shard* is evicted, which approximates
//! global LRU the same way any sharded LRU (e.g. a CPU's set-associative
//! cache) does.
//!
//! Observability rides the workspace's counters machinery:
//! [`CacheCounters`] (hits / misses / insertions / evictions / expirations)
//! is shared across shards and snapshotted via [`PlanCache::counters`].

use crate::planner::Planned;
use mpdp_core::counters::{CacheCounters, CacheSnapshot};
use mpdp_core::fingerprint::Fingerprint;
use mpdp_core::sync::lock_recover;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a [`PlanCache`].
#[derive(Copy, Clone, Debug)]
pub struct CacheConfig {
    /// Total entry capacity. Shard quotas sum to exactly this (base +
    /// remainder spread over the first shards), so the configured bound is
    /// never exceeded; with more shards than capacity, zero-quota shards
    /// store nothing. 0 disables caching: every lookup misses, nothing is
    /// stored.
    pub capacity: usize,
    /// Number of mutex-guarded shards. Clamped to at least 1; powers of two
    /// divide fingerprints most evenly but any count works.
    pub shards: usize,
    /// Entries older than this are treated as absent and dropped on contact.
    /// `None` disables expiry.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            // 4096 plans ≈ a few MB for serving-sized queries — plans are a
            // few hundred bytes of tree nodes each.
            capacity: 4096,
            // 16 shards keeps p(two workers collide on a shard) low for the
            // worker counts a single box runs (see DESIGN.md §5).
            shards: 16,
            ttl: None,
        }
    }
}

/// One cached plan: the planned result in canonical relation slots.
///
/// The payload sits behind an `Arc` so a hit clones a refcount under the
/// shard lock, not a plan tree; the service relabels leaves outside the
/// lock.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The planning outcome; `planned.plan` leaves are canonical slots, and
    /// `planned.wall`/`planned.reported` are the original (cold) times.
    pub planned: std::sync::Arc<Planned>,
}

struct Entry {
    value: CachedPlan,
    /// LRU stamp: shard-local logical clock value of the last touch.
    last_used: u64,
    inserted_at: Instant,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    /// Shard-local logical clock; bumped on every touch.
    clock: u64,
}

/// A thread-safe, sharded, LRU+TTL plan cache. See the module docs.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry quota; quotas sum to exactly the configured total
    /// capacity (base = capacity / shards, the remainder spread one entry
    /// each over the first shards).
    shard_capacity: Vec<usize>,
    ttl: Option<Duration>,
    counters: CacheCounters,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.shard_capacity.iter().sum::<usize>())
            .field("ttl", &self.ttl)
            .field("counters", &self.counters.snapshot())
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache from `config`.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let (base, rem) = (config.capacity / shards, config.capacity % shards);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: (0..shards).map(|i| base + usize::from(i < rem)).collect(),
            ttl: config.ttl,
            counters: CacheCounters::default(),
        }
    }

    #[inline]
    fn shard_index(&self, fp: Fingerprint) -> usize {
        // The fingerprint is already uniform; fold both lanes so sharding
        // never depends on only one.
        ((fp.hi ^ fp.lo) % self.shards.len() as u64) as usize
    }

    #[inline]
    fn shard_of(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[self.shard_index(fp)]
    }

    /// Looks up a fingerprint, refreshing its LRU stamp on a hit. Expired
    /// entries are dropped and reported as misses (plus an expiration tick).
    pub fn get(&self, fp: Fingerprint) -> Option<CachedPlan> {
        let mut shard = lock_recover(self.shard_of(fp));
        let key = fp.as_u128();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key) {
            None => {
                self.counters.record_miss();
                None
            }
            Some(entry)
                if self
                    .ttl
                    .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl) =>
            {
                shard.map.remove(&key);
                self.counters.record_expiration();
                self.counters.record_miss();
                None
            }
            Some(entry) => {
                entry.last_used = clock;
                self.counters.record_hit();
                Some(entry.value.clone())
            }
        }
    }

    /// Looks up a fingerprint, refreshing its LRU stamp on a hit, *without*
    /// tallying a hit or a miss. The single-flight path uses this: whether a
    /// request was a hit, a miss, or a coalesced join is only known after
    /// the flight-table handshake, so the service records the outcome
    /// explicitly via [`PlanCache::record_hit`] / [`PlanCache::record_miss`]
    /// / [`PlanCache::record_coalesced`]. Expired entries are still reaped
    /// (with an expiration tick) exactly as in [`PlanCache::get`].
    pub fn get_quiet(&self, fp: Fingerprint) -> Option<CachedPlan> {
        let mut shard = lock_recover(self.shard_of(fp));
        let key = fp.as_u128();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key) {
            None => None,
            Some(entry)
                if self
                    .ttl
                    .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl) =>
            {
                shard.map.remove(&key);
                self.counters.record_expiration();
                None
            }
            Some(entry) => {
                entry.last_used = clock;
                Some(entry.value.clone())
            }
        }
    }

    /// Inserts (or replaces) the plan for a fingerprint, evicting the
    /// shard's least-recently-used entry when at capacity.
    pub fn insert(&self, fp: Fingerprint, value: CachedPlan) {
        let idx = self.shard_index(fp);
        let capacity = self.shard_capacity[idx];
        if capacity == 0 {
            // Zero total capacity, or this shard drew no quota (more shards
            // than entries): nothing is ever stored here.
            return;
        }
        let mut shard = lock_recover(&self.shards[idx]);
        let key = fp.as_u128();
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= capacity {
            // Evict the LRU entry. The scan is O(shard entries); shards are
            // small (capacity / shards) and eviction only runs on full
            // shards, so this stays off the hit path entirely.
            if let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.last_used) {
                shard.map.remove(&victim);
                self.counters.record_eviction();
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
                inserted_at: Instant::now(),
            },
        );
        self.counters.record_insertion();
    }

    /// Looks up a fingerprint *without* touching LRU order or the hit/miss
    /// counters — the feedback path inspects cached estimates without
    /// counting as traffic or keeping a doomed entry warm. Expired entries
    /// read as absent (but are left for `get` to reap).
    pub fn peek(&self, fp: Fingerprint) -> Option<CachedPlan> {
        let shard = lock_recover(self.shard_of(fp));
        let entry = shard.map.get(&fp.as_u128())?;
        if self
            .ttl
            .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl)
        {
            return None;
        }
        Some(entry.value.clone())
    }

    /// Removes a fingerprint's entry; `true` if one was present. Does not
    /// count as an eviction (capacity) or expiration (TTL) — callers with a
    /// reason (e.g. cardinality-feedback invalidation) track their own.
    pub fn remove(&self, fp: Fingerprint) -> bool {
        let mut shard = lock_recover(self.shard_of(fp));
        shard.map.remove(&fp.as_u128()).is_some()
    }

    /// Removes the entry iff `condemn` approves the *currently stored*
    /// value, atomically under the shard lock; `true` if removed. This is
    /// the feedback path's compare-and-remove: a plain peek-then-remove
    /// could evict a fresh plan some other thread inserted between the two
    /// steps, whose estimate was never the one found wanting.
    pub fn remove_if(&self, fp: Fingerprint, condemn: impl FnOnce(&CachedPlan) -> bool) -> bool {
        let mut shard = lock_recover(self.shard_of(fp));
        let key = fp.as_u128();
        match shard.map.get(&key) {
            // An expired entry reads as absent (matching `peek`/`get`): it
            // could never have served another hit, so condemning it would
            // overstate the caller's invalidation count. Left for `get` to
            // reap as an expiration.
            Some(entry)
                if self
                    .ttl
                    .is_some_and(|ttl| entry.inserted_at.elapsed() > ttl) =>
            {
                false
            }
            Some(entry) if condemn(&entry.value) => {
                shard.map.remove(&key);
                true
            }
            _ => false,
        }
    }

    /// Records a hit on the shared counters. Pairs with
    /// [`PlanCache::get_quiet`] on the single-flight path.
    pub fn record_hit(&self) {
        self.counters.record_hit();
    }

    /// Records a miss on the shared counters. Pairs with
    /// [`PlanCache::get_quiet`] on the single-flight path (the flight
    /// leader's one true cold plan).
    pub fn record_miss(&self) {
        self.counters.record_miss();
    }

    /// Records a coalesced request — one that joined an in-flight planning
    /// instead of hitting or missing — on the shared counters.
    pub fn record_coalesced(&self) {
        self.counters.record_coalesced();
    }

    /// Records a request served a degraded (heuristic) plan because its
    /// deadline budget could not afford the exact route.
    pub fn record_degraded(&self) {
        self.counters.record_degraded();
    }

    /// Records an exact planning attempt cut off by its deadline budget.
    pub fn record_deadline_exceeded(&self) {
        self.counters.record_deadline_exceeded();
    }

    /// Records a cardinality-feedback check on the shared counters.
    pub fn record_feedback_check(&self) {
        self.counters.record_feedback_check();
    }

    /// Records a cardinality-feedback invalidation on the shared counters.
    pub fn record_feedback_invalidation(&self) {
        self.counters.record_feedback_invalidation();
    }

    /// Number of live entries across all shards (expired entries still
    /// count until touched).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// `true` if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            lock_recover(s).map.clear();
        }
    }

    /// A point-in-time copy of the hit/miss/insertion/eviction/expiration
    /// counters.
    pub fn counters(&self) -> CacheSnapshot {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::plan::PlanTree;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint { hi: i, lo: !i }
    }

    fn plan(cost: f64) -> CachedPlan {
        CachedPlan {
            planned: std::sync::Arc::new(Planned {
                plan: PlanTree::Scan {
                    rel: 0,
                    rows: 1.0,
                    cost,
                },
                cost,
                rows: 1.0,
                wall: Duration::from_millis(1),
                reported: Duration::from_millis(1),
                counters: None,
                profile: None,
                gpu: None,
                strategy: "test".into(),
            }),
        }
    }

    /// A single-shard cache so LRU order is globally observable.
    fn single_shard(capacity: usize, ttl: Option<Duration>) -> PlanCache {
        PlanCache::new(CacheConfig {
            capacity,
            shards: 1,
            ttl,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = single_shard(4, None);
        assert!(c.get(fp(1)).is_none());
        c.insert(fp(1), plan(10.0));
        let hit = c.get(fp(1)).expect("hit");
        assert_eq!(hit.planned.cost, 10.0);
        let s = c.counters();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let c = single_shard(2, None);
        c.insert(fp(1), plan(1.0));
        c.insert(fp(2), plan(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(fp(1)).is_some());
        c.insert(fp(3), plan(3.0));
        assert!(c.get(fp(2)).is_none(), "LRU entry evicted");
        assert!(c.get(fp(1)).is_some(), "recently-used entry survived");
        assert!(c.get(fp(3)).is_some());
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let c = single_shard(4, Some(Duration::ZERO));
        c.insert(fp(7), plan(1.0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.get(fp(7)).is_none());
        let s = c.counters();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = single_shard(0, None);
        c.insert(fp(1), plan(1.0));
        assert!(c.get(fp(1)).is_none());
        assert_eq!(c.counters().insertions, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_and_remove_bypass_lru_and_counters() {
        let c = single_shard(2, None);
        c.insert(fp(1), plan(1.0));
        c.insert(fp(2), plan(2.0));
        // Peek at 1: must NOT refresh its LRU stamp or count a hit.
        assert_eq!(c.peek(fp(1)).unwrap().planned.cost, 1.0);
        assert!(c.peek(fp(9)).is_none());
        let s = c.counters();
        assert_eq!((s.hits, s.misses), (0, 0));
        // 1 stays the LRU victim despite the peek.
        c.insert(fp(3), plan(3.0));
        assert!(c.peek(fp(1)).is_none(), "peek must not keep entries warm");
        assert!(c.peek(fp(2)).is_some());
        // Remove reports presence and counts neither eviction nor expiry.
        assert!(c.remove(fp(2)));
        assert!(!c.remove(fp(2)));
        let s = c.counters();
        assert_eq!(s.evictions, 1, "only the LRU capacity eviction");
        assert_eq!(s.expirations, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_if_judges_the_stored_value() {
        let c = single_shard(4, None);
        c.insert(fp(1), plan(10.0));
        // Condemnation sees the *current* entry; a rejecting predicate
        // leaves it in place.
        assert!(!c.remove_if(fp(1), |p| p.planned.cost > 100.0));
        assert!(c.peek(fp(1)).is_some());
        // A re-insert between judgement attempts is judged on its own
        // merits (the compare-and-remove the feedback path relies on).
        c.insert(fp(1), plan(500.0));
        assert!(c.remove_if(fp(1), |p| p.planned.cost > 100.0));
        assert!(c.peek(fp(1)).is_none());
        assert!(!c.remove_if(fp(1), |_| true), "absent key is a no-op");
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let c = single_shard(2, None);
        c.insert(fp(1), plan(1.0));
        c.insert(fp(2), plan(2.0));
        c.insert(fp(1), plan(9.0));
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(fp(1)).unwrap().planned.cost, 9.0);
        assert_eq!(c.len(), 2);
    }
}
