//! Single-flight coordination for the serving layer.
//!
//! When N requests miss the cache on one fingerprint *concurrently*, planning
//! the query N times wastes N−1 full DP runs. [`FlightTable`] turns those N
//! misses into one planner invocation: the first request to register becomes
//! the **leader** and plans; everyone else becomes a **waiter** on the
//! leader's [`Flight`] and receives the same canonical-slot [`Planned`] when
//! it completes. Each waiter then remaps the plan's leaves onto its *own*
//! relation ids (remap-on-delivery) — exactly the translation a cache hit
//! performs, so waiters are indistinguishable from hits except in the
//! counters (`coalesced`, not `hits`).
//!
//! A [`Flight`] supports both waiting disciplines the workspace needs:
//! blocking OS threads park on a condvar ([`Flight::wait`]), async tasks
//! register a [`Waker`] and suspend ([`Flight::poll_result`]) — the
//! `mpdp-serve` front-end uses the latter so a cold plan never idles more
//! than the one executor thread the leader runs on.
//!
//! Liveness: the leader completes its flight through a [`FlightGuard`] whose
//! `Drop` fires even on panic, completing the flight with an error instead of
//! stranding waiters forever. The flight is removed from the table *after*
//! the planned result is inserted into the plan cache, so at every instant a
//! concurrent request finds the result in the cache, in the flight table, or
//! is early enough to become the (only) leader — a second cold plan for one
//! fingerprint is impossible.

use crate::planner::Planned;
use mpdp_core::sync::{lock_recover, wait_recover};
use mpdp_core::OptError;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::task::Waker;

/// Outcome of one in-flight planning, shared by leader and waiters. The
/// payload is in canonical relation slots; every consumer remaps on delivery.
pub(crate) type FlightResult = Result<Arc<Planned>, OptError>;

enum FlightState {
    Pending { wakers: Vec<Waker> },
    Done(FlightResult),
}

/// One in-flight planning of a fingerprint.
pub(crate) struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending { wakers: Vec::new() }),
            cv: Condvar::new(),
        })
    }

    /// Publishes the result: wakes every parked thread and every registered
    /// async waiter. Idempotent (the guard's panic path may race a regular
    /// completion only if `complete` itself panicked, in which case the
    /// first result stands).
    fn complete(&self, result: FlightResult) {
        let wakers = {
            let mut state = lock_recover(&self.state);
            match &mut *state {
                FlightState::Done(_) => return,
                FlightState::Pending { wakers } => {
                    let wakers = std::mem::take(wakers);
                    *state = FlightState::Done(result);
                    wakers
                }
            }
        };
        self.cv.notify_all();
        for w in wakers {
            w.wake();
        }
    }

    /// Blocks the calling thread until the flight completes.
    pub(crate) fn wait(&self) -> FlightResult {
        let mut state = lock_recover(&self.state);
        loop {
            match &*state {
                FlightState::Done(r) => return r.clone(),
                FlightState::Pending { .. } => {
                    state = wait_recover(&self.cv, state);
                }
            }
        }
    }

    /// Async-style probe: returns the result if the flight is done,
    /// otherwise registers `waker` (replacing a stale clone of itself) and
    /// returns `None`.
    pub(crate) fn poll_result(&self, waker: &Waker) -> Option<FlightResult> {
        let mut state = lock_recover(&self.state);
        match &mut *state {
            FlightState::Done(r) => Some(r.clone()),
            FlightState::Pending { wakers } => {
                wakers.retain(|w| !w.will_wake(waker));
                wakers.push(waker.clone());
                None
            }
        }
    }
}

/// What a request found when it asked the table about a fingerprint.
pub(crate) enum Admission<'a> {
    /// No flight and still no cached plan: the caller is the leader and must
    /// plan, then finish through the returned guard.
    Lead(FlightGuard<'a>),
    /// Another request is already planning this fingerprint: wait on it.
    Join(Arc<Flight>),
    /// The previous leader finished between the caller's cache probe and its
    /// table registration: the cached plan is the answer.
    Cached(crate::cache::CachedPlan),
}

/// Sharded registry of in-flight plannings, keyed like the plan cache
/// (model-folded canonical fingerprint), so two cost models never coalesce.
pub(crate) struct FlightTable {
    shards: Vec<Mutex<HashMap<u128, Arc<Flight>>>>,
}

impl std::fmt::Debug for FlightTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightTable")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl FlightTable {
    pub(crate) fn new(shards: usize) -> FlightTable {
        FlightTable {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, Arc<Flight>>> {
        let fold = (key as u64) ^ ((key >> 64) as u64);
        &self.shards[(fold % self.shards.len() as u64) as usize]
    }

    /// Join an existing flight, or lead a new one. `recheck_cache` runs
    /// under the shard lock to close the race where the previous leader
    /// completed (cache insert + table removal) after the caller's lock-free
    /// cache probe missed: its hit means nobody needs to plan.
    pub(crate) fn join_or_lead(
        &self,
        key: u128,
        recheck_cache: impl FnOnce() -> Option<crate::cache::CachedPlan>,
    ) -> Admission<'_> {
        let shard = self.shard(key);
        let mut map = lock_recover(shard);
        if let Some(flight) = map.get(&key) {
            return Admission::Join(Arc::clone(flight));
        }
        if let Some(cached) = recheck_cache() {
            return Admission::Cached(cached);
        }
        let flight = Flight::new();
        map.insert(key, Arc::clone(&flight));
        Admission::Lead(FlightGuard {
            table: self,
            key,
            flight: Some(flight),
        })
    }

    fn remove(&self, key: u128) {
        lock_recover(self.shard(key)).remove(&key);
    }
}

/// Leader-side completion obligation for one flight.
///
/// The guard pins the flight's table entry; [`FlightGuard::finish`] removes
/// it and publishes the result. If the leader panics before finishing (a
/// planner bug), `Drop` removes the entry and completes the flight with an
/// error so waiters never hang — bounded-queue liveness does not depend on
/// planner code being panic-free.
pub(crate) struct FlightGuard<'a> {
    table: &'a FlightTable,
    key: u128,
    flight: Option<Arc<Flight>>,
}

impl FlightGuard<'_> {
    /// Completes the flight: the result becomes visible to waiters and the
    /// table entry is removed. Call *after* inserting a successful plan into
    /// the cache, so no instant exists where a new request would re-plan.
    pub(crate) fn finish(mut self, result: FlightResult) {
        let flight = self.flight.take().expect("finish called once");
        self.table.remove(self.key);
        flight.complete(result);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if let Some(flight) = self.flight.take() {
            self.table.remove(self.key);
            flight.complete(Err(OptError::Internal(
                "single-flight leader abandoned the flight (planner panic?)".to_string(),
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::PlanTree;
    use std::time::Duration;

    fn planned() -> Arc<Planned> {
        Arc::new(Planned {
            plan: PlanTree::Scan {
                rel: 0,
                rows: 1.0,
                cost: 1.0,
            },
            cost: 1.0,
            rows: 1.0,
            wall: Duration::ZERO,
            reported: Duration::ZERO,
            counters: None,
            profile: None,
            gpu: None,
            strategy: "test".into(),
        })
    }

    #[test]
    fn waiters_receive_the_leaders_result() {
        let table = FlightTable::new(4);
        let Admission::Lead(guard) = table.join_or_lead(7, || None) else {
            panic!("first arrival must lead");
        };
        let Admission::Join(flight) = table.join_or_lead(7, || None) else {
            panic!("second arrival must join");
        };
        let waiter = std::thread::spawn(move || flight.wait());
        guard.finish(Ok(planned()));
        let got = waiter.join().unwrap().expect("leader succeeded");
        assert_eq!(got.cost, 1.0);
        // The table entry is gone: the next arrival leads again.
        assert!(matches!(table.join_or_lead(7, || None), Admission::Lead(_)));
    }

    #[test]
    fn dropped_guard_fails_waiters_instead_of_hanging() {
        let table = FlightTable::new(4);
        let Admission::Lead(guard) = table.join_or_lead(9, || None) else {
            panic!("must lead");
        };
        let Admission::Join(flight) = table.join_or_lead(9, || None) else {
            panic!("must join");
        };
        drop(guard); // leader "panicked"
        assert!(matches!(flight.wait(), Err(OptError::Internal(_))));
        assert!(matches!(table.join_or_lead(9, || None), Admission::Lead(_)));
    }

    #[test]
    fn recheck_under_lock_short_circuits_to_cache() {
        let table = FlightTable::new(4);
        let cached = crate::cache::CachedPlan { planned: planned() };
        match table.join_or_lead(3, || Some(cached)) {
            Admission::Cached(c) => assert_eq!(c.planned.cost, 1.0),
            _ => panic!("fresh cache entry must short-circuit"),
        };
    }
}
