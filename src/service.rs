//! `PlanService` — a concurrent, plan-caching serving layer with adaptive
//! algorithm routing.
//!
//! The paper frames join-order optimization as the latency-critical inner
//! loop of a query optimizer; a deployment serves a *stream* of queries, not
//! one. [`PlanService`] is the workspace's front door for that regime:
//!
//! * **Fingerprint cache** — every request is canonicalized
//!   (`mpdp_core::fingerprint`) so isomorphic queries collide on a 128-bit
//!   key; results live in a sharded LRU [`PlanCache`], and a hit answers in
//!   microseconds with the cached plan remapped onto the caller's own
//!   relation ids.
//! * **Adaptive routing** — misses are routed to the cheapest adequate
//!   algorithm by query size and join-graph density, in the spirit of the
//!   paper's budget-aware fallback cascade (exact DPCCP for small queries,
//!   MPDP — simulated-GPU for dense mid-range graphs — up to the exact
//!   limit, UnionDP-MPDP beyond). Any request can override the route with an
//!   explicit registry strategy name.
//! * **Thread safety** — the service is `Send + Sync` and lock-free outside
//!   the touched cache shard; a worker pool shares one service behind an
//!   `Arc` (see `mpdp-bench`'s `repro serve` replay harness).
//!
//! Cold keys have two disciplines. The classic [`PlanService::plan`] /
//! [`PlanService::plan_with`] path is *not* single-flighted: workers missing
//! the same fingerprint concurrently each plan it and race to insert (last
//! write wins — the payloads are identical, so any winner is correct), which
//! keeps that path guard-free. The serving path —
//! [`PlanService::plan_coalesced`] (blocking) and [`PlanService::plan_async`]
//! (for the `mpdp-serve` executor) — instead **single-flights** cold keys
//! through a `FlightTable` (private, `src/flight.rs`): concurrent misses on
//! one
//! fingerprint elect one leader that plans while the rest wait and receive
//! the same canonical plan, remapped on delivery onto each waiter's own
//! relation ids. The per-key guard there is not a lock held across the DP
//! run but a registered flight that waiters park on, so overload turns into
//! waiting, not duplicated planning. Outcome accounting is exact: every
//! coalesced-path request is exactly one of a hit, a miss (the leader), or a
//! coalesced join — see [`ServedVia`] and `CacheSnapshot::request_hit_rate`.

use crate::cache::{CacheConfig, CachedPlan, PlanCache};
use crate::flight::{Admission, Flight, FlightGuard, FlightTable};
use crate::planner::{Planned, Strategy};
use crate::registry;
use mpdp_core::faults::{site, Faults};
use mpdp_core::fingerprint::{canonicalize, CanonicalQuery, Fingerprint};
use mpdp_core::sync::lock_recover;
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_exec::ExecReport;
use mpdp_obs::{sites, SpanCtx, SpanGuard};
use mpdp_parallel::hwmodel::{estimate_exact_planning, Calibration};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Dense code of a fault-injection site name (`mpdp_core::faults::site`),
/// recorded as the `attr` of [`sites::FAULT`] span annotations so chaos
/// timelines name the site that fired without string storage in the ring.
pub fn fault_site_code(name: &str) -> u64 {
    match name {
        site::QUEUE_PUSH => 0,
        site::QUEUE_POP => 1,
        site::DISPATCH_CHUNK => 2,
        site::PLANNER_INVOKE => 3,
        site::EXECUTOR_POLL => 4,
        site::REACTOR_TICK => 5,
        _ => u64::MAX,
    }
}

/// Folds a cost model's identity into a query fingerprint, producing the
/// plan-cache key: plans are only comparable under one model, so entries
/// from different models must never collide.
pub fn cache_key(fp: Fingerprint, model: &dyn CostModel) -> Fingerprint {
    use mpdp_core::memo::murmur3_fmix64;
    let mut h: u64 = 0x636f_7374_6d6f_6465; // "costmode"
    for b in model.name().bytes() {
        h = murmur3_fmix64(h.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b as u64);
    }
    Fingerprint {
        hi: fp.hi ^ h,
        lo: fp.lo ^ murmur3_fmix64(h),
    }
}

/// Routing thresholds: which algorithm serves which (size, density) regime.
///
/// Density is `2|E| / (n (n - 1))` — the filled fraction of the join graph.
/// Defaults follow the paper's deployment guidance: DPCCP's edge-based
/// enumeration is unbeatable while the search space is tiny; MPDP owns the
/// mid-range (with the simulated-GPU driver for dense graphs, where
/// level-parallel width pays); UnionDP-MPDP takes everything beyond the
/// exact limit.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Queries up to this many relations go to exact DPCCP.
    pub dpccp_limit: usize,
    /// Queries up to this many relations go to MPDP (the paper's exact
    /// limit for one CPU core; the GPU raises it to 25).
    pub exact_limit: usize,
    /// At or above this density, mid-range queries use the simulated-GPU
    /// MPDP driver instead of sequential MPDP.
    pub gpu_density: f64,
    /// UnionDP partition bound for queries beyond the exact limit.
    pub fallback_k: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            dpccp_limit: 10,
            exact_limit: 18,
            gpu_density: 0.5,
            fallback_k: 15,
        }
    }
}

impl RouterConfig {
    /// The registry label this configuration routes `q` to.
    pub fn route(&self, q: &LargeQuery) -> String {
        let n = q.num_rels();
        if n <= self.dpccp_limit.min(crate::planner::EXACT_MAX_RELS) {
            return "DPCCP (1CPU)".to_string();
        }
        if n <= self.exact_limit.min(crate::planner::EXACT_MAX_RELS) {
            return if self.density(q) >= self.gpu_density {
                "MPDP (GPU)".to_string()
            } else {
                "MPDP".to_string()
            };
        }
        format!("UnionDP-MPDP ({})", self.fallback_k)
    }

    /// Filled fraction of the join graph, in `[0, 1]`.
    pub fn density(&self, q: &LargeQuery) -> f64 {
        let n = q.num_rels();
        if n < 2 {
            return 1.0;
        }
        2.0 * q.edges.len() as f64 / (n * (n - 1)) as f64
    }
}

/// Per-request options for [`PlanService::plan_with`].
#[derive(Clone, Debug, Default)]
pub struct PlanRequest {
    /// Overrides the router with an explicit registry strategy name
    /// (resolved through [`crate::registry()`], so aliases and
    /// parameterized names work). An override implies a cache bypass: the
    /// cache is keyed by fingerprint alone, so serving an override from it
    /// could return some other strategy's plan, and storing the override's
    /// plan would poison the default route for every later request.
    pub strategy: Option<String>,
    /// Overrides the service-level budget for this request.
    pub budget: Option<Duration>,
    /// Skips both cache lookup and insertion (e.g. for EXPLAIN ANALYZE-style
    /// calls that must measure cold planning).
    pub bypass_cache: bool,
    /// Absolute deadline for this request. A cache hit always makes it; a
    /// cold request whose remaining budget cannot afford the routed exact
    /// strategy (predicted from the calibrated hardware model, refined by
    /// observed cold walls) — or whose exact attempt times out mid-flight —
    /// **degrades to the service's heuristic strategy** instead of missing
    /// the deadline, served as [`ServedVia::Degraded`] and never cached as
    /// if exact. `None` (the default) disables the deadline machinery.
    pub deadline: Option<Instant>,
    /// Tracing context of this request (disabled by default — the span
    /// sites along the serving path then cost one branch each). Armed by
    /// the serve front-end, which parents it under the request's root
    /// admission span.
    pub trace: SpanCtx,
}

/// How a request obtained its plan — the mutually exclusive outcomes of the
/// single-flight serving path (every completed request is exactly one of
/// them, matching the `hits`/`misses`/`coalesced`/`degraded` counter
/// partition). The classic `plan`/`plan_with` path only ever produces
/// `Hit`, `Cold` or `Degraded`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServedVia {
    /// Served from the plan cache.
    Hit,
    /// Planned from scratch (on the coalesced path: as the flight leader).
    Cold,
    /// Joined another request's in-flight planning and received its result.
    Coalesced,
    /// Served a heuristic plan because the request's deadline budget could
    /// not afford the routed exact strategy (up front or after a mid-flight
    /// timeout). Degraded plans are never cached.
    Degraded,
}

/// The outcome of one served request.
#[derive(Clone, Debug)]
pub struct ServedPlan {
    /// The planning result, with plan leaves in the *caller's* relation ids.
    /// On a cache hit, `wall`/`reported`/counters describe the original cold
    /// run that populated the cache.
    pub planned: Planned,
    /// `true` if the plan came from the cache.
    pub cache_hit: bool,
    /// How the plan was obtained (`cache_hit` is `via == ServedVia::Hit`,
    /// kept for back-compat).
    pub via: ServedVia,
    /// End-to-end service latency of this request (canonicalization + cache
    /// + planning + remap) — the number the throughput harness reports.
    pub service_time: Duration,
    /// The request's canonical fingerprint.
    pub fingerprint: Fingerprint,
}

/// Builder for [`PlanService`].
#[derive(Clone, Debug, Default)]
pub struct PlanServiceBuilder {
    cache: CacheConfig,
    router: RouterConfig,
    budget: Option<Duration>,
    feedback_threshold: Option<f64>,
    degrade_strategy: Option<String>,
    faults: Faults,
}

impl PlanServiceBuilder {
    /// Default configuration: 4096-entry 16-shard cache, no TTL, default
    /// routing thresholds, no budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total plan-cache capacity (0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache.capacity = capacity;
        self
    }

    /// Number of cache shards.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache.shards = shards;
        self
    }

    /// Time-to-live for cached plans (plans for churning statistics should
    /// not outlive the statistics).
    pub fn cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache.ttl = Some(ttl);
        self
    }

    /// Replaces the routing thresholds.
    pub fn router(mut self, router: RouterConfig) -> Self {
        self.router = router;
        self
    }

    /// Default per-request optimization budget.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Cardinality-feedback invalidation threshold for
    /// [`PlanService::observe`]: a cached plan whose estimated root
    /// cardinality deviates from the observed one by more than this factor
    /// (in either direction) is evicted. Must be > 1. Default 10.
    pub fn feedback_threshold(mut self, factor: f64) -> Self {
        assert!(
            factor > 1.0,
            "feedback threshold must exceed 1, got {factor}"
        );
        self.feedback_threshold = Some(factor);
        self
    }

    /// The registry strategy deadline-pressed requests degrade to. Must be
    /// cheap enough to always make a deadline (heuristics plan in
    /// microseconds). Default `"GOO"`; `"IKKBZ"` is the other stock choice.
    pub fn degrade_strategy(mut self, name: &str) -> Self {
        self.degrade_strategy = Some(name.to_string());
        self
    }

    /// Arms fault injection (chaos tests only; the default
    /// [`Faults::disarmed`] handle is free).
    pub fn faults(mut self, faults: Faults) -> Self {
        self.faults = faults;
        self
    }

    /// Builds the service.
    pub fn build(self) -> PlanService {
        PlanService {
            // The flight table mirrors the cache's sharding degree: both see
            // the same (uniform) key distribution.
            flights: FlightTable::new(self.cache.shards),
            cache: PlanCache::new(self.cache),
            router: self.router,
            budget: self.budget,
            feedback_threshold: self.feedback_threshold.unwrap_or(10.0),
            degrade_strategy: self.degrade_strategy.unwrap_or_else(|| "GOO".to_string()),
            faults: self.faults,
            estimator: ColdEstimator::new(),
        }
    }
}

/// The concurrent serving layer. See the module docs; construct via
/// [`PlanServiceBuilder`] and share across workers with an `Arc`.
#[derive(Debug)]
pub struct PlanService {
    cache: PlanCache,
    /// In-flight plannings for the single-flight (`plan_coalesced` /
    /// `plan_async`) path, keyed like the cache.
    flights: FlightTable,
    router: RouterConfig,
    budget: Option<Duration>,
    feedback_threshold: f64,
    /// Registry label of the heuristic that serves deadline degradations.
    degrade_strategy: String,
    /// Fault-injection handle (disarmed outside chaos tests).
    faults: Faults,
    /// Predicts cold planning walls for the deadline affordability check.
    estimator: ColdEstimator,
}

/// Predicts how long a cold exact plan will take: observed cold walls
/// (EWMA, keyed by route label and query size) when this service has seen
/// the shape before, the calibrated closed-form hardware-model estimate
/// otherwise. Deliberately coarse — the affordability check only needs the
/// right order of magnitude (and a 2× safety margin on top).
#[derive(Debug)]
struct ColdEstimator {
    cal: Calibration,
    observed: Mutex<HashMap<(String, usize), f64>>,
}

impl ColdEstimator {
    fn new() -> ColdEstimator {
        ColdEstimator {
            cal: Calibration::default_for_container(),
            observed: Mutex::new(HashMap::new()),
        }
    }

    fn observed_wall(&self, route: &str, n: usize) -> Option<Duration> {
        lock_recover(&self.observed)
            .get(&(route.to_string(), n))
            .map(|&secs| Duration::from_secs_f64(secs))
    }

    fn observe(&self, route: &str, n: usize, wall: Duration) {
        const ALPHA: f64 = 0.3;
        let mut map = lock_recover(&self.observed);
        let e = map
            .entry((route.to_string(), n))
            .or_insert_with(|| wall.as_secs_f64());
        *e = (1.0 - ALPHA) * *e + ALPHA * wall.as_secs_f64();
    }
}

impl Default for PlanService {
    fn default() -> Self {
        PlanServiceBuilder::new().build()
    }
}

impl PlanService {
    /// A service with default cache and routing configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves one query with default options.
    pub fn plan(&self, q: &LargeQuery, model: &dyn CostModel) -> Result<ServedPlan, OptError> {
        self.plan_with(q, model, &PlanRequest::default())
    }

    /// Serves one query: canonicalize, consult the cache, route a miss to
    /// the configured algorithm, populate the cache, and return the plan in
    /// the caller's relation ids.
    pub fn plan_with(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        req: &PlanRequest,
    ) -> Result<ServedPlan, OptError> {
        let start = Instant::now();
        let canonical = canonicalize(q);
        let fp = canonical.fingerprint;
        // Plans are only meaningful under the cost model that produced
        // them, so the cache key folds the model's identity into the query
        // fingerprint: a service shared across models (PgLike vs C_out)
        // never serves one model's plan as another's. Models are identified
        // by `CostModel::name()` — two models sharing a name must be
        // identical (all in-tree ones are).
        let cache_key = cache_key(fp, model);
        // A strategy override bypasses the cache (see `PlanRequest::strategy`).
        let use_cache = !req.bypass_cache && req.strategy.is_none();

        if use_cache {
            if let Some(cached) = self.cache.get(cache_key) {
                // Cached plan leaves are canonical slots; `order` maps slot
                // -> this caller's relation id.
                req.trace.event(sites::CACHE_HIT, 0);
                return Ok(ServedPlan {
                    planned: cached.planned.with_relabeled_plan(&canonical.order),
                    cache_hit: true,
                    via: ServedVia::Hit,
                    service_time: start.elapsed(),
                    fingerprint: fp,
                });
            }
        }

        // Deadline check after the cache miss: a hit always makes the
        // deadline, a cold plan only if the budget can afford the route.
        if let Some(out) = self.degrade_upfront(q, model, req, start, fp) {
            return out;
        }
        let route = self.route_for(q, req);
        let strategy = registry()
            .get(&route)
            .ok_or_else(|| OptError::Internal(format!("unknown strategy \"{route}\"")))?;
        let budget = self.effective_budget(req);
        let planned = match self.invoke(&*strategy, q, model, budget, &req.trace) {
            Ok(planned) => planned,
            Err(OptError::Timeout { .. }) if req.deadline.is_some() => {
                self.cache.record_deadline_exceeded();
                return self.serve_degraded(q, model, start, fp, &req.trace);
            }
            Err(e) => return Err(e),
        };
        self.estimator.observe(&route, q.num_rels(), planned.wall);

        if use_cache {
            // Store with plan leaves relabeled into canonical slots so any
            // isomorphic future request can remap them onto its own ids.
            self.cache.insert(
                cache_key,
                CachedPlan {
                    planned: Arc::new(planned.with_relabeled_plan(&canonical.slot)),
                },
            );
        }

        Ok(ServedPlan {
            planned,
            cache_hit: false,
            via: ServedVia::Cold,
            service_time: start.elapsed(),
            fingerprint: fp,
        })
    }

    /// Serves one query with cold keys **single-flighted**: concurrent
    /// misses on one fingerprint elect one leader that plans; the rest block
    /// on the leader's flight and receive the same canonical plan, remapped
    /// onto their own relation ids ([`ServedVia::Coalesced`]). Hits are
    /// identical to [`PlanService::plan`].
    ///
    /// Accounting is exact by protocol, not by luck: the flight entry is
    /// only removed *after* the plan is inserted into the cache, and the
    /// flight table re-probes the cache under its shard lock, so for any one
    /// fingerprint exactly one request records a miss (the leader) and every
    /// other concurrent request records a hit, a coalesced join, or a
    /// deadline degradation.
    ///
    /// Requests carrying a [`PlanRequest::deadline`] degrade to the
    /// service's heuristic strategy ([`ServedVia::Degraded`]) when the
    /// remaining budget cannot afford the routed exact strategy, when the
    /// exact attempt times out mid-flight, or when the flight they joined
    /// fails — a deadline-carrying request always resolves.
    ///
    /// Requests that bypass the cache or override the strategy fall back to
    /// the uncoalesced [`PlanService::plan_with`] semantics (coalescing them
    /// could serve one strategy's plan as another's).
    pub fn plan_coalesced(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        req: &PlanRequest,
    ) -> Result<ServedPlan, OptError> {
        if req.bypass_cache || req.strategy.is_some() {
            return self.plan_with(q, model, req);
        }
        let start = Instant::now();
        let canonical = canonicalize(q);
        let fp = canonical.fingerprint;
        let cache_key = cache_key(fp, model);

        // Lock-free-path probe first: the common (warm) case never touches
        // the flight table.
        if let Some(cached) = self.cache.get_quiet(cache_key) {
            self.cache.record_hit();
            req.trace.event(sites::CACHE_HIT, 0);
            return Ok(ServedPlan {
                planned: cached.planned.with_relabeled_plan(&canonical.order),
                cache_hit: true,
                via: ServedVia::Hit,
                service_time: start.elapsed(),
                fingerprint: fp,
            });
        }

        // A deadline that cannot afford the route degrades here, before
        // joining or leading any flight.
        if let Some(out) = self.degrade_upfront(q, model, req, start, fp) {
            return out;
        }

        match self
            .flights
            .join_or_lead(cache_key.as_u128(), || self.cache.get_quiet(cache_key))
        {
            Admission::Cached(cached) => {
                // The previous leader finished between our probe and our
                // registration: a hit after all.
                self.cache.record_hit();
                req.trace.event(sites::CACHE_HIT, 0);
                Ok(ServedPlan {
                    planned: cached.planned.with_relabeled_plan(&canonical.order),
                    cache_hit: true,
                    via: ServedVia::Hit,
                    service_time: start.elapsed(),
                    fingerprint: fp,
                })
            }
            Admission::Join(flight) => {
                // The wait span covers exactly the parked interval — from
                // joining the flight to the leader's publication.
                let waited = {
                    let _wait = req.trace.span(sites::FLIGHT_WAIT);
                    flight.wait()
                };
                match waited {
                    Ok(planned) => {
                        self.cache.record_coalesced();
                        Ok(ServedPlan {
                            planned: planned.with_relabeled_plan(&canonical.order),
                            cache_hit: false,
                            via: ServedVia::Coalesced,
                            service_time: start.elapsed(),
                            fingerprint: fp,
                        })
                    }
                    // The leader failed (timed out, errored, panicked). A
                    // deadline-carrying waiter still owes an answer: degrade.
                    Err(_) if req.deadline.is_some() => {
                        self.serve_degraded(q, model, start, fp, &req.trace)
                    }
                    Err(e) => {
                        self.cache.record_coalesced();
                        Err(e)
                    }
                }
            }
            Admission::Lead(guard) => {
                self.lead_flight(q, model, req, &canonical, cache_key, guard, start)
            }
        }
    }

    /// Asynchronous [`PlanService::plan_coalesced`]: returns a future that
    /// resolves to the served plan. A hit (or a strategy-override /
    /// cache-bypass request) resolves on first poll; a coalesced waiter
    /// suspends on the flight's waker list and is woken when the leader
    /// publishes, blocking no executor thread. A *leader* plans inside its
    /// poll — cold planning is CPU work with nothing to await, so the
    /// executor dedicates exactly one thread to it, which is the same
    /// commitment the blocking path makes and the reason `mpdp-serve` runs
    /// more than one executor thread.
    pub fn plan_async<'a>(
        &'a self,
        q: &'a LargeQuery,
        model: &'a (dyn CostModel + Sync),
        req: &'a PlanRequest,
    ) -> PlanFuture<'a> {
        PlanFuture {
            service: self,
            q,
            model,
            req,
            state: FutureState::Init,
        }
    }

    /// The registry label the router (or the request override) picks for `q`.
    pub fn route_for(&self, q: &LargeQuery, req: &PlanRequest) -> String {
        req.strategy.clone().unwrap_or_else(|| self.router.route(q))
    }

    /// The budget the planner actually gets: the request/service budget
    /// clipped to what remains of the request's deadline.
    fn effective_budget(&self, req: &PlanRequest) -> Option<Duration> {
        let base = req.budget.or(self.budget);
        match req.deadline {
            Some(dl) => {
                let remaining = dl.saturating_duration_since(Instant::now());
                Some(base.map_or(remaining, |b| b.min(remaining)))
            }
            None => base,
        }
    }

    /// Predicted cold planning wall for `route` on `q` — observed EWMA if
    /// this service has planned the shape before, calibrated closed form
    /// otherwise. Routes beyond the exact limit (UnionDP partitioning,
    /// heuristics) never run exact DP wider than the router's partition
    /// bound, so the closed form is capped there.
    fn predicted_cold(&self, route: &str, q: &LargeQuery) -> Duration {
        let n = q.num_rels();
        if let Some(d) = self.estimator.observed_wall(route, n) {
            return d;
        }
        let n_eff = if n > self.router.exact_limit {
            self.router.fallback_k.max(2)
        } else {
            n
        };
        let edges_eff = q.edges.len().min(n_eff * (n_eff - 1) / 2);
        estimate_exact_planning(n_eff, edges_eff, &self.estimator.cal)
    }

    /// `Some(served)` if this request carries a deadline whose remaining
    /// budget cannot afford the routed strategy (with a 2× safety margin):
    /// the answer is a heuristic plan, decided *before* any flight is
    /// joined or led. `None` means proceed with exact planning.
    fn degrade_upfront(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        req: &PlanRequest,
        start: Instant,
        fp: Fingerprint,
    ) -> Option<Result<ServedPlan, OptError>> {
        let dl = req.deadline?;
        let remaining = dl.saturating_duration_since(Instant::now());
        let route = self.route_for(q, req);
        if remaining > self.predicted_cold(&route, q) * 2 {
            return None;
        }
        Some(self.serve_degraded(q, model, start, fp, &req.trace))
    }

    /// Plans `q` with the degrade heuristic and serves it as
    /// [`ServedVia::Degraded`]. Never touches the cache: a heuristic plan
    /// stored under the fingerprint would be served to every later request
    /// as if it were exact. Not fault-injected either — degradation is the
    /// recovery path and must stay reliable.
    fn serve_degraded(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        start: Instant,
        fp: Fingerprint,
        trace: &SpanCtx,
    ) -> Result<ServedPlan, OptError> {
        let strategy = registry().get(&self.degrade_strategy).ok_or_else(|| {
            OptError::Internal(format!(
                "unknown degrade strategy \"{}\"",
                self.degrade_strategy
            ))
        })?;
        trace.event(sites::DEGRADE, 0);
        let planned = {
            let _span = trace.span(sites::STRATEGY);
            strategy.plan(q, model, None)?
        };
        self.cache.record_degraded();
        Ok(ServedPlan {
            planned,
            cache_hit: false,
            via: ServedVia::Degraded,
            service_time: start.elapsed(),
            fingerprint: fp,
        })
    }

    /// Runs a resolved strategy, with the `planner.invoke` fault site in
    /// front of it (chaos tests inject panics, stalls and errors here).
    /// The optimizer run itself is covered by a `strategy.invoke` span;
    /// an injected error fault annotates the trace instead.
    fn invoke(
        &self,
        strategy: &dyn Strategy,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
        trace: &SpanCtx,
    ) -> Result<Planned, OptError> {
        if self.faults.apply_panic_stall(site::PLANNER_INVOKE) {
            trace.event(sites::FAULT, fault_site_code(site::PLANNER_INVOKE));
            return Err(OptError::Internal("injected planner fault".to_string()));
        }
        let _span = trace.span(sites::STRATEGY);
        strategy.plan(q, model, budget)
    }

    /// The flight leader's cold path, shared by [`PlanService::plan_coalesced`]
    /// and [`PlanFuture`]: plan, publish (cache insert *before* the flight
    /// completes, so no instant exists where a new arrival re-plans), and
    /// account the outcome. A mid-flight timeout on a deadline-carrying
    /// request fails the flight (waiters with deadlines degrade themselves)
    /// and degrades this request to the heuristic instead of erroring.
    #[allow(clippy::too_many_arguments)]
    fn lead_flight(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        req: &PlanRequest,
        canonical: &CanonicalQuery,
        cache_key: Fingerprint,
        guard: FlightGuard<'_>,
        start: Instant,
    ) -> Result<ServedPlan, OptError> {
        let fp = canonical.fingerprint;
        let route = self.route_for(q, req);
        // The lead span covers planning *and* publication; the nested
        // strategy span inside `invoke` isolates the optimizer itself.
        let lead = req.trace.span(sites::FLIGHT_LEAD);
        let lead_ctx = lead.ctx();
        let out: Result<Planned, OptError> = (|| {
            let strategy = registry()
                .get(&route)
                .ok_or_else(|| OptError::Internal(format!("unknown strategy \"{route}\"")))?;
            let budget = self.effective_budget(req);
            self.invoke(&*strategy, q, model, budget, &lead_ctx)
        })();
        match out {
            Ok(planned) => {
                let canonical_plan = Arc::new(planned.with_relabeled_plan(&canonical.slot));
                self.cache.insert(
                    cache_key,
                    CachedPlan {
                        planned: Arc::clone(&canonical_plan),
                    },
                );
                guard.finish(Ok(canonical_plan));
                self.cache.record_miss();
                self.estimator.observe(&route, q.num_rels(), planned.wall);
                Ok(ServedPlan {
                    planned,
                    cache_hit: false,
                    via: ServedVia::Cold,
                    service_time: start.elapsed(),
                    fingerprint: fp,
                })
            }
            Err(e @ OptError::Timeout { .. }) if req.deadline.is_some() => {
                guard.finish(Err(e));
                self.cache.record_deadline_exceeded();
                drop(lead);
                self.serve_degraded(q, model, start, fp, &req.trace)
            }
            Err(e) => {
                guard.finish(Err(e.clone()));
                self.cache.record_miss();
                Err(e)
            }
        }
    }

    /// Feeds an execution report back into the serving layer: if the plan
    /// cached for `fingerprint` (as returned in [`ServedPlan::fingerprint`])
    /// estimated a root cardinality that the execution contradicted by more
    /// than the configured feedback threshold (default 10×, either
    /// direction), the entry is evicted so the next arrival of that query
    /// shape re-plans — ideally against statistics corrected with the same
    /// report (see `mpdp_exec::feedback`). Returns `true` iff a cached plan
    /// was invalidated.
    ///
    /// `model` must be the cost model the plan was served under (the cache
    /// key folds the model's identity). Deviation is measured against the
    /// *cached* estimate, not the report's own, so a report produced by one
    /// strategy's plan can invalidate the (isomorphic-fingerprint) entry
    /// another strategy populated.
    pub fn observe(
        &self,
        fingerprint: Fingerprint,
        model: &dyn CostModel,
        report: &ExecReport,
    ) -> bool {
        self.invalidate_key_if_stale(cache_key(fingerprint, model), report.root_rows as f64)
    }

    /// Key-level half of [`PlanService::observe`]: compares the cached
    /// estimate under `key` (already model-folded — see [`cache_key`])
    /// against an observed root cardinality and evicts on deviation beyond
    /// the feedback threshold. This is the primitive a sharded tier's
    /// gossip round replays on every shard: the observation is recorded
    /// once where the execution ran, then carried to replicas as
    /// `(key, observed_rows)` without needing the model or the report.
    pub fn invalidate_key_if_stale(&self, key: Fingerprint, observed_rows: f64) -> bool {
        self.cache.record_feedback_check();
        let obs = observed_rows.max(1.0);
        // Compare-and-remove under the shard lock: the deviation is judged
        // against whatever plan is stored *at removal time*, so a concurrent
        // re-plan that already refreshed the entry is never evicted on the
        // strength of the old plan's miss.
        let invalidated = self.cache.remove_if(key, |cached| {
            let est = cached.planned.rows.max(1.0);
            (est / obs).max(obs / est) > self.feedback_threshold
        });
        if invalidated {
            self.cache.record_feedback_invalidation();
        }
        invalidated
    }

    /// True if a plan is currently cached under the model-folded key for
    /// `fingerprint` (no LRU or counter side effects). The cluster bench
    /// and the staleness-window tests use this to watch a gossiped
    /// invalidation land on every replica.
    pub fn has_cached(&self, fingerprint: Fingerprint, model: &dyn CostModel) -> bool {
        self.cache.peek(cache_key(fingerprint, model)).is_some()
    }

    /// The configured feedback-invalidation threshold.
    pub fn feedback_threshold(&self) -> f64 {
        self.feedback_threshold
    }

    /// Cache hit/miss/insertion/eviction/expiration counters.
    pub fn cache_counters(&self) -> mpdp_core::counters::CacheSnapshot {
        self.cache.counters()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached plans (e.g. after a statistics refresh).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// The routing configuration.
    pub fn router_config(&self) -> &RouterConfig {
        &self.router
    }
}

enum FutureState {
    /// Not yet probed the cache or flight table.
    Init,
    /// Joined a flight as a waiter; woken when the leader publishes.
    Waiting {
        flight: Arc<Flight>,
        /// `order[c]` = caller's relation in canonical slot `c`, for the
        /// remap-on-delivery.
        order: Vec<u32>,
        start: Instant,
        fp: Fingerprint,
        /// Open `flight.wait` span; recorded (by drop) when the leader's
        /// result is delivered, so its duration is the parked interval.
        wait_span: SpanGuard,
    },
    /// Resolved (polling again would panic, per the `Future` contract).
    Done,
}

/// Future returned by [`PlanService::plan_async`]. See that method for the
/// leader-plans-inside-poll caveat.
pub struct PlanFuture<'a> {
    service: &'a PlanService,
    q: &'a LargeQuery,
    model: &'a (dyn CostModel + Sync),
    req: &'a PlanRequest,
    state: FutureState,
}

impl std::fmt::Debug for PlanFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.state {
            FutureState::Init => "Init",
            FutureState::Waiting { .. } => "Waiting",
            FutureState::Done => "Done",
        };
        f.debug_struct("PlanFuture").field("state", &state).finish()
    }
}

impl Future for PlanFuture<'_> {
    type Output = Result<ServedPlan, OptError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // No pinned fields: every field is Unpin (references + state enum).
        let this = Pin::into_inner(self);
        loop {
            // Take the state out so arms can move pieces of it and install
            // the successor state without fighting the borrow checker.
            match std::mem::replace(&mut this.state, FutureState::Done) {
                FutureState::Done => panic!("PlanFuture polled after completion"),
                FutureState::Waiting {
                    flight,
                    order,
                    start,
                    fp,
                    wait_span,
                } => {
                    let Some(result) = flight.poll_result(cx.waker()) else {
                        this.state = FutureState::Waiting {
                            flight,
                            order,
                            start,
                            fp,
                            wait_span,
                        };
                        return Poll::Pending;
                    };
                    // Delivery: close the wait span here, not at whatever
                    // later point the state value would drop.
                    drop(wait_span);
                    let svc = this.service;
                    let out = match result {
                        Ok(planned) => {
                            svc.cache.record_coalesced();
                            Ok(ServedPlan {
                                planned: planned.with_relabeled_plan(&order),
                                cache_hit: false,
                                via: ServedVia::Coalesced,
                                service_time: start.elapsed(),
                                fingerprint: fp,
                            })
                        }
                        // The leader failed; a deadline-carrying waiter
                        // degrades instead of propagating the error.
                        Err(_) if this.req.deadline.is_some() => {
                            svc.serve_degraded(this.q, this.model, start, fp, &this.req.trace)
                        }
                        Err(e) => {
                            svc.cache.record_coalesced();
                            Err(e)
                        }
                    };
                    return Poll::Ready(out);
                }
                FutureState::Init => {
                    let svc = this.service;
                    if this.req.bypass_cache || this.req.strategy.is_some() {
                        return Poll::Ready(svc.plan_with(this.q, this.model, this.req));
                    }
                    let start = Instant::now();
                    let canonical = canonicalize(this.q);
                    let fp = canonical.fingerprint;
                    let cache_key = cache_key(fp, this.model);
                    if let Some(cached) = svc.cache.get_quiet(cache_key) {
                        svc.cache.record_hit();
                        this.req.trace.event(sites::CACHE_HIT, 0);
                        return Poll::Ready(Ok(ServedPlan {
                            planned: cached.planned.with_relabeled_plan(&canonical.order),
                            cache_hit: true,
                            via: ServedVia::Hit,
                            service_time: start.elapsed(),
                            fingerprint: fp,
                        }));
                    }
                    // A deadline that cannot afford the route degrades
                    // here, before joining or leading any flight.
                    if let Some(out) = svc.degrade_upfront(this.q, this.model, this.req, start, fp)
                    {
                        return Poll::Ready(out);
                    }
                    match svc
                        .flights
                        .join_or_lead(cache_key.as_u128(), || svc.cache.get_quiet(cache_key))
                    {
                        Admission::Cached(cached) => {
                            svc.cache.record_hit();
                            this.req.trace.event(sites::CACHE_HIT, 0);
                            return Poll::Ready(Ok(ServedPlan {
                                planned: cached.planned.with_relabeled_plan(&canonical.order),
                                cache_hit: true,
                                via: ServedVia::Hit,
                                service_time: start.elapsed(),
                                fingerprint: fp,
                            }));
                        }
                        Admission::Join(flight) => {
                            // Loop back into `Waiting`, which registers the
                            // waker (or resolves if the leader already
                            // finished). The coalesced/degraded outcome is
                            // counted at delivery.
                            this.state = FutureState::Waiting {
                                flight,
                                order: canonical.order,
                                start,
                                fp,
                                wait_span: this.req.trace.span(sites::FLIGHT_WAIT),
                            };
                        }
                        Admission::Lead(guard) => {
                            // Leader: plan synchronously inside this poll.
                            return Poll::Ready(svc.lead_flight(
                                this.q, this.model, this.req, &canonical, cache_key, guard, start,
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;
    use mpdp_workload::gen;

    #[test]
    fn router_thresholds() {
        let r = RouterConfig::default();
        let m = PgLikeCost::new();
        assert_eq!(r.route(&gen::chain(8, 1, &m)), "DPCCP (1CPU)");
        assert_eq!(r.route(&gen::chain(16, 1, &m)), "MPDP");
        // A 12-relation clique is fully dense -> simulated GPU.
        assert_eq!(r.route(&gen::clique(12, 1, &m)), "MPDP (GPU)");
        assert_eq!(r.route(&gen::chain(40, 1, &m)), "UnionDP-MPDP (15)");
    }

    #[test]
    fn hit_returns_callers_labels() {
        let m = PgLikeCost::new();
        let svc = PlanService::new();
        let q = gen::star(12, 5, &m);
        let cold = svc.plan(&q, &m).unwrap();
        assert!(!cold.cache_hit);
        // Same query, relations listed in reverse: must hit and validate
        // against the *relabeled* query.
        let perm: Vec<usize> = (0..12).rev().collect();
        let r = q.relabel(&perm);
        let hit = svc.plan(&r, &m).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.fingerprint, cold.fingerprint);
        assert!((hit.planned.cost - cold.planned.cost).abs() < 1e-9 * cold.planned.cost.max(1.0));
        let qi = r.to_query_info().unwrap();
        assert!(hit.planned.plan.validate(&qi.graph).is_none());
    }

    #[test]
    fn different_cost_models_never_share_entries() {
        use mpdp_cost::CoutCost;
        let m_pg = PgLikeCost::new();
        let m_cout = CoutCost;
        let svc = PlanService::new();
        let q = gen::chain(9, 4, &m_pg);
        let pg = svc.plan(&q, &m_pg).unwrap();
        assert!(!pg.cache_hit);
        // Same query under another model must miss and re-plan, not be
        // served the PgLike plan/cost.
        let cout = svc.plan(&q, &m_cout).unwrap();
        assert!(!cout.cache_hit, "model identity must separate cache keys");
        assert_ne!(pg.planned.cost, cout.planned.cost);
        // Each model's entry still hits for itself.
        assert!(svc.plan(&q, &m_pg).unwrap().cache_hit);
        assert!(svc.plan(&q, &m_cout).unwrap().cache_hit);
    }

    #[test]
    fn bypass_and_override() {
        let m = PgLikeCost::new();
        let svc = PlanService::new();
        let q = gen::chain(9, 2, &m);
        let bypass = PlanRequest {
            bypass_cache: true,
            ..Default::default()
        };
        svc.plan_with(&q, &m, &bypass).unwrap();
        assert_eq!(svc.cached_plans(), 0);
        let forced = PlanRequest {
            strategy: Some("MPDP".into()),
            ..Default::default()
        };
        let served = svc.plan_with(&q, &m, &forced).unwrap();
        assert_eq!(served.planned.strategy, "MPDP");
        // An override implies a cache bypass: it must neither poison the
        // cache for default requests nor be answered from it.
        assert!(!served.cache_hit);
        assert_eq!(svc.cached_plans(), 0);
        let default_served = svc.plan(&q, &m).unwrap();
        assert!(!default_served.cache_hit, "override must not populate");
        let forced_again = svc.plan_with(&q, &m, &forced).unwrap();
        assert!(
            !forced_again.cache_hit,
            "override must not be served another strategy's cached plan"
        );
        // Unknown strategy name surfaces as an error, not a panic (bypass
        // the cache so resolution actually runs — a hit never routes).
        let bogus = PlanRequest {
            strategy: Some("NoSuchPlanner".into()),
            bypass_cache: true,
            ..Default::default()
        };
        assert!(svc.plan_with(&q, &m, &bogus).is_err());
    }
}
