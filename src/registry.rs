//! Name-keyed strategy registry.
//!
//! Every algorithm in the workspace is registered under the paper's series
//! label (`"MPDP"`, `"Postgres (1CPU)"`, `"UnionDP-MPDP (15)"`, …) so
//! benches, tests and CLIs select strategies by string:
//!
//! ```
//! use mpdp::registry;
//! use mpdp_cost::PgLikeCost;
//!
//! let model = PgLikeCost::new();
//! let q = mpdp_workload::gen::star(8, 1, &model);
//! let mpdp = registry().get("MPDP").unwrap();
//! let planned = mpdp.plan(&q, &model, None).unwrap();
//! assert_eq!(planned.strategy, "MPDP");
//! ```
//!
//! Lookup is whitespace- and case-insensitive (`"MPDP(GPU)"` ≡
//! `"mpdp (gpu)"`), knows the aliases used across the paper's figures, and
//! resolves *parameterized* families on the fly: `"IDP2-MPDP (7)"`,
//! `"UnionDP-MPDP (20)"`, `"DPE (8CPU)"`, `"MPDP (4CPU)"` all work without
//! being pre-registered. Every *level-structured* exact name also resolves
//! with a ` [unranked]` suffix (`"MPDP [unranked]"`,
//! `"DPSub (GPU) [unranked]"`, …), selecting the legacy generate-and-filter
//! enumeration instead of the default connected-subset frontier — the mode
//! the paper's `unranked`-counter ablations (e.g. Figure 12) are stated in.
//! Edge-based algorithms (DPCCP, DPE) never unrank, so the suffix does not
//! resolve for them.

use crate::planner::{ExactAlgo, ExactStrategy, HeuristicStrategy, LargeAlgo, Planner, Strategy};
use mpdp_core::enumerate::EnumerationMode;
use std::sync::{Arc, OnceLock};

/// One registered strategy: canonical paper label plus lookup aliases.
struct Entry {
    canonical: &'static str,
    aliases: &'static [&'static str],
    strategy: Arc<dyn Strategy>,
    /// Set for exact entries, so mode-suffixed lookups (`… [unranked]`) can
    /// re-instantiate the algorithm with a different enumeration mode.
    exact_algo: Option<ExactAlgo>,
}

/// The name-keyed strategy registry. Obtain the process-wide instance with
/// [`registry()`].
pub struct Registry {
    entries: Vec<Entry>,
}

/// Lookup key normalization: strip whitespace, fold case.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>()
        .to_lowercase()
}

impl Registry {
    fn build() -> Registry {
        fn exact(
            canonical: &'static str,
            aliases: &'static [&'static str],
            algo: ExactAlgo,
        ) -> Entry {
            Entry {
                canonical,
                aliases,
                strategy: Arc::new(ExactStrategy::new(algo)),
                exact_algo: Some(algo),
            }
        }
        fn unranked(canonical: &'static str, algo: ExactAlgo) -> Entry {
            Entry {
                canonical,
                aliases: &[],
                strategy: Arc::new(
                    ExactStrategy::new(algo).with_enumeration(EnumerationMode::Unranked),
                ),
                exact_algo: Some(algo),
            }
        }
        fn heur(
            canonical: &'static str,
            aliases: &'static [&'static str],
            algo: LargeAlgo,
        ) -> Entry {
            Entry {
                canonical,
                aliases,
                strategy: Arc::new(HeuristicStrategy::new(algo)),
                exact_algo: None,
            }
        }
        const NO_ALIAS: &[&str] = &[];
        let entries = vec![
            // Exact, sequential (legend order of Figures 6–9 where present).
            exact(
                "Postgres (1CPU)",
                &["DPSize", "DPSize (1CPU)"],
                ExactAlgo::DpSize,
            ),
            exact("DPSub (1CPU)", &["DPSub"], ExactAlgo::DpSub),
            exact("DPCCP (1CPU)", &["DPCCP"], ExactAlgo::DpCcp),
            exact("MPDP", &["MPDP (1CPU)"], ExactAlgo::Mpdp),
            exact("MPDP-Tree", NO_ALIAS, ExactAlgo::MpdpTree),
            // Exact, CPU-parallel (24 cores = the paper's evaluation box).
            exact("DPE (24CPU)", NO_ALIAS, ExactAlgo::Dpe { threads: 24 }),
            exact("MPDP (24CPU)", NO_ALIAS, ExactAlgo::MpdpCpu { threads: 24 }),
            exact(
                "DPSub (24CPU)",
                NO_ALIAS,
                ExactAlgo::DpSubCpu { threads: 24 },
            ),
            exact("PDP (24CPU)", NO_ALIAS, ExactAlgo::Pdp { threads: 24 }),
            // Exact, simulated GPU.
            exact(
                "MPDP (GPU)",
                NO_ALIAS,
                ExactAlgo::MpdpGpu {
                    fused_prune: true,
                    ccc: true,
                },
            ),
            exact(
                "MPDP (GPU, baseline)",
                NO_ALIAS,
                ExactAlgo::MpdpGpu {
                    fused_prune: false,
                    ccc: false,
                },
            ),
            exact(
                "MPDP (GPU, +fusion)",
                NO_ALIAS,
                ExactAlgo::MpdpGpu {
                    fused_prune: true,
                    ccc: false,
                },
            ),
            exact(
                "MPDP (GPU, +CCC)",
                NO_ALIAS,
                ExactAlgo::MpdpGpu {
                    fused_prune: false,
                    ccc: true,
                },
            ),
            exact("DPSub (GPU)", NO_ALIAS, ExactAlgo::DpSubGpu),
            exact("DPSize (GPU)", NO_ALIAS, ExactAlgo::DpSizeGpu),
            // Legacy generate-and-filter variants of the flagship entries
            // (any other exact name resolves with the same suffix on the
            // fly; these are registered so `names()` advertises the mode).
            unranked("MPDP [unranked]", ExactAlgo::Mpdp),
            unranked("DPSub (1CPU) [unranked]", ExactAlgo::DpSub),
            unranked(
                "MPDP (GPU) [unranked]",
                ExactAlgo::MpdpGpu {
                    fused_prune: true,
                    ccc: true,
                },
            ),
            unranked("DPSub (GPU) [unranked]", ExactAlgo::DpSubGpu),
            // Heuristics (Tables 1–2).
            heur("GE-QO", &["GEQO"], LargeAlgo::Geqo),
            heur("GOO", NO_ALIAS, LargeAlgo::Goo),
            heur("LinDP", NO_ALIAS, LargeAlgo::LinDp),
            heur("IKKBZ", NO_ALIAS, LargeAlgo::Ikkbz),
            heur("IDP1-MPDP (15)", NO_ALIAS, LargeAlgo::Idp1 { k: 15 }),
            heur("IDP2-MPDP (15)", NO_ALIAS, LargeAlgo::Idp2 { k: 15 }),
            heur("IDP2-MPDP (25)", NO_ALIAS, LargeAlgo::Idp2 { k: 25 }),
            heur("UnionDP-MPDP (15)", NO_ALIAS, LargeAlgo::UnionDp { k: 15 }),
            // The adaptive deployment (§6): exact MPDP ≤ 18, UnionDP beyond.
            Entry {
                canonical: "Adaptive",
                aliases: NO_ALIAS,
                strategy: Arc::new(Planner::adaptive_default()),
                exact_algo: None,
            },
        ];
        Registry { entries }
    }

    /// Canonical names in registration order (paper legend order within each
    /// family).
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.canonical).collect()
    }

    /// Resolves `name` to a strategy.
    ///
    /// Tries canonical names and aliases first (whitespace/case-insensitive),
    /// then the parameterized families `IDP1-MPDP (k)`, `IDP2-MPDP (k)`,
    /// `UnionDP-MPDP (k)`, `DPE (nCPU)`, `MPDP (nCPU)`, `DPSub (nCPU)`,
    /// `PDP (nCPU)`. A trailing ` [unranked]` on a *level-structured* exact
    /// name (static or parameterized) selects the legacy generate-and-filter
    /// enumeration; edge-based algorithms (DPCCP, DPE) never unrank, so the
    /// suffix does not resolve for them rather than yield a misleading label.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Strategy>> {
        let key = normalize(name);
        for e in &self.entries {
            if normalize(e.canonical) == key || e.aliases.iter().any(|a| normalize(a) == key) {
                return Some(Arc::clone(&e.strategy));
            }
        }
        if let Some(base) = key.strip_suffix("[unranked]") {
            let algo = self
                .exact_algo_for(base)
                .or_else(|| match parse_parameterized(base)? {
                    Parameterized::Exact(a) => Some(a),
                    Parameterized::Heuristic(_) => None,
                })
                .filter(|a| a.has_enumeration_mode())?;
            return Some(Arc::new(
                ExactStrategy::new(algo).with_enumeration(EnumerationMode::Unranked),
            ));
        }
        match parse_parameterized(&key)? {
            Parameterized::Exact(a) => Some(Arc::new(ExactStrategy::new(a))),
            Parameterized::Heuristic(a) => Some(Arc::new(HeuristicStrategy::new(a))),
        }
    }

    /// The [`ExactAlgo`] registered under a normalized name, if any.
    fn exact_algo_for(&self, key: &str) -> Option<ExactAlgo> {
        self.entries
            .iter()
            .find(|e| {
                normalize(e.canonical) == key || e.aliases.iter().any(|a| normalize(a) == key)
            })
            .and_then(|e| e.exact_algo)
    }
}

/// Outcome of parameterized-name parsing.
enum Parameterized {
    Exact(ExactAlgo),
    Heuristic(LargeAlgo),
}

/// Resolves `base(param)`-shaped names not in the static table.
fn parse_parameterized(key: &str) -> Option<Parameterized> {
    let open = key.find('(')?;
    if !key.ends_with(')') {
        return None;
    }
    let base = &key[..open];
    let param = &key[open + 1..key.len() - 1];
    if let Some(cores) = param.strip_suffix("cpu") {
        let threads: usize = cores.parse().ok().filter(|&t| t >= 1)?;
        let algo = match base {
            "dpe" => ExactAlgo::Dpe { threads },
            "mpdp" => ExactAlgo::MpdpCpu { threads },
            "dpsub" => ExactAlgo::DpSubCpu { threads },
            "pdp" => ExactAlgo::Pdp { threads },
            "dpsize" | "postgres" => ExactAlgo::Pdp { threads },
            _ => return None,
        };
        return Some(Parameterized::Exact(algo));
    }
    let k: usize = param.parse().ok().filter(|&k| k >= 2)?;
    let algo = match base {
        "idp1-mpdp" => LargeAlgo::Idp1 { k },
        "idp2-mpdp" => LargeAlgo::Idp2 { k },
        "uniondp-mpdp" | "uniondp" => LargeAlgo::UnionDp { k },
        _ => return None,
    };
    Some(Parameterized::Heuristic(algo))
}

/// The process-wide strategy registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::build)
}
