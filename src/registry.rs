//! Name-keyed strategy registry.
//!
//! Every algorithm in the workspace is registered under the paper's series
//! label (`"MPDP"`, `"Postgres (1CPU)"`, `"UnionDP-MPDP (15)"`, …) so
//! benches, tests and CLIs select strategies by string:
//!
//! ```
//! use mpdp::registry;
//! use mpdp_cost::PgLikeCost;
//!
//! let model = PgLikeCost::new();
//! let q = mpdp_workload::gen::star(8, 1, &model);
//! let mpdp = registry().get("MPDP").unwrap();
//! let planned = mpdp.plan(&q, &model, None).unwrap();
//! assert_eq!(planned.strategy, "MPDP");
//! ```
//!
//! Lookup is whitespace- and case-insensitive (`"MPDP(GPU)"` ≡
//! `"mpdp (gpu)"`), knows the aliases used across the paper's figures, and
//! resolves *parameterized* families on the fly: `"IDP2-MPDP (7)"`,
//! `"UnionDP-MPDP (20)"`, `"DPE (8CPU)"`, `"MPDP (4CPU)"` all work without
//! being pre-registered.

use crate::planner::{ExactAlgo, ExactStrategy, HeuristicStrategy, LargeAlgo, Planner, Strategy};
use std::sync::{Arc, OnceLock};

/// One registered strategy: canonical paper label plus lookup aliases.
struct Entry {
    canonical: &'static str,
    aliases: &'static [&'static str],
    strategy: Arc<dyn Strategy>,
}

/// The name-keyed strategy registry. Obtain the process-wide instance with
/// [`registry()`].
pub struct Registry {
    entries: Vec<Entry>,
}

/// Lookup key normalization: strip whitespace, fold case.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>()
        .to_lowercase()
}

impl Registry {
    fn build() -> Registry {
        fn exact(algo: ExactAlgo) -> Arc<dyn Strategy> {
            Arc::new(ExactStrategy::new(algo))
        }
        fn heur(algo: LargeAlgo) -> Arc<dyn Strategy> {
            Arc::new(HeuristicStrategy::new(algo))
        }
        let e = |canonical, aliases, strategy| Entry {
            canonical,
            aliases,
            strategy,
        };
        const NO_ALIAS: &[&str] = &[];
        let entries = vec![
            // Exact, sequential (legend order of Figures 6–9 where present).
            e(
                "Postgres (1CPU)",
                &["DPSize", "DPSize (1CPU)"] as &[&str],
                exact(ExactAlgo::DpSize),
            ),
            e("DPSub (1CPU)", &["DPSub"], exact(ExactAlgo::DpSub)),
            e("DPCCP (1CPU)", &["DPCCP"], exact(ExactAlgo::DpCcp)),
            e("MPDP", &["MPDP (1CPU)"], exact(ExactAlgo::Mpdp)),
            e("MPDP-Tree", NO_ALIAS, exact(ExactAlgo::MpdpTree)),
            // Exact, CPU-parallel (24 cores = the paper's evaluation box).
            e(
                "DPE (24CPU)",
                NO_ALIAS,
                exact(ExactAlgo::Dpe { threads: 24 }),
            ),
            e(
                "MPDP (24CPU)",
                NO_ALIAS,
                exact(ExactAlgo::MpdpCpu { threads: 24 }),
            ),
            e(
                "DPSub (24CPU)",
                NO_ALIAS,
                exact(ExactAlgo::DpSubCpu { threads: 24 }),
            ),
            e(
                "PDP (24CPU)",
                NO_ALIAS,
                exact(ExactAlgo::Pdp { threads: 24 }),
            ),
            // Exact, simulated GPU.
            e(
                "MPDP (GPU)",
                NO_ALIAS,
                exact(ExactAlgo::MpdpGpu {
                    fused_prune: true,
                    ccc: true,
                }),
            ),
            e(
                "MPDP (GPU, baseline)",
                NO_ALIAS,
                exact(ExactAlgo::MpdpGpu {
                    fused_prune: false,
                    ccc: false,
                }),
            ),
            e(
                "MPDP (GPU, +fusion)",
                NO_ALIAS,
                exact(ExactAlgo::MpdpGpu {
                    fused_prune: true,
                    ccc: false,
                }),
            ),
            e(
                "MPDP (GPU, +CCC)",
                NO_ALIAS,
                exact(ExactAlgo::MpdpGpu {
                    fused_prune: false,
                    ccc: true,
                }),
            ),
            e("DPSub (GPU)", NO_ALIAS, exact(ExactAlgo::DpSubGpu)),
            e("DPSize (GPU)", NO_ALIAS, exact(ExactAlgo::DpSizeGpu)),
            // Heuristics (Tables 1–2).
            e("GE-QO", &["GEQO"], heur(LargeAlgo::Geqo)),
            e("GOO", NO_ALIAS, heur(LargeAlgo::Goo)),
            e("LinDP", NO_ALIAS, heur(LargeAlgo::LinDp)),
            e("IKKBZ", NO_ALIAS, heur(LargeAlgo::Ikkbz)),
            e("IDP1-MPDP (15)", NO_ALIAS, heur(LargeAlgo::Idp1 { k: 15 })),
            e("IDP2-MPDP (15)", NO_ALIAS, heur(LargeAlgo::Idp2 { k: 15 })),
            e("IDP2-MPDP (25)", NO_ALIAS, heur(LargeAlgo::Idp2 { k: 25 })),
            e(
                "UnionDP-MPDP (15)",
                NO_ALIAS,
                heur(LargeAlgo::UnionDp { k: 15 }),
            ),
            // The adaptive deployment (§6): exact MPDP ≤ 18, UnionDP beyond.
            e("Adaptive", NO_ALIAS, Arc::new(Planner::adaptive_default())),
        ];
        Registry { entries }
    }

    /// Canonical names in registration order (paper legend order within each
    /// family).
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.canonical).collect()
    }

    /// Resolves `name` to a strategy.
    ///
    /// Tries canonical names and aliases first (whitespace/case-insensitive),
    /// then the parameterized families `IDP1-MPDP (k)`, `IDP2-MPDP (k)`,
    /// `UnionDP-MPDP (k)`, `DPE (nCPU)`, `MPDP (nCPU)`, `DPSub (nCPU)`,
    /// `PDP (nCPU)`.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Strategy>> {
        let key = normalize(name);
        for e in &self.entries {
            if normalize(e.canonical) == key || e.aliases.iter().any(|a| normalize(a) == key) {
                return Some(Arc::clone(&e.strategy));
            }
        }
        parse_parameterized(&key)
    }
}

/// Resolves `base(param)`-shaped names not in the static table.
fn parse_parameterized(key: &str) -> Option<Arc<dyn Strategy>> {
    let open = key.find('(')?;
    if !key.ends_with(')') {
        return None;
    }
    let base = &key[..open];
    let param = &key[open + 1..key.len() - 1];
    if let Some(cores) = param.strip_suffix("cpu") {
        let threads: usize = cores.parse().ok().filter(|&t| t >= 1)?;
        let algo = match base {
            "dpe" => ExactAlgo::Dpe { threads },
            "mpdp" => ExactAlgo::MpdpCpu { threads },
            "dpsub" => ExactAlgo::DpSubCpu { threads },
            "pdp" => ExactAlgo::Pdp { threads },
            "dpsize" | "postgres" => ExactAlgo::Pdp { threads },
            _ => return None,
        };
        return Some(Arc::new(ExactStrategy::new(algo)));
    }
    let k: usize = param.parse().ok().filter(|&k| k >= 2)?;
    let algo = match base {
        "idp1-mpdp" => LargeAlgo::Idp1 { k },
        "idp2-mpdp" => LargeAlgo::Idp2 { k },
        "uniondp-mpdp" | "uniondp" => LargeAlgo::UnionDp { k },
        _ => return None,
    };
    Some(Arc::new(HeuristicStrategy::new(algo)))
}

/// The process-wide strategy registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::build)
}
