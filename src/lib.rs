//! # mpdp
//!
//! Facade crate for the MPDP workspace — a from-scratch Rust reproduction of
//! *"Efficient Massively Parallel Join Optimization for Large Queries"*
//! (SIGMOD 2022). Re-exports the public API of every member crate and adds
//! [`Optimizer`], a one-stop adaptive driver that mirrors how the paper
//! deploys MPDP inside PostgreSQL: exact MPDP up to a configurable
//! heuristic-fall-back limit, UnionDP-MPDP beyond it.
//!
//! ```
//! use mpdp::Optimizer;
//! use mpdp::prelude::*;
//!
//! let model = PgLikeCost::new();
//! let query = mpdp::workload::gen::star(20, 7, &model);
//! let plan = Optimizer::new().optimize(&query, &model).unwrap();
//! assert_eq!(plan.plan.num_rels(), 20);
//! ```
//!
//! See the workspace `README.md` for a tour and `examples/` for runnable
//! entry points.

#![warn(missing_docs)]

pub use mpdp_core as core;
pub use mpdp_cost as cost;
pub use mpdp_dp as dp;
pub use mpdp_gpu as gpu;
pub use mpdp_heuristics as heuristics;
pub use mpdp_parallel as parallel;
pub use mpdp_workload as workload;

use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_heuristics::{LargeOptResult, LargeOptimizer, UnionDp};
use std::time::Duration;

/// Most-used items in one import.
pub mod prelude {
    pub use mpdp_core::{
        JoinGraph, LargeQuery, OptError, PlanTree, QueryInfo, RelInfo, RelSet,
    };
    pub use mpdp_cost::{CostModel, CoutCost, PgLikeCost};
    pub use mpdp_dp::{DpCcp, DpSize, DpSub, JoinOrderOptimizer, Mpdp, MpdpTree, OptContext};
    pub use mpdp_heuristics::{LargeOptResult, LargeOptimizer};
}

/// Adaptive join-order optimizer.
///
/// Small queries (≤ [`Optimizer::exact_limit`]) are solved exactly with MPDP;
/// larger ones fall back to UnionDP-MPDP — the configuration the paper
/// recommends after raising PostgreSQL's heuristic-fall-back limit
/// ("we are able to increase the heuristic-fall-back limit from 12 relations
/// to 25 relations with same time budget").
#[derive(Copy, Clone, Debug)]
pub struct Optimizer {
    /// Largest query size optimized exactly.
    pub exact_limit: usize,
    /// UnionDP partition bound for larger queries.
    pub partition_k: usize,
    /// Optional optimization budget.
    pub budget: Option<Duration>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            // 18 is a sensible exact limit for a single CPU core; the paper
            // reaches 25 with a GPU.
            exact_limit: 18,
            partition_k: 15,
            budget: None,
        }
    }
}

impl Optimizer {
    /// Default adaptive optimizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the optimization budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Optimizes `query`, choosing exact MPDP or UnionDP-MPDP by size.
    pub fn optimize(
        &self,
        query: &LargeQuery,
        model: &dyn CostModel,
    ) -> Result<LargeOptResult, OptError> {
        if query.num_rels() <= self.exact_limit.min(64) {
            let qi = query.to_query_info().ok_or(OptError::TooLarge {
                got: query.num_rels(),
                max: 64,
            })?;
            let ctx = match self.budget {
                Some(b) => mpdp_dp::OptContext::with_budget(&qi, model, b),
                None => mpdp_dp::OptContext::new(&qi, model),
            };
            let r = mpdp_dp::Mpdp::run(&ctx)?;
            return Ok(LargeOptResult {
                cost: r.cost,
                rows: r.rows,
                plan: r.plan,
            });
        }
        UnionDp {
            k: self.partition_k,
        }
        .optimize(query, model, self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;

    #[test]
    fn adaptive_small_is_exact() {
        let model = PgLikeCost::new();
        let q = workload::gen::cycle(8, 3, &model);
        let adaptive = Optimizer::new().optimize(&q, &model).unwrap();
        let qi = q.to_query_info().unwrap();
        let exact =
            mpdp_dp::Mpdp::run(&mpdp_dp::OptContext::new(&qi, &model)).unwrap();
        assert!((adaptive.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }

    #[test]
    fn adaptive_large_uses_heuristic() {
        let model = PgLikeCost::new();
        let q = workload::gen::snowflake(80, 4, 5, &model);
        let r = Optimizer::new()
            .with_budget(Duration::from_secs(60))
            .optimize(&q, &model)
            .unwrap();
        assert_eq!(r.plan.num_rels(), 80);
        assert!(mpdp_heuristics::validate_large(&r.plan, &q).is_none());
    }
}
