//! # mpdp
//!
//! Facade crate for the MPDP workspace — a from-scratch Rust reproduction of
//! *"Efficient Massively Parallel Join Optimization for Large Queries"*
//! (SIGMOD 2022). Re-exports the public API of every member crate and hosts
//! the unified planning API:
//!
//! * [`Strategy`] — one trait every algorithm (exact DP, CPU-parallel,
//!   simulated-GPU, heuristic) adapts to;
//! * [`registry()`] — name-keyed strategy lookup using the paper's series
//!   labels (`"MPDP"`, `"Postgres (1CPU)"`, `"UnionDP-MPDP (15)"`, …);
//! * [`PlannerBuilder`] / [`Planner`] — the adaptive deployment the paper
//!   recommends: exact MPDP up to a hardware-dependent relation limit, a
//!   heuristic hybrid beyond it, with sequential / CPU-parallel / GPU
//!   backends swapped in per platform;
//! * [`PlanService`] — the concurrent serving layer: a sharded LRU cache
//!   keyed by canonical query fingerprints plus adaptive size/density
//!   routing, for workloads that plan repeated query shapes under latency
//!   budgets (see `service`); its [`PlanService::observe`] hook closes the
//!   loop with the [`exec`] executor by invalidating cached plans whose
//!   cardinality estimates an execution disproved.
//!
//! ```
//! use mpdp::prelude::*;
//!
//! let model = PgLikeCost::new();
//! let query = mpdp::workload::gen::star(20, 7, &model);
//!
//! // By name, as the benches do:
//! let planned = mpdp::registry()
//!     .get("MPDP")
//!     .unwrap()
//!     .plan(&query, &model, None)
//!     .unwrap();
//! assert_eq!(planned.plan.num_rels(), 20);
//!
//! // Or composed, as a deployment would:
//! let planner = PlannerBuilder::new()
//!     .exact(ExactAlgo::Mpdp)
//!     .fallback(LargeAlgo::UnionDp { k: 15 })
//!     .exact_limit(18)
//!     .build()
//!     .unwrap();
//! let planned = planner.plan_query(&query, &model).unwrap();
//! assert_eq!(planned.plan.num_rels(), 20);
//! ```
//!
//! See the workspace `README.md` for a tour and `examples/` for runnable
//! entry points.

#![warn(missing_docs)]

pub use mpdp_core as core;
pub use mpdp_cost as cost;
pub use mpdp_dp as dp;
pub use mpdp_exec as exec;
pub use mpdp_gpu as gpu;
pub use mpdp_heuristics as heuristics;
pub use mpdp_parallel as parallel;
pub use mpdp_workload as workload;

pub mod cache;
mod flight;
pub mod planner;
pub mod registry;
pub mod service;

pub use cache::{CacheConfig, CachedPlan, PlanCache};
pub use planner::{
    Backend, ExactAlgo, ExactStrategy, HeuristicStrategy, LargeAlgo, Planned, Planner,
    PlannerBuilder, Strategy, EXACT_MAX_RELS,
};
pub use registry::{registry, Registry};
pub use service::{
    PlanFuture, PlanRequest, PlanService, PlanServiceBuilder, RouterConfig, ServedPlan, ServedVia,
};

pub use mpdp_core::EnumerationMode;

/// Most-used items in one import.
pub mod prelude {
    pub use crate::planner::{
        Backend, ExactAlgo, LargeAlgo, Planned, Planner, PlannerBuilder, Strategy,
    };
    pub use crate::registry::registry;
    pub use crate::service::{
        PlanRequest, PlanService, PlanServiceBuilder, RouterConfig, ServedVia,
    };
    pub use mpdp_core::{
        EnumerationMode, JoinGraph, LargeQuery, OptError, PlanTree, QueryInfo, RelInfo, RelSet,
    };
    pub use mpdp_cost::{CostModel, CoutCost, PgLikeCost};
    pub use mpdp_dp::{DpCcp, DpSize, DpSub, Mpdp, MpdpTree, OptContext};
    pub use mpdp_exec::{ExecConfig, ExecReport, Executor, GenConfig};
    pub use mpdp_heuristics::LargeOptResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;
    use std::time::Duration;

    #[test]
    fn adaptive_small_is_exact() {
        let model = PgLikeCost::new();
        let q = workload::gen::cycle(8, 3, &model);
        let adaptive = Planner::adaptive_default().plan_query(&q, &model).unwrap();
        let qi = q.to_query_info().unwrap();
        let exact = mpdp_dp::Mpdp::run(&mpdp_dp::OptContext::new(&qi, &model)).unwrap();
        assert!((adaptive.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }

    #[test]
    fn adaptive_large_uses_heuristic() {
        let model = PgLikeCost::new();
        let q = workload::gen::snowflake(80, 4, 5, &model);
        let r = PlannerBuilder::new()
            .budget(Duration::from_secs(60))
            .build()
            .unwrap()
            .plan_query(&q, &model)
            .unwrap();
        assert_eq!(r.plan.num_rels(), 80);
        assert!(mpdp_heuristics::validate_large(&r.plan, &q).is_none());
    }

    #[test]
    fn raised_exact_limit_routes_past_bitmap_ceiling_to_heuristic() {
        // A user-set exact_limit above 64 must send 65+-relation queries to
        // the large path instead of failing with TooLarge.
        let model = PgLikeCost::new();
        let q = workload::gen::snowflake(80, 4, 5, &model);
        let r = PlannerBuilder::new()
            .budget(Duration::from_secs(60))
            .exact_limit(200)
            .build()
            .unwrap()
            .plan_query(&q, &model)
            .unwrap();
        assert_eq!(r.plan.num_rels(), 80);
        assert!(mpdp_heuristics::validate_large(&r.plan, &q).is_none());
    }
}
