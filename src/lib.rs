//! # mpdp
//!
//! Facade crate for the MPDP workspace — a from-scratch Rust reproduction of
//! *"Efficient Massively Parallel Join Optimization for Large Queries"*
//! (SIGMOD 2022). Re-exports the public API of every member crate and hosts
//! the unified planning API:
//!
//! * [`Strategy`] — one trait every algorithm (exact DP, CPU-parallel,
//!   simulated-GPU, heuristic) adapts to;
//! * [`registry()`] — name-keyed strategy lookup using the paper's series
//!   labels (`"MPDP"`, `"Postgres (1CPU)"`, `"UnionDP-MPDP (15)"`, …);
//! * [`PlannerBuilder`] / [`Planner`] — the adaptive deployment the paper
//!   recommends: exact MPDP up to a hardware-dependent relation limit, a
//!   heuristic hybrid beyond it, with sequential / CPU-parallel / GPU
//!   backends swapped in per platform.
//!
//! ```
//! use mpdp::prelude::*;
//!
//! let model = PgLikeCost::new();
//! let query = mpdp::workload::gen::star(20, 7, &model);
//!
//! // By name, as the benches do:
//! let planned = mpdp::registry()
//!     .get("MPDP")
//!     .unwrap()
//!     .plan(&query, &model, None)
//!     .unwrap();
//! assert_eq!(planned.plan.num_rels(), 20);
//!
//! // Or composed, as a deployment would:
//! let planner = PlannerBuilder::new()
//!     .exact(ExactAlgo::Mpdp)
//!     .fallback(LargeAlgo::UnionDp { k: 15 })
//!     .exact_limit(18)
//!     .build()
//!     .unwrap();
//! let planned = planner.plan_query(&query, &model).unwrap();
//! assert_eq!(planned.plan.num_rels(), 20);
//! ```
//!
//! See the workspace `README.md` for a tour and `examples/` for runnable
//! entry points.

#![warn(missing_docs)]

pub use mpdp_core as core;
pub use mpdp_cost as cost;
pub use mpdp_dp as dp;
pub use mpdp_gpu as gpu;
pub use mpdp_heuristics as heuristics;
pub use mpdp_parallel as parallel;
pub use mpdp_workload as workload;

pub mod planner;
pub mod registry;

pub use planner::{
    Backend, ExactAlgo, ExactStrategy, HeuristicStrategy, LargeAlgo, Planned, Planner,
    PlannerBuilder, Strategy, EXACT_MAX_RELS,
};
pub use registry::{registry, Registry};

pub use mpdp_core::EnumerationMode;

use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_heuristics::LargeOptResult;
use std::time::Duration;

/// Deprecated exact-optimizer trait, superseded by [`Strategy`].
#[deprecated(
    since = "0.2.0",
    note = "use mpdp::Strategy (via mpdp::registry() or PlannerBuilder) instead"
)]
pub use mpdp_dp::JoinOrderOptimizer;

/// Deprecated heuristic-optimizer trait, superseded by [`Strategy`].
#[deprecated(
    since = "0.2.0",
    note = "use mpdp::Strategy (via mpdp::registry() or PlannerBuilder) instead"
)]
pub use mpdp_heuristics::LargeOptimizer;

/// Most-used items in one import.
pub mod prelude {
    pub use crate::planner::{
        Backend, ExactAlgo, LargeAlgo, Planned, Planner, PlannerBuilder, Strategy,
    };
    pub use crate::registry::registry;
    pub use mpdp_core::{
        EnumerationMode, JoinGraph, LargeQuery, OptError, PlanTree, QueryInfo, RelInfo, RelSet,
    };
    pub use mpdp_cost::{CostModel, CoutCost, PgLikeCost};
    pub use mpdp_dp::{DpCcp, DpSize, DpSub, Mpdp, MpdpTree, OptContext};
    pub use mpdp_heuristics::LargeOptResult;
}

/// Adaptive join-order optimizer (deprecated shim over [`Planner`]).
///
/// Small queries (≤ [`Optimizer::exact_limit`]) are solved exactly with MPDP;
/// larger ones fall back to UnionDP-MPDP — the configuration the paper
/// recommends after raising PostgreSQL's heuristic-fall-back limit
/// ("we are able to increase the heuristic-fall-back limit from 12 relations
/// to 25 relations with same time budget").
///
/// Unlike the pre-`Planner` implementation, an `exact_limit` above 64 no
/// longer risks [`OptError::TooLarge`]: queries beyond the 64-relation
/// bitmap ceiling always route to the heuristic path.
#[deprecated(since = "0.2.0", note = "use mpdp::PlannerBuilder instead")]
#[derive(Copy, Clone, Debug)]
pub struct Optimizer {
    /// Largest query size optimized exactly.
    pub exact_limit: usize,
    /// UnionDP partition bound for larger queries.
    pub partition_k: usize,
    /// Optional optimization budget.
    pub budget: Option<Duration>,
}

#[allow(deprecated)]
impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            // 18 is a sensible exact limit for a single CPU core; the paper
            // reaches 25 with a GPU.
            exact_limit: 18,
            partition_k: 15,
            budget: None,
        }
    }
}

#[allow(deprecated)]
impl Optimizer {
    /// Default adaptive optimizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the optimization budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Optimizes `query`, choosing exact MPDP or UnionDP-MPDP by size.
    pub fn optimize(
        &self,
        query: &LargeQuery,
        model: &dyn CostModel,
    ) -> Result<LargeOptResult, OptError> {
        let mut builder = PlannerBuilder::new()
            .exact(ExactAlgo::Mpdp)
            .fallback(LargeAlgo::UnionDp {
                k: self.partition_k,
            })
            .exact_limit(self.exact_limit);
        if let Some(b) = self.budget {
            builder = builder.budget(b);
        }
        let planned = builder.build()?.plan_query(query, model)?;
        Ok(LargeOptResult {
            cost: planned.cost,
            rows: planned.rows,
            plan: planned.plan,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;

    #[test]
    fn adaptive_small_is_exact() {
        let model = PgLikeCost::new();
        let q = workload::gen::cycle(8, 3, &model);
        let adaptive = Optimizer::new().optimize(&q, &model).unwrap();
        let qi = q.to_query_info().unwrap();
        let exact = mpdp_dp::Mpdp::run(&mpdp_dp::OptContext::new(&qi, &model)).unwrap();
        assert!((adaptive.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }

    #[test]
    fn adaptive_large_uses_heuristic() {
        let model = PgLikeCost::new();
        let q = workload::gen::snowflake(80, 4, 5, &model);
        let r = Optimizer::new()
            .with_budget(Duration::from_secs(60))
            .optimize(&q, &model)
            .unwrap();
        assert_eq!(r.plan.num_rels(), 80);
        assert!(mpdp_heuristics::validate_large(&r.plan, &q).is_none());
    }

    #[test]
    fn raised_exact_limit_routes_past_bitmap_ceiling_to_heuristic() {
        // A user-set exact_limit above 64 must send 65+-relation queries to
        // the large path instead of failing with TooLarge.
        let model = PgLikeCost::new();
        let q = workload::gen::snowflake(80, 4, 5, &model);
        let mut opt = Optimizer::new().with_budget(Duration::from_secs(60));
        opt.exact_limit = 200;
        let r = opt.optimize(&q, &model).unwrap();
        assert_eq!(r.plan.num_rels(), 80);
        assert!(mpdp_heuristics::validate_large(&r.plan, &q).is_none());
    }
}
