//! The unified planning API.
//!
//! Every optimizer in the workspace — exact DP (`mpdp-dp`), CPU-parallel
//! (`mpdp-parallel`), simulated-GPU (`mpdp-gpu`) and heuristic
//! (`mpdp-heuristics`) — is adapted to one [`Strategy`] trait, so benches,
//! tests and CLIs can treat "Postgres (1CPU)", "MPDP (GPU)" and
//! "UnionDP-MPDP (15)" uniformly and select them by the paper's series
//! labels via [`crate::registry()`].
//!
//! [`PlannerBuilder`] composes the paper's *adaptive deployment* (§6–7):
//! an exact algorithm for queries up to a hardware-dependent relation limit,
//! a large-query heuristic beyond it, and a backend
//! ([`Backend::Sequential`], [`Backend::CpuParallel`], [`Backend::GpuSim`])
//! chosen per platform.

use mpdp_core::counters::{Counters, Profile};
use mpdp_core::enumerate::EnumerationMode;
use mpdp_core::plan::PlanTree;
use mpdp_core::{LargeQuery, OptError, QueryInfo};
use mpdp_cost::model::CostModel;
use mpdp_gpu::drivers::{DpSizeGpu, DpSubGpu, MpdpGpu};
use mpdp_gpu::GpuStats;
use mpdp_heuristics::{
    idp1_mpdp, idp2_mpdp, Geqo, Goo, Ikkbz, LargeOptResult, LargeOptimizer, LinDp, UnionDp,
};
use mpdp_parallel::hwmodel::{Calibration, CpuModel};
use mpdp_parallel::{level_par, Dpe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard ceiling of the bitmap-based exact-DP representation (`RelSet` is a
/// 64-bit bitmap).
pub const EXACT_MAX_RELS: usize = 64;

/// Execution backend for the exact side of a [`Planner`].
///
/// On this single-core container, `CpuParallel` and `GpuSim` run their real
/// implementations (plans and counters are identical to `Sequential` —
/// enforced by `tests/exact_equivalence.rs`) while the *reported* time comes
/// from the calibrated work/span model resp. the SIMT simulator (see
/// `DESIGN.md` §2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Plain sequential execution; reported time is measured wall time.
    Sequential,
    /// Level-parallel CPU execution; reported time is the work/span-model
    /// prediction for this many cores.
    CpuParallel(usize),
    /// Software-SIMT execution; reported time is the simulated GTX-1080 time.
    GpuSim,
}

/// Outcome of a [`Strategy`] run: the plan plus uniform observability.
#[derive(Clone, Debug)]
pub struct Planned {
    /// The chosen join plan (leaves carry original relation indices).
    pub plan: PlanTree,
    /// Plan cost under the run's cost model.
    pub cost: f64,
    /// Estimated output cardinality of the full join.
    pub rows: f64,
    /// Measured wall time of the run on this machine.
    pub wall: Duration,
    /// The time to report in figures: `wall` for sequential strategies, the
    /// hardware-model / SIMT-simulated prediction for parallel and GPU ones.
    pub reported: Duration,
    /// Join-Pair counters (exact strategies only).
    pub counters: Option<Counters>,
    /// Per-level statistics feeding the hardware timing model (exact
    /// strategies only).
    pub profile: Option<Profile>,
    /// Device statistics (GPU-simulated strategies only).
    pub gpu: Option<GpuStats>,
    /// Name of the strategy that produced this plan (for adaptive planners,
    /// the branch that actually ran).
    pub strategy: String,
}

impl Planned {
    /// The same result with plan leaves renamed through `new_of_old`
    /// (see [`PlanTree::relabel`]); every other field carries over.
    ///
    /// Built field-wise so the only tree allocated is the relabeled one —
    /// this is the serving layer's canonical-slot translation, run on every
    /// cache hit and store.
    pub fn with_relabeled_plan(&self, new_of_old: &[u32]) -> Planned {
        Planned {
            plan: self.plan.relabel(new_of_old),
            cost: self.cost,
            rows: self.rows,
            wall: self.wall,
            reported: self.reported,
            counters: self.counters,
            profile: self.profile.clone(),
            gpu: self.gpu,
            strategy: self.strategy.clone(),
        }
    }
}

/// A join-order planning algorithm selectable by name.
///
/// This is the single front door that replaces the historical
/// `JoinOrderOptimizer` (exact, `QueryInfo`-based) / `LargeOptimizer`
/// (heuristic, `LargeQuery`-based) split: every algorithm accepts both query
/// representations and reports through [`Planned`].
pub trait Strategy: Send + Sync {
    /// The paper's series label for this strategy (e.g. `"MPDP"`,
    /// `"UnionDP-MPDP (15)"`, `"Postgres (1CPU)"`). Round-trips through
    /// [`crate::registry()`].
    fn name(&self) -> String;

    /// `true` if this strategy finds the optimal plan (within the ≤ 64
    /// relation exact regime).
    fn is_exact(&self) -> bool;

    /// `true` if [`Planned::reported`] is a hardware-model or SIMT-simulated
    /// prediction rather than a wall-clock measurement.
    fn reported_is_model(&self) -> bool {
        false
    }

    /// Plans a query of arbitrary size. Exact strategies fail with
    /// [`OptError::TooLarge`] beyond [`EXACT_MAX_RELS`] relations.
    fn plan(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<Planned, OptError>;

    /// Plans an already-projected bitmap query (≤ 64 relations). The default
    /// converts back to the adjacency-list form; exact strategies override
    /// this with a direct run.
    fn plan_exact(
        &self,
        q: &QueryInfo,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<Planned, OptError> {
        self.plan(&q.to_large(), model, budget)
    }
}

// ---------------------------------------------------------------- exact

/// The exact-algorithm roster behind [`ExactStrategy`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExactAlgo {
    /// Selinger-style size-driven DP ("Postgres (1CPU)").
    DpSize,
    /// Subset-driven DP (Algorithm 1).
    DpSub,
    /// Moerkotte–Neumann csg-cmp-pair enumeration.
    DpCcp,
    /// MPDP specialized to tree join graphs (Algorithm 2).
    MpdpTree,
    /// General MPDP (Algorithm 3) — the paper's primary contribution.
    Mpdp,
    /// DPE: sequential DPCCP enumeration, dependency-aware parallel costing.
    Dpe {
        /// Cores assumed by the reported-time prediction.
        threads: usize,
    },
    /// Level-parallel MPDP on CPU.
    MpdpCpu {
        /// Cores assumed by the reported-time prediction.
        threads: usize,
    },
    /// Level-parallel DPSUB on CPU.
    DpSubCpu {
        /// Cores assumed by the reported-time prediction.
        threads: usize,
    },
    /// PDP — parallel DPSIZE.
    Pdp {
        /// Cores assumed by the reported-time prediction.
        threads: usize,
    },
    /// MPDP on the simulated GPU, with optional §5 enhancements.
    MpdpGpu {
        /// Kernel fusion of the prune step.
        fused_prune: bool,
        /// Collaborative Context Collection.
        ccc: bool,
    },
    /// DPSUB on the simulated GPU (COMB-GPU baseline).
    DpSubGpu,
    /// DPSIZE on the simulated GPU (H+F-GPU baseline).
    DpSizeGpu,
}

impl ExactAlgo {
    /// `true` if the algorithm's hot loop actually consults the
    /// [`EnumerationMode`]. DPCCP and DPE enumerate edge-based (csg-cmp
    /// recursion) and never unrank, and DPSize-GPU builds its per-size lists
    /// from its own scatter results, so an `[unranked]` variant of those
    /// would run identically to the plain algorithm.
    pub fn has_enumeration_mode(self) -> bool {
        !matches!(
            self,
            ExactAlgo::DpCcp | ExactAlgo::Dpe { .. } | ExactAlgo::DpSizeGpu
        )
    }
}

/// Adapter running one [`ExactAlgo`] behind the [`Strategy`] interface.
///
/// CPU-parallel algorithms execute with a single real worker on this
/// container and report the work/span-model prediction for their configured
/// core count, calibrated from the measured run — the same policy the bench
/// harness has always used (see `DESIGN.md` §2).
#[derive(Clone, Debug)]
pub struct ExactStrategy {
    algo: ExactAlgo,
    label: String,
    enumeration: EnumerationMode,
}

impl ExactStrategy {
    /// Creates the adapter with its canonical registry label.
    pub fn new(algo: ExactAlgo) -> Self {
        let label = match algo {
            ExactAlgo::DpSize => "Postgres (1CPU)".to_string(),
            ExactAlgo::DpSub => "DPSub (1CPU)".to_string(),
            ExactAlgo::DpCcp => "DPCCP (1CPU)".to_string(),
            ExactAlgo::MpdpTree => "MPDP-Tree".to_string(),
            ExactAlgo::Mpdp => "MPDP".to_string(),
            ExactAlgo::Dpe { threads } => format!("DPE ({threads}CPU)"),
            ExactAlgo::MpdpCpu { threads } => format!("MPDP ({threads}CPU)"),
            ExactAlgo::DpSubCpu { threads } => format!("DPSub ({threads}CPU)"),
            ExactAlgo::Pdp { threads } => format!("PDP ({threads}CPU)"),
            ExactAlgo::MpdpGpu {
                fused_prune: true,
                ccc: true,
            } => "MPDP (GPU)".to_string(),
            ExactAlgo::MpdpGpu {
                fused_prune: false,
                ccc: false,
            } => "MPDP (GPU, baseline)".to_string(),
            ExactAlgo::MpdpGpu {
                fused_prune: true,
                ccc: false,
            } => "MPDP (GPU, +fusion)".to_string(),
            ExactAlgo::MpdpGpu {
                fused_prune: false,
                ccc: true,
            } => "MPDP (GPU, +CCC)".to_string(),
            ExactAlgo::DpSubGpu => "DPSub (GPU)".to_string(),
            ExactAlgo::DpSizeGpu => "DPSize (GPU)".to_string(),
        };
        ExactStrategy {
            algo,
            label,
            enumeration: EnumerationMode::default(),
        }
    }

    /// Switches the connected-set enumeration mode. [`EnumerationMode::Unranked`]
    /// (the paper's generate-and-filter path, kept for the `unranked` counter
    /// ablations) appends ` [unranked]` to the registry label.
    pub fn with_enumeration(mut self, mode: EnumerationMode) -> Self {
        if self.enumeration == EnumerationMode::Unranked && mode == EnumerationMode::Frontier {
            self.label = self.label.trim_end_matches(" [unranked]").to_string();
        }
        if mode == EnumerationMode::Unranked && self.enumeration != EnumerationMode::Unranked {
            self.label.push_str(" [unranked]");
        }
        self.enumeration = mode;
        self
    }

    /// The wrapped algorithm.
    pub fn algo(&self) -> ExactAlgo {
        self.algo
    }

    /// The connected-set enumeration mode this strategy runs with.
    pub fn enumeration(&self) -> EnumerationMode {
        self.enumeration
    }
}

impl Strategy for ExactStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn reported_is_model(&self) -> bool {
        !matches!(
            self.algo,
            ExactAlgo::DpSize
                | ExactAlgo::DpSub
                | ExactAlgo::DpCcp
                | ExactAlgo::MpdpTree
                | ExactAlgo::Mpdp
        )
    }

    fn plan(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<Planned, OptError> {
        let qi = q.to_query_info().ok_or(OptError::TooLarge {
            got: q.num_rels(),
            max: EXACT_MAX_RELS,
        })?;
        self.plan_exact(&qi, model, budget)
    }

    fn plan_exact(
        &self,
        q: &QueryInfo,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<Planned, OptError> {
        let ctx = match budget {
            Some(b) => mpdp_dp::OptContext::with_budget(q, model, b),
            None => mpdp_dp::OptContext::new(q, model),
        }
        .with_enumeration(self.enumeration);
        let start = Instant::now();
        let (result, gpu) = match self.algo {
            ExactAlgo::DpSize => (mpdp_dp::DpSize::run(&ctx)?, None),
            ExactAlgo::DpSub => (mpdp_dp::DpSub::run(&ctx)?, None),
            ExactAlgo::DpCcp => (mpdp_dp::DpCcp::run(&ctx)?, None),
            ExactAlgo::MpdpTree => (mpdp_dp::MpdpTree::run(&ctx)?, None),
            ExactAlgo::Mpdp => (mpdp_dp::Mpdp::run(&ctx)?, None),
            // One real worker on this container; `reported` below carries the
            // multi-core prediction.
            ExactAlgo::Dpe { .. } => (Dpe::run(&ctx, 1)?, None),
            ExactAlgo::MpdpCpu { .. } => (
                level_par::run_level_parallel(&ctx, level_par::LevelAlgo::Mpdp, 1)?,
                None,
            ),
            ExactAlgo::DpSubCpu { .. } => (
                level_par::run_level_parallel(&ctx, level_par::LevelAlgo::DpSub, 1)?,
                None,
            ),
            ExactAlgo::Pdp { .. } => (level_par::run_dpsize_parallel(&ctx, 1)?, None),
            ExactAlgo::MpdpGpu { fused_prune, ccc } => {
                let mut drv = MpdpGpu::new();
                drv.config.fused_prune = fused_prune;
                drv.config.ccc = ccc;
                let run = drv.run(&ctx)?;
                (run.result, Some((run.stats, run.simulated_time)))
            }
            ExactAlgo::DpSubGpu => {
                let run = DpSubGpu::new().run(&ctx)?;
                (run.result, Some((run.stats, run.simulated_time)))
            }
            ExactAlgo::DpSizeGpu => {
                let run = DpSizeGpu::new().run(&ctx)?;
                (run.result, Some((run.stats, run.simulated_time)))
            }
        };
        let wall = start.elapsed();
        let reported = match (self.algo, &gpu) {
            (_, Some((_, simulated))) => *simulated,
            (ExactAlgo::Dpe { threads }, None) => {
                let cal = Calibration::from_measurement(&result.profile, wall);
                CpuModel::new(threads).predict_dpe(&result.profile, &cal)
            }
            (
                ExactAlgo::MpdpCpu { threads }
                | ExactAlgo::DpSubCpu { threads }
                | ExactAlgo::Pdp { threads },
                None,
            ) => {
                let cal = Calibration::from_measurement(&result.profile, wall);
                CpuModel::new(threads).predict_level_parallel(&result.profile, &cal)
            }
            _ => wall,
        };
        Ok(Planned {
            plan: result.plan,
            cost: result.cost,
            rows: result.rows,
            wall,
            reported,
            counters: Some(result.counters),
            profile: Some(result.profile),
            gpu: gpu.map(|(stats, _)| stats),
            strategy: self.label.clone(),
        })
    }
}

// ------------------------------------------------------------ heuristic

/// The large-query roster behind [`HeuristicStrategy`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LargeAlgo {
    /// Greedy Operator Ordering.
    Goo,
    /// Optimal left-deep ordering.
    Ikkbz,
    /// Adaptive linearized DP.
    LinDp,
    /// PostgreSQL's genetic optimizer.
    Geqo,
    /// IDP1 with MPDP as the exact step.
    Idp1 {
        /// Sub-problem size bound.
        k: usize,
    },
    /// IDP2 with MPDP as the exact step ("IDP2-MPDP (k)").
    Idp2 {
        /// Sub-problem size bound.
        k: usize,
    },
    /// The paper's partition-based heuristic ("UnionDP-MPDP (k)").
    UnionDp {
        /// Partition size bound.
        k: usize,
    },
}

/// Adapter running one [`LargeAlgo`] behind the [`Strategy`] interface.
#[derive(Copy, Clone, Debug)]
pub struct HeuristicStrategy {
    algo: LargeAlgo,
}

impl HeuristicStrategy {
    /// Creates the adapter.
    pub fn new(algo: LargeAlgo) -> Self {
        HeuristicStrategy { algo }
    }

    /// The wrapped algorithm.
    pub fn algo(&self) -> LargeAlgo {
        self.algo
    }
}

impl Strategy for HeuristicStrategy {
    fn name(&self) -> String {
        match self.algo {
            LargeAlgo::Goo => "GOO".to_string(),
            LargeAlgo::Ikkbz => "IKKBZ".to_string(),
            LargeAlgo::LinDp => "LinDP".to_string(),
            LargeAlgo::Geqo => "GE-QO".to_string(),
            LargeAlgo::Idp1 { k } => format!("IDP1-MPDP ({k})"),
            LargeAlgo::Idp2 { k } => format!("IDP2-MPDP ({k})"),
            LargeAlgo::UnionDp { k } => format!("UnionDP-MPDP ({k})"),
        }
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn plan(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<Planned, OptError> {
        let start = Instant::now();
        let r: LargeOptResult = match self.algo {
            LargeAlgo::Goo => Goo.optimize(q, model, budget)?,
            LargeAlgo::Ikkbz => Ikkbz.optimize(q, model, budget)?,
            LargeAlgo::LinDp => LinDp::default().optimize(q, model, budget)?,
            LargeAlgo::Geqo => Geqo::default().optimize(q, model, budget)?,
            LargeAlgo::Idp1 { k } => idp1_mpdp(q, model, k, budget)?,
            LargeAlgo::Idp2 { k } => idp2_mpdp(q, model, k, budget)?,
            LargeAlgo::UnionDp { k } => UnionDp { k }.optimize(q, model, budget)?,
        };
        let wall = start.elapsed();
        Ok(Planned {
            plan: r.plan,
            cost: r.cost,
            rows: r.rows,
            wall,
            reported: wall,
            counters: None,
            profile: None,
            gpu: None,
            strategy: self.name(),
        })
    }
}

// -------------------------------------------------------------- planner

/// The adaptive deployment the paper recommends: exact up to a relation
/// limit, heuristic beyond it. Built by [`PlannerBuilder`]; itself a
/// [`Strategy`] (registered as `"Adaptive"`), so adaptive planners compose
/// anywhere a single algorithm does.
#[derive(Clone)]
pub struct Planner {
    exact: Arc<dyn Strategy>,
    fallback: Arc<dyn Strategy>,
    exact_limit: usize,
    budget: Option<Duration>,
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("exact", &self.exact.name())
            .field("fallback", &self.fallback.name())
            .field("exact_limit", &self.exact_limit)
            .field("budget", &self.budget)
            .finish()
    }
}

impl Planner {
    /// The default adaptive planner (sequential MPDP up to 18 relations,
    /// UnionDP-MPDP (15) beyond).
    pub fn adaptive_default() -> Self {
        PlannerBuilder::new()
            .build()
            .expect("default config is valid")
    }

    /// The exact-side strategy.
    pub fn exact_strategy(&self) -> &Arc<dyn Strategy> {
        &self.exact
    }

    /// The large-query fallback strategy.
    pub fn fallback_strategy(&self) -> &Arc<dyn Strategy> {
        &self.fallback
    }

    /// Largest query size routed to the exact side. Values above
    /// [`EXACT_MAX_RELS`] are honoured by routing the excess to the fallback
    /// (never by failing with [`OptError::TooLarge`]).
    pub fn exact_limit(&self) -> usize {
        self.exact_limit
    }

    /// Plans a query, routing by size. The per-call `budget` of
    /// [`Strategy::plan`] overrides the builder-configured one.
    pub fn plan_query(&self, q: &LargeQuery, model: &dyn CostModel) -> Result<Planned, OptError> {
        self.plan(q, model, self.budget)
    }
}

impl Strategy for Planner {
    fn name(&self) -> String {
        "Adaptive".to_string()
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn plan(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<Planned, OptError> {
        let budget = budget.or(self.budget);
        // A user-raised `exact_limit` must never push a 65+-relation query
        // into the 64-bit bitmap regime: the representable ceiling wins and
        // everything above it routes to the fallback rather than erroring
        // with `TooLarge`.
        if q.num_rels() <= self.exact_limit.min(EXACT_MAX_RELS) {
            self.exact.plan(q, model, budget)
        } else {
            self.fallback.plan(q, model, budget)
        }
    }
}

/// Builder for [`Planner`]: exact algorithm × backend × large-query fallback
/// × exact-limit × budget.
///
/// ```
/// use mpdp::{Backend, ExactAlgo, LargeAlgo, PlannerBuilder};
/// use mpdp_cost::PgLikeCost;
///
/// let model = PgLikeCost::new();
/// let planner = PlannerBuilder::new()
///     .exact(ExactAlgo::Mpdp)
///     .backend(Backend::GpuSim)
///     .fallback(LargeAlgo::UnionDp { k: 15 })
///     .exact_limit(25)
///     .build()
///     .unwrap();
/// let q = mpdp_workload::gen::star(20, 7, &model);
/// let planned = planner.plan_query(&q, &model).unwrap();
/// assert_eq!(planned.plan.num_rels(), 20);
/// ```
#[derive(Clone, Debug)]
pub struct PlannerBuilder {
    exact: ExactChoice,
    backend: Backend,
    fallback: FallbackChoice,
    exact_limit: usize,
    budget: Option<Duration>,
    enumeration: EnumerationMode,
}

#[derive(Clone, Debug)]
enum ExactChoice {
    Algo(ExactAlgo),
    Custom(Arc<dyn Strategy>),
}

impl std::fmt::Debug for dyn Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Strategy({})", self.name())
    }
}

#[derive(Clone, Debug)]
enum FallbackChoice {
    Algo(LargeAlgo),
    Custom(Arc<dyn Strategy>),
}

impl Default for PlannerBuilder {
    fn default() -> Self {
        PlannerBuilder {
            exact: ExactChoice::Algo(ExactAlgo::Mpdp),
            backend: Backend::Sequential,
            fallback: FallbackChoice::Algo(LargeAlgo::UnionDp { k: 15 }),
            // 18 is a sensible exact limit for a single CPU core; the paper
            // reaches 25 with a GPU.
            exact_limit: 18,
            budget: None,
            enumeration: EnumerationMode::default(),
        }
    }
}

impl PlannerBuilder {
    /// Paper-default configuration: sequential MPDP up to 18 relations,
    /// UnionDP-MPDP (15) beyond, no budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the exact algorithm family (combined with [`Self::backend`]).
    /// Parallel/GPU [`ExactAlgo`] variants are also accepted directly, in
    /// which case the backend setting is ignored.
    pub fn exact(mut self, algo: ExactAlgo) -> Self {
        self.exact = ExactChoice::Algo(algo);
        self
    }

    /// Uses a custom exact-side strategy (e.g. one obtained from
    /// [`crate::registry()`]). Overrides [`Self::exact`] and
    /// [`Self::backend`].
    pub fn exact_strategy(mut self, s: Arc<dyn Strategy>) -> Self {
        self.exact = ExactChoice::Custom(s);
        self
    }

    /// Selects the execution backend for the exact side.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the large-query fallback heuristic.
    pub fn fallback(mut self, algo: LargeAlgo) -> Self {
        self.fallback = FallbackChoice::Algo(algo);
        self
    }

    /// Uses a custom fallback strategy. Overrides [`Self::fallback`].
    pub fn fallback_strategy(mut self, s: Arc<dyn Strategy>) -> Self {
        self.fallback = FallbackChoice::Custom(s);
        self
    }

    /// Largest query size optimized exactly. May exceed
    /// [`EXACT_MAX_RELS`]; queries above the representable ceiling always
    /// route to the fallback.
    pub fn exact_limit(mut self, n: usize) -> Self {
        self.exact_limit = n;
        self
    }

    /// Default optimization budget for [`Planner::plan_query`].
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Connected-set enumeration mode for the exact side: frontier expansion
    /// (default) or the paper's unrank-and-filter. Ignored when a custom
    /// exact strategy is supplied via [`Self::exact_strategy`].
    pub fn enumeration(mut self, mode: EnumerationMode) -> Self {
        self.enumeration = mode;
        self
    }

    /// Resolves the configuration. Fails with [`OptError::Internal`] on
    /// combinations that have no implementation (e.g. DPCCP on the GPU).
    pub fn build(self) -> Result<Planner, OptError> {
        let exact: Arc<dyn Strategy> = match self.exact {
            ExactChoice::Custom(s) => s,
            ExactChoice::Algo(algo) => {
                let resolved = resolve_backend(algo, self.backend)?;
                if self.enumeration == EnumerationMode::Unranked && !resolved.has_enumeration_mode()
                {
                    return Err(OptError::Internal(format!(
                        "{resolved:?} never unranks subsets (edge-based / list-based \
                         enumeration), so it has no unranked variant; keep the default \
                         enumeration mode"
                    )));
                }
                Arc::new(ExactStrategy::new(resolved).with_enumeration(self.enumeration))
            }
        };
        let fallback: Arc<dyn Strategy> = match self.fallback {
            FallbackChoice::Custom(s) => s,
            FallbackChoice::Algo(algo) => Arc::new(HeuristicStrategy::new(algo)),
        };
        Ok(Planner {
            exact,
            fallback,
            exact_limit: self.exact_limit,
            budget: self.budget,
        })
    }
}

/// Maps a (sequential algorithm, backend) pair to the concrete roster entry.
fn resolve_backend(algo: ExactAlgo, backend: Backend) -> Result<ExactAlgo, OptError> {
    use ExactAlgo::*;
    Ok(match (algo, backend) {
        // Already-concrete parallel/GPU variants pass through untouched.
        (
            a @ (Dpe { .. }
            | MpdpCpu { .. }
            | DpSubCpu { .. }
            | Pdp { .. }
            | MpdpGpu { .. }
            | DpSubGpu
            | DpSizeGpu),
            _,
        ) => a,
        (a, Backend::Sequential) => a,
        (Mpdp, Backend::CpuParallel(threads)) => MpdpCpu { threads },
        (Mpdp, Backend::GpuSim) => MpdpGpu {
            fused_prune: true,
            ccc: true,
        },
        (DpSub, Backend::CpuParallel(threads)) => DpSubCpu { threads },
        (DpSub, Backend::GpuSim) => DpSubGpu,
        (DpSize, Backend::CpuParallel(threads)) => Pdp { threads },
        (DpSize, Backend::GpuSim) => DpSizeGpu,
        // DPE *is* DPCCP with parallel costing.
        (DpCcp, Backend::CpuParallel(threads)) => Dpe { threads },
        (DpCcp, Backend::GpuSim) => {
            return Err(OptError::Internal(
                "DPCCP has no GPU variant (its enumeration is inherently sequential); \
                 use MPDP, DPSub or DPSize with Backend::GpuSim"
                    .into(),
            ))
        }
        (MpdpTree, b) => {
            return Err(OptError::Internal(format!(
                "MPDP-Tree is sequential-only; backend {b:?} is not supported"
            )))
        }
    })
}
