//! DPCCP — connected-subgraph / complement-pair enumeration
//! (Moerkotte–Neumann \[24\]).
//!
//! Enumerates *exactly* the CCP pairs of the join graph via `EnumerateCsg` /
//! `EnumerateCmp`, so `EvaluatedCounter == CCP-Counter`. The price is a
//! strictly sequential, graph-order-dependent enumeration: each emission
//! depends on the DFS state, which is why the paper classifies DPCCP as hard
//! to parallelize (§1, Figure 2) — parallel derivatives (DPE) only
//! parallelize the *costing* of pairs, not their enumeration.
//!
//! The recursion follows the original paper's pseudo-code:
//!
//! ```text
//! DPccp:      for i = n-1 .. 0:  EmitCsg({v_i});  EnumerateCsgRec({v_i}, B_i)
//! CsgRec:     N = N(S) \ X;  ∀ S' ⊆ N, S' ≠ ∅: EmitCsg(S ∪ S')
//!                            ∀ S' ⊆ N, S' ≠ ∅: EnumerateCsgRec(S ∪ S', X ∪ N)
//! EmitCsg:    X = S₁ ∪ B_min(S₁);  N = N(S₁) \ X
//!             ∀ v ∈ N (desc.): emit (S₁, {v});  EnumerateCmpRec(S₁, {v}, X ∪ (B_v ∩ N))
//! CmpRec:     N = N(S₂) \ X;  ∀ S' ⊆ N, S' ≠ ∅: emit (S₁, S₂ ∪ S')
//!                             ∀ S' ⊆ N, S' ≠ ∅: EnumerateCmpRec(S₁, S₂ ∪ S', X ∪ N)
//! ```
//!
//! where `B_i = {v_j | j ≤ i}`. Each unordered CCP pair is emitted exactly
//! once; we cost both join orders, so counters report ordered pairs like the
//! other algorithms.

use crate::common::{emit_pair, finish, init_memo, OptContext, OptResult};
use crate::JoinOrderOptimizer;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::memo::MemoTable;
use mpdp_core::{OptError, RelSet};

/// The DPCCP optimizer.
#[derive(Copy, Clone, Debug, Default)]
pub struct DpCcp;

struct CcpState<'a, 'b> {
    ctx: &'a OptContext<'b>,
    memo: MemoTable,
    counters: Counters,
    memo_writes: u64,
    pair_budget_check: u32,
}

impl<'a, 'b> CcpState<'a, 'b> {
    fn emit_csg_cmp(&mut self, s1: RelSet, s2: RelSet) -> Result<(), OptError> {
        // Cost both orders (counters track ordered pairs workspace-wide).
        self.counters.evaluated += 2;
        self.counters.ccp += 2;
        let o1 = emit_pair(&mut self.memo, self.ctx.query, self.ctx.model, s1, s2)?;
        let o2 = emit_pair(&mut self.memo, self.ctx.query, self.ctx.model, s2, s1)?;
        self.memo_writes += (o1.improved as u64) + (o2.improved as u64);
        self.pair_budget_check += 1;
        if self.pair_budget_check >= 4096 {
            self.pair_budget_check = 0;
            self.ctx.check_deadline()?;
        }
        Ok(())
    }

    fn enumerate_csg_rec(&mut self, s: RelSet, x: RelSet) -> Result<(), OptError> {
        let g = &self.ctx.query.graph;
        let n = g.neighbors(s).difference(x);
        if n.is_empty() {
            return Ok(());
        }
        for sp in n.subsets_ascending() {
            self.counters.sets += 1;
            self.emit_csg(s.union(sp))?;
        }
        for sp in n.subsets_ascending() {
            self.enumerate_csg_rec(s.union(sp), x.union(n))?;
        }
        Ok(())
    }

    fn emit_csg(&mut self, s1: RelSet) -> Result<(), OptError> {
        let g = &self.ctx.query.graph;
        let min = s1.first().expect("csg is non-empty");
        let b_min = RelSet::first_n(min + 1);
        let x = s1.union(b_min);
        let n = g.neighbors(s1).difference(x);
        // Descending vertex order, as in the original pseudo-code.
        let mut vs: Vec<usize> = n.iter().collect();
        vs.reverse();
        for v in vs {
            let s2 = RelSet::singleton(v);
            self.emit_csg_cmp(s1, s2)?;
            let b_v_in_n = RelSet::first_n(v + 1).intersect(n);
            self.enumerate_cmp_rec(s1, s2, x.union(b_v_in_n))?;
        }
        Ok(())
    }

    fn enumerate_cmp_rec(&mut self, s1: RelSet, s2: RelSet, x: RelSet) -> Result<(), OptError> {
        let g = &self.ctx.query.graph;
        let n = g.neighbors(s2).difference(x);
        if n.is_empty() {
            return Ok(());
        }
        for sp in n.subsets_ascending() {
            self.emit_csg_cmp(s1, s2.union(sp))?;
        }
        for sp in n.subsets_ascending() {
            self.enumerate_cmp_rec(s1, s2.union(sp), x.union(n))?;
        }
        Ok(())
    }
}

impl DpCcp {
    /// Runs DPCCP on `ctx`, returning the optimal plan.
    pub fn run(ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        ctx.validate_exact()?;
        let q = ctx.query;
        let n = q.query_size();
        let memo: MemoTable = init_memo(q);
        let mut st = CcpState {
            ctx,
            memo,
            counters: Counters::default(),
            memo_writes: 0,
            pair_budget_check: 0,
        };

        if n > 1 {
            for i in (0..n).rev() {
                ctx.check_deadline()?;
                let v = RelSet::singleton(i);
                st.counters.sets += 1;
                st.emit_csg(v)?;
                // B_i = {v_j | j ≤ i}
                st.enumerate_csg_rec(v, RelSet::first_n(i + 1))?;
            }
        }

        // DPCCP has no level structure; record the run as one pseudo-level so
        // the hardware model sees its sequential profile.
        let mut profile = Profile::default();
        profile.record(LevelStats {
            size: n,
            unranked: 0,
            sets: st.counters.sets,
            evaluated: st.counters.evaluated,
            ccp: st.counters.ccp,
            memo_writes: st.memo_writes,
            ..Default::default()
        });
        let counters = st.counters;
        finish(&st.memo, q, counters, profile)
    }
}

impl JoinOrderOptimizer for DpCcp {
    fn name(&self) -> &'static str {
        "DPCCP"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        DpCcp::run(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsub::tests::{chain_query, cycle_query, star_query};
    use crate::dpsub::DpSub;
    use mpdp_core::graph::JoinGraph;
    use mpdp_core::query::{QueryInfo, RelInfo};
    use mpdp_cost::pglike::PgLikeCost;

    #[test]
    fn evaluated_equals_ccp() {
        // DPCCP evaluates only valid Join-Pairs.
        let model = PgLikeCost::new();
        for q in [chain_query(7), star_query(7), cycle_query(7)] {
            let r = DpCcp::run(&OptContext::new(&q, &model)).unwrap();
            assert_eq!(r.counters.evaluated, r.counters.ccp);
        }
    }

    #[test]
    fn ccp_counter_matches_dpsub() {
        let model = PgLikeCost::new();
        for q in [chain_query(6), star_query(6), cycle_query(6)] {
            let a = DpCcp::run(&OptContext::new(&q, &model)).unwrap();
            let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            assert_eq!(a.counters.ccp, b.counters.ccp, "graph mismatch");
        }
    }

    #[test]
    fn optimal_cost_matches_dpsub() {
        let model = PgLikeCost::new();
        for q in [chain_query(8), star_query(7), cycle_query(7)] {
            let a = DpCcp::run(&OptContext::new(&q, &model)).unwrap();
            let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            assert!(
                (a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0),
                "dpccp={} dpsub={}",
                a.cost,
                b.cost
            );
            assert!(a.plan.validate(&q.graph).is_none());
        }
    }

    #[test]
    fn chain_ccp_closed_form() {
        // For a chain of n relations, unordered CCP pairs = number of
        // (interval, split point) choices = sum over intervals of
        // (len-1) = n(n^2-1)/6; ordered doubles it.
        let model = PgLikeCost::new();
        for n in [3usize, 5, 8] {
            let q = chain_query(n);
            let r = DpCcp::run(&OptContext::new(&q, &model)).unwrap();
            let unordered = (n * (n * n - 1) / 6) as u64;
            assert_eq!(r.counters.ccp, 2 * unordered, "n={n}");
        }
    }

    #[test]
    fn clique_enumeration_complete() {
        // Clique of 5: all 2^5-1 non-empty subsets are connected; every
        // (disjoint, covering) split of every subset is a CCP pair.
        let mut g = JoinGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j, 0.1);
            }
        }
        let q = QueryInfo::new(g, vec![RelInfo::new(100.0, 1.0); 5]);
        let model = PgLikeCost::new();
        let r = DpCcp::run(&OptContext::new(&q, &model)).unwrap();
        // Ordered CCP pairs in a clique of n: sum over sets S (|S|=i>=2) of
        // (2^i - 2) = sum_i C(5,i)(2^i-2) = (3^5 - 2*2^5 + 1) = 180.
        let expect: u64 = (2..=5u32)
            .map(|i| mpdp_core::combinatorics::binomial(5, i as u64) * ((1u64 << i) - 2))
            .sum();
        assert_eq!(r.counters.ccp, expect);
        assert_eq!(r.memo_entries, 31);
    }
}
