//! # mpdp-dp
//!
//! Exact join-order optimization algorithms:
//!
//! * [`dpsize::DpSize`] — Selinger-style size-driven DP (PostgreSQL's
//!   built-in algorithm; "Postgres (1CPU)" in the paper's figures);
//! * [`dpsub::DpSub`] — subset-driven DP (Algorithm 1);
//! * [`dpccp::DpCcp`] — Moerkotte–Neumann csg-cmp-pair enumeration, which
//!   evaluates only valid Join-Pairs but enumerates sequentially;
//! * [`mpdp::MpdpTree`] — MPDP for tree join graphs (Algorithm 2);
//! * [`mpdp::Mpdp`] — general MPDP with block-level hybrid enumeration
//!   (Algorithm 3), the paper's primary contribution.
//!
//! All algorithms fill the same [`MemoTable`](mpdp_core::MemoTable), price
//! plans with the same [`CostModel`](mpdp_cost::CostModel), and are verified
//! to return identical optimal costs (see the crate tests and
//! `tests/exact_equivalence.rs` at the workspace root).

#![warn(missing_docs)]

pub mod common;
pub mod dpccp;
pub mod dpsize;
pub mod dpsub;
pub mod mpdp;

pub use common::{OptContext, OptResult};
pub use dpccp::DpCcp;
pub use dpsize::DpSize;
pub use dpsub::DpSub;
pub use mpdp::{Mpdp, MpdpTree};

use mpdp_core::OptError;

/// A join-order optimizer producing the optimal (or heuristically good)
/// cross-product-free bushy plan for a query.
pub trait JoinOrderOptimizer {
    /// Identifier used in reports and figures (matches the paper's series
    /// names, e.g. `"DPSub"`, `"MPDP"`).
    fn name(&self) -> &'static str;

    /// Runs the optimization.
    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError>;
}
