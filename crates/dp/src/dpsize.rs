//! DPSIZE — size-driven dynamic programming (Selinger \[27\]).
//!
//! Builds plans in increasing result size: a plan of size `i` is formed by
//! pairing a known plan of size `k` with one of size `i-k`. This is what
//! PostgreSQL's standard join search does ("Postgres (1CPU)" in the paper's
//! figures). Its weakness is evaluating enormous numbers of *overlapping*
//! pairs: two plans of sizes `k` and `i-k` usually share relations, failing
//! the disjointness check after the pair was already enumerated (§7.2.2:
//! "DPSIZE-based algorithms do not perform well due to checking too many
//! overlapping pairs").

use crate::common::{emit_pair, finish, init_memo, LevelEnumerator, OptContext, OptResult};
use crate::JoinOrderOptimizer;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::enumerate::EnumerationMode;
use mpdp_core::memo::MemoTable;
use mpdp_core::{OptError, RelSet};

/// The DPSIZE optimizer.
#[derive(Copy, Clone, Debug, Default)]
pub struct DpSize;

impl DpSize {
    /// Runs DPSIZE on `ctx`, returning the optimal plan.
    pub fn run(ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        ctx.validate_exact()?;
        let q = ctx.query;
        let n = q.query_size();
        let mut memo: MemoTable = init_memo(q);
        let mut counters = Counters::default();
        let mut profile = Profile::default();

        // Connected sets grouped by size. In frontier mode each level's list
        // comes straight from the connected-subset enumerator; in the legacy
        // mode it is discovered as a by-product of the pair joins (every
        // connected set of size ≥ 2 has a CCP split, so both modes build the
        // same families — asserted in this module's tests).
        let mut sets_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
        sets_by_size[1] = (0..n).map(RelSet::singleton).collect();
        let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);

        for i in 2..=n {
            let mut level = LevelStats {
                size: i,
                ..Default::default()
            };
            if ctx.enumeration == EnumerationMode::Frontier {
                let lvl = enumerator.level(ctx, i)?;
                memo.reserve(lvl.sets.len());
                sets_by_size[i] = lvl.sets.to_vec();
            }
            // Legacy mode discovers the level's sets as a by-product of the
            // pair joins; frontier mode already has them and skips the
            // bookkeeping.
            let discover = ctx.enumeration != EnumerationMode::Frontier;
            let mut new_sets: Vec<RelSet> = Vec::new();
            for k in 1..i {
                ctx.check_deadline()?;
                // Ordered pairs: (left of size k) × (right of size i-k).
                // Symmetric pairs appear naturally when k and i-k swap.
                for li in 0..sets_by_size[k].len() {
                    let left = sets_by_size[k][li];
                    #[allow(clippy::needless_range_loop)]
                    for ri in 0..sets_by_size[i - k].len() {
                        let right = sets_by_size[i - k][ri];
                        level.evaluated += 1;
                        if !left.is_disjoint(right) {
                            continue; // the overlapping-pair tax of DPSIZE
                        }
                        if !q.graph.sets_connected(left, right) {
                            continue; // cross product
                        }
                        // Both sides are connected by construction, so the
                        // pair is a CCP pair.
                        level.ccp += 1;
                        let o = emit_pair(&mut memo, q, ctx.model, left, right)?;
                        if o.improved {
                            level.memo_writes += 1;
                        }
                        if discover && o.new_set {
                            new_sets.push(left.union(right));
                        }
                    }
                }
            }
            if discover {
                level.sets = new_sets.len() as u64;
                sets_by_size[i] = new_sets;
            } else {
                level.sets = sets_by_size[i].len() as u64;
            }
            counters.evaluated += level.evaluated;
            counters.ccp += level.ccp;
            counters.sets += level.sets;
            profile.record(level);
        }
        finish(&memo, q, counters, profile)
    }
}

impl JoinOrderOptimizer for DpSize {
    fn name(&self) -> &'static str {
        "DPSize"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        DpSize::run(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsub::tests::{chain_query, cycle_query, star_query};
    use crate::dpsub::DpSub;
    use mpdp_cost::pglike::PgLikeCost;

    #[test]
    fn matches_dpsub_on_chain() {
        let q = chain_query(7);
        let model = PgLikeCost::new();
        let a = DpSize::run(&OptContext::new(&q, &model)).unwrap();
        let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert!((a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0));
        assert!(a.plan.validate(&q.graph).is_none());
    }

    #[test]
    fn matches_dpsub_on_star() {
        let q = star_query(6);
        let model = PgLikeCost::new();
        let a = DpSize::run(&OptContext::new(&q, &model)).unwrap();
        let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert!((a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0));
    }

    #[test]
    fn matches_dpsub_on_cycle() {
        let q = cycle_query(6);
        let model = PgLikeCost::new();
        let a = DpSize::run(&OptContext::new(&q, &model)).unwrap();
        let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert!((a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0));
    }

    #[test]
    fn ccp_counter_matches_dpsub() {
        // CCP-Counter is algorithm independent (§2.1: "CCP-Counter when
        // profiled on any optimal DP algorithm ... will produce the same
        // value").
        let model = PgLikeCost::new();
        for q in [chain_query(6), star_query(6), cycle_query(6)] {
            let a = DpSize::run(&OptContext::new(&q, &model)).unwrap();
            let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            assert_eq!(a.counters.ccp, b.counters.ccp);
        }
    }

    #[test]
    fn evaluates_overlapping_pairs() {
        // DPSIZE's evaluated counter exceeds DPSUB's on stars because of
        // overlapping pairs.
        let q = star_query(7);
        let model = PgLikeCost::new();
        let a = DpSize::run(&OptContext::new(&q, &model)).unwrap();
        assert!(a.counters.evaluated > a.counters.ccp);
    }

    #[test]
    fn frontier_and_legacy_discovery_agree() {
        // Frontier mode feeds the per-size plan lists from the enumerator;
        // legacy mode discovers them through the pair joins. Same families,
        // same counters, same optimal cost.
        let model = PgLikeCost::new();
        for q in [chain_query(7), star_query(6), cycle_query(6)] {
            let f = DpSize::run(&OptContext::new(&q, &model)).unwrap();
            let u = DpSize::run(
                &OptContext::new(&q, &model)
                    .with_enumeration(mpdp_core::enumerate::EnumerationMode::Unranked),
            )
            .unwrap();
            assert_eq!(f.cost.to_bits(), u.cost.to_bits());
            assert_eq!(f.counters, u.counters);
            assert_eq!(f.memo_entries, u.memo_entries);
        }
    }

    #[test]
    fn discovers_all_connected_sets() {
        let q = chain_query(5);
        let model = PgLikeCost::new();
        let a = DpSize::run(&OptContext::new(&q, &model)).unwrap();
        // Intervals of a 5-chain: 15 total; 5 are leaves, 10 discovered.
        assert_eq!(a.memo_entries, 15);
        assert_eq!(a.counters.sets, 10);
    }
}
