//! DPSUB — subset-driven dynamic programming (Algorithm 1).
//!
//! Enumerates, for each subset size `i`, every connected set `S` of size `i`,
//! and for each such set splits it into every non-empty `(S_left, S_right)`
//! pair via submask enumeration, keeping only pairs that pass the CCP block.
//! Massively parallelizable (every `S` of a level is independent) but wasteful:
//! it evaluates `2^|S|` Join-Pairs per set while only a small fraction are
//! CCP pairs (§2.3, Figure 4).

use crate::common::{emit_pair, finish, init_memo, LevelEnumerator, OptContext, OptResult};
use crate::JoinOrderOptimizer;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::memo::MemoTable;
use mpdp_core::OptError;

/// The DPSUB optimizer.
#[derive(Copy, Clone, Debug, Default)]
pub struct DpSub;

impl DpSub {
    /// Runs DPSUB on `ctx`, returning the optimal plan.
    pub fn run(ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        ctx.validate_exact()?;
        let q = ctx.query;
        let n = q.query_size();
        let mut memo: MemoTable = init_memo(q);
        let mut counters = Counters::default();
        let mut profile = Profile::default();

        if n == 1 {
            return finish(&memo, q, counters, profile);
        }

        let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);
        for i in 2..=n {
            let lvl = enumerator.level(ctx, i)?;
            let mut level = LevelStats {
                size: i,
                unranked: lvl.unranked,
                sets: lvl.sets.len() as u64,
                ..Default::default()
            };
            memo.reserve(lvl.sets.len());
            for &s in lvl.sets {
                ctx.check_deadline()?;
                // Line 8: all non-empty S_left ⊆ S (S_right = S \ S_left may
                // be empty; the CCP block filters it).
                for sl in s.subsets() {
                    level.evaluated += 1;
                    let sr = s.difference(sl);
                    // --- CCP block (lines 12-16) ---
                    if sr.is_empty() || sl.is_empty() {
                        continue;
                    }
                    if !q.graph.is_connected(sl) {
                        continue;
                    }
                    if !q.graph.is_connected(sr) {
                        continue;
                    }
                    if !sl.is_disjoint(sr) {
                        continue; // never fires (sr = s \ sl) — kept for fidelity
                    }
                    if !q.graph.sets_connected(sl, sr) {
                        continue;
                    }
                    // --- end CCP block ---
                    level.ccp += 1;
                    let o = emit_pair(&mut memo, q, ctx.model, sl, sr)?;
                    if o.improved {
                        level.memo_writes += 1;
                    }
                }
            }
            counters.evaluated += level.evaluated;
            counters.ccp += level.ccp;
            counters.sets += level.sets;
            counters.unranked += level.unranked;
            profile.record(level);
        }
        finish(&memo, q, counters, profile)
    }
}

impl JoinOrderOptimizer for DpSub {
    fn name(&self) -> &'static str {
        "DPSub"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        DpSub::run(ctx)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use mpdp_core::combinatorics::binomial;
    use mpdp_core::enumerate::EnumerationMode;
    use mpdp_core::graph::JoinGraph;
    use mpdp_core::query::{QueryInfo, RelInfo};
    use mpdp_cost::pglike::PgLikeCost;

    pub(crate) fn star_query(n: usize) -> QueryInfo {
        // Fact table 0 with n-1 dimensions; PK-FK selectivities.
        let mut g = JoinGraph::new(n);
        let mut rels = vec![RelInfo::new(1_000_000.0, 10_000.0)];
        for i in 1..n {
            let rows = 1000.0 * (i as f64);
            g.add_edge(0, i, 1.0 / rows);
            rels.push(RelInfo::new(rows, rows / 100.0));
        }
        QueryInfo::new(g, rels)
    }

    pub(crate) fn chain_query(n: usize) -> QueryInfo {
        let mut g = JoinGraph::new(n);
        let mut rels = Vec::new();
        for i in 0..n {
            rels.push(RelInfo::new(100.0 * (i + 1) as f64, (i + 1) as f64));
            if i > 0 {
                g.add_edge(i - 1, i, 0.01);
            }
        }
        QueryInfo::new(g, rels)
    }

    pub(crate) fn cycle_query(n: usize) -> QueryInfo {
        let mut q = chain_query(n);
        let mut g = q.graph.clone();
        g.add_edge(n - 1, 0, 0.005);
        q.graph = g;
        q
    }

    #[test]
    fn two_relations() {
        let q = star_query(2);
        let model = PgLikeCost::new();
        let r = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert_eq!(r.plan.num_rels(), 2);
        assert!(r.plan.validate(&q.graph).is_none());
        // One connected 2-set, 3 submask evaluations (3 non-empty subsets),
        // 2 CCP pairs (both orders).
        assert_eq!(r.counters.sets, 1);
        assert_eq!(r.counters.evaluated, 3);
        assert_eq!(r.counters.ccp, 2);
    }

    #[test]
    fn star5_counters() {
        // Star with hub 0 and 4 leaves: connected sets of size i all contain
        // the hub -> C(4, i-1) sets; CCP (ordered) per set = 2(i-1).
        let q = star_query(5);
        let model = PgLikeCost::new();
        let r = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        let mut expect_sets = 0u64;
        let mut expect_ccp = 0u64;
        let mut expect_eval = 0u64;
        for i in 2..=5u64 {
            let sets = binomial(4, i - 1);
            expect_sets += sets;
            expect_ccp += sets * 2 * (i - 1);
            expect_eval += sets * ((1u64 << i) - 1);
        }
        assert_eq!(r.counters.sets, expect_sets);
        assert_eq!(r.counters.ccp, expect_ccp);
        assert_eq!(r.counters.evaluated, expect_eval);
        assert!(r.plan.validate(&q.graph).is_none());
    }

    #[test]
    fn chain_plan_valid_and_memo_sized() {
        let q = chain_query(6);
        let model = PgLikeCost::new();
        let r = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert!(r.plan.validate(&q.graph).is_none());
        // Chain of n: connected sets are intervals: n*(n+1)/2 of them.
        assert_eq!(r.memo_entries, 6 * 7 / 2);
    }

    #[test]
    fn cycle_handles_blocks() {
        let q = cycle_query(5);
        let model = PgLikeCost::new();
        let r = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert!(r.plan.validate(&q.graph).is_none());
        assert_eq!(r.plan.num_rels(), 5);
    }

    #[test]
    fn single_relation_query() {
        let q = star_query(1);
        let model = PgLikeCost::new();
        let r = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert_eq!(r.plan.num_rels(), 1);
        assert_eq!(r.counters.evaluated, 0);
    }

    #[test]
    fn frontier_and_unranked_modes_are_bit_identical() {
        let model = PgLikeCost::new();
        for q in [chain_query(7), star_query(7), cycle_query(7)] {
            let f = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            let u = DpSub::run(
                &OptContext::new(&q, &model).with_enumeration(EnumerationMode::Unranked),
            )
            .unwrap();
            assert_eq!(f.cost.to_bits(), u.cost.to_bits());
            assert_eq!(f.counters.evaluated, u.counters.evaluated);
            assert_eq!(f.counters.ccp, u.counters.ccp);
            assert_eq!(f.counters.sets, u.counters.sets);
            assert_eq!(f.plan.render(), u.plan.render());
            // Only the unranked counter differs: the frontier never unranks.
            assert_eq!(f.counters.unranked, 0);
            assert!(u.counters.unranked > u.counters.sets);
        }
    }

    #[test]
    fn profile_levels_match_sizes() {
        let q = chain_query(5);
        let model = PgLikeCost::new();
        let r = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        let sizes: Vec<usize> = r.profile.levels.iter().map(|l| l.size).collect();
        assert_eq!(sizes, vec![2, 3, 4, 5]);
        assert_eq!(r.profile.totals(), r.counters);
    }
}
