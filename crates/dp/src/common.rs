//! Shared plumbing for the exact DP algorithms: optimization context,
//! results, memo initialization and Join-Pair evaluation.

use mpdp_core::combinatorics::{binomial, KSubsets};
use mpdp_core::counters::{Counters, Profile};
use mpdp_core::enumerate::{EnumerationMode, FrontierEnumerator};
use mpdp_core::graph::JoinGraph;
use mpdp_core::memo::MemoStore;
use mpdp_core::plan::{extract_plan, PlanTree};
use mpdp_core::query::QueryInfo;
use mpdp_core::{OptError, RelSet};
use mpdp_cost::model::{CostModel, InputEst};
use std::time::{Duration, Instant};

/// Everything an optimizer run needs.
pub struct OptContext<'a> {
    /// The query to optimize.
    pub query: &'a QueryInfo,
    /// The cost model pricing candidate plans.
    pub model: &'a dyn CostModel,
    /// Optional wall-clock deadline. Algorithms poll it at set granularity
    /// and abort with [`OptError::Timeout`] when exceeded — mirroring the
    /// paper's 1-minute optimization timeouts (§7.2).
    pub deadline: Option<Instant>,
    /// The budget used to construct `deadline` (for error reporting).
    pub budget: Option<Duration>,
    /// How level-structured algorithms enumerate each level's connected
    /// sets: frontier expansion (default) or the paper's unrank-and-filter.
    pub enumeration: EnumerationMode,
}

impl<'a> OptContext<'a> {
    /// Context without a deadline.
    pub fn new(query: &'a QueryInfo, model: &'a dyn CostModel) -> Self {
        OptContext {
            query,
            model,
            deadline: None,
            budget: None,
            enumeration: EnumerationMode::default(),
        }
    }

    /// Context with a time budget starting now.
    pub fn with_budget(query: &'a QueryInfo, model: &'a dyn CostModel, budget: Duration) -> Self {
        OptContext {
            query,
            model,
            deadline: Some(Instant::now() + budget),
            budget: Some(budget),
            enumeration: EnumerationMode::default(),
        }
    }

    /// Selects the connected-set enumeration mode (builder style).
    pub fn with_enumeration(mut self, mode: EnumerationMode) -> Self {
        self.enumeration = mode;
        self
    }

    /// Returns `Err(Timeout)` if the deadline has passed.
    #[inline]
    pub fn check_deadline(&self) -> Result<(), OptError> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(OptError::Timeout {
                    budget: self.budget.unwrap_or_default(),
                });
            }
        }
        Ok(())
    }

    /// Validates the query is non-empty, connected and within the 64-relation
    /// exact-DP limit.
    pub fn validate_exact(&self) -> Result<(), OptError> {
        let n = self.query.query_size();
        if n == 0 {
            return Err(OptError::EmptyQuery);
        }
        if n > 64 {
            return Err(OptError::TooLarge { got: n, max: 64 });
        }
        if !self
            .query
            .graph
            .is_connected(self.query.graph.all_vertices())
        {
            return Err(OptError::DisconnectedGraph);
        }
        Ok(())
    }
}

/// The outcome of a successful optimizer run.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// The chosen plan.
    pub plan: PlanTree,
    /// Total plan cost under the run's cost model.
    pub cost: f64,
    /// Estimated output cardinality of the full join.
    pub rows: f64,
    /// Join-Pair counters (`EvaluatedCounter` / `CCP-Counter`).
    pub counters: Counters,
    /// Per-level statistics feeding the hardware timing model.
    pub profile: Profile,
    /// Final memo-table size (number of connected sets materialized).
    pub memo_entries: usize,
}

/// Creates a memo store pre-loaded with the base-relation leaves
/// (Algorithm 1 lines 1–3 / Algorithm 5 lines 2–4). Generic over
/// [`MemoStore`]: sequential backends instantiate the single-threaded
/// [`mpdp_core::MemoTable`], the parallel and simulated-GPU backends the
/// lock-free [`mpdp_core::AtomicMemo`].
pub fn init_memo<M: MemoStore>(q: &QueryInfo) -> M {
    let mut memo = M::with_capacity(q.query_size() * 4);
    for (i, rel) in q.rels.iter().enumerate() {
        memo.insert_leaf(i, rel.rows, rel.cost);
    }
    memo
}

/// Outcome of evaluating one CCP pair.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EmitOutcome {
    /// The candidate became the best plan for its set.
    pub improved: bool,
    /// The set had no memo entry before (first plan found for it).
    pub new_set: bool,
}

/// Prices the ordered Join-Pair `(sl, sr)` against a read-only view of the
/// memo, returning `(cost, output rows)` — the `CreatePlan` step shared by
/// every backend. Returns `None` if either side has no memo entry yet.
///
/// This is the exact costing the parallel workers run against the shared
/// atomic memo before their `insert_if_better`; keeping it in one place is
/// what makes costs bit-identical across backends.
#[inline]
pub fn price_pair<M: MemoStore>(
    memo: &M,
    q: &QueryInfo,
    model: &dyn CostModel,
    sl: RelSet,
    sr: RelSet,
) -> Option<(f64, f64)> {
    let el = memo.get(sl)?;
    let er = memo.get(sr)?;
    let sel = q.graph.selectivity_between(sl, sr);
    let out_rows = el.rows * er.rows * sel;
    let cost = model.join_cost(
        InputEst {
            cost: el.cost,
            rows: el.rows,
        },
        InputEst {
            cost: er.cost,
            rows: er.rows,
        },
        out_rows,
    );
    Some((cost, out_rows))
}

/// Prices the ordered Join-Pair `(sl, sr)` and records it in the memo if it
/// beats the incumbent plan for `sl ∪ sr` (`CreatePlan` + best-plan update in
/// Algorithms 1–3).
///
/// Both sides must already have memo entries; a missing entry indicates an
/// enumeration-order bug and is reported as [`OptError::Internal`].
#[inline]
pub fn emit_pair<M: MemoStore>(
    memo: &mut M,
    q: &QueryInfo,
    model: &dyn CostModel,
    sl: RelSet,
    sr: RelSet,
) -> Result<EmitOutcome, OptError> {
    let (cost, out_rows) = price_pair(memo, q, model, sl, sr)
        .ok_or_else(|| OptError::Internal(format!("missing memo entry for {sl} ⋈ {sr}")))?;
    let union = sl.union(sr);
    let new_set = memo.get(union).is_none();
    let improved = memo.insert_if_better(union, sl, cost, out_rows);
    Ok(EmitOutcome { improved, new_set })
}

/// Per-level connected-set source shared by every level-synchronous backend
/// (DPSUB, MPDP, the CPU-parallel driver and the simulated-GPU drivers).
///
/// Dispatches on [`EnumerationMode`]: the frontier path expands the previous
/// level's connected sets through [`FrontierEnumerator`]; the unranked path
/// streams Gosper's `C(n, i)` candidates and keeps the connected survivors.
/// Both materialize the same slice in the same (ascending-bitmap) order, so
/// consumers are bit-identical across modes — only the `unranked` counter
/// and the work spent producing the slice differ.
pub struct LevelEnumerator<'g> {
    graph: &'g JoinGraph,
    n: usize,
    mode: EnumerationMode,
    frontier: FrontierEnumerator<'g>,
    /// Scratch for the unranked path (the frontier path borrows from the
    /// enumerator instead).
    filtered: Vec<RelSet>,
}

/// One materialized DP level.
pub struct LevelSets<'a> {
    /// The level's connected sets, ascending by bitmap.
    pub sets: &'a [RelSet],
    /// Candidate subsets unranked to produce them (0 in frontier mode).
    pub unranked: u64,
}

impl<'g> LevelEnumerator<'g> {
    /// Creates the enumerator for levels `2..=n` of `graph`.
    pub fn new(graph: &'g JoinGraph, mode: EnumerationMode) -> Self {
        LevelEnumerator {
            graph,
            n: graph.num_vertices(),
            mode,
            frontier: FrontierEnumerator::new(graph),
            filtered: Vec::new(),
        }
    }

    /// The active enumeration mode.
    pub fn mode(&self) -> EnumerationMode {
        self.mode
    }

    /// Materializes level `i`'s connected sets. Levels must be requested in
    /// increasing order starting at 2 (the frontier is consumed as it
    /// advances). Polls the context deadline while enumerating.
    pub fn level(&mut self, ctx: &OptContext<'_>, i: usize) -> Result<LevelSets<'_>, OptError> {
        debug_assert!((2..=self.n).contains(&i));
        match self.mode {
            EnumerationMode::Frontier => {
                debug_assert_eq!(self.frontier.level(), i - 1, "levels out of order");
                Ok(LevelSets {
                    sets: self.frontier.try_advance(|| ctx.check_deadline())?,
                    unranked: 0,
                })
            }
            EnumerationMode::Unranked => {
                self.filtered.clear();
                for (k, s) in KSubsets::new(self.n, i).enumerate() {
                    if k % 4096 == 0 {
                        ctx.check_deadline()?;
                    }
                    if self.graph.is_connected(s) {
                        self.filtered.push(s);
                    }
                }
                Ok(LevelSets {
                    sets: &self.filtered,
                    unranked: binomial(self.n as u64, i as u64),
                })
            }
        }
    }
}

/// Extracts the final plan and packages the run result, stamping the memo's
/// final health (load factor, probes, CAS retries) into the profile.
pub fn finish<M: MemoStore>(
    memo: &M,
    q: &QueryInfo,
    counters: Counters,
    mut profile: Profile,
) -> Result<OptResult, OptError> {
    let root = q.graph.all_vertices();
    let plan = extract_plan(memo, root)
        .ok_or_else(|| OptError::Internal("memo has no plan for the full query".into()))?;
    profile.memo = Some(memo.health());
    Ok(OptResult {
        cost: plan.cost(),
        rows: plan.rows(),
        plan,
        counters,
        profile,
        memo_entries: memo.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::graph::JoinGraph;
    use mpdp_core::memo::MemoTable;
    use mpdp_core::query::RelInfo;
    use mpdp_cost::pglike::PgLikeCost;

    fn two_rel_query() -> QueryInfo {
        let mut g = JoinGraph::new(2);
        g.add_edge(0, 1, 0.01);
        QueryInfo::new(g, vec![RelInfo::new(100.0, 2.0), RelInfo::new(200.0, 3.0)])
    }

    #[test]
    fn init_memo_loads_leaves() {
        let q = two_rel_query();
        let memo: MemoTable = init_memo(&q);
        assert_eq!(memo.len(), 2);
        let e = memo.get(RelSet::singleton(1)).unwrap();
        assert_eq!(e.rows, 200.0);
        assert!(e.is_leaf());
    }

    #[test]
    fn emit_pair_costs_and_stores() {
        let q = two_rel_query();
        let model = PgLikeCost::new();
        let mut memo: MemoTable = init_memo(&q);
        let sl = RelSet::singleton(0);
        let sr = RelSet::singleton(1);
        let o = emit_pair(&mut memo, &q, &model, sl, sr).unwrap();
        assert!(o.improved && o.new_set);
        let e = memo.get(sl.union(sr)).unwrap();
        // out rows = 100*200*0.01 = 200
        assert!((e.rows - 200.0).abs() < 1e-9);
        // Second emission of the mirrored pair: same rows, possibly different
        // cost; not a new set.
        let o2 = emit_pair(&mut memo, &q, &model, sr, sl).unwrap();
        assert!(!o2.new_set);
    }

    #[test]
    fn emit_pair_missing_side_is_internal_error() {
        let q = two_rel_query();
        let model = PgLikeCost::new();
        let mut memo: MemoTable = init_memo(&q);
        let err = emit_pair(
            &mut memo,
            &q,
            &model,
            RelSet::from_indices([0, 1]),
            RelSet::empty(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn deadline_expires() {
        let q = two_rel_query();
        let model = PgLikeCost::new();
        let ctx = OptContext::with_budget(&q, &model, Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            ctx.check_deadline(),
            Err(OptError::Timeout { .. })
        ));
        let ctx2 = OptContext::new(&q, &model);
        assert!(ctx2.check_deadline().is_ok());
    }

    #[test]
    fn validate_exact_rejects_disconnected() {
        let g = JoinGraph::new(2); // no edges
        let q = QueryInfo::new(g, vec![RelInfo::new(1.0, 1.0); 2]);
        let model = PgLikeCost::new();
        let ctx = OptContext::new(&q, &model);
        assert_eq!(ctx.validate_exact(), Err(OptError::DisconnectedGraph));
    }
}
