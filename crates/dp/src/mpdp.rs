//! MPDP — Massively Parallel Dynamic Programming (§3, Algorithms 2 and 3).
//!
//! MPDP keeps DPSUB's level-by-level, per-set independence (the property that
//! makes it massively parallelizable) but replaces the powerset split of each
//! set `S` with a *hybrid* enumeration:
//!
//! * **Tree join graphs** ([`MpdpTree`], Algorithm 2): the CCP pairs of a
//!   connected `S` are exactly the `|S| - 1` splits obtained by removing each
//!   edge of the tree induced by `S`, so no CCP check is ever needed and
//!   `EvaluatedCounter == CCP-Counter` (Theorem 3).
//! * **General graphs** ([`Mpdp`], Algorithm 3): decompose the subgraph
//!   induced by `S` into biconnected components (*blocks*); run vertex-based
//!   enumeration only *within* each block, then extend each block-level CCP
//!   pair `(lb, rb)` to a set-level pair with the `grow` function. Per-set
//!   work drops from `2^|S|` to `Σ_blocks 2^|block|` (Lemma 7), with
//!   `EvaluatedCounter == CCP-Counter` whenever all blocks are cliques
//!   (Lemma 9) — which covers trees (blocks are single edges) and cycles.

use crate::common::{emit_pair, finish, init_memo, LevelEnumerator, OptContext, OptResult};
use crate::JoinOrderOptimizer;
use mpdp_core::blocks::find_blocks;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::memo::MemoTable;
use mpdp_core::{OptError, RelSet};

/// MPDP specialized to tree (acyclic) join graphs — Algorithm 2.
#[derive(Copy, Clone, Debug, Default)]
pub struct MpdpTree;

impl MpdpTree {
    /// Runs MPDP:Tree. Fails with [`OptError::Internal`] if the join graph is
    /// not a tree (use [`Mpdp`] for general graphs).
    pub fn run(ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        ctx.validate_exact()?;
        let q = ctx.query;
        let n = q.query_size();
        if q.graph.num_edges() != n.saturating_sub(1) {
            return Err(OptError::Internal(format!(
                "MPDP:Tree requires a tree join graph ({} edges for {} relations)",
                q.graph.num_edges(),
                n
            )));
        }
        let mut memo: MemoTable = init_memo(q);
        let mut counters = Counters::default();
        let mut profile = Profile::default();

        let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);
        // Scratch buffer for the induced edges of the current set, reused
        // across all sets of all levels (no per-set allocation).
        let mut edge_scratch: Vec<(u32, u32)> = Vec::with_capacity(n);
        for i in 2..=n {
            let lvl = enumerator.level(ctx, i)?;
            let mut level = LevelStats {
                size: i,
                unranked: lvl.unranked,
                sets: lvl.sets.len() as u64,
                ..Default::default()
            };
            memo.reserve(lvl.sets.len());
            for &s in lvl.sets {
                ctx.check_deadline()?;
                // Valid-Join-Pairs(S): remove each edge of the induced tree
                // (Algorithm 2, line 4). Removing edge (u, v) splits S into
                // the component of u (grown while avoiding v) and the rest.
                edge_scratch.clear();
                edge_scratch.extend(q.graph.induced_edges(s).map(|e| (e.u, e.v)));
                for &(u, v) in &edge_scratch {
                    let sl = q
                        .graph
                        .grow(RelSet::singleton(u as usize), s.without(v as usize));
                    let sr = s.difference(sl);
                    debug_assert!(!sr.is_empty());
                    // Both orders; each is a CCP pair by Lemma 1.
                    for (a, b) in [(sl, sr), (sr, sl)] {
                        level.evaluated += 1;
                        level.ccp += 1;
                        let o = emit_pair(&mut memo, q, ctx.model, a, b)?;
                        if o.improved {
                            level.memo_writes += 1;
                        }
                    }
                }
            }
            counters.evaluated += level.evaluated;
            counters.ccp += level.ccp;
            counters.sets += level.sets;
            counters.unranked += level.unranked;
            profile.record(level);
        }
        finish(&memo, q, counters, profile)
    }
}

impl JoinOrderOptimizer for MpdpTree {
    fn name(&self) -> &'static str {
        "MPDP:Tree"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        MpdpTree::run(ctx)
    }
}

/// General MPDP with block-level hybrid enumeration — Algorithm 3.
#[derive(Copy, Clone, Debug, Default)]
pub struct Mpdp;

impl Mpdp {
    /// Evaluates one connected set `S`: finds its blocks, enumerates CCP
    /// pairs inside each block and grows them to set-level pairs.
    ///
    /// Exposed for reuse by the CPU-parallel and simulated-GPU drivers, which
    /// need per-set evaluation with their own scheduling around it.
    pub fn evaluate_set(
        ctx: &OptContext<'_>,
        memo: &mut mpdp_core::MemoTable,
        s: RelSet,
        level: &mut LevelStats,
    ) -> Result<(), OptError> {
        let q = ctx.query;
        let decomposition = find_blocks(&q.graph, s);
        for &block in &decomposition.blocks {
            // Line 6: all non-empty *proper* subsets lb of the block
            // (2^b - 2 of them), so the Figure 5 example evaluates exactly
            // 32 pairs for S = {1..9}.
            for lb in block.subsets() {
                if lb == block {
                    continue;
                }
                let rb = block.difference(lb);
                level.evaluated += 1;
                // --- CCP block at block level (lines 10-14) ---
                if rb.is_empty() || lb.is_empty() {
                    continue;
                }
                if !q.graph.is_connected(lb) {
                    continue;
                }
                if !q.graph.is_connected(rb) {
                    continue;
                }
                if !lb.is_disjoint(rb) {
                    continue; // never fires; kept for pseudo-code fidelity
                }
                if !q.graph.sets_connected(lb, rb) {
                    continue;
                }
                // --- end CCP block ---
                level.ccp += 1;
                // Lines 17-18: grow the block pair to a set-level pair.
                let sleft = q.graph.grow(lb, s.difference(rb));
                let sright = s.difference(sleft);
                debug_assert!(!sright.is_empty());
                let o = emit_pair(memo, q, ctx.model, sleft, sright)?;
                if o.improved {
                    level.memo_writes += 1;
                }
            }
        }
        Ok(())
    }

    /// Runs general MPDP on `ctx`, returning the optimal plan.
    pub fn run(ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        ctx.validate_exact()?;
        let q = ctx.query;
        let n = q.query_size();
        let mut memo: MemoTable = init_memo(q);
        let mut counters = Counters::default();
        let mut profile = Profile::default();

        let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);
        for i in 2..=n {
            let lvl = enumerator.level(ctx, i)?;
            let mut level = LevelStats {
                size: i,
                unranked: lvl.unranked,
                sets: lvl.sets.len() as u64,
                ..Default::default()
            };
            memo.reserve(lvl.sets.len());
            for &s in lvl.sets {
                ctx.check_deadline()?;
                Self::evaluate_set(ctx, &mut memo, s, &mut level)?;
            }
            counters.evaluated += level.evaluated;
            counters.ccp += level.ccp;
            counters.sets += level.sets;
            counters.unranked += level.unranked;
            profile.record(level);
        }
        finish(&memo, q, counters, profile)
    }
}

impl JoinOrderOptimizer for Mpdp {
    fn name(&self) -> &'static str {
        "MPDP"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        Mpdp::run(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsub::tests::{chain_query, cycle_query, star_query};
    use crate::dpsub::DpSub;
    use mpdp_core::graph::JoinGraph;
    use mpdp_core::query::{QueryInfo, RelInfo};
    use mpdp_cost::pglike::PgLikeCost;

    /// The Figure 5 nine-relation cyclic query.
    fn figure5_query() -> QueryInfo {
        let mut g = JoinGraph::new(9);
        for &(u, v) in &[
            (1, 2),
            (2, 4),
            (4, 3),
            (3, 1),
            (4, 5),
            (5, 9),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 6),
        ] {
            g.add_edge(u - 1, v - 1, 0.01);
        }
        let rels = (0..9)
            .map(|i| RelInfo::new(100.0 * (i + 1) as f64, (i + 1) as f64))
            .collect();
        QueryInfo::new(g, rels)
    }

    #[test]
    fn tree_variant_meets_ccp_lower_bound() {
        // Theorem 3: EvaluatedCounter == CCP-Counter on trees.
        let model = PgLikeCost::new();
        for q in [chain_query(7), star_query(7)] {
            let r = MpdpTree::run(&OptContext::new(&q, &model)).unwrap();
            assert_eq!(r.counters.evaluated, r.counters.ccp);
        }
    }

    #[test]
    fn tree_variant_matches_dpsub_cost_and_ccp() {
        let model = PgLikeCost::new();
        for q in [chain_query(7), star_query(7)] {
            let a = MpdpTree::run(&OptContext::new(&q, &model)).unwrap();
            let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            assert!((a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0));
            assert_eq!(a.counters.ccp, b.counters.ccp, "Lemma 2");
        }
    }

    #[test]
    fn tree_variant_rejects_cycles() {
        let q = cycle_query(5);
        let model = PgLikeCost::new();
        assert!(MpdpTree::run(&OptContext::new(&q, &model)).is_err());
    }

    #[test]
    fn general_matches_dpsub_everywhere() {
        let model = PgLikeCost::new();
        for q in [
            chain_query(7),
            star_query(7),
            cycle_query(7),
            figure5_query(),
        ] {
            let a = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
            let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            assert!(
                (a.cost - b.cost).abs() < 1e-6 * a.cost.max(1.0),
                "mpdp={} dpsub={}",
                a.cost,
                b.cost
            );
            assert_eq!(a.counters.ccp, b.counters.ccp, "Lemma 4");
            assert!(a.plan.validate(&q.graph).is_none());
        }
    }

    #[test]
    fn general_on_tree_meets_lower_bound() {
        // On a tree every block is a single edge (a 2-clique), so Lemma 9
        // applies: EvaluatedCounter == CCP-Counter even for general MPDP.
        let model = PgLikeCost::new();
        let q = star_query(7);
        let r = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
        assert_eq!(r.counters.evaluated, r.counters.ccp);
    }

    #[test]
    fn general_on_cycle_meets_lower_bound() {
        // A cycle's blocks are the whole cycle... no: the *induced subgraphs*
        // of a cycle are chains except the full set. Chains' blocks are
        // edges; the full cycle is one block but not a clique for n > 3.
        // Lemma 9 therefore guarantees equality only for n = 3.
        let model = PgLikeCost::new();
        let q = cycle_query(3);
        let r = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
        assert_eq!(r.counters.evaluated, r.counters.ccp);
    }

    #[test]
    fn figure5_block_reduction() {
        // §3.2: "For our cyclic graph example, it reduces from 512 to just
        // 32": set S = {1..9} has blocks of sizes 4,2,2,4 ->
        // Σ 2^b = 16+4+4+16 = 40; minus the 2 empty/full splits per block
        // (2^b - 2 proper non-empty submasks) gives 32 evaluated pairs.
        let q = figure5_query();
        let model = PgLikeCost::new();
        let r = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
        let top_level = r
            .profile
            .levels
            .iter()
            .find(|l| l.size == 9)
            .expect("level 9 present");
        assert_eq!(top_level.evaluated, 32);
        // DPSUB would evaluate 2^9 - 1 = 511 splits for the same set.
    }

    #[test]
    fn mpdp_evaluates_fewer_than_dpsub() {
        // Lemma 7 aggregate check.
        let model = PgLikeCost::new();
        for q in [star_query(8), cycle_query(8), figure5_query()] {
            let a = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
            let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
            assert!(a.counters.evaluated <= b.counters.evaluated);
        }
    }

    #[test]
    fn ccp_pairs_unique_per_set() {
        // Lemma 8: every CCP pair enumerated once. We verify through the
        // aggregate: MPDP's ccp count equals DPSUB's (which enumerates each
        // ordered pair exactly once by construction).
        let model = PgLikeCost::new();
        let q = figure5_query();
        let a = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
        let b = DpSub::run(&OptContext::new(&q, &model)).unwrap();
        assert_eq!(a.counters.ccp, b.counters.ccp);
    }

    #[test]
    fn clique_all_pairs_valid() {
        // Lemma 9 for a clique: one block = the clique; every submask pair
        // is a CCP pair.
        let mut g = JoinGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j, 0.1);
            }
        }
        let q = QueryInfo::new(g, vec![RelInfo::new(100.0, 1.0); 5]);
        let model = PgLikeCost::new();
        let r = Mpdp::run(&OptContext::new(&q, &model)).unwrap();
        assert_eq!(r.counters.evaluated, r.counters.ccp);
    }
}
