//! The cost-model abstraction shared by all optimizers.
//!
//! The paper uses "a more realistic cost model which is close to the one used
//! by PostgreSQL" restricted to inner equi-joins (§7.1, footnote 7), plus the
//! simpler `C_out` model for IKKBZ. Both are implementations of [`CostModel`].
//!
//! A cost model sees only *aggregates* of the two inputs — their cumulative
//! cost and cardinalities — plus the estimated output cardinality. This is
//! exactly the information the paper's GPU kernels carry per memo entry, and
//! it is what keeps every DP variant's inner loop identical.

/// Join operator chosen by a cost model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Nested-loop join (left outer loop).
    NestedLoop,
    /// Sort both inputs and merge.
    SortMerge,
}

/// Aggregate description of a subplan, as seen by the cost model.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct InputEst {
    /// Cumulative cost of producing the input.
    pub cost: f64,
    /// Estimated input cardinality.
    pub rows: f64,
}

/// A deterministic cost model over inner joins.
///
/// Implementations must be pure functions of their arguments: the DP
/// algorithms rely on cost equality across enumeration orders.
pub trait CostModel: Sync {
    /// Cost of the cheapest join operator for the ordered pair
    /// `(left, right)` producing `out_rows` rows, *including* both input
    /// costs.
    fn join_cost(&self, left: InputEst, right: InputEst, out_rows: f64) -> f64;

    /// The operator [`join_cost`](CostModel::join_cost) would pick (for plan
    /// explanation; the DP itself only needs the cost).
    fn join_algo(&self, left: InputEst, right: InputEst, out_rows: f64) -> JoinAlgo;

    /// Cost of scanning a base relation with `rows` tuples.
    fn scan_cost(&self, rows: f64) -> f64;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Unit;
    impl CostModel for Unit {
        fn join_cost(&self, l: InputEst, r: InputEst, out: f64) -> f64 {
            l.cost + r.cost + out
        }
        fn join_algo(&self, _: InputEst, _: InputEst, _: f64) -> JoinAlgo {
            JoinAlgo::Hash
        }
        fn scan_cost(&self, rows: f64) -> f64 {
            rows
        }
        fn name(&self) -> &'static str {
            "unit"
        }
    }

    #[test]
    fn trait_object_usable() {
        let m: &dyn CostModel = &Unit;
        let a = InputEst {
            cost: 1.0,
            rows: 10.0,
        };
        let b = InputEst {
            cost: 2.0,
            rows: 20.0,
        };
        assert_eq!(m.join_cost(a, b, 5.0), 8.0);
        assert_eq!(m.join_algo(a, b, 5.0), JoinAlgo::Hash);
        assert_eq!(m.name(), "unit");
    }
}
