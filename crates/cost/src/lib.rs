//! # mpdp-cost
//!
//! Catalog, statistics and cost models for the MPDP workspace.
//!
//! * [`model::CostModel`] — the trait every optimizer prices plans with;
//! * [`pglike::PgLikeCost`] — the paper's "PostgreSQL-like" model (§7.1);
//! * [`cout::CoutCost`] — the `C_out` model used by IKKBZ/LinDP;
//! * [`catalog`] — tables, column statistics and equi-join selectivity
//!   estimation.

#![warn(missing_docs)]

pub mod catalog;
pub mod cout;
pub mod model;
pub mod pglike;

pub use catalog::{Catalog, Column, JoinPredicate, Table};
pub use cout::CoutCost;
pub use model::{CostModel, InputEst, JoinAlgo};
pub use pglike::{PgLikeCost, PgParams};
