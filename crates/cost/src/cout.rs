//! The `C_out` cost model.
//!
//! `C_out(plan) = Σ |intermediate results|` — the sum of the cardinalities of
//! all intermediate join results. The paper notes that "recent works such as
//! \[26\] have used a cost model based on output size of different operators,
//! i.e. c_out" (§7.1) and that IKKBZ "uses the C_out cost function to
//! estimate the best left-deep join order" (§7.3). We provide it both as a
//! baseline-faithful component of IKKBZ/LinDP and as an alternative model for
//! ablations.

use crate::model::{CostModel, InputEst, JoinAlgo};

/// The `C_out` model: each join costs its output cardinality; scans are free.
#[derive(Copy, Clone, Debug, Default)]
pub struct CoutCost;

impl CostModel for CoutCost {
    fn join_cost(&self, left: InputEst, right: InputEst, out_rows: f64) -> f64 {
        left.cost + right.cost + out_rows
    }

    fn join_algo(&self, _: InputEst, _: InputEst, _: f64) -> JoinAlgo {
        JoinAlgo::Hash
    }

    fn scan_cost(&self, _rows: f64) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "cout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cout_sums_intermediate_sizes() {
        let m = CoutCost;
        let a = InputEst {
            cost: 0.0,
            rows: 100.0,
        };
        let b = InputEst {
            cost: 0.0,
            rows: 200.0,
        };
        let ab_cost = m.join_cost(a, b, 50.0);
        assert_eq!(ab_cost, 50.0);
        let ab = InputEst {
            cost: ab_cost,
            rows: 50.0,
        };
        let c = InputEst {
            cost: 0.0,
            rows: 10.0,
        };
        assert_eq!(m.join_cost(ab, c, 5.0), 55.0);
    }

    #[test]
    fn scans_are_free() {
        assert_eq!(CoutCost.scan_cost(1e9), 0.0);
    }

    #[test]
    fn symmetric() {
        let m = CoutCost;
        let a = InputEst {
            cost: 1.0,
            rows: 10.0,
        };
        let b = InputEst {
            cost: 2.0,
            rows: 20.0,
        };
        assert_eq!(m.join_cost(a, b, 7.0), m.join_cost(b, a, 7.0));
    }
}
