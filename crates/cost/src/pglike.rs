//! A PostgreSQL-like cost model for inner equi-joins.
//!
//! The paper's evaluation uses a model that "returns nearly the same cost as
//! PostgreSQL (within 5% in the worst case)" for its query suite while
//! covering only inner equi-joins (§7.1 footnote 7). We mirror that: the
//! constants below are PostgreSQL 12's planner defaults, and the three join
//! operators are costed with the same first-order formulas `costsize.c`
//! uses, dropping the refinements (bucket skew, rescan caching, semi-join
//! factors) that only apply to plan shapes outside this workspace's scope.

use crate::model::{CostModel, InputEst, JoinAlgo};

/// Planner constants (PostgreSQL defaults).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PgParams {
    /// Cost of a sequentially-fetched page (`seq_page_cost`).
    pub seq_page_cost: f64,
    /// Cost of processing one tuple (`cpu_tuple_cost`).
    pub cpu_tuple_cost: f64,
    /// Cost of processing one operator/expression (`cpu_operator_cost`).
    pub cpu_operator_cost: f64,
    /// Tuples per page used to translate cardinality into page reads.
    pub tuples_per_page: f64,
}

impl Default for PgParams {
    fn default() -> Self {
        PgParams {
            seq_page_cost: 1.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            tuples_per_page: 100.0,
        }
    }
}

/// The PostgreSQL-like model.
#[derive(Copy, Clone, Debug, Default)]
pub struct PgLikeCost {
    /// Planner constants.
    pub params: PgParams,
}

impl PgLikeCost {
    /// Creates the model with default PostgreSQL constants.
    pub fn new() -> Self {
        Self::default()
    }

    fn hash_cost(&self, left: InputEst, right: InputEst, out_rows: f64) -> f64 {
        let p = &self.params;
        // Build a hash table on the (right) inner side, probe with the left.
        let build = right.rows * (p.cpu_operator_cost + p.cpu_tuple_cost);
        let probe = left.rows * p.cpu_operator_cost;
        let emit = out_rows * p.cpu_tuple_cost;
        left.cost + right.cost + build + probe + emit
    }

    fn nestloop_cost(&self, left: InputEst, right: InputEst, out_rows: f64) -> f64 {
        let p = &self.params;
        // Materialized inner: rescan is cpu_operator_cost per inner tuple.
        let inner_rescans = (left.rows - 1.0).max(0.0);
        let rescan = inner_rescans * right.rows * p.cpu_operator_cost;
        let qual = left.rows * right.rows * p.cpu_operator_cost;
        let emit = out_rows * p.cpu_tuple_cost;
        left.cost + right.cost + rescan + qual + emit
    }

    fn sort_cost(&self, rows: f64) -> f64 {
        let p = &self.params;
        if rows <= 1.0 {
            return 0.0;
        }
        // comparison cost: 2 * cpu_operator_cost * N log2 N, as costsize.c.
        2.0 * p.cpu_operator_cost * rows * rows.log2()
    }

    fn merge_cost(&self, left: InputEst, right: InputEst, out_rows: f64) -> f64 {
        let p = &self.params;
        let sorts = self.sort_cost(left.rows) + self.sort_cost(right.rows);
        let merge = (left.rows + right.rows) * p.cpu_operator_cost;
        let emit = out_rows * p.cpu_tuple_cost;
        left.cost + right.cost + sorts + merge + emit
    }
}

impl CostModel for PgLikeCost {
    fn join_cost(&self, left: InputEst, right: InputEst, out_rows: f64) -> f64 {
        self.hash_cost(left, right, out_rows)
            .min(self.nestloop_cost(left, right, out_rows))
            .min(self.merge_cost(left, right, out_rows))
    }

    fn join_algo(&self, left: InputEst, right: InputEst, out_rows: f64) -> JoinAlgo {
        let h = self.hash_cost(left, right, out_rows);
        let n = self.nestloop_cost(left, right, out_rows);
        let m = self.merge_cost(left, right, out_rows);
        if h <= n && h <= m {
            JoinAlgo::Hash
        } else if n <= m {
            JoinAlgo::NestedLoop
        } else {
            JoinAlgo::SortMerge
        }
    }

    fn scan_cost(&self, rows: f64) -> f64 {
        let p = &self.params;
        let pages = (rows / p.tuples_per_page).ceil().max(1.0);
        pages * p.seq_page_cost + rows * p.cpu_tuple_cost
    }

    fn name(&self) -> &'static str {
        "pglike"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cost: f64, rows: f64) -> InputEst {
        InputEst { cost, rows }
    }

    #[test]
    fn scan_cost_scales_with_rows() {
        let m = PgLikeCost::new();
        assert!(m.scan_cost(100.0) < m.scan_cost(10_000.0));
        // Minimum one page.
        assert!(m.scan_cost(1.0) >= 1.0);
    }

    #[test]
    fn join_cost_includes_inputs() {
        let m = PgLikeCost::new();
        let base = m.join_cost(est(0.0, 100.0), est(0.0, 100.0), 100.0);
        let with_inputs = m.join_cost(est(50.0, 100.0), est(70.0, 100.0), 100.0);
        assert!((with_inputs - base - 120.0).abs() < 1e-9);
    }

    #[test]
    fn hash_beats_nestloop_on_large_inputs() {
        let m = PgLikeCost::new();
        let l = est(0.0, 1e6);
        let r = est(0.0, 1e6);
        assert_eq!(m.join_algo(l, r, 1e6), JoinAlgo::Hash);
    }

    #[test]
    fn nestloop_competitive_on_tiny_inputs() {
        let m = PgLikeCost::new();
        let l = est(0.0, 1.0);
        let r = est(0.0, 1.0);
        let nl = m.nestloop_cost(l, r, 1.0);
        let h = m.hash_cost(l, r, 1.0);
        assert!(nl <= h, "nl={nl} h={h}");
    }

    #[test]
    fn cost_is_deterministic_and_monotone_in_out_rows() {
        let m = PgLikeCost::new();
        let l = est(10.0, 1000.0);
        let r = est(20.0, 2000.0);
        let c1 = m.join_cost(l, r, 100.0);
        let c2 = m.join_cost(l, r, 100.0);
        assert_eq!(c1, c2);
        assert!(m.join_cost(l, r, 1e6) > c1);
    }

    #[test]
    fn join_algo_matches_min_cost() {
        let m = PgLikeCost::new();
        for &(lr, rr, or) in &[
            (1.0, 1.0, 1.0),
            (10.0, 1e6, 100.0),
            (1e6, 10.0, 100.0),
            (1e5, 1e5, 1e7),
        ] {
            let l = est(0.0, lr);
            let r = est(0.0, rr);
            let algo = m.join_algo(l, r, or);
            let c = m.join_cost(l, r, or);
            let expect = match algo {
                JoinAlgo::Hash => m.hash_cost(l, r, or),
                JoinAlgo::NestedLoop => m.nestloop_cost(l, r, or),
                JoinAlgo::SortMerge => m.merge_cost(l, r, or),
            };
            assert_eq!(c, expect);
        }
    }

    #[test]
    fn asymmetric_build_side() {
        // Hash join prefers building on the smaller side: the ordered pair
        // (big, small) should cost less than (small, big) under hash.
        let m = PgLikeCost::new();
        let big = est(0.0, 1e6);
        let small = est(0.0, 1e3);
        assert!(m.hash_cost(big, small, 1e3) < m.hash_cost(small, big, 1e3));
    }
}
