//! A minimal catalog: tables, statistics and join predicates.
//!
//! The paper runs inside PostgreSQL and pulls table statistics from its
//! catalog. We model the part the join-order problem needs: per-table row
//! counts, per-column distinct counts (NDV), and join predicates between
//! columns. From those the builder derives per-edge selectivities with the
//! textbook equi-join estimate `sel(a = b) = 1 / max(ndv(a), ndv(b))`, which
//! for a PK–FK join reduces to `1 / |PK table|` — the PostgreSQL estimate
//! for the PK–FK joins the paper's workloads use.

use crate::model::CostModel;
use mpdp_core::query::{LargeQuery, RelInfo};
use std::collections::HashMap;

/// A column with its distinct-value statistic.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Number of distinct values.
    pub ndv: f64,
    /// `true` if this column is a primary key (implies `ndv == rows`).
    pub primary_key: bool,
}

/// A table with statistics.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Estimated row count.
    pub rows: f64,
    /// Columns.
    pub columns: Vec<Column>,
}

impl Table {
    /// Builds a table; clamps each column's NDV to the row count.
    pub fn new(name: impl Into<String>, rows: f64, columns: Vec<Column>) -> Self {
        let mut columns = columns;
        for c in &mut columns {
            if c.primary_key {
                c.ndv = rows;
            }
            c.ndv = c.ndv.min(rows).max(1.0);
        }
        Table {
            name: name.into(),
            rows,
            columns,
        }
    }

    fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// An equi-join predicate `left_table.left_col = right_table.right_col`.
#[derive(Clone, Debug)]
pub struct JoinPredicate {
    /// Index of the left table in the catalog's table list.
    pub left_table: usize,
    /// Left column name.
    pub left_col: String,
    /// Index of the right table.
    pub right_table: usize,
    /// Right column name.
    pub right_col: String,
}

/// Canonical key of an equi-join predicate: the two `(table, column)` ends
/// ordered so `a.x = b.y` and `b.y = a.x` key identically.
type PredKey = (usize, String, usize, String);

fn pred_key(p: &JoinPredicate) -> PredKey {
    let l = (p.left_table, p.left_col.clone());
    let r = (p.right_table, p.right_col.clone());
    let (a, b) = if l <= r { (l, r) } else { (r, l) };
    (a.0, a.1, b.0, b.1)
}

/// A catalog of tables plus the join predicates of one query.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    /// The tables, indexed by position.
    pub tables: Vec<Table>,
    /// Observed-selectivity overrides keyed by canonical predicate; consulted
    /// before the NDV-derived estimate (the executor's cardinality feedback
    /// lands here — see `mpdp-exec::feedback`).
    overrides: HashMap<PredKey, f64>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a table, returning its index.
    pub fn add_table(&mut self, table: Table) -> usize {
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Looks up a table index by name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// The catalog scaled by `factor` (a TPC-H-style scale factor): every
    /// table's row count and every column's NDV are multiplied by `factor`
    /// and clamped to at least 1, so PK–FK selectivities track the scaled
    /// parent sizes (`sel = 1/(factor · |parent|)`). Selectivity overrides
    /// are *not* carried over — they are observations about one dataset,
    /// not statistics that scale.
    ///
    /// The executor experiments use this to shrink warehouse-sized schemas
    /// (IMDB, MusicBrainz) to an in-memory-executable scale while keeping
    /// the join-cardinality *ratios* the optimizer reasons about.
    pub fn scaled(&self, factor: f64) -> Catalog {
        assert!(factor.is_finite() && factor > 0.0, "scale factor {factor}");
        let tables = self
            .tables
            .iter()
            .map(|t| {
                let columns = t
                    .columns
                    .iter()
                    .map(|c| Column {
                        name: c.name.clone(),
                        ndv: (c.ndv * factor).max(1.0),
                        primary_key: c.primary_key,
                    })
                    .collect();
                Table::new(t.name.clone(), (t.rows * factor).max(1.0).round(), columns)
            })
            .collect();
        Catalog {
            tables,
            overrides: HashMap::new(),
        }
    }

    /// Pins an observed selectivity for a predicate, shadowing the
    /// NDV-derived estimate in [`Catalog::predicate_selectivity`] (and
    /// therefore in every later [`Catalog::build_query`]). Direction is
    /// normalized: overriding `a.x = b.y` also covers `b.y = a.x`.
    pub fn set_selectivity_override(&mut self, p: &JoinPredicate, sel: f64) {
        assert!(
            sel.is_finite() && sel > 0.0 && sel <= 1.0,
            "override selectivity {sel} out of (0, 1]"
        );
        self.overrides.insert(pred_key(p), sel);
    }

    /// Drops all selectivity overrides (e.g. after an ANALYZE-style full
    /// statistics refresh makes the base estimates trustworthy again).
    pub fn clear_selectivity_overrides(&mut self) {
        self.overrides.clear();
    }

    /// Number of predicates currently overridden by observed selectivities.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Estimated selectivity of an equi-join predicate:
    /// `1 / max(ndv(left), ndv(right))`, clamped to `(0, 1]` — unless an
    /// observed-selectivity override is pinned for the predicate, which wins
    /// unconditionally (an observation beats an independence assumption).
    ///
    /// Unknown columns fall back to NDV = rows / 10 (a mild correlation
    /// assumption, akin to PostgreSQL's defaults for unanalyzed columns).
    pub fn predicate_selectivity(&self, p: &JoinPredicate) -> f64 {
        // `pred_key` clones both column names; skip it entirely on the
        // common override-free catalog.
        if !self.overrides.is_empty() {
            if let Some(&sel) = self.overrides.get(&pred_key(p)) {
                return sel;
            }
        }
        let ndv = |ti: usize, col: &str| -> f64 {
            let t = &self.tables[ti];
            t.column(col)
                .map(|c| c.ndv)
                .unwrap_or_else(|| (t.rows / 10.0).max(1.0))
        };
        let l = ndv(p.left_table, &p.left_col);
        let r = ndv(p.right_table, &p.right_col);
        (1.0 / l.max(r)).clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Builds the optimizer's query description for a query joining the given
    /// tables with the given predicates, using `model` to price the base
    /// scans.
    ///
    /// `table_indices[i]` is the catalog table backing query relation `i`;
    /// predicates reference positions *within `table_indices`* (i.e. query
    /// relation indices), so the same catalog table may appear twice
    /// (self-joins get distinct relation indices).
    pub fn build_query(
        &self,
        table_indices: &[usize],
        predicates: &[JoinPredicate],
        model: &dyn CostModel,
    ) -> LargeQuery {
        let rels: Vec<RelInfo> = table_indices
            .iter()
            .map(|&ti| {
                let t = &self.tables[ti];
                RelInfo::new(t.rows, model.scan_cost(t.rows))
            })
            .collect();
        let mut q = LargeQuery::new(rels);
        for p in predicates {
            // Map query-relation indices to catalog tables for stats lookup.
            let catalog_pred = JoinPredicate {
                left_table: table_indices[p.left_table],
                left_col: p.left_col.clone(),
                right_table: table_indices[p.right_table],
                right_col: p.right_col.clone(),
            };
            let sel = self.predicate_selectivity(&catalog_pred);
            q.add_edge(p.left_table, p.right_table, sel);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pglike::PgLikeCost;

    fn pk(name: &str) -> Column {
        Column {
            name: name.into(),
            ndv: 0.0,
            primary_key: true,
        }
    }

    fn fk(name: &str, ndv: f64) -> Column {
        Column {
            name: name.into(),
            ndv,
            primary_key: false,
        }
    }

    fn tpc_ish() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(Table::new(
            "orders",
            15_000.0,
            vec![pk("o_orderkey"), fk("o_custkey", 1000.0)],
        ));
        c.add_table(Table::new(
            "lineitem",
            60_000.0,
            vec![fk("l_orderkey", 15_000.0), fk("l_partkey", 2000.0)],
        ));
        c.add_table(Table::new("customer", 1500.0, vec![pk("c_custkey")]));
        c.add_table(Table::new("part", 2000.0, vec![pk("p_partkey")]));
        c
    }

    #[test]
    fn pk_fk_selectivity_is_one_over_pk_rows() {
        let c = tpc_ish();
        let p = JoinPredicate {
            left_table: c.table_index("orders").unwrap(),
            left_col: "o_orderkey".into(),
            right_table: c.table_index("lineitem").unwrap(),
            right_col: "l_orderkey".into(),
        };
        let sel = c.predicate_selectivity(&p);
        assert!((sel - 1.0 / 15_000.0).abs() < 1e-12);
    }

    #[test]
    fn pk_column_ndv_clamped_to_rows() {
        let c = tpc_ish();
        let t = &c.tables[c.table_index("customer").unwrap()];
        assert_eq!(t.column("c_custkey").unwrap().ndv, 1500.0);
    }

    #[test]
    fn unknown_column_falls_back() {
        let c = tpc_ish();
        let p = JoinPredicate {
            left_table: 0,
            left_col: "no_such".into(),
            right_table: 2,
            right_col: "c_custkey".into(),
        };
        let sel = c.predicate_selectivity(&p);
        // max(15000/10, 1500) = 1500
        assert!((sel - 1.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn build_query_figure1() {
        // The Figure 1 TPC-H query: lineitem ⋈ orders ⋈ part ⋈ customer.
        let c = tpc_ish();
        let model = PgLikeCost::new();
        let tables = [
            c.table_index("lineitem").unwrap(),
            c.table_index("orders").unwrap(),
            c.table_index("part").unwrap(),
            c.table_index("customer").unwrap(),
        ];
        let preds = [
            JoinPredicate {
                left_table: 2, // part (query rel index)
                left_col: "p_partkey".into(),
                right_table: 0, // lineitem
                right_col: "l_partkey".into(),
            },
            JoinPredicate {
                left_table: 1, // orders
                left_col: "o_orderkey".into(),
                right_table: 0,
                right_col: "l_orderkey".into(),
            },
            JoinPredicate {
                left_table: 1,
                left_col: "o_custkey".into(),
                right_table: 3, // customer
                right_col: "c_custkey".into(),
            },
        ];
        let q = c.build_query(&tables, &preds, &model);
        assert_eq!(q.num_rels(), 4);
        assert_eq!(q.edges.len(), 3);
        assert!(q.is_connected());
        // (part, orders) must NOT be an edge — the §1 invalid Join-Pair.
        assert!(!q
            .edges
            .iter()
            .any(|e| (e.u, e.v) == (1, 2) || (e.u, e.v) == (2, 1)));
        // Scan costs priced by the model.
        assert!(q.rels[0].cost > q.rels[3].cost);
    }

    #[test]
    fn scaled_catalog_tracks_parent_sizes() {
        let c = tpc_ish();
        let s = c.scaled(0.01);
        assert_eq!(s.tables[c.table_index("orders").unwrap()].rows, 150.0);
        let p = JoinPredicate {
            left_table: c.table_index("orders").unwrap(),
            left_col: "o_orderkey".into(),
            right_table: c.table_index("lineitem").unwrap(),
            right_col: "l_orderkey".into(),
        };
        // PK-FK selectivity follows the scaled PK table.
        assert!((s.predicate_selectivity(&p) - 1.0 / 150.0).abs() < 1e-12);
        // Tiny factors clamp to 1 row rather than vanishing.
        let tiny = c.scaled(1e-9);
        assert!(tiny.tables.iter().all(|t| t.rows >= 1.0));
    }

    #[test]
    fn override_shadows_estimate_both_directions() {
        let mut c = tpc_ish();
        let p = JoinPredicate {
            left_table: c.table_index("orders").unwrap(),
            left_col: "o_orderkey".into(),
            right_table: c.table_index("lineitem").unwrap(),
            right_col: "l_orderkey".into(),
        };
        let base = c.predicate_selectivity(&p);
        c.set_selectivity_override(&p, 0.25);
        assert_eq!(c.override_count(), 1);
        assert_eq!(c.predicate_selectivity(&p), 0.25);
        // Flipped predicate hits the same canonical key.
        let flipped = JoinPredicate {
            left_table: p.right_table,
            left_col: p.right_col.clone(),
            right_table: p.left_table,
            right_col: p.left_col.clone(),
        };
        assert_eq!(c.predicate_selectivity(&flipped), 0.25);
        // Re-overriding replaces; clearing restores the NDV estimate.
        c.set_selectivity_override(&flipped, 0.5);
        assert_eq!(c.override_count(), 1);
        assert_eq!(c.predicate_selectivity(&p), 0.5);
        c.clear_selectivity_overrides();
        assert_eq!(c.override_count(), 0);
        assert_eq!(c.predicate_selectivity(&p), base);
    }

    #[test]
    fn build_query_uses_overrides() {
        let mut c = tpc_ish();
        let model = PgLikeCost::new();
        let oi = c.table_index("orders").unwrap();
        let li = c.table_index("lineitem").unwrap();
        let pred = JoinPredicate {
            left_table: 0, // query relation index (orders)
            left_col: "o_orderkey".into(),
            right_table: 1, // lineitem
            right_col: "l_orderkey".into(),
        };
        // Overrides are keyed by *catalog* tables, as the feedback path
        // stores them.
        let catalog_pred = JoinPredicate {
            left_table: oi,
            left_col: "o_orderkey".into(),
            right_table: li,
            right_col: "l_orderkey".into(),
        };
        c.set_selectivity_override(&catalog_pred, 0.125);
        let q = c.build_query(&[oi, li], std::slice::from_ref(&pred), &model);
        assert!((q.edges[0].sel - 0.125).abs() < 1e-15);
    }

    #[test]
    fn self_join_gets_two_relations() {
        let c = tpc_ish();
        let model = PgLikeCost::new();
        let oi = c.table_index("orders").unwrap();
        let preds = [JoinPredicate {
            left_table: 0,
            left_col: "o_orderkey".into(),
            right_table: 1,
            right_col: "o_orderkey".into(),
        }];
        let q = c.build_query(&[oi, oi], &preds, &model);
        assert_eq!(q.num_rels(), 2);
        assert_eq!(q.edges.len(), 1);
        assert!((q.edges[0].sel - 1.0 / 15_000.0).abs() < 1e-12);
    }
}
