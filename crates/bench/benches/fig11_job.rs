//! Criterion bench for Figure 11: JOB-like queries over the IMDB-like
//! schema.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_bench::runner::{run_exact, AlgoKind};
use mpdp_cost::PgLikeCost;
use mpdp_workload::ImdbSchema;
use std::time::Duration;

fn bench_job(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let schema = ImdbSchema::new();
    let mut group = c.benchmark_group("fig11_job");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 12, 17] {
        let q = schema.query(n, 7, &model).to_query_info().unwrap();
        for kind in [AlgoKind::DpCcp, AlgoKind::MpdpSeq, AlgoKind::MpdpGpu] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &q, |b, q| {
                b.iter(|| run_exact(kind, q, &model, Duration::from_secs(60)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_job);
criterion_main!(benches);
