//! Criterion bench for Figure 6: optimization time on star join graphs.
//!
//! Wall-clock measurement of the real implementations on this machine;
//! the `repro fig6` binary adds the hardware-model projections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_bench::runner::{run_exact, AlgoKind};
use mpdp_cost::PgLikeCost;
use mpdp_workload::gen;
use std::time::Duration;

fn bench_star(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let mut group = c.benchmark_group("fig6_star");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 12, 14] {
        let q = gen::star(n, 1000, &model).to_query_info().unwrap();
        for kind in [
            AlgoKind::PostgresDpSize,
            AlgoKind::DpCcp,
            AlgoKind::MpdpSeq,
            AlgoKind::MpdpGpu,
        ] {
            // DPSIZE explodes past 14 on stars; skip to keep the bench fast.
            if kind == AlgoKind::PostgresDpSize && n > 12 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &q, |b, q| {
                b.iter(|| run_exact(kind, q, &model, Duration::from_secs(60)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_star);
criterion_main!(benches);
