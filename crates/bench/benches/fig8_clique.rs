//! Criterion bench for Figure 8: optimization time on clique join graphs
//! (the cross-join stress case — no search-space pruning possible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_bench::runner::{run_exact, AlgoKind};
use mpdp_cost::PgLikeCost;
use mpdp_workload::gen;
use std::time::Duration;

fn bench_clique(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let mut group = c.benchmark_group("fig8_clique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [6usize, 8, 10] {
        let q = gen::clique(n, 1000, &model).to_query_info().unwrap();
        for kind in [
            AlgoKind::DpCcp,
            AlgoKind::DpSubSeq,
            AlgoKind::MpdpSeq,
            AlgoKind::MpdpGpu,
        ] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &q, |b, q| {
                b.iter(|| run_exact(kind, q, &model, Duration::from_secs(60)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
