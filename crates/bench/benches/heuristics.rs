//! Criterion bench for the heuristic optimizers (the Tables 1–2 regime):
//! optimization time of each technique on a mid-size snowflake. Plan
//! *quality* is covered by `repro table1`/`table2`; this bench tracks the
//! time side ("while being faster to compute").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_cost::PgLikeCost;
use mpdp_heuristics::{idp2_mpdp, Goo, Ikkbz, LargeOptimizer, LinDp, UnionDp};
use mpdp_workload::gen;
use std::time::Duration;

fn bench_heuristics(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let mut group = c.benchmark_group("heuristics_snowflake");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [50usize, 100] {
        let q = gen::snowflake(n, 4, 7, &model);
        group.bench_with_input(BenchmarkId::new("GOO", n), &q, |b, q| {
            b.iter(|| Goo.optimize(q, &model, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("IKKBZ", n), &q, |b, q| {
            b.iter(|| Ikkbz.optimize(q, &model, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("LinDP", n), &q, |b, q| {
            b.iter(|| LinDp::default().optimize(q, &model, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("IDP2-MPDP(10)", n), &q, |b, q| {
            b.iter(|| idp2_mpdp(q, &model, 10, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("UnionDP-MPDP(10)", n), &q, |b, q| {
            b.iter(|| UnionDp { k: 10 }.optimize(q, &model, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
