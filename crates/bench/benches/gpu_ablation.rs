//! Criterion bench for the §7.2.5 GPU-enhancement ablation: end-to-end
//! simulated-GPU run time of MPDP with/without kernel fusion and CCC.
//! (The cycle-level effects are reported by `repro ablation`; this measures
//! the host-side wall time of driving the simulation.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_cost::PgLikeCost;
use mpdp_dp::common::OptContext;
use mpdp_gpu::drivers::MpdpGpu;
use mpdp_workload::gen;
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let q = gen::star(12, 3, &model).to_query_info().unwrap();
    let mut group = c.benchmark_group("gpu_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (label, fused, ccc) in [
        ("baseline", false, false),
        ("fusion", true, false),
        ("ccc", false, true),
        ("both", true, true),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 12), &q, |b, q| {
            b.iter(|| {
                let ctx = OptContext::new(q, &model);
                let mut drv = MpdpGpu::new();
                drv.config.fused_prune = fused;
                drv.config.ccc = ccc;
                drv.run(&ctx).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
