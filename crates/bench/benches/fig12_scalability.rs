//! Criterion bench for the Figure 12 substrate: real fork/join execution of
//! parallel MPDP at different worker counts. On this single-core container
//! thread counts > 1 measure scheduling overhead, not speedup — the figure's
//! speedup curves come from the calibrated model in `repro fig12`; this
//! bench guards the parallel implementation's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_cost::PgLikeCost;
use mpdp_dp::common::OptContext;
use mpdp_parallel::level_par::{run_level_parallel, LevelAlgo};
use mpdp_workload::MusicBrainz;
use std::time::Duration;

fn bench_scalability(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let q = mb
        .random_walk_query(14, 42, true, &model)
        .to_query_info()
        .unwrap();
    let mut group = c.benchmark_group("fig12_parallel_mpdp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("MPDP(CPU)", threads), &q, |b, q| {
            b.iter(|| {
                let ctx = OptContext::new(q, &model);
                run_level_parallel(&ctx, LevelAlgo::Mpdp, threads).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
