//! Criterion bench for Figure 9: optimization time on MusicBrainz
//! random-walk queries (real-world schema topology, cycles included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdp_bench::runner::{run_exact, AlgoKind};
use mpdp_cost::PgLikeCost;
use mpdp_workload::MusicBrainz;
use std::time::Duration;

fn bench_musicbrainz(c: &mut Criterion) {
    let model = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let mut group = c.benchmark_group("fig9_musicbrainz");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [8usize, 12, 16] {
        let q = mb
            .random_walk_query(n, 42, true, &model)
            .to_query_info()
            .unwrap();
        for kind in [AlgoKind::DpCcp, AlgoKind::MpdpSeq, AlgoKind::MpdpGpu] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &q, |b, q| {
                b.iter(|| run_exact(kind, q, &model, Duration::from_secs(60)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_musicbrainz);
criterion_main!(benches);
