//! The wall-time regression gate shared by `repro bench` and `repro scale`.
//!
//! A baseline JSON (committed as `BENCH_baseline.json` / `BENCH_scale.json`)
//! holds one self-contained object per line with at least `shape`, `n`,
//! `algorithm` and `wall_ms`; the gate re-times the same runs and flags
//! algorithm-specific slowdowns beyond 2× after normalizing out the
//! machine-speed difference.
//!
//! Besides the pass/fail findings ([`check_regressions`]), the gate can
//! render its full table as GitHub-flavored markdown ([`summary_markdown`])
//! and append it to the Actions job summary ([`append_step_summary`]) —
//! `repro`'s `--summary-md` flag, wired into every gating CI leg.

/// One timed run, keyed the way baselines store it.
#[derive(Clone, Debug)]
pub struct WallRun {
    /// Query shape label (`"chain"`, `"fig5"`, …).
    pub shape: String,
    /// Relation count.
    pub n: usize,
    /// Algorithm label; `repro scale` encodes the worker count here
    /// (`"MPDP (4CPU)"`).
    pub algorithm: String,
    /// Measured wall time in milliseconds.
    pub wall_ms: f64,
}

/// One baseline row matched against a current run — the unit of the gate
/// table rendered into `$GITHUB_STEP_SUMMARY` by [`summary_markdown`].
#[derive(Clone, Debug)]
pub struct GateRow {
    /// `shape(n)/algorithm` key.
    pub label: String,
    /// Baseline wall time in milliseconds.
    pub baseline_ms: f64,
    /// Current wall time in milliseconds.
    pub current_ms: f64,
    /// Whether this row tripped the gate.
    pub flagged: bool,
}

/// The structured result of one regression-gate evaluation.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Median current/baseline wall ratio across matched rows (the
    /// machine-speed factor regressions are normalized by); 1.0 when
    /// nothing matched.
    pub machine_factor: f64,
    /// Every matched row, flagged or not.
    pub rows: Vec<GateRow>,
    /// Human-readable findings; empty means the gate is green.
    pub findings: Vec<String>,
}

/// Reads `(shape, n, algorithm) -> wall_ms` records from a baseline JSON
/// produced with `--emit-json` (one record per line) and evaluates `current`
/// against them. `require_full_coverage` makes a baseline row with no
/// current counterpart a finding (the bench gate re-runs its whole roster);
/// the scale/exec smoke legs re-time a deliberate subset of their committed
/// baselines (one worker count per matrix leg), so they pass `false` and
/// only the intersection is compared.
///
/// The baseline was timed on one specific machine, so raw ratios would flag
/// every run on a uniformly slower CI runner. The check therefore
/// normalizes by the *median* current/baseline ratio across all matched
/// runs (the machine-speed factor) and only flags algorithm-specific
/// regressions beyond 2× of that. Noise floor: a run is only flagged once
/// its absolute wall time exceeds 5 ms — sub-millisecond rows jitter far
/// more than 2× between invocations, but a genuine blow-up still crosses
/// the floor.
pub fn gate_report(path: &str, current: &[WallRun], require_full_coverage: bool) -> GateReport {
    const FACTOR: f64 = 2.0;
    const FLOOR_MS: f64 = 5.0;
    let baseline = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return GateReport {
                machine_factor: 1.0,
                rows: Vec::new(),
                findings: vec![format!("cannot read baseline {path}: {e}")],
            }
        }
    };
    let mut findings = Vec::new();
    // (label, baseline wall, current wall) for every matched run.
    let mut matched: Vec<(String, f64, f64)> = Vec::new();
    for line in baseline.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"algorithm\"") {
            continue;
        }
        let (Some(shape), Some(algo), Some(n), Some(wall)) = (
            json_str(line, "shape"),
            json_str(line, "algorithm"),
            json_num(line, "n"),
            json_num(line, "wall_ms"),
        ) else {
            continue;
        };
        let Some(cur) = current
            .iter()
            .find(|r| r.shape == shape && r.algorithm == algo && (r.n as f64 - n).abs() < 0.5)
        else {
            if require_full_coverage {
                findings.push(format!(
                    "{shape}({n})/{algo}: present in baseline, missing now"
                ));
            }
            continue;
        };
        matched.push((format!("{shape}({n})/{algo}"), wall, cur.wall_ms));
    }
    if matched.is_empty() {
        findings.push(format!("no baseline runs matched in {path}"));
        return GateReport {
            machine_factor: 1.0,
            rows: Vec::new(),
            findings,
        };
    }
    let mut ratios: Vec<f64> = matched
        .iter()
        .map(|(_, base, cur)| cur / base.max(1e-9))
        .collect();
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let machine_factor = ratios[ratios.len() / 2].max(1e-9);
    println!("# machine-speed factor vs baseline (median wall ratio): {machine_factor:.2}");
    let mut rows = Vec::with_capacity(matched.len());
    for (label, base, cur) in matched {
        let flagged = cur > FLOOR_MS && cur > FACTOR * machine_factor * base;
        if flagged {
            findings.push(format!(
                "{label}: {cur:.1} ms vs baseline {base:.1} ms (machine factor {machine_factor:.2})"
            ));
        }
        rows.push(GateRow {
            label,
            baseline_ms: base,
            current_ms: cur,
            flagged,
        });
    }
    GateReport {
        machine_factor,
        rows,
        findings,
    }
}

/// [`gate_report`] reduced to its findings — the historical entry point
/// (`repro`'s exit-code gate and the tests use this).
pub fn check_regressions(
    path: &str,
    current: &[WallRun],
    require_full_coverage: bool,
) -> Vec<String> {
    gate_report(path, current, require_full_coverage).findings
}

/// Renders one gate evaluation as a GitHub-flavored markdown section: a
/// verdict line, the machine factor, the full gate table (flagged rows
/// bolded and marked), and any non-row findings — everything needed to
/// diagnose a red bench leg from the Actions run page without downloading
/// artifacts.
pub fn summary_markdown(title: &str, report: &GateReport) -> String {
    let verdict = if report.findings.is_empty() {
        "✅ no wall-time regression"
    } else {
        "❌ gate failed"
    };
    let mut md = format!(
        "### {title} — {verdict}\n\nmachine-speed factor vs baseline (median wall ratio): \
         `{:.2}`\n\n",
        report.machine_factor
    );
    if !report.rows.is_empty() {
        md.push_str("| run | baseline ms | current ms | ratio | |\n|---|---:|---:|---:|---|\n");
        for r in &report.rows {
            let ratio = r.current_ms / r.baseline_ms.max(1e-9);
            if r.flagged {
                md.push_str(&format!(
                    "| **{}** | {:.2} | **{:.2}** | **{:.2}×** | 🚨 |\n",
                    r.label, r.baseline_ms, r.current_ms, ratio
                ));
            } else {
                md.push_str(&format!(
                    "| {} | {:.2} | {:.2} | {:.2}× | |\n",
                    r.label, r.baseline_ms, r.current_ms, ratio
                ));
            }
        }
    }
    let non_row: Vec<&String> = report
        .findings
        .iter()
        .filter(|f| {
            !report
                .rows
                .iter()
                .any(|r| r.flagged && f.starts_with(&r.label))
        })
        .collect();
    if !non_row.is_empty() {
        md.push('\n');
        for f in non_row {
            md.push_str(&format!("- ⚠️ {f}\n"));
        }
    }
    md.push('\n');
    md
}

/// Appends a markdown fragment to the file `$GITHUB_STEP_SUMMARY` points at
/// (the GitHub Actions job-summary channel). Outside Actions — or if the
/// append fails — the fragment goes to stdout instead, so `--summary-md`
/// is observable in local runs too.
pub fn append_step_summary(md: &str) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") {
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(md.as_bytes()));
        if appended.is_ok() {
            return;
        }
    }
    print!("{md}");
}

/// Extracts `"key": "value"` from a single-line JSON object.
pub fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts `"key": <number>` from a single-line JSON object.
pub fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shape: &str, n: usize, algo: &str, wall: f64) -> WallRun {
        WallRun {
            shape: shape.into(),
            n,
            algorithm: algo.into(),
            wall_ms: wall,
        }
    }

    #[test]
    fn json_field_extraction() {
        let line = r#"{"shape": "chain", "n": 16, "algorithm": "MPDP", "wall_ms": 12.5}"#;
        assert_eq!(json_str(line, "shape"), Some("chain"));
        assert_eq!(json_str(line, "algorithm"), Some("MPDP"));
        assert_eq!(json_num(line, "n"), Some(16.0));
        assert_eq!(json_num(line, "wall_ms"), Some(12.5));
        assert_eq!(json_num(line, "missing"), None);
    }

    #[test]
    fn gate_flags_only_specific_regressions() {
        let dir = std::env::temp_dir().join(format!("regress-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(
            &path,
            concat!(
                "{\"shape\": \"a\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0},\n",
                "{\"shape\": \"b\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0},\n",
                "{\"shape\": \"c\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0}\n",
            ),
        )
        .unwrap();
        let p = path.to_str().unwrap();
        // Uniform 1.5x slowdown (slower machine): no flags.
        let uniform = [
            run("a", 10, "X", 15.0),
            run("b", 10, "X", 15.0),
            run("c", 10, "X", 15.0),
        ];
        assert!(check_regressions(p, &uniform, true).is_empty());
        // One run blown up 10x beyond the machine factor: flagged.
        let blown = [
            run("a", 10, "X", 10.0),
            run("b", 10, "X", 10.0),
            run("c", 10, "X", 100.0),
        ];
        let flags = check_regressions(p, &blown, true);
        assert_eq!(flags.len(), 1);
        assert!(flags[0].contains('c'), "{flags:?}");
        // Missing run: reported.
        let missing = [run("a", 10, "X", 10.0), run("b", 10, "X", 10.0)];
        assert!(check_regressions(p, &missing, true)
            .iter()
            .any(|f| f.contains("missing now")));
        // Subset mode: the same gap is tolerated (scale smoke re-times a
        // deliberate subset of the committed full sweep).
        assert!(check_regressions(p, &missing, false).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_markdown_renders_gate_table() {
        let dir = std::env::temp_dir().join(format!("regress-md-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(
            &path,
            concat!(
                "{\"shape\": \"a\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0},\n",
                "{\"shape\": \"b\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0},\n",
                "{\"shape\": \"c\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0}\n",
            ),
        )
        .unwrap();
        let p = path.to_str().unwrap();
        let steady = [
            run("a", 10, "X", 10.0),
            run("b", 10, "X", 10.0),
            run("c", 10, "X", 10.0),
        ];
        let green = gate_report(p, &steady, true);
        assert!(green.findings.is_empty());
        assert_eq!(green.rows.len(), 3);
        let md = summary_markdown("exec gate", &green);
        assert!(md.contains("### exec gate — ✅"), "{md}");
        assert!(md.contains("| a(10)/X | 10.00 | 10.00 | 1.00× | |"), "{md}");

        let blown = [
            run("a", 10, "X", 10.0),
            run("b", 10, "X", 100.0),
            run("c", 10, "X", 10.0),
        ];
        let red = gate_report(p, &blown, true);
        assert_eq!(red.findings.len(), 1);
        let md = summary_markdown("exec gate", &red);
        assert!(md.contains("❌ gate failed"), "{md}");
        assert!(md.contains("**b(10)/X**"), "{md}");
        assert!(md.contains("🚨"), "{md}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
