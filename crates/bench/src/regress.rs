//! The wall-time regression gate shared by `repro bench` and `repro scale`.
//!
//! A baseline JSON (committed as `BENCH_baseline.json` / `BENCH_scale.json`)
//! holds one self-contained object per line with at least `shape`, `n`,
//! `algorithm` and `wall_ms`; the gate re-times the same runs and flags
//! algorithm-specific slowdowns beyond 2× after normalizing out the
//! machine-speed difference.

/// One timed run, keyed the way baselines store it.
#[derive(Clone, Debug)]
pub struct WallRun {
    /// Query shape label (`"chain"`, `"fig5"`, …).
    pub shape: String,
    /// Relation count.
    pub n: usize,
    /// Algorithm label; `repro scale` encodes the worker count here
    /// (`"MPDP (4CPU)"`).
    pub algorithm: String,
    /// Measured wall time in milliseconds.
    pub wall_ms: f64,
}

/// Reads `(shape, n, algorithm) -> wall_ms` records from a baseline JSON
/// produced with `--emit-json` (one record per line) and reports >2×
/// regressions among `current`. `require_full_coverage` makes a baseline
/// row with no current counterpart a finding (the bench gate re-runs its
/// whole roster); the scale smoke leg re-times a deliberate subset of its
/// committed full-sweep baseline, so it passes `false` and only the
/// intersection is compared.
///
/// The baseline was timed on one specific machine, so raw ratios would flag
/// every run on a uniformly slower CI runner. The check therefore
/// normalizes by the *median* current/baseline ratio across all matched
/// runs (the machine-speed factor) and only flags algorithm-specific
/// regressions beyond 2× of that. Noise floor: a run is only flagged once
/// its absolute wall time exceeds 5 ms — sub-millisecond rows jitter far
/// more than 2× between invocations, but a genuine blow-up still crosses
/// the floor.
pub fn check_regressions(
    path: &str,
    current: &[WallRun],
    require_full_coverage: bool,
) -> Vec<String> {
    const FACTOR: f64 = 2.0;
    const FLOOR_MS: f64 = 5.0;
    let baseline = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let mut out = Vec::new();
    // (label, baseline wall, current wall) for every matched run.
    let mut matched: Vec<(String, f64, f64)> = Vec::new();
    for line in baseline.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"algorithm\"") {
            continue;
        }
        let (Some(shape), Some(algo), Some(n), Some(wall)) = (
            json_str(line, "shape"),
            json_str(line, "algorithm"),
            json_num(line, "n"),
            json_num(line, "wall_ms"),
        ) else {
            continue;
        };
        let Some(cur) = current
            .iter()
            .find(|r| r.shape == shape && r.algorithm == algo && (r.n as f64 - n).abs() < 0.5)
        else {
            if require_full_coverage {
                out.push(format!(
                    "{shape}({n})/{algo}: present in baseline, missing now"
                ));
            }
            continue;
        };
        matched.push((format!("{shape}({n})/{algo}"), wall, cur.wall_ms));
    }
    if matched.is_empty() {
        out.push(format!("no baseline runs matched in {path}"));
        return out;
    }
    let mut ratios: Vec<f64> = matched
        .iter()
        .map(|(_, base, cur)| cur / base.max(1e-9))
        .collect();
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let machine_factor = ratios[ratios.len() / 2].max(1e-9);
    println!("# machine-speed factor vs baseline (median wall ratio): {machine_factor:.2}");
    for (label, base, cur) in matched {
        if cur > FLOOR_MS && cur > FACTOR * machine_factor * base {
            out.push(format!(
                "{label}: {cur:.1} ms vs baseline {base:.1} ms (machine factor {machine_factor:.2})"
            ));
        }
    }
    out
}

/// Extracts `"key": "value"` from a single-line JSON object.
pub fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts `"key": <number>` from a single-line JSON object.
pub fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shape: &str, n: usize, algo: &str, wall: f64) -> WallRun {
        WallRun {
            shape: shape.into(),
            n,
            algorithm: algo.into(),
            wall_ms: wall,
        }
    }

    #[test]
    fn json_field_extraction() {
        let line = r#"{"shape": "chain", "n": 16, "algorithm": "MPDP", "wall_ms": 12.5}"#;
        assert_eq!(json_str(line, "shape"), Some("chain"));
        assert_eq!(json_str(line, "algorithm"), Some("MPDP"));
        assert_eq!(json_num(line, "n"), Some(16.0));
        assert_eq!(json_num(line, "wall_ms"), Some(12.5));
        assert_eq!(json_num(line, "missing"), None);
    }

    #[test]
    fn gate_flags_only_specific_regressions() {
        let dir = std::env::temp_dir().join(format!("regress-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(
            &path,
            concat!(
                "{\"shape\": \"a\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0},\n",
                "{\"shape\": \"b\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0},\n",
                "{\"shape\": \"c\", \"n\": 10, \"algorithm\": \"X\", \"wall_ms\": 10.0}\n",
            ),
        )
        .unwrap();
        let p = path.to_str().unwrap();
        // Uniform 1.5x slowdown (slower machine): no flags.
        let uniform = [
            run("a", 10, "X", 15.0),
            run("b", 10, "X", 15.0),
            run("c", 10, "X", 15.0),
        ];
        assert!(check_regressions(p, &uniform, true).is_empty());
        // One run blown up 10x beyond the machine factor: flagged.
        let blown = [
            run("a", 10, "X", 10.0),
            run("b", 10, "X", 10.0),
            run("c", 10, "X", 100.0),
        ];
        let flags = check_regressions(p, &blown, true);
        assert_eq!(flags.len(), 1);
        assert!(flags[0].contains('c'), "{flags:?}");
        // Missing run: reported.
        let missing = [run("a", 10, "X", 10.0), run("b", 10, "X", 10.0)];
        assert!(check_regressions(p, &missing, true)
            .iter()
            .any(|f| f.contains("missing now")));
        // Subset mode: the same gap is tolerated (scale smoke re-times a
        // deliberate subset of the committed full sweep).
        assert!(check_regressions(p, &missing, false).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
