//! `repro exec` — the executor-backed modeled-cost vs measured-runtime
//! experiment.
//!
//! For each query shape the harness (1) lifts the query into a catalog via
//! `mpdp_exec::synthesize_catalog` (the JOB shape's *statistics* come from
//! the real `ImdbSchema::catalog()` at scale factor 1/100, then take the
//! same synthesized-catalog path as every other shape), (2) materializes
//! columnar tables from the catalog statistics with a deterministic seed,
//! (3) plans the *scaled*
//! query with every strategy of [`EXEC_STRATEGIES`] and executes each plan,
//! and (4) reports modeled plan cost next to measured execution wall time
//! and the executor's deterministic rows-touched work measure, with
//! Spearman rank correlations per query.
//!
//! Two built-in checks make this a test as much as a report:
//!
//! * **oracle** — all strategies' plans of one query must produce the
//!   identical root cardinality (joins are commutative and associative; any
//!   divergence is a planner or executor bug and fails the run);
//! * **feedback demo** — a deliberately skewed dataset drives the full
//!   estimate→observe→invalidate→re-plan loop through `PlanService` and
//!   reports the improvement of the corrected plan.

use crate::regress::WallRun;
use crate::scaling::figure5_query;
use crate::stats::{mean, spearman};
use mpdp::registry;
use mpdp_core::counters::ExecCounters;
use mpdp_core::LargeQuery;
use mpdp_cost::{CostModel, PgLikeCost};
use mpdp_exec::{
    fold_observations, materialize, recost_plan, synthesize_catalog, ExecConfig, Executor,
    GenConfig, SkewedEdge,
};
use mpdp_parallel::pool::with_pool;
use mpdp_workload::ImdbSchema;
use std::time::Duration;

/// The strategy roster executed per query: three exact entries (which must
/// agree on the optimal plan) and two heuristics (whose worse modeled costs
/// should show up as worse measured runtimes).
pub const EXEC_STRATEGIES: [&str; 5] = ["DPCCP (1CPU)", "MPDP", "MPDP (4CPU)", "GOO", "IKKBZ"];

/// One query shape of the experiment.
pub struct ExecCase {
    /// Shape label (baseline JSON key).
    pub shape: &'static str,
    /// The query, with its original (unscaled) statistics.
    pub query: LargeQuery,
    /// Per-table materialized row cap for this shape (dense shapes need a
    /// lower cap to keep intermediate results in memory).
    pub max_table_rows: usize,
}

/// Deterministic log-uniform draw in `[lo, hi]` (no RNG state — the shape
/// builders below must produce the same statistics on every run).
fn log_uniform(seed: u64, i: u64, lo: f64, hi: f64) -> f64 {
    use mpdp_core::memo::murmur3_fmix64;
    let u = murmur3_fmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) as f64 / u64::MAX as f64;
    (lo.ln() + u * (hi.ln() - lo.ln())).exp().round()
}

/// The default shape set: fig5 / chain / star / cycle plus a JOB-shaped
/// catalog query over the (scaled) IMDB-like schema.
///
/// The synthetic shapes mirror the paper's workload generators but carry
/// **executor-scale statistics**: key domains commensurate with the
/// materialized row counts, so multi-way joins neither explode nor starve
/// to zero rows — the warehouse-sized `gen::*` statistics (10⁶–10⁸-row
/// tables) would need that many actual tuples for their PK–FK joins to
/// produce output at all. The JOB shape takes the real `ImdbSchema`
/// catalog through [`mpdp_cost::Catalog::scaled`] (factor 1/100) for the
/// same reason — the scale factor, not the shape, is the concession.
pub fn default_cases(model: &PgLikeCost) -> Vec<ExecCase> {
    let seed = 0x45584543; // "EXEC"

    // chain 0-1-…-9: PK-FK edges between neighbours, sel = 1/max(pair).
    let chain_rows: Vec<f64> = (0..10)
        .map(|i| log_uniform(seed, i, 3_000.0, 15_000.0))
        .collect();
    let mut chain = LargeQuery::new(
        chain_rows
            .iter()
            .map(|&r| mpdp_core::RelInfo::new(r, model.scan_cost(r)))
            .collect(),
    );
    for i in 1..10 {
        chain.add_edge(i - 1, i, 1.0 / chain_rows[i - 1].max(chain_rows[i]));
    }
    // cycle: the chain closed by a *non-PK-FK* predicate (NDV ≪ rows, the
    // Figure 10(b) convention) — a PK-FK closing edge would filter the few
    // hundred surviving chain rows by 1/15000 and leave an empty result.
    let mut cycle = chain.clone();
    cycle.add_edge(9, 0, 1.0 / 30.0);
    // star: one 15k-row fact, 9 dimensions with selection factors in
    // [0.4, 0.95] (kept rows over a full PK domain), sel = 1/base.
    let mut star_rows = vec![15_000.0];
    let mut star_base = vec![0.0];
    for i in 0..9u64 {
        let base = log_uniform(seed ^ 0x5354, i, 300.0, 2_000.0);
        let sel_frac = 0.4 + (log_uniform(seed ^ 0x53454c, i, 100.0, 155.0) - 100.0) / 100.0;
        star_base.push(base);
        star_rows.push((base * sel_frac).max(1.0).round());
    }
    let mut star = LargeQuery::new(
        star_rows
            .iter()
            .map(|&r| mpdp_core::RelInfo::new(r, model.scan_cost(r)))
            .collect(),
    );
    for (i, &base) in star_base.iter().enumerate().skip(1) {
        star.add_edge(0, i, 1.0 / base);
    }
    // fig5: the paper's Figure 5 topology at 1/10 of its row counts (its
    // uniform 0.01 selectivities over 10 edges multiply intermediates).
    let mut fig5 = figure5_query(model).to_large();
    for r in &mut fig5.rels {
        r.rows = (r.rows / 10.0).round();
        r.cost = model.scan_cost(r.rows);
    }
    // JOB: the IMDB-like schema at scale factor 1/100.
    let schema = ImdbSchema::new();
    let (tables, preds) = schema.catalog_query(7);
    let job = schema
        .catalog()
        .scaled(0.01)
        .build_query(&tables, &preds, model);
    vec![
        ExecCase {
            shape: "fig5",
            query: fig5,
            max_table_rows: 30_000,
        },
        ExecCase {
            shape: "chain",
            query: chain,
            max_table_rows: 30_000,
        },
        ExecCase {
            shape: "star",
            query: star,
            max_table_rows: 30_000,
        },
        ExecCase {
            shape: "cycle",
            query: cycle,
            max_table_rows: 30_000,
        },
        ExecCase {
            shape: "job",
            query: job,
            max_table_rows: 30_000,
        },
    ]
}

/// One strategy's planned-and-executed run on one query.
pub struct StrategyRun {
    /// Registry label (base name — see [`StrategyRun::label`] for the
    /// worker-count-qualified baseline key).
    pub algorithm: String,
    /// Probe-phase worker count the executor ran with.
    pub workers: usize,
    /// Modeled plan cost (on the scaled query the executor ran).
    pub modeled_cost: f64,
    /// Optimization wall time in milliseconds.
    pub plan_wall_ms: f64,
    /// Execution wall time in milliseconds (median of 3 runs).
    pub exec_wall_ms: f64,
    /// Work/span-model execution wall (median of 3): the measured wall with
    /// the probe phases' summed busy time replaced by the longest single
    /// worker's — what the run costs with one core per worker. Equals
    /// `exec_wall_ms` at 1 worker (DESIGN.md §2's `[model]` convention).
    pub model_wall_ms: f64,
    /// Observed root cardinality.
    pub root_rows: u64,
    /// Estimated root cardinality of the plan.
    pub est_root_rows: f64,
    /// Executor counters (rows built/probed/emitted, batches, joins).
    pub counters: ExecCounters,
    /// Payload bytes per result row (table widths summed over the join).
    pub bytes_per_row: u64,
}

impl StrategyRun {
    /// Rows touched per second of measured execution wall — the executor's
    /// throughput figure (work measure over wall, so comparable across
    /// plans that produce the same result).
    pub fn rows_per_sec(&self) -> f64 {
        if self.exec_wall_ms <= 0.0 {
            0.0
        } else {
            self.counters.rows_touched() as f64 / (self.exec_wall_ms / 1000.0)
        }
    }

    /// The baseline/report key: the base algorithm name at 1 worker (the
    /// historical key, so pre-parallelism baselines keep matching), with a
    /// ` [Nw]` suffix at higher counts — same convention as `repro scale`'s
    /// `(NCPU)` encoding.
    pub fn label(&self) -> String {
        if self.workers > 1 {
            format!("{} [{}w]", self.algorithm, self.workers)
        } else {
            self.algorithm.clone()
        }
    }
}

/// All strategies' runs on one query, with the rank correlations.
pub struct CaseReport {
    /// Shape label.
    pub shape: &'static str,
    /// Relation count.
    pub n: usize,
    /// Worker count of this case's runs.
    pub workers: usize,
    /// Materialized rows across all tables.
    pub dataset_rows: usize,
    /// Per-strategy runs, in [`EXEC_STRATEGIES`] order.
    pub runs: Vec<StrategyRun>,
    /// Spearman correlation of modeled cost vs measured execution wall.
    pub spearman_wall: f64,
    /// Spearman correlation of modeled cost vs rows touched (deterministic,
    /// noise-free work measure).
    pub spearman_work: f64,
}

/// The feedback-loop demonstration (see [`run_feedback_demo`]).
pub struct FeedbackDemo {
    /// Estimated root cardinality of the originally cached plan.
    pub est_root: f64,
    /// Observed root cardinality of executing it on the skewed data.
    pub observed_root: u64,
    /// `max(est, obs) / min(est, obs)`.
    pub deviation: f64,
    /// Whether `PlanService::observe` evicted the cached plan.
    pub invalidated: bool,
    /// The original join order's cost re-priced under corrected statistics.
    pub stale_cost_corrected: f64,
    /// The re-planned (corrected-statistics) plan's cost.
    pub replanned_cost: f64,
    /// Rows touched executing the stale plan.
    pub stale_rows_touched: u64,
    /// Rows touched executing the re-planned order on the same data.
    pub replanned_rows_touched: u64,
    /// Whether the re-planned plan's estimate survived its own execution
    /// (observe returns `false`, i.e. the loop converged).
    pub converged: bool,
    /// Cache counters after the demo (feedback checks/invalidations).
    pub cache: mpdp_core::counters::CacheSnapshot,
}

/// Runs one case: catalog → data → plan × strategies → execute → oracle
/// check. `Err` carries a description of an oracle violation, a failed
/// strategy, or (at `workers > 1`) any divergence between the parallel and
/// the sequential execution of the same plan — the in-run determinism gate
/// that `exec-par-smoke` relies on, mirroring `repro scale`'s in-run
/// bit-identity check.
pub fn run_case(
    case: &ExecCase,
    model: &PgLikeCost,
    seed: u64,
    workers: usize,
) -> Result<CaseReport, String> {
    let workers = workers.max(1);
    let sc = synthesize_catalog(&case.query);
    let q = sc.build_query(model);
    let data = materialize(
        &q,
        &GenConfig {
            seed,
            max_table_rows: case.max_table_rows,
            ..Default::default()
        },
        model,
    );
    let executor = Executor::new(
        &data.scaled,
        &data,
        ExecConfig {
            workers,
            ..Default::default()
        },
    );
    let sequential = Executor::new(&data.scaled, &data, ExecConfig::default());
    let budget = Some(Duration::from_secs(60));
    let mut runs = Vec::with_capacity(EXEC_STRATEGIES.len());
    // One pool for the whole case: the same persistent-barrier handle the
    // DP backends use, here amortized across strategies and repetitions.
    with_pool(workers, |pool| -> Result<(), String> {
        for name in EXEC_STRATEGIES {
            let strategy = registry()
                .get(name)
                .ok_or_else(|| format!("strategy {name} not registered"))?;
            let planned = strategy.plan(&data.scaled, model, budget).map_err(|e| {
                format!(
                    "{case_shape}/{name}: planning failed: {e}",
                    case_shape = case.shape
                )
            })?;
            let mut walls = Vec::with_capacity(3);
            let mut model_walls = Vec::with_capacity(3);
            let mut report = None;
            for _ in 0..3 {
                let r = executor
                    .execute_in(pool, &planned.plan)
                    .map_err(|e| format!("{}/{name}: execution failed: {e}", case.shape))?;
                walls.push(r.wall.as_secs_f64() * 1000.0);
                model_walls.push(r.parallel_model_wall().as_secs_f64() * 1000.0);
                report = Some(r);
            }
            walls.sort_by(|a, b| a.total_cmp(b));
            model_walls.sort_by(|a, b| a.total_cmp(b));
            let report = report.expect("three runs happened");
            if workers > 1 {
                // Determinism gate: re-run the plan sequentially and demand
                // bit-identical observable state — root cardinality, merged
                // counters, and every per-join observed selectivity.
                let seq = sequential
                    .execute(&planned.plan)
                    .map_err(|e| format!("{}/{name}: sequential run failed: {e}", case.shape))?;
                if seq.root_rows != report.root_rows || seq.counters != report.counters {
                    return Err(format!(
                        "DETERMINISM VIOLATION on {}/{name}: {workers}-worker run \
                         (root {}, counters {:?}) diverged from sequential \
                         (root {}, counters {:?})",
                        case.shape, report.root_rows, report.counters, seq.root_rows, seq.counters,
                    ));
                }
                for (jp, js) in report.joins.iter().zip(&seq.joins) {
                    if jp.observed_sel.to_bits() != js.observed_sel.to_bits() {
                        return Err(format!(
                            "DETERMINISM VIOLATION on {}/{name}: observed selectivity of \
                             join {:?}⋈{:?} differs at {workers} workers \
                             ({} vs sequential {})",
                            case.shape, jp.left, jp.right, jp.observed_sel, js.observed_sel,
                        ));
                    }
                }
            }
            let bytes_per_row = report
                .result_bytes
                .checked_div(report.root_rows)
                .unwrap_or(0);
            runs.push(StrategyRun {
                algorithm: name.to_string(),
                workers,
                modeled_cost: planned.cost,
                plan_wall_ms: planned.wall.as_secs_f64() * 1000.0,
                exec_wall_ms: walls[1],
                model_wall_ms: model_walls[1],
                root_rows: report.root_rows,
                est_root_rows: report.est_root_rows,
                counters: report.counters,
                bytes_per_row,
            });
        }
        Ok(())
    })?;
    // Oracle: every join order of one query computes the same result.
    let root = runs[0].root_rows;
    for r in &runs[1..] {
        if r.root_rows != root {
            return Err(format!(
                "ORACLE VIOLATION on {}: {} produced {} root rows, {} produced {}",
                case.shape, runs[0].algorithm, root, r.algorithm, r.root_rows
            ));
        }
    }
    let costs: Vec<f64> = runs.iter().map(|r| r.modeled_cost).collect();
    let walls: Vec<f64> = runs.iter().map(|r| r.exec_wall_ms).collect();
    let work: Vec<f64> = runs
        .iter()
        .map(|r| r.counters.rows_touched() as f64)
        .collect();
    Ok(CaseReport {
        shape: case.shape,
        n: case.query.num_rels(),
        workers,
        dataset_rows: data.total_rows(),
        spearman_wall: spearman(&costs, &walls),
        spearman_work: spearman(&costs, &work),
        runs,
    })
}

/// Drives the full feedback loop on a deliberately skewed 3-relation chain:
/// plan through a `PlanService`, execute on data whose middle edge is 0.3
/// hot-key skewed (true selectivity ≈ 90× the estimate), `observe` the
/// report (which must invalidate the cached plan), fold the observed
/// selectivities into the catalog, re-plan the corrected query, and execute
/// the new order on the *same* data.
pub fn run_feedback_demo(model: &PgLikeCost) -> Result<FeedbackDemo, String> {
    use mpdp::PlanServiceBuilder;
    let mut q = LargeQuery::new(
        [500.0, 500.0, 500.0]
            .iter()
            .map(|&rows| mpdp_core::RelInfo::new(rows, model.scan_cost(rows)))
            .collect(),
    );
    q.add_edge(0, 1, 1.0 / 1000.0); // estimated highly selective; skewed below
    q.add_edge(1, 2, 1.0 / 100.0);
    let mut sc = synthesize_catalog(&q);
    let data = materialize(
        &q,
        &GenConfig {
            seed: 7,
            skew: vec![SkewedEdge {
                u: 0,
                v: 1,
                hot_fraction: 0.3,
            }],
            ..Default::default()
        },
        model,
    );
    let service = PlanServiceBuilder::new().build();
    let served = service
        .plan(&data.scaled, model)
        .map_err(|e| format!("feedback: planning failed: {e}"))?;
    let executor = Executor::new(&data.scaled, &data, ExecConfig::default());
    let stale_report = executor
        .execute(&served.planned.plan)
        .map_err(|e| format!("feedback: stale execution failed: {e}"))?;
    let invalidated = service.observe(served.fingerprint, model, &stale_report);

    // Fold the observation into the catalog and re-plan under corrected
    // statistics. Only the *estimates* change — the physical tables stay
    // the ones the stale plan ran on (re-materializing from corrected
    // selectivities would alter the key domains and measure different
    // data).
    fold_observations(&mut sc, &stale_report);
    let corrected_q = sc.build_query(model);
    let replanned = service
        .plan(&corrected_q, model)
        .map_err(|e| format!("feedback: re-planning failed: {e}"))?;
    let corrected_qi = corrected_q
        .to_query_info()
        .expect("3 relations fit the bitmap regime");
    let stale_cost_corrected = recost_plan(&served.planned.plan, &corrected_qi, model).cost();
    let replanned_report = executor
        .execute(&replanned.planned.plan)
        .map_err(|e| format!("feedback: corrected execution failed: {e}"))?;
    let converged = !service.observe(replanned.fingerprint, model, &replanned_report);
    Ok(FeedbackDemo {
        est_root: stale_report.est_root_rows,
        observed_root: stale_report.root_rows,
        deviation: stale_report.root_deviation(),
        invalidated,
        stale_cost_corrected,
        replanned_cost: replanned.planned.cost,
        stale_rows_touched: stale_report.counters.rows_touched(),
        replanned_rows_touched: replanned_report.counters.rows_touched(),
        converged,
        cache: service.cache_counters(),
    })
}

/// The whole `repro exec` report.
pub struct ExecBenchReport {
    /// One entry per shape.
    pub cases: Vec<CaseReport>,
    /// The feedback-loop demonstration.
    pub demo: FeedbackDemo,
}

impl ExecBenchReport {
    /// Renders the tab-separated report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "shape\tn\talgorithm\tmodeled_cost\texec_wall_ms\tmodel_wall_ms\troot_rows\t\
             rows_touched\trows_per_sec\tbytes_per_row\tbatches\n",
        );
        for c in &self.cases {
            for r in &c.runs {
                out.push_str(&format!(
                    "{}\t{}\t{}\t{:.3e}\t{:.3}\t{:.3}\t{}\t{}\t{:.3e}\t{}\t{}\n",
                    c.shape,
                    c.n,
                    r.label(),
                    r.modeled_cost,
                    r.exec_wall_ms,
                    r.model_wall_ms,
                    r.root_rows,
                    r.counters.rows_touched(),
                    r.rows_per_sec(),
                    r.bytes_per_row,
                    r.counters.batches,
                ));
            }
        }
        out.push_str("\nshape\tdataset_rows\tspearman(cost,wall)\tspearman(cost,work)\n");
        for c in &self.cases {
            out.push_str(&format!(
                "{}\t{}\t{:.2}\t{:.2}\n",
                c.shape, c.dataset_rows, c.spearman_wall, c.spearman_work
            ));
        }
        let walls: Vec<f64> = self
            .cases
            .iter()
            .map(|c| c.spearman_wall)
            .filter(|s| s.is_finite())
            .collect();
        out.push_str(&format!(
            "# mean spearman(cost,wall) across shapes: {:.2}\n",
            mean(&walls)
        ));
        let d = &self.demo;
        out.push_str(&format!(
            "\n## feedback loop (3-relation chain, middle edge 0.3 hot-key skew)\n\
             estimated root rows\t{:.0}\n\
             observed root rows\t{}\n\
             deviation\t{:.1}x\n\
             cached plan invalidated\t{}\n\
             stale order cost (corrected stats)\t{:.3e}\n\
             re-planned order cost\t{:.3e}\n\
             stale rows touched\t{}\n\
             re-planned rows touched\t{}\n\
             second observe invalidates\t{}\n\
             feedback checks/invalidations\t{}/{}\n",
            d.est_root,
            d.observed_root,
            d.deviation,
            d.invalidated,
            d.stale_cost_corrected,
            d.replanned_cost,
            d.stale_rows_touched,
            d.replanned_rows_touched,
            !d.converged,
            d.cache.feedback_checks,
            d.cache.feedback_invalidations,
        ));
        out
    }

    /// The wall runs for the shared machine-normalized regression gate
    /// (execution walls, keyed like every other baseline; parallel runs
    /// carry the ` [Nw]` label suffix so each worker count gates against
    /// its own baseline row).
    pub fn wall_runs(&self) -> Vec<WallRun> {
        self.cases
            .iter()
            .flat_map(|c| {
                c.runs.iter().map(|r| WallRun {
                    shape: c.shape.to_string(),
                    n: c.n,
                    algorithm: r.label(),
                    wall_ms: r.exec_wall_ms,
                })
            })
            .collect()
    }

    /// One self-contained JSON object per run line (the committed
    /// `BENCH_exec.json` format; readable by `regress::check_regressions`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"mpdp-exec-v1\",\n  \"runs\": [\n");
        let total: usize = self.cases.iter().map(|c| c.runs.len()).sum();
        let mut i = 0;
        for c in &self.cases {
            for r in &c.runs {
                i += 1;
                let sep = if i == total { "" } else { "," };
                out.push_str(&format!(
                    "    {{\"shape\": \"{}\", \"n\": {}, \"algorithm\": \"{}\", \
                     \"workers\": {}, \"wall_ms\": {:.3}, \"model_wall_ms\": {:.3}, \
                     \"plan_wall_ms\": {:.3}, \"modeled_cost\": {:.6e}, \
                     \"root_rows\": {}, \"rows_touched\": {}, \"rows_per_sec\": {:.6e}, \
                     \"bytes_per_row\": {}, \"batches\": {}}}{sep}\n",
                    c.shape,
                    c.n,
                    r.label(),
                    r.workers,
                    r.exec_wall_ms,
                    r.model_wall_ms,
                    r.plan_wall_ms,
                    r.modeled_cost,
                    r.root_rows,
                    r.counters.rows_touched(),
                    r.rows_per_sec(),
                    r.bytes_per_row,
                    r.counters.batches,
                ));
            }
        }
        out.push_str("  ],\n  \"correlation\": [\n");
        for (ci, c) in self.cases.iter().enumerate() {
            let sep = if ci + 1 == self.cases.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"workers\": {}, \"spearman_wall\": {:.3}, \
                 \"spearman_work\": {:.3}}}{sep}\n",
                c.shape, c.workers, c.spearman_wall, c.spearman_work
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"feedback\": {{\"deviation\": {:.2}, \"invalidated\": {}, \
             \"stale_cost_corrected\": {:.6e}, \"replanned_cost\": {:.6e}, \
             \"stale_rows_touched\": {}, \"replanned_rows_touched\": {}, \"converged\": {}}}\n}}\n",
            self.demo.deviation,
            self.demo.invalidated,
            self.demo.stale_cost_corrected,
            self.demo.replanned_cost,
            self.demo.stale_rows_touched,
            self.demo.replanned_rows_touched,
            self.demo.converged,
        ));
        out
    }
}

/// Runs the full experiment: all shapes at every requested worker count
/// (`workers` empty means `[1]`), plus the feedback demo (which always runs
/// sequentially — its subject is estimation error, not parallelism).
pub fn run_exec_bench(
    model: &PgLikeCost,
    seed: u64,
    workers: &[usize],
) -> Result<ExecBenchReport, String> {
    let workers = if workers.is_empty() {
        &[1][..]
    } else {
        workers
    };
    let mut cases = Vec::new();
    for &w in workers {
        for case in default_cases(model) {
            cases.push(run_case(&case, model, seed, w)?);
        }
    }
    // Cross-worker-count oracle inside one invocation: deterministic fields
    // must agree between every pair of worker counts for the same shape.
    for c in &cases[..] {
        if let Some(base) = cases
            .iter()
            .find(|b| b.shape == c.shape && b.workers != c.workers)
        {
            for (rc, rb) in c.runs.iter().zip(&base.runs) {
                if rc.root_rows != rb.root_rows || rc.counters != rb.counters {
                    return Err(format!(
                        "DETERMINISM VIOLATION on {}/{}: {}w and {}w runs disagree \
                         (root {} vs {}; counters {:?} vs {:?})",
                        c.shape,
                        rc.algorithm,
                        c.workers,
                        base.workers,
                        rc.root_rows,
                        rb.root_rows,
                        rc.counters,
                        rb.counters,
                    ));
                }
            }
        }
    }
    let demo = run_feedback_demo(model)?;
    Ok(ExecBenchReport { cases, demo })
}

/// Compares the deterministic fields of `report`'s runs against the
/// committed baseline at `path`: root cardinality, rows touched, and exact
/// morsel counts must match the baseline's **1-worker** row for the same
/// shape/strategy bit-for-bit. Because those fields are worker-invariant by
/// construction, every CI matrix leg (`--workers 1|2|4`) checks against the
/// same committed values — a divergence at any worker count shows up even
/// though each leg runs only one count. Returns human-readable findings
/// (empty = green).
pub fn check_exec_determinism(path: &str, report: &ExecBenchReport) -> Vec<String> {
    use crate::regress::{json_num, json_str};
    let baseline = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return vec![format!("cannot read baseline {path}: {e}")],
    };
    let mut out = Vec::new();
    for c in &report.cases {
        for r in &c.runs {
            // The worker-invariant baseline key is the plain 1-worker row.
            let row = baseline.lines().find(|line| {
                let line = line.trim().trim_end_matches(',');
                line.starts_with('{')
                    && json_str(line, "shape") == Some(c.shape)
                    && json_str(line, "algorithm") == Some(r.algorithm.as_str())
                    && json_num(line, "n") == Some(c.n as f64)
            });
            let Some(row) = row else {
                out.push(format!(
                    "{}({})/{}: no 1-worker baseline row in {path}",
                    c.shape, c.n, r.algorithm
                ));
                continue;
            };
            let row = row.trim().trim_end_matches(',');
            let checks = [
                ("root_rows", r.root_rows),
                ("rows_touched", r.counters.rows_touched()),
                ("batches", r.counters.batches),
            ];
            for (key, cur) in checks {
                match json_num(row, key) {
                    Some(base) if (base - cur as f64).abs() < 0.5 => {}
                    Some(base) => out.push(format!(
                        "{}({})/{} at {}w: {key} = {cur} diverges from baseline {base}",
                        c.shape, c.n, r.algorithm, r.workers
                    )),
                    None => out.push(format!(
                        "{}({})/{}: baseline row lacks {key}",
                        c.shape, c.n, r.algorithm
                    )),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_case_runs_and_correlates_work() {
        let model = PgLikeCost::new();
        let case = default_cases(&model).remove(0); // fig5
        let report = run_case(&case, &model, 5, 1).expect("case runs");
        assert_eq!(report.runs.len(), EXEC_STRATEGIES.len());
        // Executor-scale statistics produce a non-trivial result set, so
        // the oracle check (inside run_case) compared real cardinalities.
        assert!(report.runs[0].root_rows > 0, "degenerate dataset");
        // Exact strategies agree on the modeled optimum.
        assert!(
            (report.runs[0].modeled_cost - report.runs[1].modeled_cost).abs()
                <= 1e-9 * report.runs[0].modeled_cost,
            "exact strategies disagree on cost"
        );
        assert!(report.spearman_work >= -1.0 && report.spearman_work <= 1.0);
    }

    /// The in-run determinism gate passes on real shapes, and the parallel
    /// runs' deterministic fields equal the sequential ones exactly.
    #[test]
    fn parallel_case_matches_sequential() {
        let model = PgLikeCost::new();
        let mut case = default_cases(&model).remove(1); // chain
        case.max_table_rows = 2_000;
        let seq = run_case(&case, &model, 5, 1).expect("sequential run");
        let par = run_case(&case, &model, 5, 4).expect("parallel run (in-run check green)");
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.root_rows, b.root_rows);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.label(), a.algorithm, "1-worker label keeps the bare key");
            assert_eq!(b.label(), format!("{} [4w]", a.algorithm));
        }
    }

    /// `check_exec_determinism` is green against a self-emitted baseline
    /// and flags a tampered deterministic field.
    #[test]
    fn determinism_check_flags_divergence() {
        let model = PgLikeCost::new();
        let mut case = default_cases(&model).remove(1); // chain
        case.max_table_rows = 1_000;
        let c = run_case(&case, &model, 5, 1).expect("case runs");
        let demo = run_feedback_demo(&model).expect("demo runs");
        let mut report = ExecBenchReport {
            cases: vec![c],
            demo,
        };
        let dir = std::env::temp_dir().join(format!("exec-det-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.json");
        std::fs::write(&path, report.to_json()).unwrap();
        let p = path.to_str().unwrap();
        assert!(check_exec_determinism(p, &report).is_empty());
        report.cases[0].runs[0].root_rows += 1;
        let findings = check_exec_determinism(p, &report);
        assert!(
            findings.iter().any(|f| f.contains("root_rows")),
            "{findings:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
