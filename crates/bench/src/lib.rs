//! # mpdp-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§7). The `repro` binary drives the experiments; this library
//! holds the shared machinery: the algorithm roster, timed runners, the
//! timing-report policy, sweep scales and statistics helpers.
//!
//! ## Timing-report policy (single-core container)
//!
//! Sequential algorithms report *measured* wall time. Multi-core algorithms
//! run their real implementation here (verified result-identical to the
//! sequential ones), then report the work/span-model prediction for the
//! paper's 24-core box, calibrated from the measured run — see
//! `mpdp-parallel::hwmodel` and `DESIGN.md` §2. GPU algorithms execute on
//! the software SIMT machine and report its simulated GTX-1080 time.
//! Reported columns are marked `measured` / `model` accordingly.

#![warn(missing_docs)]

pub mod aws;
pub mod cluster;
pub mod exec;
pub mod regress;
pub mod runner;
pub mod scale;
pub mod scaling;
pub mod serve;
pub mod starform;
pub mod stats;
pub mod trace;

pub use cluster::{run_cluster, ClusterReport, ClusterRunConfig};
pub use exec::{run_exec_bench, ExecBenchReport, EXEC_STRATEGIES};
pub use regress::{check_regressions, WallRun};
pub use runner::{run_exact, AlgoKind, RunOutcome, EXACT_ROSTER};
pub use scale::Scale;
pub use scaling::{run_scale, ScaleConfig, ScaleReport};
pub use serve::{replay, ServeConfig, ServeReport};
pub use trace::{run_trace, TraceConfig, TraceReport};
