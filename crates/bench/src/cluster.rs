//! Cluster-tier harness: sharded replay with model-normalized scaling.
//!
//! `repro cluster` sweeps shard count × Zipf skew against an
//! [`mpdp_cluster::PlanCluster`] and reports, per point:
//!
//! - **raw** aggregate throughput (wall-clock on this machine — flat on the
//!   1-core container, where N shards time-slice one core), and
//! - **model** aggregate plans/s: `served / max(per-shard busy)`. Each
//!   request's [`ServedPlan::service_time`] is attributed to the shard that
//!   served it; the busiest shard's total is the cluster's makespan on a
//!   box with one core per shard, exactly the work/span methodology the
//!   parallel-planning benches use (DESIGN.md §2). This is the number the
//!   ≥3× scaling acceptance gate reads.
//!
//! Each point also runs two in-situ probes the acceptance criteria name:
//! a **staleness probe** (inject a 12× cardinality miss on one shard via
//! [`PlanCluster::observe_on`], count anti-entropy rounds until every
//! replica of the hottest template is evicted, assert it beats
//! [`PlanCluster::staleness_bound`]) and a **rehash window** (add a shard,
//! replay a window, report how many templates moved and the hit rate the
//! survivors retained).

use mpdp::service::{PlanRequest, PlanServiceBuilder, ServedPlan};
use mpdp_cluster::{ClusterConfig, PlanCluster};
use mpdp_core::counters::CacheSnapshot;
use mpdp_core::fingerprint::canonicalize;
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_exec::ExecReport;
use mpdp_workload::stream::{StreamSpec, ZipfStream};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::regress::WallRun;

/// Configuration of one cluster sweep point.
#[derive(Clone, Debug)]
pub struct ClusterRunConfig {
    /// Shards to build the cluster with.
    pub shards: usize,
    /// Zipf exponent of the replayed stream (overrides `stream.skew`).
    pub skew: f64,
    /// Measured-phase stream length.
    pub total: usize,
    /// Warm-up stream length (same spec and seed; stabilizes hot counts and
    /// fills replica caches so the measured phase is steady state, matching
    /// the open-loop harness's warm-up convention).
    pub warmup: usize,
    /// Replay worker threads racing the shared cursor. Default 1: busy-time
    /// attribution sums per-request wall times, and on an oversubscribed
    /// host a preempted worker charges a whole scheduler quantum (~10 ms —
    /// four decades above a hit) to whichever shard it happened to be in.
    /// Raise it to exercise concurrency; the model metrics then carry
    /// preemption noise.
    pub workers: usize,
    /// Measured-phase repetitions; the run with the smallest model wall is
    /// reported (best-of-k absorbs residual scheduler noise the same way
    /// the exact-planning benches take min-of-runs).
    pub repeats: usize,
    /// Base stream spec (`skew` is overridden per point).
    pub stream: StreamSpec,
    /// Routed-request count at which a template replicates.
    pub hot_threshold: u64,
    /// Replica-set size for hot templates.
    pub replicas: usize,
}

impl Default for ClusterRunConfig {
    fn default() -> Self {
        let defaults = ClusterConfig::default();
        ClusterRunConfig {
            shards: 4,
            skew: 1.1,
            total: 10_000,
            warmup: 10_000,
            workers: 1,
            repeats: 3,
            stream: StreamSpec::default(),
            hot_threshold: defaults.hot_threshold,
            // One more than the library default: at Zipf skew ≥ 1 the rank-1
            // template alone carries ~20% of the stream, and splitting it
            // R=2 ways pins one shard near a 1/3 busy share — right at the
            // 3× scaling gate. R=3 spreads the head enough that ring
            // imbalance, not replication, is the residual.
            replicas: defaults.replicas + 1,
        }
    }
}

/// Per-shard load attribution over the measured phase.
#[derive(Clone, Debug)]
pub struct ShardLoad {
    /// Shard id.
    pub shard: u32,
    /// Requests this shard served.
    pub served: usize,
    /// Summed service time of those requests — this shard's busy time on a
    /// one-core-per-shard box.
    pub busy: Duration,
}

/// Outcome of the invalidation-staleness probe.
#[derive(Clone, Debug)]
pub struct StalenessReport {
    /// Shards caching the probed (hottest) template before injection.
    pub replicas_before: usize,
    /// Shard the 12×-miss observation was injected on.
    pub injected_on: u32,
    /// Gossip rounds actually needed until no shard cached the template.
    pub rounds_used: usize,
    /// The documented bound ([`PlanCluster::staleness_bound`]).
    pub bound: usize,
    /// Whether every replica was evicted (the probe ran to empty).
    pub evicted_everywhere: bool,
}

impl StalenessReport {
    /// The acceptance predicate: every replica gone within the bound.
    pub fn within_bound(&self) -> bool {
        self.evicted_everywhere && self.rounds_used <= self.bound
    }
}

/// Outcome of the rehash (add-one-shard) window.
#[derive(Clone, Debug)]
pub struct RehashReport {
    /// Id of the shard added mid-run.
    pub new_shard: u32,
    /// Templates whose primary owner changed (all of them onto the new
    /// shard — consistent hashing's minimal-disruption property).
    pub moved_templates: usize,
    /// Template-pool size the move fraction is over.
    pub templates: usize,
    /// Queries replayed in the post-rehash window.
    pub window_queries: usize,
    /// Request hit rate of the post-rehash window (survivor caches stay
    /// warm; only moved templates cold-plan once on the new shard).
    pub hit_rate: f64,
}

/// Aggregated outcome of one sweep point.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Shard count of this point.
    pub shards: usize,
    /// Zipf skew of this point.
    pub skew: f64,
    /// Measured-phase requests served.
    pub served: usize,
    /// Measured-phase requests that errored.
    pub failed: usize,
    /// Replay worker threads.
    pub workers: usize,
    /// Warm-up wall time.
    pub warm_elapsed: Duration,
    /// Measured-phase wall time.
    pub elapsed: Duration,
    /// Cluster-exact cache delta of the measured phase (the associative
    /// [`CacheSnapshot::merge`] fold over shards, windowed by `since`).
    pub cache: CacheSnapshot,
    /// Per-shard load attribution, ascending by shard id.
    pub loads: Vec<ShardLoad>,
    /// Staleness probe (multi-shard points only).
    pub staleness: Option<StalenessReport>,
    /// Rehash window (multi-shard points only).
    pub rehash: Option<RehashReport>,
}

impl ClusterReport {
    /// Raw served queries per second (wall-clock; flat on one core).
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.served as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// The busiest shard's busy time — the cluster makespan on a box with
    /// one core per shard.
    pub fn model_wall(&self) -> Duration {
        self.loads
            .iter()
            .map(|l| l.busy)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Model-normalized aggregate plans/s: `served / model_wall`. The
    /// scaling gate compares this across shard counts at equal offered
    /// load.
    pub fn model_plans_per_s(&self) -> f64 {
        let wall = self.model_wall().as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.served as f64 / wall
        }
    }

    /// Measured-phase request hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache.request_hit_rate()
    }

    /// Renders the tab-separated block `repro cluster` prints per point.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("metric\tvalue\n");
        out.push_str(&format!("shards\t{}\n", self.shards));
        out.push_str(&format!("zipf_skew\t{:.2}\n", self.skew));
        out.push_str(&format!("queries_served\t{}\n", self.served));
        out.push_str(&format!("queries_failed\t{}\n", self.failed));
        out.push_str(&format!("workers\t{}\n", self.workers));
        out.push_str(&format!(
            "warmup_elapsed_s\t{:.3}\n",
            self.warm_elapsed.as_secs_f64()
        ));
        out.push_str(&format!("elapsed_s\t{:.3}\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!(
            "raw_throughput_plans_per_s\t{:.0}\n",
            self.throughput()
        ));
        out.push_str(&format!(
            "model_wall_ms\t{:.3}\n",
            self.model_wall().as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "model_plans_per_s\t{:.0}\n",
            self.model_plans_per_s()
        ));
        out.push_str(&format!("request_hit_rate\t{:.4}\n", self.hit_rate()));
        out.push_str(&format!(
            "cache_hits\t{}\ncache_misses\t{}\ncache_coalesced\t{}\n",
            self.cache.hits, self.cache.misses, self.cache.coalesced
        ));
        for l in &self.loads {
            out.push_str(&format!(
                "shard[{}]\tserved={} busy_ms={:.3}\n",
                l.shard,
                l.served,
                l.busy.as_secs_f64() * 1e3
            ));
        }
        if let Some(s) = &self.staleness {
            out.push_str(&format!(
                "staleness\treplicas_before={} injected_on={} rounds={} bound={} ok={}\n",
                s.replicas_before,
                s.injected_on,
                s.rounds_used,
                s.bound,
                s.within_bound()
            ));
        }
        if let Some(r) = &self.rehash {
            out.push_str(&format!(
                "rehash\tnew_shard={} moved={}/{} window_hit_rate={:.4}\n",
                r.new_shard, r.moved_templates, r.templates, r.hit_rate
            ));
        }
        out
    }

    /// One self-contained JSON object (no `"algorithm"` key — the
    /// regression-gate line parser must not read point rows as gate rows).
    pub fn to_json_line(&self) -> String {
        let staleness = match &self.staleness {
            Some(s) => format!(
                "{{\"replicas_before\": {}, \"rounds\": {}, \"bound\": {}, \"ok\": {}}}",
                s.replicas_before,
                s.rounds_used,
                s.bound,
                s.within_bound()
            ),
            None => "null".to_string(),
        };
        let rehash = match &self.rehash {
            Some(r) => format!(
                "{{\"new_shard\": {}, \"moved\": {}, \"templates\": {}, \
                 \"window_hit_rate\": {:.4}}}",
                r.new_shard, r.moved_templates, r.templates, r.hit_rate
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"shards\": {}, \"skew\": {:.2}, \"served\": {}, \"failed\": {}, \
             \"raw_plans_per_s\": {:.0}, \"model_wall_ms\": {:.3}, \
             \"model_plans_per_s\": {:.0}, \"request_hit_rate\": {:.4}, \
             \"max_shard_share\": {:.4}, \"staleness\": {staleness}, \
             \"rehash\": {rehash}}}",
            self.shards,
            self.skew,
            self.served,
            self.failed,
            self.throughput(),
            self.model_wall().as_secs_f64() * 1e3,
            self.model_plans_per_s(),
            self.hit_rate(),
            self.max_shard_share(),
        )
    }

    /// The busiest shard's fraction of total busy time (1/N is perfect
    /// balance; 1.0 is full serialization on one shard).
    pub fn max_shard_share(&self) -> f64 {
        let total: f64 = self.loads.iter().map(|l| l.busy.as_secs_f64()).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.model_wall().as_secs_f64() / total
        }
    }

    /// The gate row for this point, encoded as ms per 1k plans of *raw*
    /// wall (the quantity that is stable on the 1-core container; the
    /// model metric is asserted by the in-run scaling check, not the
    /// regression gate).
    pub fn wall_run(&self, shape: &str) -> WallRun {
        WallRun {
            shape: shape.to_string(),
            n: self.served + self.failed,
            algorithm: format!(
                "{} shards, skew {:.2} ({}w, ms per 1k plans)",
                self.shards, self.skew, self.workers
            ),
            wall_ms: 1e6 / self.throughput().max(1e-9),
        }
    }
}

/// Replays `queries` against `cluster` from `workers` threads racing a
/// shared cursor (the same contention pattern as [`crate::serve::replay`],
/// routed per request through the cluster's consistent-hash +
/// hot-replication policy). Returns `(served, failed, per-shard loads,
/// elapsed)`.
fn replay_phase(
    cluster: &PlanCluster,
    model: &dyn CostModel,
    queries: &[(usize, LargeQuery)],
    workers: usize,
) -> (usize, usize, Vec<ShardLoad>, Duration) {
    let cursor = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let loads: Mutex<BTreeMap<u32, (usize, Duration)>> = Mutex::new(BTreeMap::new());
    let req = PlanRequest::default();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                let mut local: BTreeMap<u32, (usize, Duration)> = BTreeMap::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    match cluster.plan_with(&queries[i].1, model, &req) {
                        Ok(out) => {
                            let ServedPlan { service_time, .. } = out.served;
                            let slot = local.entry(out.shard).or_insert((0, Duration::ZERO));
                            slot.0 += 1;
                            slot.1 += service_time;
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let mut shared = loads.lock().expect("loads");
                for (shard, (n, busy)) in local {
                    let slot = shared.entry(shard).or_insert((0, Duration::ZERO));
                    slot.0 += n;
                    slot.1 += busy;
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let loads = loads.into_inner().expect("loads");
    let served = loads.values().map(|(n, _)| n).sum();
    let loads = loads
        .into_iter()
        .map(|(shard, (served, busy))| ShardLoad {
            shard,
            served,
            busy,
        })
        .collect();
    (served, failed.into_inner(), loads, elapsed)
}

/// A minimal [`ExecReport`] carrying only a root-cardinality observation —
/// what the staleness probe injects to fake a 12× estimation miss without
/// executing anything.
fn injected_report(root_rows: u64, est_root_rows: f64) -> ExecReport {
    ExecReport {
        stats: Vec::new(),
        joins: Vec::new(),
        root_rows,
        est_root_rows,
        wall: Duration::ZERO,
        counters: Default::default(),
        result_bytes: 0,
        worker_busy: Vec::new(),
    }
}

/// Runs the staleness probe against the hottest template: plan it (a hit —
/// reads the cached estimate), inject an observation 12× off on its owner
/// shard, then count gossip rounds until no shard caches it.
fn staleness_probe(
    cluster: &PlanCluster,
    model: &dyn CostModel,
    hottest: &LargeQuery,
) -> Result<StalenessReport, OptError> {
    let fp = canonicalize(hottest).fingerprint;
    let est = cluster.plan(hottest, model)?.served.planned.rows;
    let replicas_before = cluster.cached_replicas(fp, model);
    // 12× beats every shard's default feedback threshold (10×) with margin.
    let observed = (est.max(1.0) * 12.0).min(1e18) as u64;
    let injected_on = cluster.owner(fp);
    cluster.observe_on(injected_on, fp, model, &injected_report(observed, est));

    let bound = cluster.staleness_bound();
    let mut rounds = 0usize;
    // Allow two rounds past the bound so a violation is *reported* (and
    // failed by the caller) rather than looping forever.
    while cluster.cached_replicas(fp, model) > 0 && rounds < bound + 2 {
        cluster.run_gossip_round();
        rounds += 1;
    }
    Ok(StalenessReport {
        replicas_before,
        injected_on,
        rounds_used: rounds,
        bound,
        evicted_everywhere: cluster.cached_replicas(fp, model) == 0,
    })
}

/// Runs one sweep point: build a fresh cluster, warm it with `warmup`
/// stream draws, measure a `total`-draw replay (identically-seeded fresh
/// stream), then — on multi-shard points — run the staleness probe and the
/// rehash window.
pub fn run_cluster(
    config: &ClusterRunConfig,
    model: &dyn CostModel,
) -> Result<ClusterReport, OptError> {
    let spec = StreamSpec {
        skew: config.skew,
        ..config.stream.clone()
    };
    let cluster = PlanCluster::new(ClusterConfig {
        shards: config.shards,
        hot_threshold: config.hot_threshold,
        replicas: config.replicas,
        service: PlanServiceBuilder::new().budget(Duration::from_secs(30)),
        // 4× the default vnode count: the bench's scaling gate divides by
        // the *busiest* shard, so ring imbalance eats straight into the
        // measured speedup; more vnodes tightens max/mean at negligible
        // construction cost.
        vnodes: 512,
        ..ClusterConfig::default()
    });

    // Warm-up, phase 1: same spec and seed as the measured phase, so hot
    // counts cross their thresholds before the clock starts.
    let warm_start = Instant::now();
    let mut warm_stream = ZipfStream::new(&spec, model);
    let warm_queries = warm_stream.take(config.warmup);
    replay_phase(&cluster, model, &warm_queries, config.workers);
    drop(warm_queries);

    // Warm-up, phase 2: plan every template once on every shard of its
    // replica set. A template that crosses the hot threshold *during* the
    // measured phase starts round-robining onto its second replica; without
    // this pass that replica cold-plans inside the measured window, and one
    // exact cold plan (tens of ms) swamps thousands of microsecond hits in
    // the busy-time attribution. Steady state is all-warm replicas; the
    // measured phase must start there.
    let req = PlanRequest::default();
    for t in warm_stream.templates() {
        let fp = canonicalize(&t.query).fingerprint;
        for id in cluster.replica_set(fp) {
            if let Some(service) = cluster.shard_service(id) {
                service.plan_coalesced(&t.query, model, &req)?;
            }
        }
    }
    let warm_elapsed = warm_start.elapsed();

    // Measured phase: a fresh identically-seeded stream (same template
    // draws; relabelings are fingerprint-invariant), counters windowed by
    // the exact merge-fold delta. Best of `repeats` runs by model wall —
    // the warm cluster serves the same hits each time, so repeats differ
    // only by scheduler noise.
    let mut stream = ZipfStream::new(&spec, model);
    let queries = stream.take(config.total);
    let mut best: Option<(usize, usize, Vec<ShardLoad>, Duration, CacheSnapshot)> = None;
    for _ in 0..config.repeats.max(1) {
        let cache_before = cluster.aggregate_cache();
        let (served, failed, loads, elapsed) =
            replay_phase(&cluster, model, &queries, config.workers);
        let cache = cluster.aggregate_cache().since(&cache_before);
        let wall = loads.iter().map(|l| l.busy).max().unwrap_or(Duration::ZERO);
        let better = match &best {
            Some((_, _, prev, _, _)) => {
                wall < prev.iter().map(|l| l.busy).max().unwrap_or(Duration::ZERO)
            }
            None => true,
        };
        if better {
            best = Some((served, failed, loads, elapsed, cache));
        }
    }
    let (served, failed, loads, elapsed, cache) = best.expect("repeats >= 1");

    let (staleness, rehash) = if config.shards > 1 {
        let hottest = stream.templates()[0].query.clone();
        let staleness = staleness_probe(&cluster, model, &hottest)?;

        // Rehash: record every template's owner, add a shard, replay a
        // window. Consistent hashing moves only ~1/(N+1) of the templates
        // (all onto the new shard); survivors keep serving hits.
        let fps: Vec<_> = stream
            .templates()
            .iter()
            .map(|t| canonicalize(&t.query).fingerprint)
            .collect();
        let owners_before: Vec<u32> = fps.iter().map(|&fp| cluster.owner(fp)).collect();
        let new_shard = cluster.add_shard();
        let moved_templates = fps
            .iter()
            .zip(&owners_before)
            .filter(|&(&fp, &before)| cluster.owner(fp) != before)
            .count();
        let window_queries = (config.total / 2).max(1);
        let window = stream.take(window_queries);
        let window_before = cluster.aggregate_cache();
        replay_phase(&cluster, model, &window, config.workers);
        let window_cache = cluster.aggregate_cache().since(&window_before);
        let rehash = RehashReport {
            new_shard,
            moved_templates,
            templates: fps.len(),
            window_queries,
            hit_rate: window_cache.request_hit_rate(),
        };
        (Some(staleness), Some(rehash))
    } else {
        (None, None)
    };

    Ok(ClusterReport {
        shards: config.shards,
        skew: config.skew,
        served,
        failed,
        workers: config.workers.max(1),
        warm_elapsed,
        elapsed,
        cache,
        loads,
        staleness,
        rehash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;

    fn small_config(shards: usize) -> ClusterRunConfig {
        ClusterRunConfig {
            shards,
            skew: 1.1,
            total: 600,
            warmup: 600,
            workers: 2,
            repeats: 2,
            stream: StreamSpec {
                templates: 24,
                min_rels: 5,
                max_rels: 8,
                seed: 7,
                ..StreamSpec::default()
            },
            hot_threshold: 8,
            replicas: 2,
        }
    }

    #[test]
    fn single_shard_point_has_no_probes() {
        let model = PgLikeCost::new();
        let report = run_cluster(&small_config(1), &model).unwrap();
        assert_eq!(report.served, 600);
        assert_eq!(report.failed, 0);
        assert!(report.staleness.is_none());
        assert!(report.rehash.is_none());
        assert_eq!(report.loads.len(), 1);
        assert!(report.hit_rate() > 0.9, "warmed replay should hit");
        assert!(report.model_plans_per_s() > 0.0);
    }

    #[test]
    fn multi_shard_point_probes_staleness_and_rehash() {
        let model = PgLikeCost::new();
        let report = run_cluster(&small_config(4), &model).unwrap();
        assert_eq!(report.served, 600);
        assert_eq!(report.failed, 0);
        assert_eq!(
            report.loads.iter().map(|l| l.served).sum::<usize>(),
            report.served,
            "every request is attributed to exactly one shard"
        );
        let s = report.staleness.as_ref().expect("staleness probe ran");
        assert!(
            s.replicas_before >= 2,
            "hottest template should be replicated, saw {}",
            s.replicas_before
        );
        assert!(s.within_bound(), "staleness {s:?}");
        let r = report.rehash.as_ref().expect("rehash window ran");
        assert!(r.moved_templates < r.templates, "not everything may move");
        assert!(
            r.hit_rate > 0.5,
            "survivor caches stay warm: {}",
            r.hit_rate
        );
        let text = report.render();
        assert!(text.contains("model_plans_per_s"));
        assert!(text.contains("staleness"));
        assert!(text.contains("rehash"));
        assert!(!report.to_json_line().contains("\"algorithm\""));
        assert_eq!(report.wall_run("cluster-test").shape, "cluster-test");
    }
}
