//! Small statistics helpers for the experiment tables.

/// Arithmetic mean; 0.0 on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// p-th percentile (nearest-rank), `p ∈ \[0, 100\]`; 0.0 on empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Geometric mean; 0.0 on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Tie-aware average ranks (1-based) of a sample.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Tied values share the average of the ranks they span.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (tie-aware, Pearson over average ranks);
/// 0.0 when either side is constant or the samples are shorter than 2.
///
/// This is the executor experiment's headline number: how well the cost
/// model's *ordering* of candidate plans predicts the ordering of their
/// measured runtimes (the absolute scales are incomparable by design).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let (rx, ry) = (ranks(xs), ranks(ys));
    let (mx, my) = (mean(&rx), mean(&ry));
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (a, b) in rx.iter().zip(&ry) {
        num += (a - mx) * (b - my);
        dx += (a - mx).powi(2);
        dy += (b - my).powi(2);
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

/// Formats a duration in the figures' milliseconds convention.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 95.0), 5.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn geomean_basics() {
        let xs = [1.0, 4.0];
        assert!((geomean(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn spearman_basics() {
        // Perfect monotone agreement / disagreement.
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&a, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &[40.0, 30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        // Constant side: defined as 0.
        assert_eq!(spearman(&a, &[5.0; 4]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        // Ties share average ranks: still positively correlated.
        let r = spearman(&[1.0, 1.0, 2.0, 3.0], &[5.0, 6.0, 7.0, 8.0]);
        assert!(r > 0.8 && r < 1.0, "{r}");
    }

    #[test]
    fn fmt_ms_formats() {
        assert_eq!(fmt_ms(std::time::Duration::from_millis(1500)), "1500.00");
    }
}
