//! Small statistics helpers for the experiment tables.

/// Arithmetic mean; 0.0 on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// p-th percentile (nearest-rank), `p ∈ \[0, 100\]`; 0.0 on empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Geometric mean; 0.0 on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a duration in the figures' milliseconds convention.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 95.0), 5.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn geomean_basics() {
        let xs = [1.0, 4.0];
        assert!((geomean(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt_ms_formats() {
        assert_eq!(fmt_ms(std::time::Duration::from_millis(1500)), "1500.00");
    }
}
