//! End-to-end trace replay: drive the full serving stack with an *armed*
//! tracer and turn the drained spans into artifacts.
//!
//! The harness exercises every tier a request crosses — admission
//! ([`mpdp_serve::ServeFront`]), cluster routing, the plan cache /
//! single-flight table, strategy invocation, and the morsel executor —
//! then drains the tracer and emits:
//!
//! - a Chrome-trace JSON artifact (loadable in `chrome://tracing` /
//!   Perfetto),
//! - a flamegraph table (inclusive/exclusive time per span site),
//! - a slow-request log: the full span tree of every request whose
//!   `serve.request` root exceeded the latency threshold or that was
//!   served `Degraded`,
//! - the completeness ratio, the acceptance number for the `repro trace`
//!   CI leg: a complete trace walks admission → route → planning
//!   disposition → executor (see [`mpdp_obs::trace_is_complete`]).
//!
//! Plans are *executed*, not just produced: each admitted query is
//! materialized ([`mpdp_exec::materialize`], small row caps) and its
//! served plan run through [`mpdp_exec::Executor::with_trace`] so the
//! executor's build/probe/morsel spans join the request's trace. Draining
//! only happens after [`mpdp_serve::ServeFront::shutdown`] has joined the
//! dispatcher threads — the tracer's ring buffers are quiescent-drain.

use mpdp_cost::model::CostModel;
use mpdp_exec::{materialize, ExecConfig, Executor, GenConfig};
use mpdp_obs::{
    by_trace, chrome_trace_json, completeness, flamegraph, render_flamegraph, render_tree, sites,
    SiteAgg, SpanRec, Tracer,
};
use mpdp_serve::{ServeConfig as FrontConfig, ServeFront, TenantConfig};
use mpdp_workload::stream::{StreamSpec, ZipfStream};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use mpdp_cluster::ClusterConfig;

/// Configuration of one trace-replay run.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Stream length (requests submitted).
    pub queries: usize,
    /// The Zipf stream the run draws from.
    pub stream: StreamSpec,
    /// Cluster shard count backing the traced tenant (≥ 1; routing spans
    /// carry the shard id either way).
    pub shards: usize,
    /// Tracer ring capacity per recording thread.
    pub ring_capacity: usize,
    /// Slow-request threshold on the `serve.request` root span. Requests
    /// at or above it (or served `Degraded`) get their full span tree in
    /// the report; if none qualify, the single slowest request is shown.
    pub slow_threshold: Duration,
    /// Span trees shown in the slow-request log at most.
    pub slow_log_cap: usize,
    /// Per-table row cap for the materialized execution datasets. Kept
    /// small: this harness measures span coverage, not executor
    /// throughput.
    pub max_table_rows: usize,
    /// Probe-phase worker count of the traced executor runs.
    pub exec_workers: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            queries: 300,
            stream: StreamSpec::default(),
            shards: 2,
            ring_capacity: 1 << 16,
            slow_threshold: Duration::from_millis(5),
            slow_log_cap: 3,
            max_table_rows: 512,
            exec_workers: 2,
        }
    }
}

/// One slow-request entry: the trace id, its root latency, and the
/// rendered span tree.
#[derive(Clone, Debug)]
pub struct SlowTrace {
    /// Trace id (`tid` in the Chrome artifact).
    pub trace: u64,
    /// Duration of the `serve.request` root span.
    pub root: Duration,
    /// `true` if the trace contains a `plan.degrade` annotation.
    pub degraded: bool,
    /// Indented span tree ([`mpdp_obs::render_tree`]).
    pub tree: String,
}

/// Outcome of a trace-replay run.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Requests submitted to the front-end.
    pub submitted: usize,
    /// Requests admitted (not shed).
    pub admitted: usize,
    /// Admitted requests whose planning succeeded.
    pub planned: usize,
    /// Planned requests whose served plan executed without error.
    pub executed: usize,
    /// Complete request traces (see [`mpdp_obs::trace_is_complete`]).
    pub complete: usize,
    /// Request traces observed in the drained spans.
    pub traces: usize,
    /// Span records drained.
    pub records: usize,
    /// Flamegraph rows, inclusive time descending.
    pub flame: Vec<SiteAgg>,
    /// Slow-request log (threshold-or-degraded; never empty when any
    /// request trace exists).
    pub slow: Vec<SlowTrace>,
    /// The Chrome-trace JSON artifact.
    pub chrome_json: String,
    /// The configured slow threshold (echoed into the rendering).
    pub slow_threshold: Duration,
}

impl TraceReport {
    /// Complete traces as a fraction of observed request traces, in
    /// percent (100.0 when no request trace was observed — an empty run
    /// has nothing incomplete).
    pub fn completeness_pct(&self) -> f64 {
        if self.traces == 0 {
            100.0
        } else {
            100.0 * self.complete as f64 / self.traces as f64
        }
    }

    /// Renders the counts, the flamegraph table and the slow-request log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "submitted {}  admitted {}  planned {}  executed {}",
            self.submitted, self.admitted, self.planned, self.executed
        );
        let _ = writeln!(
            out,
            "span records {}  request traces {}  complete {} ({:.1}%)",
            self.records,
            self.traces,
            self.complete,
            self.completeness_pct()
        );
        out.push_str("\nflamegraph (per-site, inclusive time descending):\n");
        out.push_str(&render_flamegraph(&self.flame));
        let _ = writeln!(
            out,
            "\nslow requests (root ≥ {:.1} ms or degraded; {} shown):",
            self.slow_threshold.as_secs_f64() * 1e3,
            self.slow.len()
        );
        for s in &self.slow {
            let _ = writeln!(
                out,
                "trace {} — {:.3} ms{}:",
                s.trace,
                s.root.as_secs_f64() * 1e3,
                if s.degraded { " (degraded)" } else { "" }
            );
            out.push_str(&s.tree);
        }
        out
    }
}

/// Runs the trace replay: submit the stream through a cluster-backed
/// [`ServeFront`] with an armed tracer, execute every served plan with
/// the request's span context, run one gossip round, shut down, drain,
/// and aggregate. See the module docs for the artifact set.
pub fn run_trace(
    config: &TraceConfig,
    model: Arc<dyn CostModel + Send + Sync>,
) -> Result<TraceReport, String> {
    let tracer = Tracer::armed(config.ring_capacity);
    let mut front = ServeFront::new(
        FrontConfig {
            // Admit the whole stream: this harness measures span
            // coverage, so sheds would only shrink the denominator.
            queue_depth: config.queries.max(1),
            dispatchers: 2,
            executor_threads: 2,
            budget: Some(Duration::from_secs(30)),
            tracer: tracer.clone(),
            tenants: vec![TenantConfig::named("trace").clustered(ClusterConfig {
                shards: config.shards.max(1),
                ..ClusterConfig::default()
            })],
            ..FrontConfig::default()
        },
        model.clone(),
    );

    let mut stream = ZipfStream::new(&config.stream, &*model);
    let queries = stream.take(config.queries);
    let submitted = queries.len();

    // Submit everything up front (the dispatchers drain concurrently),
    // keeping each admitted query alongside its ticket: the executor
    // phase re-materializes the exact submitted query.
    let mut pending = Vec::with_capacity(submitted);
    let mut admitted = 0usize;
    for (_, q) in queries {
        if let Ok(ticket) = front.submit(0, q.clone()) {
            admitted += 1;
            pending.push((q, ticket));
        }
    }

    let mut planned = 0usize;
    let mut executed = 0usize;
    for (i, (query, ticket)) in pending.into_iter().enumerate() {
        let done = ticket.wait();
        let served = match done.result {
            Ok(served) => served,
            Err(_) => continue,
        };
        planned += 1;
        let data = materialize(
            &query,
            &GenConfig {
                seed: i as u64,
                max_table_rows: config.max_table_rows,
                ..GenConfig::default()
            },
            &*model,
        );
        let executor = Executor::new(
            &data.scaled,
            &data,
            ExecConfig {
                workers: config.exec_workers.max(1),
                ..ExecConfig::default()
            },
        )
        .with_trace(done.trace);
        if executor.execute(&served.planned.plan).is_ok() {
            executed += 1;
        }
    }

    // One gossip round so the global timeline carries a cluster event.
    if let Some(cluster) = front.cluster(0) {
        cluster.run_gossip_round();
    }

    // Quiesce before draining: the REQUEST root spans record when the
    // dispatcher drops each request, and the rings are quiescent-drain.
    front.shutdown();
    let spans = tracer.drain();
    let (complete, traces) = completeness(&spans);
    let flame = flamegraph(&spans);
    let slow = slow_log(&spans, config.slow_threshold, config.slow_log_cap);

    Ok(TraceReport {
        submitted,
        admitted,
        planned,
        executed,
        complete,
        traces,
        records: spans.len(),
        flame,
        slow,
        chrome_json: chrome_trace_json(&spans),
        slow_threshold: config.slow_threshold,
    })
}

/// Selects the slow-request log: every request trace whose root span is
/// at or above `threshold` or that carries a degrade annotation, slowest
/// first, capped at `cap`. When nothing qualifies the single slowest
/// request is included anyway, so the log always shows one real tree.
fn slow_log(spans: &[SpanRec], threshold: Duration, cap: usize) -> Vec<SlowTrace> {
    let mut entries: Vec<SlowTrace> = Vec::new();
    for (trace, group) in by_trace(spans) {
        if trace == 0 {
            continue;
        }
        let Some(root) = group.iter().find(|r| r.site == sites::REQUEST) else {
            continue;
        };
        entries.push(SlowTrace {
            trace,
            root: Duration::from_nanos(root.duration_ns()),
            degraded: group.iter().any(|r| r.site == sites::DEGRADE),
            tree: render_tree(&group),
        });
    }
    entries.sort_by_key(|e| std::cmp::Reverse(e.root));
    let qualifying = entries
        .iter()
        .filter(|e| e.root >= threshold || e.degraded)
        .count();
    entries.truncate(qualifying.clamp(usize::from(!entries.is_empty()), cap.max(1)));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;

    /// The satellite overhead gate: tracing *disabled* (the default every
    /// perf leg runs with) must cost ≤ 2% of serve throughput. Rather
    /// than differencing two noisy end-to-end runs, this measures the two
    /// factors directly: the per-site disabled-path cost (one relaxed
    /// atomic branch per crossing) and the real per-request service time
    /// of the gated replay path — then bounds the product. A request
    /// crosses well under 8 instrumented sites on its fastest (cache-hit)
    /// path; 8 × the measured *triple*-op cost over-counts generously.
    #[test]
    fn disabled_tracing_overhead_gate() {
        use mpdp::PlanServiceBuilder;
        use mpdp_obs::{sites, SpanCtx};
        use std::hint::black_box;
        use std::time::Instant;

        let tracer = black_box(Tracer::disabled());
        let ctx = black_box(SpanCtx::default());
        // Best of several rounds: scheduler interference only ever
        // *inflates* a round, so the minimum is the honest cost.
        let iters: u64 = 200_000;
        let mut best_ns = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for i in 0..iters {
                black_box(&tracer).event(sites::GOSSIP, black_box(i));
                drop(black_box(&tracer).begin_request(sites::REQUEST));
                drop(black_box(&ctx).span(sites::STRATEGY));
            }
            best_ns = best_ns.min(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        // Three disabled crossings per iteration.
        let per_site_ns = best_ns / 3.0;

        let service = PlanServiceBuilder::new().build();
        let model = PgLikeCost::new();
        let report = crate::serve::replay(
            &service,
            &model,
            &crate::serve::ServeConfig {
                total: 300,
                workers: 1,
                stream: StreamSpec {
                    templates: 12,
                    min_rels: 4,
                    max_rels: 7,
                    ..StreamSpec::default()
                },
            },
        )
        .expect("replay");
        let per_request_ns = 1e9 / report.throughput().max(1e-9);

        let overhead_ns = 8.0 * per_site_ns;
        // The 2% bound is a claim about the optimized build (the one every
        // perf leg runs); unoptimized disabled-path code is ~20× slower
        // and would gate nothing but the debug compiler.
        if cfg!(debug_assertions) {
            return;
        }
        assert!(
            overhead_ns <= 0.02 * per_request_ns,
            "disabled tracing {overhead_ns:.1} ns/request exceeds 2% of the \
             {per_request_ns:.0} ns mean service time ({per_site_ns:.2} ns/site)"
        );
    }

    /// The acceptance property of the `repro trace` leg, at test scale:
    /// every admitted-and-executed request produces a complete span tree,
    /// and the artifact set is non-trivial.
    #[test]
    fn trace_replay_produces_complete_trees_and_artifacts() {
        let config = TraceConfig {
            queries: 40,
            stream: StreamSpec {
                templates: 12,
                min_rels: 4,
                max_rels: 7,
                ..StreamSpec::default()
            },
            max_table_rows: 128,
            ..TraceConfig::default()
        };
        let report = run_trace(&config, Arc::new(PgLikeCost::new())).expect("trace run");
        assert_eq!(report.admitted, report.submitted);
        assert_eq!(report.planned, report.admitted, "planning failed");
        assert_eq!(report.executed, report.planned, "execution failed");
        assert_eq!(report.traces, report.admitted);
        assert!(
            report.completeness_pct() >= 95.0,
            "completeness {:.1}% ({}/{})",
            report.completeness_pct(),
            report.complete,
            report.traces
        );
        // The flamegraph covers every tier.
        let sites_seen: Vec<&str> = report.flame.iter().map(|r| r.site).collect();
        assert!(sites_seen.contains(&"serve.request"), "{sites_seen:?}");
        assert!(
            report.flame.iter().any(|r| r.site.starts_with("exec.")),
            "{sites_seen:?}"
        );
        // Chrome artifact is structurally sound and the slow log is
        // never empty when requests ran.
        assert!(report.chrome_json.starts_with("{\"traceEvents\":["));
        assert_eq!(
            report.chrome_json.matches('{').count(),
            report.chrome_json.matches('}').count()
        );
        assert!(!report.slow.is_empty());
        assert!(report.slow[0].tree.contains("serve.request"));
        let rendered = report.render();
        assert!(rendered.contains("flamegraph"));
        assert!(rendered.contains("slow requests"));
    }
}
