//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [..]     experiments: fig2 fig4 fig6 fig7 fig8 fig9
//!                             fig10 fig11 fig12 fig13 table1 table2 table3
//!                             ablation bench scale serve exec cluster trace
//!                             all
//! --emit-json <path>          (bench, scale, exec, serve, cluster) write
//!                             per-run wall/model times and counters as JSON
//! --check-against <path>      (bench, scale, exec, serve, cluster) compare
//!                             wall times against a committed baseline JSON;
//!                             exit 1 if any algorithm regressed more than 2x
//! --queries <n>               (serve, cluster, trace) stream length
//!                             (default 10000; trace: 1000)
//! --workers <n>               (serve) worker threads (default 4);
//!                             (scale) max worker count of the 1/2/4/…
//!                             sweep (default 8);
//!                             (exec) probe-phase worker count(s) — a
//!                             single count or a comma list (`1,2,4,8`)
//!                             runs every shape at each count and
//!                             cross-checks their results bit-for-bit
//!                             (default 1)
//! --summary-md                (bench, scale, exec, serve, cluster) append the
//!                             regression-gate table to the file named by
//!                             $GITHUB_STEP_SUMMARY (stdout outside
//!                             Actions), so a red leg is diagnosable from
//!                             the run page
//! --open-loop                 (serve) also sweep open-loop offered load
//!                             against the mpdp-serve front-end (overload
//!                             curve: achieved throughput, sheds, p99)
//! --rate <n>                  (serve) open-loop base offered rate in
//!                             requests/s (default 120000)
//! --faults-seed <k>           (serve) chaos mode: run the open-loop sweep
//!                             with the seeded fault plan k armed (injected
//!                             panics/stalls/errors at queue, dispatcher,
//!                             planner, executor, and reactor sites) and
//!                             assert the robustness invariants instead of
//!                             the perf gate
//! --deadline-ms <ms>          (serve) per-request deadline for the
//!                             open-loop sweep; deadline-pressed requests
//!                             degrade to a heuristic plan (chaos mode
//!                             defaults to 500)
//! --shards <list>             (cluster) shard counts to sweep — a single
//!                             count or a comma list (default 1,2,4,8; with
//!                             --queries-small: 1,4)
//! --zipf-s <list>             (serve, cluster) Zipf exponent(s) of the
//!                             query stream — serve uses the first value
//!                             (default 1.1), cluster sweeps the whole list
//!                             (default 0.7,1.1)
//! --queries-small             (scale, serve, cluster, trace) reduced shape
//!                             set for CI smoke
//! trace                       replay a stream with the span tracer armed:
//!                             submit through a cluster-backed ServeFront,
//!                             execute every served plan with the request's
//!                             span context, then emit the flamegraph table,
//!                             the slow-request span trees and (--emit-json)
//!                             a Chrome-trace artifact; exits 1 unless ≥95%
//!                             of request traces are complete
//!                             (admission → route → planning → executor)
//! REPRO_SCALE={quick,paper}   sweep sizes (default quick)
//! REPRO_TIMEOUT_MS=<ms>       per-query optimization budget
//! ```
//!
//! Output is tab-separated, one block per figure, with a header naming the
//! series exactly as in the paper. Times marked `[model]` are hardware-model
//! or SIMT-simulated predictions (see DESIGN.md §2); unmarked times are
//! wall-clock measurements on this machine.

use mpdp::registry;
use mpdp_bench::aws;
use mpdp_bench::regress::{append_step_summary, gate_report, summary_markdown, WallRun};
use mpdp_bench::runner::{run_exact, AlgoKind, EXACT_ROSTER};
use mpdp_bench::scale::Scale;
use mpdp_bench::scaling::{self, figure5_query, ScaleConfig};
use mpdp_bench::starform;
use mpdp_bench::stats::{fmt_ms, mean, percentile};
use mpdp_core::{LargeQuery, OptError, QueryInfo};
use mpdp_cost::pglike::PgLikeCost;
use mpdp_parallel::hwmodel::{Calibration, CpuModel};
use mpdp_workload::{gen, ImdbSchema, MusicBrainz};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set once from `--summary-md` before any experiment runs; every
/// [`gate_or_exit`] call then mirrors its gate table into the Actions job
/// summary. A process-wide flag (not a parameter) because it is pure
/// reporting and every gating experiment shares it.
static SUMMARY_MD: AtomicBool = AtomicBool::new(false);

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Split flag pairs (--emit-json PATH, --check-against PATH) from the
    // experiment names.
    let mut args: Vec<String> = Vec::new();
    let mut emit_json: Option<String> = None;
    let mut check_against: Option<String> = None;
    let mut serve_queries: usize = 10_000;
    let mut queries_given = false;
    let mut serve_workers: usize = 4;
    let mut workers_list: Vec<usize> = vec![1];
    let mut workers_given = false;
    let mut summary_md = false;
    let mut queries_small = false;
    let mut open_loop = false;
    let mut serve_rate: f64 = 120_000.0;
    let mut faults_seed: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut shards_list: Option<Vec<usize>> = None;
    let mut zipf_list: Option<Vec<f64>> = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit-json" => emit_json = it.next(),
            "--check-against" => check_against = it.next(),
            "--queries" => {
                serve_queries = parse_count_flag("--queries", it.next());
                queries_given = true;
            }
            "--workers" => {
                workers_list = parse_workers_flag(it.next());
                serve_workers = workers_list[0];
                workers_given = true;
            }
            "--summary-md" => summary_md = true,
            "--queries-small" => queries_small = true,
            "--open-loop" => open_loop = true,
            "--rate" => serve_rate = parse_count_flag("--rate", it.next()) as f64,
            "--faults-seed" => {
                faults_seed = match it.next().as_deref().map(str::parse::<u64>) {
                    Some(Ok(n)) => Some(n),
                    _ => {
                        eprintln!("--faults-seed requires a non-negative integer");
                        std::process::exit(2);
                    }
                }
            }
            "--deadline-ms" => {
                deadline_ms = Some(parse_count_flag("--deadline-ms", it.next()) as u64)
            }
            "--shards" => shards_list = Some(parse_shards_flag(it.next())),
            "--zipf-s" => zipf_list = Some(parse_zipf_flag(it.next())),
            _ => args.push(a),
        }
    }
    SUMMARY_MD.store(summary_md, Ordering::Relaxed);
    let scale = Scale::from_env();
    let what: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "ablation", "table1", "table2", "table3", "bench", "scale", "serve", "exec", "cluster",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "# MPDP reproduction harness — scale={scale:?}, timeout={:?}",
        scale.timeout()
    );
    for w in what {
        match w {
            "fig2" => fig2(scale),
            "fig4" => fig4(scale),
            "fig6" => exact_sweep(scale, "fig6", "star", scale.exact_sizes()),
            "fig7" => exact_sweep(scale, "fig7", "snowflake", scale.exact_sizes()),
            "fig8" => exact_sweep(scale, "fig8", "clique", scale.clique_sizes()),
            "fig9" => exact_sweep(scale, "fig9", "musicbrainz", scale.exact_sizes()),
            "fig10" => fig10(scale),
            "fig11" => fig11(scale),
            "fig12" => fig12(scale),
            "fig13" => fig13(scale),
            "ablation" => ablation(scale),
            "bench" => bench(scale, emit_json.as_deref(), check_against.as_deref()),
            "scale" => scale_experiment(
                if workers_given { serve_workers } else { 8 },
                queries_small,
                emit_json.as_deref(),
                check_against.as_deref(),
            ),
            "serve" => serve(
                // The CI smoke leg shrinks the replay unless an explicit
                // stream length was requested.
                if queries_given || !queries_small {
                    serve_queries
                } else {
                    2_000
                },
                serve_workers,
                open_loop.then_some(serve_rate),
                faults_seed,
                deadline_ms,
                zipf_list.as_ref().and_then(|l| l.first().copied()),
                queries_small,
                emit_json.as_deref(),
                check_against.as_deref(),
            ),
            "cluster" => cluster_experiment(
                if queries_given || !queries_small {
                    serve_queries
                } else {
                    2_000
                },
                shards_list.clone().unwrap_or_else(|| {
                    if queries_small {
                        vec![1, 4]
                    } else {
                        vec![1, 2, 4, 8]
                    }
                }),
                zipf_list.clone().unwrap_or_else(|| vec![0.7, 1.1]),
                // Sequential replay unless explicitly overridden: per-shard
                // busy attribution sums request wall times, which
                // oversubscribed replay workers pollute with scheduler
                // quanta (see mpdp_bench::cluster::ClusterRunConfig).
                if workers_given { serve_workers } else { 1 },
                queries_small,
                emit_json.as_deref(),
                check_against.as_deref(),
            ),
            "trace" => trace_experiment(
                if queries_given { serve_queries } else { 1_000 },
                queries_small,
                emit_json.as_deref(),
            ),
            "exec" => exec_experiment(
                if workers_given { &workers_list } else { &[1] },
                emit_json.as_deref(),
                check_against.as_deref(),
            ),
            "table1" => heuristic_table(scale, "table1", "snowflake", scale.table1_sizes()),
            "table2" => heuristic_table(scale, "table2", "star", scale.table2_sizes()),
            "table3" => heuristic_table(scale, "table3", "clique", scale.table3_sizes()),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

/// Parses `--workers`: a positive integer or a comma-separated list of them
/// (`repro exec` runs every listed count; serve/scale use the first).
fn parse_workers_flag(value: Option<String>) -> Vec<usize> {
    let parsed: Option<Vec<usize>> = value.as_deref().and_then(|v| {
        v.split(',')
            .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n >= 1))
            .collect()
    });
    match parsed {
        Some(list) if !list.is_empty() => list,
        _ => {
            eprintln!(
                "error: --workers requires a positive integer or comma list (got {})",
                value.as_deref().unwrap_or("nothing")
            );
            std::process::exit(2);
        }
    }
}

/// Parses `--shards`: a positive shard count or a comma-separated list of
/// them (`repro cluster` runs every listed count).
fn parse_shards_flag(value: Option<String>) -> Vec<usize> {
    let parsed: Option<Vec<usize>> = value.as_deref().and_then(|v| {
        v.split(',')
            .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n >= 1))
            .collect()
    });
    match parsed {
        Some(list) if !list.is_empty() => list,
        _ => {
            eprintln!(
                "error: --shards requires a positive integer or comma list (got {})",
                value.as_deref().unwrap_or("nothing")
            );
            std::process::exit(2);
        }
    }
}

/// Parses `--zipf-s`: a non-negative Zipf exponent or a comma-separated
/// list of them (`repro serve` uses the first; `repro cluster` sweeps all).
fn parse_zipf_flag(value: Option<String>) -> Vec<f64> {
    let parsed: Option<Vec<f64>> = value.as_deref().and_then(|v| {
        v.split(',')
            .map(|p| {
                p.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
            })
            .collect()
    });
    match parsed {
        Some(list) if !list.is_empty() => list,
        _ => {
            eprintln!(
                "error: --zipf-s requires a non-negative number or comma list (got {})",
                value.as_deref().unwrap_or("nothing")
            );
            std::process::exit(2);
        }
    }
}

/// Parses a positive integer flag value; a missing or malformed value is a
/// usage error, not a silent fallback to the default.
fn parse_count_flag(flag: &str, value: Option<String>) -> usize {
    match value.as_deref().map(str::parse::<usize>) {
        Some(Ok(n)) if n >= 1 => n,
        _ => {
            eprintln!(
                "error: {flag} requires a positive integer (got {})",
                value.as_deref().unwrap_or("nothing")
            );
            std::process::exit(2);
        }
    }
}

fn make_query(kind: &str, n: usize, seed: u64, model: &PgLikeCost) -> LargeQuery {
    match kind {
        "star" => gen::star(n, seed, model),
        "snowflake" => gen::snowflake(n, 4, seed, model),
        "clique" => gen::clique(n, seed, model),
        "musicbrainz" => MusicBrainz::new().random_walk_query(n, seed, true, model),
        other => panic!("unknown workload {other}"),
    }
}

// ---------------------------------------------------------------- fig 2

/// Figure 2: normalized evaluated Join-Pairs vs parallelizability on a
/// 20-relation MusicBrainz query.
fn fig2(scale: Scale) {
    println!(
        "\n## Figure 2 — evaluated Join-Pairs normalized to CCP pairs (20-rel MusicBrainz query)"
    );
    println!("algorithm\tnorm_evaluated\tparallelizability");
    let model = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let n = if scale == Scale::Quick { 16 } else { 20 };
    let q = mb
        .random_walk_query(n, 42, true, &model)
        .to_query_info()
        .unwrap();
    let budget = Duration::from_secs(120).max(scale.timeout());
    let series: [(AlgoKind, &str); 5] = [
        (AlgoKind::PostgresDpSize, "medium"),
        (AlgoKind::DpSubSeq, "high"),
        (AlgoKind::DpCcp, "sequential"),
        (AlgoKind::Dpe24, "medium"),
        (AlgoKind::MpdpSeq, "high"),
    ];
    for (kind, par) in series {
        match run_exact(kind, &q, &model, budget) {
            Ok(r) => println!(
                "{}\t{:.2}\t{}",
                kind.name(),
                r.counters.evaluated as f64 / r.counters.ccp.max(1) as f64,
                par
            ),
            Err(e) => println!("{}\t-\t{par}\t# {e}", kind.name()),
        }
    }
    println!("# GPU variants evaluate the same pairs as their CPU counterparts (DPSub(GPU)=DPSub, MPDP(GPU)=MPDP).");
}

// ---------------------------------------------------------------- fig 4

/// Figure 4: DPSUB EvaluatedCounter vs CCP-Counter on stars, 2–25 relations
/// (closed form, cross-validated against real runs in the test suite).
fn fig4(_scale: Scale) {
    println!("\n## Figure 4 — DPSUB counters on star queries (closed form)");
    println!("n\tCCPCounter\tEvaluatedCounter\tratio");
    for n in 2..=25usize {
        let (ev, ccp) = starform::dpsub_star_counters(n);
        println!("{n}\t{ccp}\t{ev}\t{:.1}", ev as f64 / ccp.max(1) as f64);
    }
}

// ------------------------------------------------------- figs 6, 7, 8, 9

/// Figures 6–9: optimization time sweeps. Once an algorithm times out at a
/// size, it is dropped for larger sizes (paper convention: missing points).
fn exact_sweep(scale: Scale, fig: &str, workload: &str, sizes: Vec<usize>) {
    println!(
        "\n## {} — optimization times (ms) on {workload} queries",
        fig_label(fig)
    );
    print!("n");
    for kind in EXACT_ROSTER {
        print!(
            "\t{}{}",
            kind.name(),
            if kind.reported_is_model() {
                "[model]"
            } else {
                ""
            }
        );
    }
    println!();
    let model = PgLikeCost::new();
    let budget = scale.timeout();
    let reps = scale.queries_per_size().max(1);
    let mut dead: HashSet<usize> = HashSet::new();
    for &n in &sizes {
        print!("{n}");
        for (ai, kind) in EXACT_ROSTER.iter().enumerate() {
            if dead.contains(&ai) {
                print!("\t-");
                continue;
            }
            if kind.reported_is_model()
                && matches!(
                    kind,
                    AlgoKind::DpSubGpu | AlgoKind::DpSizeGpu | AlgoKind::MpdpGpu
                )
                && n > scale.gpu_max_rels()
            {
                print!("\t-");
                continue;
            }
            let mut times = Vec::new();
            let mut timed_out = false;
            for rep in 0..reps {
                let q = match make_query(workload, n, 1000 + rep as u64, &model).to_query_info() {
                    Some(q) => q,
                    None => {
                        timed_out = true;
                        break;
                    }
                };
                match run_exact(*kind, &q, &model, budget) {
                    Ok(r) => times.push(r.reported.as_secs_f64() * 1000.0),
                    Err(OptError::Timeout { .. }) => {
                        timed_out = true;
                        break;
                    }
                    Err(e) => {
                        eprintln!("# {} n={n}: {e}", kind.name());
                        timed_out = true;
                        break;
                    }
                }
            }
            if timed_out || times.is_empty() {
                print!("\t-");
                dead.insert(ai);
            } else {
                print!("\t{:.2}", mean(&times));
            }
        }
        println!();
    }
}

fn fig_label(fig: &str) -> String {
    match fig {
        "fig6" => "Figure 6".into(),
        "fig7" => "Figure 7".into(),
        "fig8" => "Figure 8".into(),
        "fig9" => "Figure 9".into(),
        other => other.into(),
    }
}

// ---------------------------------------------------------------- fig 10

/// Figure 10: ratio of (estimated) execution time to optimization time on
/// MusicBrainz queries, PK-FK and non-PK-FK.
fn fig10(scale: Scale) {
    // One PostgreSQL cost unit ≈ this many seconds of execution. The paper
    // measures real executions; we estimate from the cost model (DESIGN.md
    // substitution 5) — only the ratio's growth matters.
    const SECONDS_PER_COST_UNIT: f64 = 25e-6;
    let model = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let budget = scale.timeout();
    let sizes: Vec<usize> = scale
        .exact_sizes()
        .into_iter()
        .filter(|&n| n >= 4)
        .collect();
    for (label, pk_fk) in [("(a) PK-FK joins", true), ("(b) non-PK-FK joins", false)] {
        println!("\n## Figure 10{label} — exec/opt time ratio on MusicBrainz");
        println!("n\tPostgres(1CPU)\tMPDP(GPU)[model]");
        let mut pg_dead = false;
        for &n in &sizes {
            let mut pg_ratios = Vec::new();
            let mut gpu_ratios = Vec::new();
            for rep in 0..scale.queries_per_size() {
                let q = mb
                    .random_walk_query(n, 500 + rep as u64, pk_fk, &model)
                    .to_query_info()
                    .unwrap();
                if !pg_dead {
                    if let Ok(r) = run_exact(AlgoKind::PostgresDpSize, &q, &model, budget) {
                        let exec = r.cost * SECONDS_PER_COST_UNIT;
                        pg_ratios.push(exec / r.wall.as_secs_f64());
                    } else {
                        // Conservative paper convention: account the budget
                        // itself as the optimization time.
                        pg_dead = true;
                    }
                }
                if n <= scale.gpu_max_rels() {
                    if let Ok(r) = run_exact(AlgoKind::MpdpGpu, &q, &model, budget) {
                        let exec = r.cost * SECONDS_PER_COST_UNIT;
                        gpu_ratios.push(exec / r.reported.as_secs_f64());
                    }
                }
            }
            println!(
                "{n}\t{}\t{}",
                if pg_ratios.is_empty() {
                    "-".into()
                } else {
                    format!("{:.3}", mean(&pg_ratios))
                },
                if gpu_ratios.is_empty() {
                    "-".into()
                } else {
                    format!("{:.3}", mean(&gpu_ratios))
                },
            );
        }
    }
}

// ---------------------------------------------------------------- fig 11

/// Figure 11: JOB(-like) query optimization times by join size.
fn fig11(scale: Scale) {
    println!("\n## Figure 11 — JOB-like query optimization times (ms)");
    print!("n");
    for kind in EXACT_ROSTER {
        print!(
            "\t{}{}",
            kind.name(),
            if kind.reported_is_model() {
                "[model]"
            } else {
                ""
            }
        );
    }
    println!();
    let model = PgLikeCost::new();
    let schema = ImdbSchema::new();
    let per_size = scale.queries_per_size();
    let suite = schema.suite(per_size, 77, &model);
    let budget = scale.timeout();
    let mut dead: HashSet<usize> = HashSet::new();
    let mut sizes: Vec<usize> = suite.iter().map(|(n, _)| *n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for n in sizes {
        print!("{n}");
        for (ai, kind) in EXACT_ROSTER.iter().enumerate() {
            if dead.contains(&ai) {
                print!("\t-");
                continue;
            }
            let mut times = Vec::new();
            let mut timed_out = false;
            for (_, q) in suite.iter().filter(|(sz, _)| *sz == n) {
                let qi = q.to_query_info().unwrap();
                match run_exact(*kind, &qi, &model, budget) {
                    Ok(r) => times.push(r.reported.as_secs_f64() * 1000.0),
                    Err(_) => {
                        timed_out = true;
                        break;
                    }
                }
            }
            if timed_out || times.is_empty() {
                print!("\t-");
                dead.insert(ai);
            } else {
                print!("\t{:.2}", mean(&times));
            }
        }
        println!();
    }
}

// ---------------------------------------------------------------- fig 12

/// Figure 12: CPU scalability of MPDP vs DPE on a 20-relation MusicBrainz
/// query (speedup over one thread, from the calibrated work/span model).
fn fig12(scale: Scale) {
    println!("\n## Figure 12 — CPU scalability on MusicBrainz (speedup over 1 thread) [model]");
    println!("threads\tMPDP(CPU)\tDPE(CPU)");
    let model = PgLikeCost::new();
    let mb = MusicBrainz::new();
    let n = if scale == Scale::Quick { 16 } else { 20 };
    let q = mb
        .random_walk_query(n, 42, true, &model)
        .to_query_info()
        .unwrap();
    let budget = Some(Duration::from_secs(300));

    let mpdp = registry()
        .get("MPDP")
        .unwrap()
        .plan_exact(&q, &model, budget)
        .expect("mpdp run");
    let mpdp_profile = mpdp.profile.expect("exact strategies profile their runs");
    let mpdp_cal = Calibration::from_measurement(&mpdp_profile, mpdp.wall);

    let dpe = registry()
        .get("DPE (1CPU)")
        .unwrap()
        .plan_exact(&q, &model, budget)
        .expect("dpe run");
    let dpe_profile = dpe.profile.expect("exact strategies profile their runs");
    let dpe_cal = Calibration::from_measurement(&dpe_profile, dpe.wall);

    let t1_mpdp = CpuModel::new(1).predict_level_parallel(&mpdp_profile, &mpdp_cal);
    let t1_dpe = CpuModel::new(1).predict_dpe(&dpe_profile, &dpe_cal);
    for threads in [1usize, 2, 4, 6, 8, 12, 16, 20, 24] {
        let tm = CpuModel::new(threads).predict_level_parallel(&mpdp_profile, &mpdp_cal);
        let td = CpuModel::new(threads).predict_dpe(&dpe_profile, &dpe_cal);
        println!(
            "{threads}\t{:.2}\t{:.2}",
            t1_mpdp.as_secs_f64() / tm.as_secs_f64(),
            t1_dpe.as_secs_f64() / td.as_secs_f64()
        );
    }
}

// ---------------------------------------------------------------- fig 13

/// Figure 13: monetary cost of optimization on AWS (US cents per query).
fn fig13(scale: Scale) {
    println!("\n## Figure 13 — cost of optimization on AWS (cents/query, star workload)");
    print!("n");
    for kind in EXACT_ROSTER {
        print!("\t{}", kind.name().replace("24CPU", "4CPU"));
    }
    println!();
    let model = PgLikeCost::new();
    let budget = scale.timeout();
    let mut dead: HashSet<usize> = HashSet::new();
    for &n in &scale.exact_sizes() {
        print!("{n}");
        for (ai, kind) in EXACT_ROSTER.iter().enumerate() {
            if dead.contains(&ai)
                || (matches!(
                    kind,
                    AlgoKind::DpSubGpu | AlgoKind::DpSizeGpu | AlgoKind::MpdpGpu
                ) && n > scale.gpu_max_rels())
            {
                print!("\t-");
                continue;
            }
            let q = make_query("star", n, 1000, &model).to_query_info().unwrap();
            match run_exact(*kind, &q, &model, budget) {
                Ok(r) => {
                    // Figure 13 uses 4-vCPU instances for the parallel CPU
                    // algorithms; re-predict with 4 threads.
                    let time = match kind {
                        AlgoKind::Dpe24 | AlgoKind::MpdpCpu24 => {
                            // `reported` is the 24-thread prediction; rescale
                            // to the cost-study core count via model speedups.
                            let s24 = CpuModel::new(24).speedup();
                            let s4 = CpuModel::new(aws::cost_study_threads(*kind)).speedup();
                            r.reported.mul_f64(s24 / s4)
                        }
                        _ => r.reported,
                    };
                    print!("\t{:.7}", aws::optimization_cost_cents(*kind, time));
                }
                Err(_) => {
                    print!("\t-");
                    dead.insert(ai);
                }
            }
        }
        println!();
    }
}

// ---------------------------------------------------------------- §7.2.5

/// §7.2.5: impact of the two GPU implementation enhancements.
fn ablation(scale: Scale) {
    println!("\n## §7.2.5 — GPU enhancement ablation (MPDP(GPU), simulated)");
    println!("workload\tn\tconfig\ttime_ms\twarp_cycles\tglobal_writes\tdivergence");
    let model = PgLikeCost::new();
    let n = if scale == Scale::Quick { 14 } else { 18 };
    let budget = Duration::from_secs(600);
    for (wl, seed) in [("star", 3u64), ("musicbrainz", 9)] {
        let q = make_query(wl, n, seed, &model).to_query_info().unwrap();
        for (label, series) in [
            ("baseline", "MPDP (GPU, baseline)"),
            ("+fusion", "MPDP (GPU, +fusion)"),
            ("+CCC", "MPDP (GPU, +CCC)"),
            ("+both", "MPDP (GPU)"),
        ] {
            let strat = registry().get(series).unwrap();
            match strat.plan_exact(&q, &model, Some(budget)) {
                Ok(run) => {
                    let stats = run.gpu.expect("GPU strategies report device stats");
                    println!(
                        "{wl}\t{n}\t{label}\t{}\t{}\t{}\t{:.2}",
                        fmt_ms(run.reported),
                        stats.warp_cycles,
                        stats.global_writes,
                        stats.divergence_factor()
                    )
                }
                Err(e) => println!("{wl}\t{n}\t{label}\t-\t-\t-\t-\t# {e}"),
            }
        }
    }
}

// ------------------------------------------------------------ tables 1-3

/// The Tables 1–2 series, by registry label in the paper's column order.
const HEURISTIC_SERIES: [&str; 7] = [
    "GE-QO",
    "GOO",
    "LinDP",
    "IKKBZ",
    "IDP2-MPDP (15)",
    "IDP2-MPDP (25)",
    "UnionDP-MPDP (15)",
];

/// Tables 1–2 (+ the §7.3 clique summary): heuristic plan quality, relative
/// to the best plan found by any technique per query (avg and p95).
fn heuristic_table(scale: Scale, table: &str, workload: &str, sizes: Vec<usize>) {
    println!(
        "\n## {} — heuristic relative plan cost on {workload} (avg / p95 over {} queries)",
        table_label(table),
        scale.table_queries()
    );
    print!("n");
    for n in HEURISTIC_SERIES {
        print!("\t{n}");
    }
    println!();
    let model = PgLikeCost::new();
    let budget = Some(scale.timeout().max(Duration::from_secs(10)));
    let mut dead = [false; 7];
    for &n in &sizes {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); HEURISTIC_SERIES.len()];
        for rep in 0..scale.table_queries() {
            let q = make_query(workload, n, 9000 + rep as u64, &model);
            let runs: Vec<Option<f64>> = run_heuristics(&q, &model, budget, &mut dead);
            let best = runs.iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
            if !best.is_finite() {
                continue;
            }
            for (i, r) in runs.iter().enumerate() {
                if let Some(c) = r {
                    ratios[i].push(c / best);
                }
            }
        }
        print!("{n}");
        for r in &ratios {
            if r.is_empty() {
                print!("\t-");
            } else {
                print!("\t{:.2}/{:.2}", mean(r), percentile(r, 95.0));
            }
        }
        println!();
    }
}

fn table_label(t: &str) -> String {
    match t {
        "table1" => "Table 1".into(),
        "table2" => "Table 2".into(),
        "table3" => "Clique summary (§7.3)".into(),
        other => other.into(),
    }
}

/// Runs the 7 heuristics of [`HEURISTIC_SERIES`] on one query, each resolved
/// by its paper label through the registry; `None` marks timeout/failure.
/// `dead[i]` latches techniques that have started timing out (the paper's
/// dashes) so later sizes skip them.
fn run_heuristics(
    q: &LargeQuery,
    model: &PgLikeCost,
    budget: Option<Duration>,
    dead: &mut [bool; 7],
) -> Vec<Option<f64>> {
    HEURISTIC_SERIES
        .iter()
        .enumerate()
        .map(|(idx, series)| {
            if dead[idx] {
                return None;
            }
            let strat = registry().get(series).expect("series label registered");
            match strat.plan(q, model, budget) {
                Ok(planned) => Some(planned.cost),
                Err(OptError::Timeout { .. }) => {
                    dead[idx] = true;
                    None
                }
                Err(_) => None,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ bench

/// One timed bench run, ready for JSON emission.
struct BenchRecord {
    shape: &'static str,
    n: usize,
    algorithm: String,
    wall_ms: f64,
    reported_ms: f64,
    reported_is_model: bool,
    cost: f64,
    evaluated: u64,
    ccp: u64,
    sets: u64,
    unranked: u64,
    memo_load: f64,
    memo_probes: u64,
    cas_retries: u64,
}

impl BenchRecord {
    /// One self-contained JSON object per line, so the `--check-against`
    /// reader can parse records without a full JSON parser.
    fn to_json_line(&self) -> String {
        format!(
            "{{\"shape\": \"{}\", \"n\": {}, \"algorithm\": \"{}\", \"wall_ms\": {:.3}, \
             \"reported_ms\": {:.3}, \"reported_is_model\": {}, \"cost\": {:.6e}, \
             \"evaluated\": {}, \"ccp\": {}, \"sets\": {}, \"unranked\": {}, \
             \"memo_load\": {:.3}, \"memo_probes\": {}, \"cas_retries\": {}}}",
            self.shape,
            self.n,
            self.algorithm,
            self.wall_ms,
            self.reported_ms,
            self.reported_is_model,
            self.cost,
            self.evaluated,
            self.ccp,
            self.sets,
            self.unranked,
            self.memo_load,
            self.memo_probes,
            self.cas_retries,
        )
    }
}

/// The tier-1 algorithms covered by the committed `BENCH_baseline.json` and
/// the CI smoke check.
const BENCH_ALGOS: [&str; 6] = [
    "Postgres (1CPU)",
    "DPSub (1CPU)",
    "DPCCP (1CPU)",
    "MPDP",
    "MPDP (24CPU)",
    "MPDP (GPU)",
];

/// `repro bench`: timed runs + counters on the CI shape set
/// (chain/star/cycle/fig5), a frontier-vs-unranked subset-visit comparison
/// on 20-relation shapes, optional JSON emission, and an optional >2×
/// wall-time regression check against a committed baseline.
fn bench(_scale: Scale, emit_json: Option<&str>, check_against: Option<&str>) {
    let model = PgLikeCost::new();
    // The shape set is sized to finish well within this budget at either
    // sweep scale; an explicit REPRO_TIMEOUT_MS still overrides it.
    let budget = match std::env::var("REPRO_TIMEOUT_MS") {
        Ok(ms) => Duration::from_millis(ms.parse().unwrap_or(120_000)),
        Err(_) => Duration::from_secs(120),
    };
    println!("\n## bench — CI shape set, per-algorithm times and counters");
    println!(
        "shape\tn\talgorithm\twall_ms\treported_ms\tevaluated\tccp\tsets\tunranked\t\
         memo_load\tprobes\tcas_retries"
    );
    let shapes: Vec<(&'static str, usize, QueryInfo)> = vec![
        (
            "chain",
            16,
            gen::chain(16, 1, &model).to_query_info().unwrap(),
        ),
        (
            "star",
            14,
            gen::star(14, 1, &model).to_query_info().unwrap(),
        ),
        (
            "cycle",
            14,
            gen::cycle(14, 1, &model).to_query_info().unwrap(),
        ),
        ("fig5", 9, figure5_query(&model)),
    ];
    let mut records: Vec<BenchRecord> = Vec::new();
    for (shape, n, q) in &shapes {
        for name in BENCH_ALGOS {
            let strat = registry().get(name).expect("bench algorithm registered");
            match strat.plan_exact(q, &model, Some(budget)) {
                Ok(r) => {
                    let c = r.counters.unwrap_or_default();
                    let health = r.profile.as_ref().and_then(|p| p.memo);
                    let (probes, retries) =
                        health.map(|h| (h.probes, h.cas_retries)).unwrap_or((0, 0));
                    let rec = BenchRecord {
                        shape,
                        n: *n,
                        algorithm: name.to_string(),
                        wall_ms: r.wall.as_secs_f64() * 1000.0,
                        reported_ms: r.reported.as_secs_f64() * 1000.0,
                        reported_is_model: strat.reported_is_model(),
                        cost: r.cost,
                        evaluated: c.evaluated,
                        ccp: c.ccp,
                        sets: c.sets,
                        unranked: c.unranked,
                        memo_load: health.map(|h| h.load_factor()).unwrap_or(0.0),
                        memo_probes: probes,
                        cas_retries: retries,
                    };
                    println!(
                        "{shape}\t{n}\t{name}\t{:.2}\t{:.2}\t{}\t{}\t{}\t{}\t{:.2}\t{}\t{}",
                        rec.wall_ms,
                        rec.reported_ms,
                        rec.evaluated,
                        rec.ccp,
                        rec.sets,
                        rec.unranked,
                        rec.memo_load,
                        rec.memo_probes,
                        rec.cas_retries
                    );
                    records.push(rec);
                }
                Err(e) => println!("{shape}\t{n}\t{name}\t-\t-\t-\t-\t-\t-\t# {e}"),
            }
        }
    }

    // Frontier vs unranked subset visits: the enumerator only ever touches
    // connected sets, the filter path unranks every C(n, i) candidate.
    println!("\n## bench — subset visits: frontier (sets considered) vs filter (unranked)");
    println!("shape\tn\tsets\tunranked\treduction");
    let mut visits: Vec<String> = Vec::new();
    for (shape, n) in [("chain", 20usize), ("star", 20), ("cycle", 20)] {
        let q = make_query_shape(shape, n, 1, &model);
        let frontier = registry()
            .get("MPDP")
            .unwrap()
            .plan_exact(&q, &model, Some(budget));
        let unranked =
            registry()
                .get("MPDP [unranked]")
                .unwrap()
                .plan_exact(&q, &model, Some(budget));
        let (f, u) = match (frontier, unranked) {
            (Ok(f), Ok(u)) => (f, u),
            (fr, ur) => {
                let e = fr.err().or(ur.err()).expect("one side failed");
                println!("{shape}\t{n}\t-\t-\t-\t# {e}");
                continue;
            }
        };
        let fc = f.counters.unwrap_or_default();
        let uc = u.counters.unwrap_or_default();
        assert_eq!(fc.ccp, uc.ccp, "modes must agree on CCP pairs");
        assert_eq!(fc.evaluated, uc.evaluated, "modes must agree on pairs");
        let reduction = uc.unranked as f64 / fc.sets.max(1) as f64;
        println!("{shape}\t{n}\t{}\t{}\t{reduction:.1}", fc.sets, uc.unranked);
        visits.push(format!(
            "{{\"shape\": \"{shape}\", \"n\": {n}, \"sets\": {}, \"unranked\": {}, \
             \"reduction\": {reduction:.1}, \"frontier_wall_ms\": {:.3}, \
             \"unranked_wall_ms\": {:.3}}}",
            fc.sets,
            uc.unranked,
            f.wall.as_secs_f64() * 1000.0,
            u.wall.as_secs_f64() * 1000.0,
        ));
    }

    if let Some(path) = emit_json {
        let mut out = String::from("{\n  \"schema\": \"mpdp-bench-v1\",\n  \"runs\": [\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", r.to_json_line()));
        }
        out.push_str("  ],\n  \"frontier_vs_unranked\": [\n");
        for (i, v) in visits.iter().enumerate() {
            let sep = if i + 1 == visits.len() { "" } else { "," };
            out.push_str(&format!("    {v}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write bench JSON");
        println!("\n# wrote {path}");
    }

    if let Some(path) = check_against {
        let runs: Vec<WallRun> = records
            .iter()
            .map(|r| WallRun {
                shape: r.shape.to_string(),
                n: r.n,
                algorithm: r.algorithm.clone(),
                wall_ms: r.wall_ms,
            })
            .collect();
        gate_or_exit(path, &runs, "BENCH", true);
    }
}

/// Runs the shared regression gate and exits non-zero on findings. With
/// `--summary-md`, the full gate table (not just the findings) lands in the
/// Actions job summary first — also on the green path, so the run page
/// shows what was compared.
fn gate_or_exit(path: &str, runs: &[WallRun], label: &str, require_full_coverage: bool) {
    let report = gate_report(path, runs, require_full_coverage);
    if SUMMARY_MD.load(Ordering::Relaxed) {
        append_step_summary(&summary_markdown(
            &format!("{label} gate vs `{path}`"),
            &report,
        ));
    }
    if !report.findings.is_empty() {
        eprintln!("# {label} REGRESSIONS (>2x wall time vs {path}):");
        for r in &report.findings {
            eprintln!("#   {r}");
        }
        std::process::exit(1);
    }
    println!("# no >2x wall-time regression against {path}");
}

// ------------------------------------------------------------------ scale

/// `repro scale`: strong-scaling sweep of the shared-atomic-memo parallel
/// MPDP (see `mpdp_bench::scaling`). `max_workers` bounds a 1/2/4/8 sweep;
/// `small` selects the reduced CI shape set.
fn scale_experiment(
    max_workers: usize,
    small: bool,
    emit_json: Option<&str>,
    check_against: Option<&str>,
) {
    let mut config = ScaleConfig::default_full();
    config.workers.retain(|&w| w <= max_workers.max(1));
    config.small = small;
    println!(
        "\n## scale — lock-free shared memo: MPDP (CPU) strong scaling ({} shapes, workers {:?})",
        if small { "small" } else { "full" },
        config.workers
    );
    let model = PgLikeCost::new();
    let report = match scaling::run_scale(&config, &model) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scale failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    if let Some(s) = report.model_speedup("job", 4) {
        println!("# JOB-sized query, 4 workers: {s:.2}x model speedup over 1 worker");
    }
    if let Some(path) = emit_json {
        std::fs::write(path, report.to_json()).expect("write scale JSON");
        println!("# wrote {path}");
    }
    if let Some(path) = check_against {
        // Intersection coverage: the committed BENCH_scale.json carries the
        // union of the full and small sweeps, so any single invocation
        // re-times a deliberate subset of it.
        gate_or_exit(path, &report.wall_runs(), "SCALE", false);
    }
}

fn make_query_shape(shape: &str, n: usize, seed: u64, model: &PgLikeCost) -> QueryInfo {
    match shape {
        "chain" => gen::chain(n, seed, model).to_query_info().unwrap(),
        "star" => gen::star(n, seed, model).to_query_info().unwrap(),
        "cycle" => gen::cycle(n, seed, model).to_query_info().unwrap(),
        other => panic!("unknown bench shape {other}"),
    }
}

// ------------------------------------------------------------------- exec

/// `repro exec`: materialize tables from catalog statistics, execute every
/// [`mpdp_bench::exec::EXEC_STRATEGIES`] plan per shape at every requested
/// worker count, report modeled cost vs measured runtime (+ Spearman
/// correlations), run the oracle + determinism checks and the PlanService
/// feedback-loop demo. See `mpdp_bench::exec`.
fn exec_experiment(workers: &[usize], emit_json: Option<&str>, check_against: Option<&str>) {
    println!(
        "\n## exec — morsel-parallel vectorized executor: modeled cost vs measured runtime \
         (seed 42, workers {workers:?})"
    );
    let model = PgLikeCost::new();
    let report = match mpdp_bench::exec::run_exec_bench(&model, 42, workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exec failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    // Emit before any gating, so a failing CI leg still uploads the run
    // JSON for diagnosis (same convention as bench/scale).
    if let Some(path) = emit_json {
        std::fs::write(path, report.to_json()).expect("write exec JSON");
        println!("# wrote {path}");
    }
    // The feedback demo is a check, not just a narrative: the skewed run
    // must invalidate and the corrected plan must be cheaper.
    let d = &report.demo;
    if !d.invalidated || !d.converged || d.replanned_cost >= d.stale_cost_corrected {
        eprintln!(
            "# exec FAILED: feedback loop did not improve the plan \
             (invalidated={}, converged={}, {:.3e} -> {:.3e})",
            d.invalidated, d.converged, d.stale_cost_corrected, d.replanned_cost
        );
        std::process::exit(1);
    }
    if let Some(path) = check_against {
        // Determinism gate first: root cardinality, rows touched, and exact
        // morsel counts must match the committed 1-worker baseline rows
        // bit-for-bit at whatever worker count this leg runs — the fields
        // are worker-invariant by construction, so all `--workers {1,2,4}`
        // matrix legs check against the same committed values.
        let diverged = mpdp_bench::exec::check_exec_determinism(path, &report);
        if SUMMARY_MD.load(Ordering::Relaxed) {
            let mut md = format!(
                "### EXEC determinism vs `{path}` (workers {workers:?}) — {}\n\n",
                if diverged.is_empty() {
                    "✅ bit-identical"
                } else {
                    "❌ diverged"
                }
            );
            for f in &diverged {
                md.push_str(&format!("- 🚨 {f}\n"));
            }
            md.push('\n');
            append_step_summary(&md);
        }
        if !diverged.is_empty() {
            eprintln!("# EXEC DETERMINISM VIOLATIONS (vs {path}):");
            for f in &diverged {
                eprintln!("#   {f}");
            }
            std::process::exit(1);
        }
        println!("# deterministic fields bit-identical to {path} at workers {workers:?}");
        // Subset coverage: the committed baseline carries rows for every
        // worker count of the full sweep; a single-count CI leg re-times
        // only its own rows.
        gate_or_exit(path, &report.wall_runs(), "EXEC", false);
    }
}

// ------------------------------------------------------------------ serve

/// `repro serve`: replay a Zipf-distributed stream of relabeled generated +
/// JOB + MusicBrainz queries against a [`mpdp::PlanService`] from a worker
/// pool (closed loop: throughput, cache hit rate, latency split), then —
/// with `--open-loop` — sweep offered load against an `mpdp_serve`
/// front-end for the overload curve. Both phases contribute gate rows
/// (encoded as ms per 1k plans, so "slower" still means "bigger number")
/// for `--check-against BENCH_serve.json`.
#[allow(clippy::too_many_arguments)]
fn serve(
    queries: usize,
    workers: usize,
    open_loop_rate: Option<f64>,
    faults_seed: Option<u64>,
    deadline_ms: Option<u64>,
    zipf_s: Option<f64>,
    small: bool,
    emit_json: Option<&str>,
    check_against: Option<&str>,
) {
    use mpdp::PlanServiceBuilder;
    use mpdp_bench::serve::{open_loop, replay, OpenLoopConfig, ServeConfig};
    use mpdp_workload::StreamSpec;
    use std::sync::Arc;

    // `shape` keys the gate rows; the committed baseline carries both the
    // full and the CI-small configuration, so each invocation re-times a
    // subset (hence `require_full_coverage = false` below).
    let shape = if small { "serve-small" } else { "serve" };
    let mut stream = if small {
        StreamSpec {
            templates: 80,
            min_rels: 6,
            max_rels: 12,
            ..StreamSpec::default()
        }
    } else {
        StreamSpec::default()
    };
    if let Some(s) = zipf_s {
        stream.skew = s;
    }

    if let Some(seed) = faults_seed {
        // Chaos mode replaces the perf measurement entirely: with faults
        // armed the timings mean nothing and the perf gate must not see
        // them. What is asserted instead are the robustness invariants.
        chaos_serve(
            seed,
            deadline_ms.unwrap_or(500),
            open_loop_rate.unwrap_or(20_000.0),
            stream,
            emit_json,
        );
        return;
    }
    println!(
        "\n## serve — PlanService replay ({queries} queries, {workers} workers, \
         Zipf skew {:.1}, {} templates)",
        stream.skew, stream.templates
    );
    let model = PgLikeCost::new();
    let service = PlanServiceBuilder::new()
        .budget(Duration::from_secs(30))
        .build();
    let config = ServeConfig {
        total: queries,
        workers,
        stream: stream.clone(),
    };
    let report = match replay(&service, &model, &config) {
        Ok(report) => {
            print!("{}", report.render());
            // The CI smoke leg runs this: a serving layer that errors on
            // queries (or serves none) must fail the step, not just print.
            if report.failed > 0 || report.served == 0 {
                eprintln!(
                    "# serve FAILED: {} of {} queries errored",
                    report.failed,
                    report.failed + report.served
                );
                std::process::exit(1);
            }
            report
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };
    let mut runs: Vec<WallRun> = vec![WallRun {
        shape: shape.to_string(),
        n: queries,
        algorithm: format!("closed-loop replay ({workers}w, ms per 1k plans)"),
        wall_ms: 1e6 / report.throughput().max(1e-9),
    }];

    let ol_report = open_loop_rate.map(|rate| {
        let ol_config = OpenLoopConfig {
            rate,
            window: if small {
                Duration::from_millis(250)
            } else {
                Duration::from_secs(2)
            },
            deadline: deadline_ms.map(Duration::from_millis),
            stream: stream.clone(),
            ..OpenLoopConfig::default()
        };
        println!(
            "\n## serve — open-loop overload sweep (base rate {rate:.0}/s, \
             window {:.2}s, queue {})",
            ol_config.window.as_secs_f64(),
            ol_config.queue_depth
        );
        match open_loop(&ol_config, Arc::new(PgLikeCost::new())) {
            Ok(r) => {
                print!("{}", r.render());
                let sheds: u64 = r.windows.iter().map(|w| w.serve.sheds()).sum();
                let served: u64 = r.windows.iter().map(|w| w.serve.completed).sum();
                // Broken-admission checks. "Zero sheds" alone is healthy (a
                // fast machine legitimately keeps up with the whole sweep);
                // the broken signature is falling far behind the offered
                // rate *without* shedding — silent buffering, exactly what
                // admission control exists to prevent. The 25% slack
                // tolerates harvest tails and slow-host jitter on windows
                // that completed everything, merely late.
                let behind_without_shed = r
                    .windows
                    .iter()
                    .any(|w| w.serve.sheds() == 0 && w.achieved < 0.75 * w.offered_rate);
                let errored = r.windows.iter().any(|w| w.serve.failed > 0);
                if served == 0 || errored || behind_without_shed {
                    eprintln!(
                        "# serve FAILED: open-loop sweep served {served} with {sheds} sheds \
                         (errored: {errored}, fell >25% behind offered without shedding: \
                         {behind_without_shed})"
                    );
                    std::process::exit(1);
                }
                runs.extend(r.wall_runs(shape));
                r
            }
            Err(e) => {
                eprintln!("open-loop failed: {e}");
                std::process::exit(1);
            }
        }
    });

    // Emit before any gating, so a failing CI leg still uploads the run
    // JSON for diagnosis (same convention as bench/scale/exec).
    if let Some(path) = emit_json {
        let mut out = String::from("{\n  \"schema\": \"mpdp-serve-v1\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"shape\": \"{shape}\", \"queries\": {queries}, \
             \"workers\": {workers}, \"templates\": {}}},\n",
            stream.templates
        ));
        out.push_str(&format!(
            "  \"replay\": {{\"served\": {}, \"throughput\": {:.0}, \
             \"request_hit_rate\": {:.4}, \"hit_p50_us\": {:.1}, \
             \"cold_p50_us\": {:.1}, \"coalesced\": {}}},\n",
            report.served,
            report.throughput(),
            report.cache.request_hit_rate(),
            report.hit_p50_us,
            report.miss_p50_us,
            report.cache.coalesced,
        ));
        if let Some(r) = &ol_report {
            out.push_str("  \"windows\": [\n");
            for (i, w) in r.windows.iter().enumerate() {
                let sep = if i + 1 == r.windows.len() { "" } else { "," };
                out.push_str(&format!("    {}{sep}\n", w.to_json_line()));
            }
            out.push_str("  ],\n");
        }
        out.push_str("  \"runs\": [\n");
        for (i, r) in runs.iter().enumerate() {
            let sep = if i + 1 == runs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"n\": {}, \"algorithm\": \"{}\", \
                 \"wall_ms\": {:.3}}}{sep}\n",
                r.shape, r.n, r.algorithm, r.wall_ms
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write serve JSON");
        println!("# wrote {path}");
    }

    if let Some(path) = check_against {
        // Intersection coverage: the committed BENCH_serve.json carries both
        // the full and the CI-small configuration's rows.
        gate_or_exit(path, &runs, "SERVE", false);
    }
}

/// `repro serve --faults-seed K`: the open-loop sweep under a seeded fault
/// schedule. Perf numbers are meaningless with injection armed, so no gate
/// rows are produced; instead the run *fails* unless the robustness
/// invariants hold: exact accounting (`accepted == completed + failed` in
/// every window — a panicked dispatcher may fail requests, it may not lose
/// them), gauges back to zero once the sweep drains, and at least one
/// scheduled fault actually fired (a chaos leg that injects nothing tests
/// nothing).
fn chaos_serve(
    seed: u64,
    deadline_ms: u64,
    rate: f64,
    stream: mpdp_workload::StreamSpec,
    emit_json: Option<&str>,
) {
    use mpdp_bench::serve::{open_loop, OpenLoopConfig};
    use mpdp_core::faults::FaultPlan;
    use std::sync::Arc;

    let plan = FaultPlan::seeded(seed);
    let scheduled = plan.len();
    println!(
        "\n## serve — chaos sweep (faults seed {seed}, {scheduled} scheduled, \
         deadline {deadline_ms}ms)"
    );
    print!("{}", plan.describe());
    let faults = plan.arm();
    let config = OpenLoopConfig {
        rate,
        multipliers: vec![0.5, 1.0],
        window: Duration::from_millis(500),
        queue_depth: 256,
        deadline: Some(Duration::from_millis(deadline_ms)),
        faults: faults.clone(),
        stream,
        ..OpenLoopConfig::default()
    };
    let report = match open_loop(&config, Arc::new(PgLikeCost::new())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("# chaos FAILED: sweep aborted: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    println!("# faults fired: {}", faults.fired());
    // Resilience counters (window snapshots are deltas, so sums are run
    // totals). These are what the chaos legs exist to exercise; until now
    // they were only asserted in tests, never visible on a run page.
    let worker_respawns: u64 = report.windows.iter().map(|w| w.serve.worker_respawns).sum();
    let reactor_respawns: u64 = report
        .windows
        .iter()
        .map(|w| w.serve.reactor_respawns)
        .sum();
    let abandoned: u64 = report
        .windows
        .iter()
        .map(|w| w.serve.abandoned_tickets)
        .sum();
    println!(
        "# resilience: worker_respawns {worker_respawns} reactor_respawns {reactor_respawns} \
         abandoned_tickets {abandoned}"
    );

    let mut violations: Vec<String> = Vec::new();
    for w in &report.windows {
        if w.serve.accepted != w.serve.completed + w.serve.failed {
            violations.push(format!(
                "window x{}: accepted {} != completed {} + failed {}",
                w.multiplier, w.serve.accepted, w.serve.completed, w.serve.failed
            ));
        }
    }
    if let Some(last) = report.windows.last() {
        // Gauges in a snapshot delta are carried as-is (point-in-time), so
        // the last window's values are the live gauges after the sweep
        // fully drained.
        if last.serve.queue_depth != 0 || last.serve.in_flight != 0 {
            violations.push(format!(
                "gauges nonzero after drain: queue_depth {} in_flight {}",
                last.serve.queue_depth, last.serve.in_flight
            ));
        }
    }
    if faults.fired() == 0 {
        violations.push("no scheduled fault fired — the schedule never intersected the run".into());
    }

    if let Some(path) = emit_json {
        let mut out = String::from("{\n  \"schema\": \"mpdp-serve-chaos-v1\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"seed\": {seed}, \"deadline_ms\": {deadline_ms}, \
             \"rate\": {rate:.0}, \"scheduled\": {scheduled}, \"fired\": {}}},\n",
            faults.fired()
        ));
        out.push_str("  \"windows\": [\n");
        for (i, w) in report.windows.iter().enumerate() {
            let sep = if i + 1 == report.windows.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    {}{sep}\n", w.to_json_line()));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"violations\": [{}]\n}}\n",
            violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        std::fs::write(path, out).expect("write chaos JSON");
        println!("# wrote {path}");
    }

    // Mirror the chaos outcome into the Actions job summary (satellite of
    // the observability pass): the respawn/abandonment totals say at a
    // glance *what* the fault schedule exercised, which the pass/fail bit
    // alone never did.
    if SUMMARY_MD.load(Ordering::Relaxed) {
        let mut md = format!(
            "### chaos sweep — seed {seed}\n\n\
             | counter | value |\n|---|---:|\n\
             | faults scheduled | {scheduled} |\n\
             | faults fired | {} |\n\
             | worker respawns | {worker_respawns} |\n\
             | reactor respawns | {reactor_respawns} |\n\
             | abandoned tickets | {abandoned} |\n\
             | invariant violations | {} |\n",
            faults.fired(),
            violations.len()
        );
        for v in &violations {
            md.push_str(&format!("\n- ❌ {v}\n"));
        }
        append_step_summary(&md);
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("# chaos FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!("# chaos invariants held (seed {seed})");
}

// ------------------------------------------------------------------ trace

/// `repro trace`: the observability acceptance leg. Replays a Zipf stream
/// through a cluster-backed front-end with the span tracer *armed*,
/// executes every served plan with its request's span context, and then
/// drains the rings into the artifact set (flamegraph table, slow-request
/// span trees, Chrome-trace JSON via `--emit-json`). Fails unless ≥95% of
/// the observed request traces are complete — admission root, routing
/// decision, planning disposition, and an executor span — and unless every
/// admitted request actually planned and executed (a trace leg that loses
/// requests measures nothing).
fn trace_experiment(queries: usize, small: bool, emit_json: Option<&str>) {
    use mpdp_bench::trace::{run_trace, TraceConfig};
    use mpdp_workload::StreamSpec;
    use std::sync::Arc;

    let stream = if small {
        StreamSpec {
            templates: 80,
            min_rels: 6,
            max_rels: 12,
            ..StreamSpec::default()
        }
    } else {
        StreamSpec::default()
    };
    let config = TraceConfig {
        queries,
        stream,
        ..TraceConfig::default()
    };
    println!(
        "\n## trace — armed span replay ({queries} queries, {} templates, {} shards)",
        config.stream.templates, config.shards
    );
    let report = match run_trace(&config, Arc::new(PgLikeCost::new())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("# trace FAILED: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());

    if let Some(path) = emit_json {
        std::fs::write(path, &report.chrome_json).expect("write trace JSON");
        println!("# wrote {path} ({} bytes)", report.chrome_json.len());
    }

    let mut violations: Vec<String> = Vec::new();
    if report.admitted < report.submitted {
        violations.push(format!(
            "shed {} of {} submissions",
            report.submitted - report.admitted,
            report.submitted
        ));
    }
    if report.executed < report.admitted {
        violations.push(format!(
            "only {} of {} admitted requests planned and executed",
            report.executed, report.admitted
        ));
    }
    if report.completeness_pct() < 95.0 {
        violations.push(format!(
            "trace completeness {:.1}% ({}/{}) below the 95% floor",
            report.completeness_pct(),
            report.complete,
            report.traces
        ));
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("# trace FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!(
        "# trace acceptance held: {}/{} complete ({:.1}%)",
        report.complete,
        report.traces,
        report.completeness_pct()
    );
}

// ---------------------------------------------------------------- cluster

/// `repro cluster`: sweep shard count × Zipf skew against the sharded
/// planning tier (`mpdp-cluster`). Each point replays a warmed stream
/// through [`mpdp_cluster::PlanCluster`] and reports raw aggregate
/// throughput, per-shard busy time and the model-normalized aggregate
/// plans/s (`served / max shard busy` — the one-core-per-shard makespan,
/// since N shards time-slicing this 1-core container cannot show wall-clock
/// scaling). Multi-shard points also run the invalidation-staleness probe
/// and a rehash window. Three acceptance invariants are asserted in-run
/// (exit 1 on violation, never gated by the baseline):
///
/// - model-normalized scaling at 4 shards ≥ 3× the 1-shard point at equal
///   offered load (skipped when the sweep has no 1-shard point, e.g. the
///   CI `--shards 4` leg),
/// - request hit rate within 2 points of the single-shard hit rate,
/// - an injected 10×-class miss on one shard evicts every replica within
///   the documented staleness window.
fn cluster_experiment(
    queries: usize,
    shards_list: Vec<usize>,
    skews: Vec<f64>,
    workers: usize,
    small: bool,
    emit_json: Option<&str>,
    check_against: Option<&str>,
) {
    use mpdp_bench::cluster::{run_cluster, ClusterReport, ClusterRunConfig};
    use mpdp_workload::StreamSpec;

    let shape = if small { "cluster-small" } else { "cluster" };
    let stream = if small {
        StreamSpec {
            templates: 80,
            min_rels: 6,
            max_rels: 12,
            ..StreamSpec::default()
        }
    } else {
        StreamSpec::default()
    };
    println!(
        "\n## cluster — sharded planning tier sweep ({queries} queries/point, \
         {workers} replay workers, shards {shards_list:?}, skews {skews:?}, \
         {} templates)",
        stream.templates
    );
    let model = PgLikeCost::new();

    let mut reports: Vec<ClusterReport> = Vec::new();
    for &skew in &skews {
        for &shards in &shards_list {
            let config = ClusterRunConfig {
                shards,
                skew,
                total: queries,
                warmup: queries,
                workers,
                stream: stream.clone(),
                ..ClusterRunConfig::default()
            };
            println!("\n### shards={shards} skew={skew:.2}");
            match run_cluster(&config, &model) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.failed > 0 || report.served == 0 {
                        eprintln!(
                            "# cluster FAILED: {} of {} queries errored at \
                             shards={shards} skew={skew:.2}",
                            report.failed,
                            report.failed + report.served
                        );
                        std::process::exit(1);
                    }
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("cluster failed at shards={shards} skew={skew:.2}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // In-run acceptance invariants. Violations are hard failures of this
    // invocation; the baseline gate below only watches for wall-time
    // regressions.
    let mut violations: Vec<String> = Vec::new();
    for r in &reports {
        if let Some(s) = &r.staleness {
            if !s.within_bound() {
                violations.push(format!(
                    "shards={} skew={:.2}: invalidation took {} rounds \
                     (bound {}, evicted everywhere: {})",
                    r.shards, r.skew, s.rounds_used, s.bound, s.evicted_everywhere
                ));
            }
        }
    }
    for &skew in &skews {
        let at = |n: usize| {
            reports
                .iter()
                .find(|r| r.shards == n && (r.skew - skew).abs() < 1e-9)
        };
        let (Some(one), Some(four)) = (at(1), at(4)) else {
            continue;
        };
        let scaling = four.model_plans_per_s() / one.model_plans_per_s().max(1e-9);
        if scaling < 3.0 {
            violations.push(format!(
                "skew {skew:.2}: model-normalized scaling at 4 shards is \
                 {scaling:.2}x vs 1 shard (need >= 3x)"
            ));
        }
        let drift = (four.hit_rate() - one.hit_rate()).abs();
        if drift > 0.02 {
            violations.push(format!(
                "skew {skew:.2}: hit rate drifted {:.1} points at 4 shards \
                 ({:.4} vs {:.4}, allowed 2)",
                drift * 100.0,
                four.hit_rate(),
                one.hit_rate()
            ));
        }
    }

    let runs: Vec<WallRun> = reports.iter().map(|r| r.wall_run(shape)).collect();

    // Emit before asserting or gating, so a failing CI leg still uploads
    // the run JSON for diagnosis (same convention as bench/scale/exec).
    if let Some(path) = emit_json {
        let mut out = String::from("{\n  \"schema\": \"mpdp-cluster-v1\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"shape\": \"{shape}\", \"queries\": {queries}, \
             \"workers\": {workers}, \"templates\": {}, \"shards\": {shards_list:?}, \
             \"skews\": {skews:?}}},\n",
            stream.templates
        ));
        out.push_str("  \"points\": [\n");
        for (i, r) in reports.iter().enumerate() {
            let sep = if i + 1 == reports.len() { "" } else { "," };
            out.push_str(&format!("    {}{sep}\n", r.to_json_line()));
        }
        out.push_str("  ],\n");
        out.push_str("  \"runs\": [\n");
        for (i, r) in runs.iter().enumerate() {
            let sep = if i + 1 == runs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"n\": {}, \"algorithm\": \"{}\", \
                 \"wall_ms\": {:.3}}}{sep}\n",
                r.shape, r.n, r.algorithm, r.wall_ms
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write cluster JSON");
        println!("# wrote {path}");
    }

    if !violations.is_empty() {
        eprintln!("# CLUSTER ACCEPTANCE VIOLATIONS:");
        for v in &violations {
            eprintln!("#   {v}");
        }
        std::process::exit(1);
    }
    println!("# cluster acceptance invariants held (scaling, hit-rate drift, staleness)");

    if let Some(path) = check_against {
        // Intersection coverage: the committed BENCH_cluster.json carries
        // both the full and the CI-small configuration's rows.
        gate_or_exit(path, &runs, "CLUSTER", false);
    }
}

/// Helper for tests: expose a tiny end-to-end sanity run.
#[allow(dead_code)]
fn sanity(q: &QueryInfo) -> bool {
    q.query_size() > 0
}
