//! Sweep scales: `quick` (default, sized for this single-core container) and
//! `paper` (the full sweeps of §7, which need hours).

use std::time::Duration;

/// Experiment scale, selected with `REPRO_SCALE={quick,paper}`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweeps + short per-query timeout; minutes on one core.
    Quick,
    /// Paper-sized sweeps + 60 s timeout (the paper's budget).
    Paper,
}

impl Scale {
    /// Reads `REPRO_SCALE` (default `quick`).
    pub fn from_env() -> Scale {
        match std::env::var("REPRO_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Per-query optimization timeout; `REPRO_TIMEOUT_MS` overrides.
    pub fn timeout(self) -> Duration {
        if let Ok(ms) = std::env::var("REPRO_TIMEOUT_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                return Duration::from_millis(ms);
            }
        }
        match self {
            Scale::Quick => Duration::from_millis(2500),
            Scale::Paper => Duration::from_secs(60),
        }
    }

    /// Relation counts for the exact-algorithm sweeps (Figures 6, 7, 9).
    pub fn exact_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![4, 6, 8, 10, 12, 14, 16, 18, 20, 22],
            Scale::Paper => (2..=30).step_by(1).collect(),
        }
    }

    /// Relation counts for the clique sweep (Figure 8; cliques are much more
    /// expensive per relation).
    pub fn clique_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![4, 6, 8, 10, 12, 14],
            Scale::Paper => (2..=20).collect(),
        }
    }

    /// Hard upper bound on exact sizes for the simulated-GPU drivers: the
    /// unrank phase materializes `C(n, n/2)` candidate sets per level, which
    /// is memory-prohibitive past ~26 relations on this container.
    pub fn gpu_max_rels(self) -> usize {
        26
    }

    /// Queries per size for averaged experiments (the paper uses 15 for
    /// MusicBrainz and 100 for Tables 1–2).
    pub fn queries_per_size(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Paper => 15,
        }
    }

    /// Queries per size for the heuristic quality tables.
    pub fn table_queries(self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Paper => 100,
        }
    }

    /// Table 1 (snowflake) size sweep.
    pub fn table1_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![30, 40, 50, 60, 80, 100, 200],
            Scale::Paper => vec![30, 40, 50, 60, 80, 100, 200, 400, 500, 600, 800, 1000],
        }
    }

    /// Table 2 (star) size sweep.
    pub fn table2_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![30, 40, 50, 60, 80, 100],
            Scale::Paper => vec![30, 40, 50, 60, 80, 100, 200, 300, 400, 500, 600],
        }
    }

    /// Clique heuristic sweep (§7.3 text).
    pub fn table3_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![30, 40, 50],
            Scale::Paper => vec![30, 40, 50, 60, 70, 80, 100],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_default() {
        // Cannot touch the process env safely in parallel tests; just check
        // the accessors are consistent.
        assert!(Scale::Quick.timeout() < Scale::Paper.timeout());
        assert!(Scale::Quick.exact_sizes().len() < Scale::Paper.exact_sizes().len());
        assert!(Scale::Quick.table_queries() < Scale::Paper.table_queries());
    }

    #[test]
    fn sizes_ascending() {
        for s in [Scale::Quick, Scale::Paper] {
            for sizes in [
                s.exact_sizes(),
                s.clique_sizes(),
                s.table1_sizes(),
                s.table2_sizes(),
            ] {
                for w in sizes.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }
}
