//! Unified timed runners for the exact-algorithm roster of Figures 6–9/11.
//!
//! Since the `Planner` API landed, this module is a thin veneer over
//! [`mpdp::registry()`]: [`AlgoKind`] enumerates the paper's roster in
//! legend order and [`run_exact`] resolves each entry by its series label —
//! there is no direct algorithm dispatch here anymore.

use mpdp::Strategy;
use mpdp_core::counters::Counters;
use mpdp_core::{OptError, QueryInfo};
use mpdp_cost::model::CostModel;
use std::time::Duration;

/// The algorithms of the paper's exact-evaluation figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// "Postgres (1CPU)": sequential DPSIZE.
    PostgresDpSize,
    /// "DPCCP (1CPU)".
    DpCcp,
    /// "DPE (24CPU)".
    Dpe24,
    /// "DPSub (GPU)" — COMB-GPU of \[23\] on the SIMT simulator.
    DpSubGpu,
    /// "DPSize (GPU)" — H+F-GPU of \[23\] on the SIMT simulator.
    DpSizeGpu,
    /// "MPDP (24CPU)".
    MpdpCpu24,
    /// "MPDP (GPU)".
    MpdpGpu,
    /// Sequential MPDP (for calibration and counter studies).
    MpdpSeq,
    /// Sequential DPSUB (for counter studies).
    DpSubSeq,
}

/// The Figure 6–9 roster, in the paper's legend order.
pub const EXACT_ROSTER: [AlgoKind; 7] = [
    AlgoKind::PostgresDpSize,
    AlgoKind::DpCcp,
    AlgoKind::Dpe24,
    AlgoKind::DpSubGpu,
    AlgoKind::DpSizeGpu,
    AlgoKind::MpdpCpu24,
    AlgoKind::MpdpGpu,
];

impl AlgoKind {
    /// Paper legend name; also the registry key this kind resolves through.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::PostgresDpSize => "Postgres(1CPU)",
            AlgoKind::DpCcp => "DPCCP(1CPU)",
            AlgoKind::Dpe24 => "DPE(24CPU)",
            AlgoKind::DpSubGpu => "DPSub(GPU)",
            AlgoKind::DpSizeGpu => "DPSize(GPU)",
            AlgoKind::MpdpCpu24 => "MPDP(24CPU)",
            AlgoKind::MpdpGpu => "MPDP(GPU)",
            AlgoKind::MpdpSeq => "MPDP(1CPU)",
            AlgoKind::DpSubSeq => "DPSub(1CPU)",
        }
    }

    /// The registry strategy backing this roster entry.
    pub fn strategy(self) -> std::sync::Arc<dyn Strategy> {
        mpdp::registry()
            .get(self.name())
            .expect("every roster entry is registered")
    }

    /// `true` if the reported time comes from the hardware model / SIMT
    /// simulation rather than a direct wall-clock measurement.
    pub fn reported_is_model(self) -> bool {
        self.strategy().reported_is_model()
    }
}

/// Outcome of one timed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Wall time of the real execution on this container.
    pub wall: Duration,
    /// The time reported in figures: wall time for sequential algorithms,
    /// model-predicted 24-core / GTX-1080 time for parallel and GPU ones.
    pub reported: Duration,
    /// Run counters.
    pub counters: Counters,
    /// Optimal plan cost (identical across algorithms; asserted in tests).
    pub cost: f64,
}

/// Runs one algorithm on one query with a time budget. `Err(Timeout)` means
/// the budget was exhausted (the paper reports these as missing points).
pub fn run_exact(
    kind: AlgoKind,
    q: &QueryInfo,
    model: &dyn CostModel,
    budget: Duration,
) -> Result<RunOutcome, OptError> {
    let planned = kind.strategy().plan_exact(q, model, Some(budget))?;
    Ok(RunOutcome {
        wall: planned.wall,
        reported: planned.reported,
        counters: planned.counters.unwrap_or_default(),
        cost: planned.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_workload::gen;

    #[test]
    fn all_roster_algorithms_agree_on_cost() {
        let m = PgLikeCost::new();
        let q = gen::star(7, 11, &m).to_query_info().unwrap();
        let budget = Duration::from_secs(30);
        let baseline = run_exact(AlgoKind::MpdpSeq, &q, &m, budget).unwrap();
        for kind in EXACT_ROSTER {
            let r = run_exact(kind, &q, &m, budget).unwrap();
            assert!(
                (r.cost - baseline.cost).abs() < 1e-6 * baseline.cost.max(1.0),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn roster_resolves_through_registry() {
        for kind in EXACT_ROSTER {
            let s = kind.strategy();
            assert!(s.is_exact(), "{}", kind.name());
        }
        // Legend labels normalize to the canonical registry names.
        assert_eq!(
            AlgoKind::PostgresDpSize.strategy().name(),
            "Postgres (1CPU)"
        );
        assert_eq!(AlgoKind::MpdpSeq.strategy().name(), "MPDP");
        assert_eq!(AlgoKind::MpdpGpu.strategy().name(), "MPDP (GPU)");
    }

    #[test]
    fn timeout_propagates() {
        let m = PgLikeCost::new();
        let q = gen::clique(14, 1, &m).to_query_info().unwrap();
        let r = run_exact(AlgoKind::DpSubSeq, &q, &m, Duration::from_micros(50));
        assert!(matches!(r, Err(OptError::Timeout { .. })));
    }

    #[test]
    fn model_reported_differs_from_wall_for_parallel() {
        let m = PgLikeCost::new();
        let q = gen::star(9, 2, &m).to_query_info().unwrap();
        let r = run_exact(AlgoKind::MpdpCpu24, &q, &m, Duration::from_secs(30)).unwrap();
        // 24-thread prediction must beat the single-thread wall measurement.
        assert!(r.reported < r.wall);
    }
}
