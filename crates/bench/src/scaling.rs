//! `repro scale` — intra-query strong scaling of the shared-atomic-memo
//! parallel MPDP (threads × query shape → speedup curve).
//!
//! For every shape the experiment runs the *real* `run_level_parallel`
//! implementation at each worker count (actual threads hammering one
//! [`mpdp_core::atomic_memo::AtomicMemo`]) and reports:
//!
//! * measured wall time on this host (on a single-core container this is
//!   flat-to-worse with more workers — real fan-out adds contention, which
//!   is itself worth seeing; on a multi-core CI runner it shows the real
//!   curve);
//! * the calibrated work/span-model time for the same worker count
//!   (`[model]`, the repo's standard reporting for multi-core hardware we
//!   don't have — DESIGN.md §2), whose speedup column is the headline;
//! * the prediction for the *deferred-merge* design this PR replaced
//!   (thread-local candidate buffers + sequential per-level merge), so the
//!   shared-memo win is quantified against its predecessor;
//! * memo health: final load factor, insert probes, and CAS retries at that
//!   worker count.
//!
//! Every run is also checked for result integrity: plans, costs and
//! counters must be bit-identical across all worker counts (the lock-free
//! memo's determinism guarantee), and the run aborts loudly if not.

use crate::regress::WallRun;
use mpdp_core::{JoinGraph, OptError, QueryInfo, RelInfo};
use mpdp_cost::model::CostModel;
use mpdp_cost::pglike::PgLikeCost;
use mpdp_dp::common::OptContext;
use mpdp_parallel::hwmodel::{Calibration, CpuModel};
use mpdp_parallel::level_par::{run_level_parallel, LevelAlgo};
use mpdp_workload::ImdbSchema;
use std::time::{Duration, Instant};

/// The Figure 5 nine-relation cyclic query (two 4-blocks + two bridges) —
/// the paper's running example, shared by `repro bench` and `repro scale`.
pub fn figure5_query(model: &PgLikeCost) -> QueryInfo {
    let mut g = JoinGraph::new(9);
    for &(u, v) in &[
        (1, 2),
        (2, 4),
        (4, 3),
        (3, 1),
        (4, 5),
        (5, 9),
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 6),
    ] {
        g.add_edge(u - 1, v - 1, 0.01);
    }
    let rels = (0..9)
        .map(|i| {
            let rows = 1000.0 * (i + 1) as f64;
            RelInfo::new(rows, model.scan_cost(rows))
        })
        .collect();
    QueryInfo::new(g, rels)
}

/// Configuration of one `repro scale` run.
pub struct ScaleConfig {
    /// Worker counts to sweep (1 is always included for the baseline).
    pub workers: Vec<usize>,
    /// Reduced shape set for the CI smoke leg (`--queries-small`).
    pub small: bool,
    /// Per-run optimization budget.
    pub budget: Duration,
}

impl ScaleConfig {
    /// The sweep `repro scale` runs by default: 1/2/4/8 workers, full shape
    /// set, 300 s budget. The CLI narrows `workers`/`small` from its flags
    /// so the budget cannot drift between callers.
    pub fn default_full() -> Self {
        ScaleConfig {
            workers: vec![1, 2, 4, 8],
            small: false,
            budget: Duration::from_secs(300),
        }
    }
}

/// One (shape × worker-count) measurement.
pub struct ScaleRow {
    /// Shape label.
    pub shape: &'static str,
    /// Relation count.
    pub n: usize,
    /// Worker threads in the real run.
    pub workers: usize,
    /// Measured wall time (best of 3) on this host.
    pub wall_ms: f64,
    /// Work/span-model time for this worker count (atomic shared memo).
    pub model_ms: f64,
    /// Model time for the replaced deferred-merge design.
    pub deferred_ms: f64,
    /// `model_ms(1) / model_ms(workers)` — the headline speedup.
    pub speedup_model: f64,
    /// Same ratio under the deferred-merge model.
    pub speedup_deferred: f64,
    /// Final memo load factor of the real run.
    pub load_factor: f64,
    /// Insert probe steps across all levels.
    pub probes: u64,
    /// CAS retries across all levels (0 at one worker).
    pub cas_retries: u64,
}

/// A full `repro scale` result.
pub struct ScaleReport {
    /// All rows, grouped by shape in worker order.
    pub rows: Vec<ScaleRow>,
}

/// The sweep's query set. JOB sizes the paper calls "large real-world"
/// (17 relations full, 11 small); synthetic shapes cover sparse, dense and
/// cyclic topologies; fig5 is the paper's running example.
fn shapes(small: bool, model: &PgLikeCost) -> Vec<(&'static str, QueryInfo)> {
    use mpdp_workload::gen;
    let job = ImdbSchema::new();
    if small {
        vec![
            ("fig5", figure5_query(model)),
            ("chain", gen::chain(12, 1, model).to_query_info().unwrap()),
            ("star", gen::star(10, 1, model).to_query_info().unwrap()),
            ("cycle", gen::cycle(10, 1, model).to_query_info().unwrap()),
            ("job", job.query(11, 7, model).to_query_info().unwrap()),
        ]
    } else {
        vec![
            ("fig5", figure5_query(model)),
            ("chain", gen::chain(18, 1, model).to_query_info().unwrap()),
            ("star", gen::star(16, 1, model).to_query_info().unwrap()),
            ("cycle", gen::cycle(16, 1, model).to_query_info().unwrap()),
            ("job", job.query(17, 7, model).to_query_info().unwrap()),
        ]
    }
}

/// Memo health of one run: (final load factor, total insert probes, total
/// CAS retries).
fn health_of(r: &mpdp_dp::common::OptResult) -> (f64, u64, u64) {
    (
        r.profile.memo.map(|h| h.load_factor()).unwrap_or(0.0),
        r.profile.levels.iter().map(|l| l.memo_probes).sum(),
        r.profile.levels.iter().map(|l| l.cas_retries).sum(),
    )
}

/// Best-of-3 timed run at `w` workers.
fn timed_run(
    ctx: &OptContext<'_>,
    w: usize,
) -> Result<(mpdp_dp::common::OptResult, Duration), OptError> {
    let mut best_wall = Duration::MAX;
    let mut kept = None;
    for _ in 0..3 {
        let started = Instant::now();
        let r = run_level_parallel(ctx, LevelAlgo::Mpdp, w)?;
        best_wall = best_wall.min(started.elapsed());
        kept = Some(r);
    }
    Ok((kept.expect("three repetitions ran"), best_wall))
}

/// Runs the scaling sweep. Fails with [`OptError::Internal`] if any worker
/// count produces a result that is not bit-identical to the 1-worker run.
pub fn run_scale(config: &ScaleConfig, model: &PgLikeCost) -> Result<ScaleReport, OptError> {
    let mut workers = config.workers.clone();
    if !workers.contains(&1) {
        workers.push(1);
    }
    workers.sort_unstable();
    workers.dedup();

    let mut rows = Vec::new();
    for (shape, q) in shapes(config.small, model) {
        let ctx = OptContext::with_budget(&q, model, config.budget);
        let n = q.query_size();
        // Single-worker baseline: calibrates the model and anchors the
        // bit-identity check.
        let (base, wall1) = timed_run(&ctx, 1)?;
        let cal = Calibration::from_measurement(&base.profile, wall1);
        let model1_ms = CpuModel::new(1)
            .predict_level_parallel(&base.profile, &cal)
            .as_secs_f64()
            * 1e3;
        let deferred1_ms = CpuModel::new(1)
            .predict_deferred_merge(&base.profile, &cal)
            .as_secs_f64()
            * 1e3;
        for &w in &workers {
            let (r, wall) = if w == 1 {
                (None, wall1)
            } else {
                let (r, wall) = timed_run(&ctx, w)?;
                // Integrity: bit-identical plans, costs and counters at
                // every worker count — the lock-free memo's guarantee.
                if r.cost.to_bits() != base.cost.to_bits()
                    || r.plan != base.plan
                    || r.counters != base.counters
                {
                    return Err(OptError::Internal(format!(
                        "{shape}: result diverged at {w} workers"
                    )));
                }
                (Some(r), wall)
            };
            let (load_factor, probes, cas_retries) = health_of(r.as_ref().unwrap_or(&base));
            let mw = CpuModel::new(w);
            let model_ms = mw.predict_level_parallel(&base.profile, &cal).as_secs_f64() * 1e3;
            let deferred_ms = mw.predict_deferred_merge(&base.profile, &cal).as_secs_f64() * 1e3;
            rows.push(ScaleRow {
                shape,
                n,
                workers: w,
                wall_ms: wall.as_secs_f64() * 1e3,
                model_ms,
                deferred_ms,
                speedup_model: model1_ms / model_ms.max(1e-9),
                speedup_deferred: deferred1_ms / deferred_ms.max(1e-9),
                load_factor,
                probes,
                cas_retries,
            });
        }
    }
    Ok(ScaleReport { rows })
}

impl ScaleReport {
    /// Tab-separated report in the house style of `repro`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "shape\tn\tworkers\twall_ms\tmodel_ms[model]\tdeferred_ms[model]\t\
             speedup[model]\tdeferred_speedup[model]\tmemo_load\tprobes\tcas_retries\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.2}\t{:.2}\t{:.2}\t{}\t{}\n",
                r.shape,
                r.n,
                r.workers,
                r.wall_ms,
                r.model_ms,
                r.deferred_ms,
                r.speedup_model,
                r.speedup_deferred,
                r.load_factor,
                r.probes,
                r.cas_retries,
            ));
        }
        out
    }

    /// The `BENCH_scale.json` payload: one self-contained object per row,
    /// parseable by the shared regression gate (`shape`/`n`/`algorithm`/
    /// `wall_ms`) with the model and health figures alongside.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"mpdp-scale-v1\",\n  \"runs\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": \"{}\", \"n\": {}, \"algorithm\": \"MPDP ({}CPU)\", \
                 \"workers\": {}, \"wall_ms\": {:.3}, \"model_ms\": {:.3}, \
                 \"deferred_ms\": {:.3}, \"speedup_model\": {:.2}, \
                 \"deferred_speedup\": {:.2}, \"memo_load\": {:.3}, \"probes\": {}, \
                 \"cas_retries\": {}}}{sep}\n",
                r.shape,
                r.n,
                r.workers,
                r.workers,
                r.wall_ms,
                r.model_ms,
                r.deferred_ms,
                r.speedup_model,
                r.speedup_deferred,
                r.load_factor,
                r.probes,
                r.cas_retries,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The rows as gate-comparable wall runs.
    pub fn wall_runs(&self) -> Vec<WallRun> {
        self.rows
            .iter()
            .map(|r| WallRun {
                shape: r.shape.to_string(),
                n: r.n,
                algorithm: format!("MPDP ({}CPU)", r.workers),
                wall_ms: r.wall_ms,
            })
            .collect()
    }

    /// Model speedup at `workers` for `shape`, if measured.
    pub fn model_speedup(&self, shape: &str, workers: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.shape == shape && r.workers == workers)
            .map(|r| r.speedup_model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_runs_and_scales() {
        let model = PgLikeCost::new();
        let config = ScaleConfig {
            workers: vec![1, 2, 4],
            small: true,
            budget: Duration::from_secs(60),
        };
        let report = run_scale(&config, &model).unwrap();
        // 5 shapes × 3 worker counts.
        assert_eq!(report.rows.len(), 15);
        // The modeled curve must show the acceptance-level speedup on the
        // paper-example and JOB shapes even at the small sizes.
        for shape in ["fig5", "job"] {
            let s = report.model_speedup(shape, 4).unwrap();
            assert!(s >= 2.0, "{shape}: model speedup at 4 workers = {s:.2}");
        }
        // Render and JSON contain every row.
        let rendered = report.render();
        assert_eq!(rendered.lines().count(), 16);
        let json = report.to_json();
        assert_eq!(json.matches("\"algorithm\"").count(), 15);
        assert_eq!(report.wall_runs().len(), 15);
    }
}
