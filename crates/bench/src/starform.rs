//! Closed-form DPSUB counters on star join graphs (Figure 4).
//!
//! On a star with `n` relations (hub + `n−1` dimensions), the connected sets
//! of size `i ≥ 2` are exactly the sets containing the hub: `C(n−1, i−1)` of
//! them. DPSUB evaluates `2^i − 1` submask splits per set (Algorithm 1 line
//! 8), of which `2(i−1)` are CCP pairs (ordered). The figure's curves can
//! therefore be computed exactly for any `n` without running the `O(3^n)`
//! algorithm — the small-`n` values are cross-validated against real DPSUB
//! runs in the tests.

use mpdp_core::combinatorics::binomial;

/// `(EvaluatedCounter, CCP-Counter)` of DPSUB on an `n`-relation star.
pub fn dpsub_star_counters(n: usize) -> (u64, u64) {
    let mut evaluated: u64 = 0;
    let mut ccp: u64 = 0;
    for i in 2..=n as u64 {
        let sets = binomial(n as u64 - 1, i - 1);
        evaluated = evaluated.saturating_add(sets.saturating_mul((1u64 << i) - 1));
        ccp = ccp.saturating_add(sets.saturating_mul(2 * (i - 1)));
    }
    (evaluated, ccp)
}

/// MPDP's counters on the same star: every block of an induced subgraph is a
/// single edge, so `Evaluated == CCP == Σ C(n−1, i−1) · 2(i−1)`.
pub fn mpdp_star_counters(n: usize) -> (u64, u64) {
    let (_, ccp) = dpsub_star_counters(n);
    (ccp, ccp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::dpsub::DpSub;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn closed_form_matches_real_runs() {
        let m = PgLikeCost::new();
        for n in [2usize, 4, 6, 8, 10] {
            let q = gen::star(n, 3, &m).to_query_info().unwrap();
            let r = DpSub::run(&OptContext::new(&q, &m)).unwrap();
            let (ev, ccp) = dpsub_star_counters(n);
            assert_eq!(r.counters.evaluated, ev, "evaluated n={n}");
            assert_eq!(r.counters.ccp, ccp, "ccp n={n}");
            let rm = Mpdp::run(&OptContext::new(&q, &m)).unwrap();
            let (mev, mccp) = mpdp_star_counters(n);
            assert_eq!(rm.counters.evaluated, mev);
            assert_eq!(rm.counters.ccp, mccp);
        }
    }

    #[test]
    fn paper_headline_ratio_at_25() {
        // §2.3: "EvaluatedCounter is around 2805 times larger (relatively)
        // compared to CCP-Counter at 25 relations." This workspace counts
        // *ordered* CCP pairs everywhere (both join orders are priced), so
        // our ratio is exactly half the paper's unordered-pair figure:
        // 2805 / 2 ≈ 1403.
        let (ev, ccp) = dpsub_star_counters(25);
        let ratio = ev as f64 / ccp as f64;
        assert!(
            (1300.0..1500.0).contains(&ratio),
            "ratio at 25 rels = {ratio:.0}"
        );
        // The paper's convention: unordered CCP pairs.
        let unordered = ccp / 2;
        let paper_ratio = ev as f64 / unordered as f64;
        assert!((2700.0..2900.0).contains(&paper_ratio), "{paper_ratio:.0}");
    }

    #[test]
    fn gap_grows_with_n() {
        let r = |n| {
            let (e, c) = dpsub_star_counters(n);
            e as f64 / c as f64
        };
        assert!(r(10) < r(15) && r(15) < r(20) && r(20) < r(25));
    }
}
