//! AWS on-demand pricing used by the Figure 13 cost-of-optimization study.
//!
//! The paper runs single-threaded CPU algorithms on `c5.large`, parallel CPU
//! ones on `c5.xlarge` (4 vCPU — it notes the CPU algorithms "do not scale
//! linearly with large number of cores", so the small instance is the most
//! cost-effective) and GPU algorithms on `g4dn.xlarge` (NVIDIA T4).
//! Prices are us-east-1 on-demand US$ per hour at the time of the paper.

use crate::runner::AlgoKind;
use std::time::Duration;

/// `c5.large` (2 vCPU): single-threaded CPU algorithms.
pub const C5_LARGE_PER_H: f64 = 0.085;
/// `c5.xlarge` (4 vCPU): DPE and MPDP (CPU).
pub const C5_XLARGE_PER_H: f64 = 0.17;
/// `g4dn.xlarge` (NVIDIA T4): GPU algorithms.
pub const G4DN_XLARGE_PER_H: f64 = 0.526;

/// Hourly price of the instance the paper assigns to an algorithm.
pub fn instance_price(kind: AlgoKind) -> f64 {
    match kind {
        AlgoKind::PostgresDpSize | AlgoKind::DpCcp | AlgoKind::MpdpSeq | AlgoKind::DpSubSeq => {
            C5_LARGE_PER_H
        }
        AlgoKind::Dpe24 | AlgoKind::MpdpCpu24 => C5_XLARGE_PER_H,
        AlgoKind::DpSubGpu | AlgoKind::DpSizeGpu | AlgoKind::MpdpGpu => G4DN_XLARGE_PER_H,
    }
}

/// The Figure 13 4-vCPU variants: predicted times for 4 threads instead of
/// 24. Returns the thread count the cost study uses per algorithm.
pub fn cost_study_threads(kind: AlgoKind) -> usize {
    match kind {
        AlgoKind::Dpe24 | AlgoKind::MpdpCpu24 => 4,
        _ => 1,
    }
}

/// Optimization cost in US cents for one query.
pub fn optimization_cost_cents(kind: AlgoKind, time: Duration) -> f64 {
    instance_price(kind) * 100.0 * time.as_secs_f64() / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_time_is_pricier_per_hour() {
        assert!(instance_price(AlgoKind::MpdpGpu) > instance_price(AlgoKind::MpdpCpu24));
        assert!(instance_price(AlgoKind::MpdpCpu24) > instance_price(AlgoKind::DpCcp));
    }

    #[test]
    fn cost_scales_with_time() {
        let a = optimization_cost_cents(AlgoKind::DpCcp, Duration::from_secs(36));
        // 36s at $0.085/h = 0.085 cents... 0.085*100*0.01 = 0.085 cents
        assert!((a - 0.085).abs() < 1e-9);
        let b = optimization_cost_cents(AlgoKind::DpCcp, Duration::from_secs(72));
        assert!((b - 2.0 * a).abs() < 1e-12);
    }
}
