//! Serving-layer harnesses: closed-loop replay and open-loop load.
//!
//! Two measurement modes drive the serving stack from the Zipf query stream
//! (`mpdp_workload::stream`, isomorphic-but-relabeled repetitions of a
//! template pool):
//!
//! - **Closed-loop replay** ([`replay`]): a worker pool races down a shared
//!   cursor calling [`PlanService::plan_coalesced`] back-to-back. Each worker
//!   waits for its previous request before issuing the next, so this measures
//!   *service* latency and the cache's amortization factor (cold vs hit vs
//!   coalesced split), not behavior under offered load.
//! - **Open-loop load** ([`open_loop`]): generators submit to an
//!   [`mpdp_serve::ServeFront`] on an absolute schedule — arrivals do not
//!   slow down when the service does, exactly like production traffic.
//!   Sweeping offered rates across a saturation point yields the overload
//!   curve: achieved throughput tracks offered load below capacity, then
//!   plateaus (never collapses) while admission control sheds the excess and
//!   tail latency is bounded by the queue depth.

use mpdp::service::{PlanRequest, PlanService, ServedPlan, ServedVia};
use mpdp_core::counters::{CacheSnapshot, ServeSnapshot};
use mpdp_core::faults::Faults;
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_obs::Hist64;
use mpdp_serve::{ServeFront, TenantConfig};
use mpdp_workload::stream::{StreamSpec, ZipfStream};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::regress::WallRun;

/// Configuration of one replay run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of queries to replay.
    pub total: usize,
    /// Worker threads sharing the service.
    pub workers: usize,
    /// The Zipf stream the replay draws from.
    pub stream: StreamSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            total: 10_000,
            workers: 4,
            stream: StreamSpec::default(),
        }
    }
}

/// Per-disposition latency histograms. Replaces the sort-the-whole-vec
/// percentile machinery: O(1) memory per window at any request count,
/// exact counts, quantiles within [`Hist64`]'s ~1.6% bucket error, and
/// field-wise mergeable across worker threads like `CacheSnapshot`.
#[derive(Clone, Default)]
struct ViaHists {
    hit: Hist64,
    cold: Hist64,
    coalesced: Hist64,
    degraded: Hist64,
}

impl ViaHists {
    fn record(&mut self, via: ServedVia, latency: Duration) {
        let h = match via {
            ServedVia::Hit => &mut self.hit,
            ServedVia::Cold => &mut self.cold,
            ServedVia::Coalesced => &mut self.coalesced,
            ServedVia::Degraded => &mut self.degraded,
        };
        h.record_duration(latency);
    }

    fn merge(&mut self, other: &ViaHists) {
        self.hit.merge(&other.hit);
        self.cold.merge(&other.cold);
        self.coalesced.merge(&other.coalesced);
        self.degraded.merge(&other.degraded);
    }

    /// Every request is exactly one disposition, so the all-requests
    /// histogram is the exact merge of the four splits.
    fn all(&self) -> Hist64 {
        let mut all = self.hit.clone();
        all.merge(&self.cold);
        all.merge(&self.coalesced);
        all.merge(&self.degraded);
        all
    }
}

/// A histogram quantile in microseconds (0.0 when empty, matching the
/// reports' "0.0 if none" field contracts).
fn pct_us(h: &Hist64, p: f64) -> f64 {
    h.percentile(p) as f64 / 1e3
}

/// Aggregated outcome of a replay run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests served successfully.
    pub served: usize,
    /// Requests that failed (per-query planning errors; kept separate so a
    /// pathological template can't silently vanish from the stats).
    pub failed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
    /// Cache activity of this replay window (delta over the run, so reports
    /// stay self-consistent even on a reused, pre-warmed service).
    pub cache: CacheSnapshot,
    /// Service-latency percentiles over all requests (µs).
    pub p50_us: f64,
    /// See [`ServeReport::p50_us`].
    pub p99_us: f64,
    /// Median service latency of cache hits (µs); 0.0 if none.
    pub hit_p50_us: f64,
    /// Median service latency of cold plans, i.e. flight leaders (µs).
    pub miss_p50_us: f64,
    /// Median service latency of coalesced requests — single-flight joins
    /// that waited on another request's in-flight planning (µs); 0.0 if the
    /// replay never raced two cold arrivals of one fingerprint.
    pub coalesced_p50_us: f64,
    /// Median service latency of degraded requests — deadline-pressed
    /// requests served by the heuristic fallback planner (µs); 0.0 unless
    /// the replay carried deadlines tight enough to trip degradation.
    pub degraded_p50_us: f64,
    /// Requests per strategy label actually planned (cold plans only).
    pub routes: BTreeMap<String, usize>,
}

impl ServeReport {
    /// Served queries per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.served as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Median cold-planning latency over median cached latency — the
    /// amortization factor the serving layer exists for.
    pub fn cached_speedup(&self) -> f64 {
        if self.hit_p50_us <= 0.0 {
            0.0
        } else {
            self.miss_p50_us / self.hit_p50_us
        }
    }

    /// Renders the tab-separated summary block `repro serve` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("metric\tvalue\n");
        out.push_str(&format!("queries_served\t{}\n", self.served));
        out.push_str(&format!("queries_failed\t{}\n", self.failed));
        out.push_str(&format!("workers\t{}\n", self.workers));
        out.push_str(&format!("elapsed_s\t{:.3}\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!(
            "throughput_plans_per_s\t{:.0}\n",
            self.throughput()
        ));
        out.push_str(&format!("cache_hit_rate\t{:.4}\n", self.cache.hit_rate()));
        out.push_str(&format!(
            "request_hit_rate\t{:.4}\n",
            self.cache.request_hit_rate()
        ));
        out.push_str(&format!(
            "cache_hits\t{}\ncache_misses\t{}\ncache_coalesced\t{}\ncache_evictions\t{}\n",
            self.cache.hits, self.cache.misses, self.cache.coalesced, self.cache.evictions
        ));
        out.push_str(&format!(
            "degraded\t{}\ndeadline_exceeded\t{}\n",
            self.cache.degraded, self.cache.deadline_exceeded
        ));
        out.push_str(&format!(
            "feedback_checks\t{}\nfeedback_invalidations\t{}\n",
            self.cache.feedback_checks, self.cache.feedback_invalidations
        ));
        out.push_str(&format!("latency_p50_us\t{:.1}\n", self.p50_us));
        out.push_str(&format!("latency_p99_us\t{:.1}\n", self.p99_us));
        out.push_str(&format!("hit_latency_p50_us\t{:.1}\n", self.hit_p50_us));
        out.push_str(&format!("cold_latency_p50_us\t{:.1}\n", self.miss_p50_us));
        out.push_str(&format!(
            "coalesced_latency_p50_us\t{:.1}\n",
            self.coalesced_p50_us
        ));
        if self.cache.degraded > 0 {
            out.push_str(&format!(
                "degraded_latency_p50_us\t{:.1}\n",
                self.degraded_p50_us
            ));
        }
        out.push_str(&format!(
            "cached_speedup_p50\t{:.0}x\n",
            self.cached_speedup()
        ));
        for (route, count) in &self.routes {
            out.push_str(&format!("route[{route}]\t{count}\n"));
        }
        out
    }
}

/// Replays `config.total` Zipf-stream queries against `service` from
/// `config.workers` threads and aggregates the measurements.
///
/// The stream is materialized up front (generation cost must not pollute
/// service latencies); workers then race down a shared cursor, so the replay
/// order interleaves arbitrarily across threads — exactly the contention
/// pattern a concurrent service must tolerate. Requests go through the
/// single-flight path ([`PlanService::plan_coalesced`]), so two workers
/// racing a cold fingerprint plan it once and the loser is counted
/// `coalesced`, never as a second miss.
pub fn replay(
    service: &PlanService,
    model: &dyn CostModel,
    config: &ServeConfig,
) -> Result<ServeReport, OptError> {
    let mut stream = ZipfStream::new(&config.stream, model);
    let queries: Vec<(usize, LargeQuery)> = stream.take(config.total);
    let workers = config.workers.max(1);

    let cursor = AtomicUsize::new(0);
    let hists: Mutex<ViaHists> = Mutex::new(ViaHists::default());
    let routes: Mutex<BTreeMap<String, usize>> = Mutex::new(BTreeMap::new());
    let failed = AtomicUsize::new(0);
    // Counters are cumulative per service; report only this replay's window
    // so reusing one (warm) service still yields a self-consistent report.
    let counters_before = service.cache_counters();
    let req = PlanRequest::default();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = ViaHists::default();
                let mut local_routes: BTreeMap<String, usize> = BTreeMap::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    match service.plan_coalesced(&queries[i].1, model, &req) {
                        Ok(ServedPlan {
                            planned,
                            via,
                            service_time,
                            ..
                        }) => {
                            local.record(via, service_time);
                            if via == ServedVia::Cold {
                                *local_routes.entry(planned.strategy).or_insert(0) += 1;
                            }
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                hists.lock().expect("hists").merge(&local);
                let mut shared = routes.lock().expect("routes");
                for (k, v) in local_routes {
                    *shared.entry(k).or_insert(0) += v;
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let hists = hists.into_inner().expect("hists");
    let all = hists.all();

    Ok(ServeReport {
        served: all.count() as usize,
        failed: failed.into_inner(),
        workers,
        elapsed,
        cache: service.cache_counters().since(&counters_before),
        p50_us: pct_us(&all, 50.0),
        p99_us: pct_us(&all, 99.0),
        hit_p50_us: pct_us(&hists.hit, 50.0),
        miss_p50_us: pct_us(&hists.cold, 50.0),
        coalesced_p50_us: pct_us(&hists.coalesced, 50.0),
        degraded_p50_us: pct_us(&hists.degraded, 50.0),
        routes: routes.into_inner().expect("routes"),
    })
}

// ------------------------------------------------------------- open loop

/// Configuration of one open-loop sweep over a [`ServeFront`].
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Base offered load (requests/s); each window offers a multiple of it.
    pub rate: f64,
    /// Offered-rate multipliers, one measured window each. The default
    /// sweeps from well under to well over saturation so the overload curve
    /// (plateau, not collapse) is visible in a single run.
    pub multipliers: Vec<f64>,
    /// Duration of each window's submission schedule.
    pub window: Duration,
    /// Generator tasks; the stream is partitioned (`ZipfStream::partition`)
    /// so generators never serialize on a shared stream.
    pub generators: usize,
    /// Submissions per pacing tick. Batching keeps timer traffic ~1k/s at
    /// six-figure offered rates; within a batch submissions are back-to-back.
    pub batch: usize,
    /// Bounded admission-queue depth of the front-end under test.
    pub queue_depth: usize,
    /// Dispatcher tasks of the front-end under test.
    pub dispatchers: usize,
    /// Default per-request deadline handed to the front-end. Requests that
    /// cannot afford exact planning within it degrade to a heuristic plan
    /// (`ServedVia::Degraded`) instead of missing it. `None` (the default)
    /// measures pure exact serving.
    pub deadline: Option<Duration>,
    /// Fault-injection handle for chaos runs ([`mpdp_core::FaultPlan`],
    /// seeded). Disarmed by default: the measured gate configuration never
    /// pays for or is perturbed by injection.
    pub faults: Faults,
    /// Request tracer handed to the front-end under test. Disabled by
    /// default — the gate configuration measures the disarmed fast path;
    /// the trace harness arms it.
    pub tracer: mpdp_obs::Tracer,
    /// The Zipf stream generators draw from.
    pub stream: StreamSpec,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate: 120_000.0,
            multipliers: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            window: Duration::from_secs(2),
            // Tuned on a 1-core box: one generator with a large pacing
            // batch keeps the submit path off the dispatchers' backs, and
            // two dispatchers saturate the warm hit path without fighting
            // each other for the queue lock. Deeper queues only stretch
            // drain tails (worse p99 at the same throughput).
            generators: 1,
            batch: 512,
            queue_depth: 1024,
            dispatchers: 2,
            deadline: None,
            faults: Faults::disarmed(),
            tracer: mpdp_obs::Tracer::disabled(),
            stream: StreamSpec::default(),
        }
    }
}

/// One offered-rate window of an open-loop sweep.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Offered rate as a multiple of [`OpenLoopConfig::rate`].
    pub multiplier: f64,
    /// Offered load of this window (requests/s).
    pub offered_rate: f64,
    /// Requests submitted (accepted + shed).
    pub offered: usize,
    /// Window wall time: first scheduled arrival to last completion.
    pub elapsed: Duration,
    /// Completed plans per second over `elapsed` — the *achieved* throughput
    /// the overload curve plots against `offered_rate`.
    pub achieved: f64,
    /// End-to-end (submit → completion) latency percentiles, ms.
    pub p50_ms: f64,
    /// See [`WindowReport::p50_ms`].
    pub p99_ms: f64,
    /// Median end-to-end latency of cache-hit requests (µs).
    pub hit_p50_us: f64,
    /// Median end-to-end latency of cold (flight-leader) requests (µs).
    pub cold_p50_us: f64,
    /// Median end-to-end latency of coalesced requests (µs).
    pub coalesced_p50_us: f64,
    /// Median end-to-end latency of degraded (heuristic-fallback) requests
    /// (µs); 0.0 when no request tripped its deadline budget.
    pub degraded_p50_us: f64,
    /// Cache activity of this window (delta).
    pub cache: CacheSnapshot,
    /// Front-door activity of this window (delta; gauges are end-of-window).
    pub serve: ServeSnapshot,
    /// `true` if the window ran past saturation: admission control shed
    /// requests, or achieved throughput fell visibly short of offered load.
    pub saturated: bool,
}

impl WindowReport {
    /// One self-contained JSON object per line. Deliberately does **not**
    /// carry an `"algorithm"` key: the regression gate's line parser only
    /// reads lines with one, so window rows are context, not gate rows.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"multiplier\": {:.2}, \"offered_rate\": {:.0}, \"offered\": {}, \
             \"accepted\": {}, \"shed\": {}, \"completed\": {}, \"failed\": {}, \
             \"elapsed_s\": {:.3}, \"achieved\": {:.0}, \"request_hit_rate\": {:.4}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"hit_p50_us\": {:.1}, \
             \"cold_p50_us\": {:.1}, \"coalesced_p50_us\": {:.1}, \
             \"degraded_p50_us\": {:.1}, \"hits\": {}, \
             \"misses\": {}, \"coalesced\": {}, \"degraded\": {}, \
             \"deadline_exceeded\": {}, \"worker_respawns\": {}, \
             \"reactor_respawns\": {}, \"abandoned_tickets\": {}, \
             \"queue_depth_peak\": {}, \
             \"saturated\": {}}}",
            self.multiplier,
            self.offered_rate,
            self.offered,
            self.serve.accepted,
            self.serve.sheds(),
            self.serve.completed,
            self.serve.failed,
            self.elapsed.as_secs_f64(),
            self.achieved,
            self.cache.request_hit_rate(),
            self.p50_ms,
            self.p99_ms,
            self.hit_p50_us,
            self.cold_p50_us,
            self.coalesced_p50_us,
            self.degraded_p50_us,
            self.cache.hits,
            self.cache.misses,
            self.cache.coalesced,
            self.cache.degraded,
            self.cache.deadline_exceeded,
            self.serve.worker_respawns,
            self.serve.reactor_respawns,
            self.serve.abandoned_tickets,
            self.serve.queue_depth_peak,
            self.saturated,
        )
    }
}

/// Aggregated outcome of an open-loop sweep.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// The sweep's base offered rate (requests/s).
    pub base_rate: f64,
    /// Templates pre-planned before the measured windows (cache warm-up, so
    /// windows measure steady-state serving; cold latency is measured by the
    /// replay harness's split).
    pub warmed_templates: usize,
    /// Wall time of the warm-up phase.
    pub warm_elapsed: Duration,
    /// One report per offered-rate window, in sweep order.
    pub windows: Vec<WindowReport>,
}

impl OpenLoopReport {
    /// Highest achieved throughput across windows — the capacity the
    /// overload curve plateaus at.
    pub fn peak_achieved(&self) -> f64 {
        self.windows.iter().fold(0.0, |a, w| a.max(w.achieved))
    }

    /// Request hit rate aggregated over every measured window.
    pub fn measured_hit_rate(&self) -> f64 {
        let mut total = CacheSnapshot::default();
        for w in &self.windows {
            total.hits += w.cache.hits;
            total.misses += w.cache.misses;
            total.coalesced += w.cache.coalesced;
        }
        total.request_hit_rate()
    }

    /// Gate rows for the shared regression check: one ms-per-1k-plans row
    /// per *saturated* window (below saturation achieved throughput just
    /// mirrors offered load, which would gate the generator, not the
    /// service). `shape` distinguishes configs sharing one baseline file
    /// (e.g. `"serve"` full vs `"serve-small"` CI smoke).
    pub fn wall_runs(&self, shape: &str) -> Vec<WallRun> {
        self.windows
            .iter()
            .filter(|w| w.saturated && w.achieved > 0.0)
            .map(|w| WallRun {
                shape: shape.to_string(),
                n: w.offered_rate.round() as usize,
                algorithm: format!("open-loop x{:.2} (ms per 1k plans)", w.multiplier),
                wall_ms: 1e6 / w.achieved,
            })
            .collect()
    }

    /// Renders the tab-separated overload-curve block `repro serve` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# warmed {} templates in {:.2}s; offered load is open-loop \
             (absolute schedule, arrivals independent of completions)\n",
            self.warmed_templates,
            self.warm_elapsed.as_secs_f64()
        ));
        out.push_str(
            "mult\toffered_per_s\toffered\taccepted\tshed\tcompleted\tachieved_per_s\t\
             hit_rate\tp50_ms\tp99_ms\thit_p50_us\tcold_p50_us\tcoal_p50_us\tdegraded\t\
             saturated\n",
        );
        for w in &self.windows {
            out.push_str(&format!(
                "x{:.2}\t{:.0}\t{}\t{}\t{}\t{}\t{:.0}\t{:.4}\t{:.3}\t{:.3}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\n",
                w.multiplier,
                w.offered_rate,
                w.offered,
                w.serve.accepted,
                w.serve.sheds(),
                w.serve.completed,
                w.achieved,
                w.cache.request_hit_rate(),
                w.p50_ms,
                w.p99_ms,
                w.hit_p50_us,
                w.cold_p50_us,
                w.coalesced_p50_us,
                w.cache.degraded,
                w.saturated,
            ));
        }
        out.push_str(&format!(
            "# peak achieved: {:.0} plans/s at {:.1}% request hit rate\n",
            self.peak_achieved(),
            self.measured_hit_rate() * 100.0
        ));
        out
    }
}

/// Runs an open-loop sweep: builds a [`ServeFront`], warms its cache with
/// one plan per stream template, then measures one window per multiplier in
/// [`OpenLoopConfig::multipliers`].
///
/// Each window pre-materializes its arrival pool from per-generator
/// substreams ([`ZipfStream::partition`] — generation cost and stream
/// locking stay out of the pacing loop), then generator tasks submit on an
/// absolute schedule driven by the front-end's reactor (`sleep_until`
/// deadlines accumulate no drift; a late batch is followed by an on-time
/// one, not a shifted schedule). Admission is lazy: `submit_many` pulls
/// from the pool only for *accepted* requests, so a shed costs a counter
/// increment, and the pool's unconsumed tail is dropped after the window's
/// clock stops — overload windows measure serving, not the disposal of
/// rejected work. Sheds are counted by the front-end; the window's achieved
/// throughput comes from its completion counters.
pub fn open_loop(
    config: &OpenLoopConfig,
    model: Arc<dyn CostModel + Send + Sync>,
) -> Result<OpenLoopReport, OptError> {
    let generators = config.generators.max(1);
    let batch = config.batch.max(1);
    let root = ZipfStream::new(&config.stream, &*model);

    let front = Arc::new(ServeFront::new(
        mpdp_serve::ServeConfig {
            queue_depth: config.queue_depth,
            dispatchers: config.dispatchers,
            // One worker per core, not per task: dispatchers and generators
            // are tasks and share workers fine, but oversubscribing OS
            // threads on a small machine turns every queue-mutex handoff
            // into a context switch and collapses the warm hit path. On a
            // single-core box this means ONE worker — fully cooperative
            // scheduling, no futex ping-pong between workers at all.
            executor_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(1, config.dispatchers + generators),
            budget: Some(Duration::from_secs(30)),
            default_deadline: config.deadline,
            faults: config.faults.clone(),
            tracer: config.tracer.clone(),
            tenants: vec![TenantConfig {
                cache_capacity: (config.stream.templates * 2).max(1024),
                ..TenantConfig::named("bench")
            }],
        },
        Arc::clone(&model),
    ));

    // Warm the tenant's cache partition: one plan per template, through the
    // same single-flight path requests take. The measured windows then show
    // steady-state serving (the acceptance target); cold behavior is the
    // replay harness's job.
    let warm_start = Instant::now();
    let req = PlanRequest::default();
    for t in root.templates() {
        // Warm-up runs synchronously on the caller's thread, outside the
        // dispatchers' panic isolation — so in a chaos run injected planner
        // faults (errors *and* panics) are absorbed here and the sweep just
        // proceeds cold for those templates. Real failures still abort.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            front.service(0).plan_coalesced(&t.query, &*model, &req)
        }));
        match outcome {
            Ok(Ok(_)) => {}
            Ok(Err(_)) | Err(_) if config.faults.is_armed() => {}
            Ok(Err(e)) => return Err(e),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let warm_elapsed = warm_start.elapsed();

    let mut windows = Vec::with_capacity(config.multipliers.len());
    for &multiplier in &config.multipliers {
        let offered_rate = config.rate * multiplier;
        let total = (offered_rate * config.window.as_secs_f64()).round() as usize;
        // Materialize each generator's arrivals from its own substream.
        let mut inputs: Vec<Vec<LargeQuery>> = Vec::with_capacity(generators);
        for (gi, mut sub) in root.partition(generators).into_iter().enumerate() {
            let share = total / generators + usize::from(gi < total % generators);
            inputs.push(sub.take(share).into_iter().map(|(_, q)| q).collect());
        }
        let serve_before = front.serve_counters();
        let cache_before = front.cache_counters(0);

        // All generators share one aligned start a beat in the future, and
        // pace themselves with absolute deadlines from it.
        let start = Instant::now() + Duration::from_millis(10);
        let interval =
            Duration::from_secs_f64(batch as f64 * generators as f64 / offered_rate.max(1.0));
        let gens: Vec<_> = inputs
            .into_iter()
            .map(|queries| {
                let f = Arc::clone(&front);
                front.spawn(async move {
                    let total_n = queries.len();
                    let mut tickets = Vec::with_capacity(total_n);
                    let mut it = queries.into_iter();
                    let mut sent = 0usize;
                    let mut tick = 0u32;
                    while sent < total_n {
                        f.sleep_until(start + interval * tick).await;
                        tick += 1;
                        let take = batch.min(total_n - sent);
                        sent += take;
                        // Batch admission: one quota reservation + one
                        // queue lock per tick, and the pool is pulled only
                        // for accepted requests — a shed never touches a
                        // query. Sheds are counted by the front-end's
                        // admission counters; only accepted requests
                        // produce a ticket to harvest.
                        f.submit_many(0, take, it.by_ref(), &mut tickets);
                    }
                    // Hand the unconsumed pool tail (shed arrivals) back so
                    // its disposal happens after the window clock stops.
                    (tickets, it)
                })
            })
            .collect();

        // Harvest: generators finish at the end of their schedule; tickets
        // then drain (for saturated windows, roughly one queue's worth).
        // Latencies land in log-bucketed histograms — O(1) window memory
        // at any offered rate instead of a sort over every completion.
        let mut hists = ViaHists::default();
        let mut shed_pools = Vec::with_capacity(gens.len());
        for join in gens {
            // A generator killed by an injected executor-poll fault stops
            // submitting; its tickets are abandoned (counted) and its
            // accepted requests still settle server-side. Harvest what the
            // survivors produced instead of propagating the panic.
            let Ok((tickets, pool_tail)) = join.join() else {
                continue;
            };
            shed_pools.push(pool_tail);
            for ticket in tickets {
                let done = ticket.wait();
                if let Ok(plan) = done.result {
                    hists.record(plan.via, done.latency);
                }
            }
        }
        let elapsed = start.elapsed();
        let serve = front.serve_counters().delta(&serve_before);
        let cache = front.cache_counters(0).delta(&cache_before);
        // Shed arrivals were never materialized into requests; their pool
        // slots are freed here, outside the measured window.
        drop(shed_pools);
        let achieved = serve.completed as f64 / elapsed.as_secs_f64().max(1e-9);
        let saturated = serve.sheds() > 0 || achieved < offered_rate * 0.95;
        let all = hists.all();
        windows.push(WindowReport {
            multiplier,
            offered_rate,
            offered: total,
            elapsed,
            achieved,
            p50_ms: all.percentile(50.0) as f64 / 1e6,
            p99_ms: all.percentile(99.0) as f64 / 1e6,
            hit_p50_us: pct_us(&hists.hit, 50.0),
            cold_p50_us: pct_us(&hists.cold, 50.0),
            coalesced_p50_us: pct_us(&hists.coalesced, 50.0),
            degraded_p50_us: pct_us(&hists.degraded, 50.0),
            cache,
            serve,
            saturated,
        });
    }

    Ok(OpenLoopReport {
        base_rate: config.rate,
        warmed_templates: root.templates().len(),
        warm_elapsed,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp::service::PlanServiceBuilder;
    use mpdp_core::faults::FaultPlan;
    use mpdp_cost::PgLikeCost;

    /// Seeded fault schedules through the open-loop harness: with injection
    /// armed the *timings* are meaningless, but the accounting must stay
    /// exact — accepted == completed + failed per window (a killed
    /// generator stops offering; it never loses an accepted request) and
    /// the gauges drain to zero.
    #[test]
    fn open_loop_chaos_preserves_accounting() {
        for seed in [1u64, 3, 9] {
            let faults = FaultPlan::seeded(seed).arm();
            let config = OpenLoopConfig {
                rate: 2_000.0,
                multipliers: vec![1.0],
                window: Duration::from_millis(250),
                generators: 2,
                batch: 16,
                queue_depth: 64,
                dispatchers: 2,
                deadline: Some(Duration::from_millis(300)),
                faults: faults.clone(),
                tracer: mpdp_obs::Tracer::disabled(),
                stream: StreamSpec {
                    templates: 12,
                    skew: 1.1,
                    min_rels: 5,
                    max_rels: 8,
                    seed: 3,
                },
            };
            let report = open_loop(&config, Arc::new(PgLikeCost::new())).unwrap();
            for w in &report.windows {
                assert_eq!(
                    w.serve.accepted,
                    w.serve.completed + w.serve.failed,
                    "seed {seed}: accepted requests vanished under chaos"
                );
            }
            let last = report.windows.last().unwrap();
            assert_eq!(
                (last.serve.queue_depth, last.serve.in_flight),
                (0, 0),
                "seed {seed}: gauges nonzero after drain"
            );
        }
    }

    #[test]
    fn small_replay_hits_and_reports() {
        let model = PgLikeCost::new();
        let service = PlanServiceBuilder::new().build();
        let config = ServeConfig {
            total: 300,
            workers: 3,
            stream: StreamSpec {
                templates: 20,
                skew: 1.1,
                min_rels: 6,
                max_rels: 10,
                seed: 11,
            },
        };
        let report = replay(&service, &model, &config).unwrap();
        assert_eq!(report.served + report.failed, 300);
        assert_eq!(report.failed, 0);
        // 20 templates over 300 draws: most arrivals repeat a shape.
        assert_eq!(
            report.cache.hits + report.cache.misses + report.cache.coalesced,
            300,
            "every request is exactly one hit, miss or coalesced join"
        );
        assert_eq!(
            report.cache.misses, 20,
            "single-flight: exactly one cold plan per template"
        );
        assert!(
            report.cache.request_hit_rate() > 0.5,
            "hit rate {}",
            report.cache.request_hit_rate()
        );
        assert!(report.throughput() > 0.0);
        let text = report.render();
        assert!(text.contains("request_hit_rate"));
        assert!(text.contains("feedback_checks"));
        assert!(text.contains("route["));
    }

    #[test]
    fn open_loop_windows_account_for_every_arrival() {
        let config = OpenLoopConfig {
            rate: 2_000.0,
            multipliers: vec![0.5, 2.0],
            window: Duration::from_millis(300),
            generators: 2,
            batch: 16,
            queue_depth: 64,
            dispatchers: 2,
            deadline: None,
            faults: Faults::disarmed(),
            tracer: mpdp_obs::Tracer::disabled(),
            stream: StreamSpec {
                templates: 12,
                skew: 1.1,
                min_rels: 5,
                max_rels: 8,
                seed: 3,
            },
        };
        let report = open_loop(&config, Arc::new(PgLikeCost::new())).unwrap();
        assert_eq!(report.windows.len(), 2);
        assert_eq!(report.warmed_templates, 12);
        for w in &report.windows {
            // Every offered arrival is accounted: accepted + shed.
            assert_eq!(
                w.serve.accepted + w.serve.sheds(),
                w.offered as u64,
                "window x{} lost arrivals",
                w.multiplier
            );
            // Every accepted request completed (ok or failed).
            assert_eq!(w.serve.accepted, w.serve.completed + w.serve.failed);
            assert_eq!(w.serve.failed, 0);
            // Warmed cache + exact single-flight accounting per window.
            assert_eq!(
                w.cache.hits + w.cache.misses + w.cache.coalesced,
                w.serve.completed
            );
            assert!(w.achieved > 0.0);
        }
        // The JSON window rows must stay invisible to the regression-gate
        // parser (it keys on an "algorithm" field).
        for w in &report.windows {
            assert!(!w.to_json_line().contains("\"algorithm\""));
        }
        let runs = report.wall_runs("serve-test");
        for r in &runs {
            assert!(r.wall_ms > 0.0);
            assert_eq!(r.shape, "serve-test");
        }
        assert!(report.render().contains("peak achieved"));
    }
}
