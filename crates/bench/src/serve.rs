//! Serving-layer replay harness: drive a [`PlanService`] with a Zipf query
//! stream from a worker pool and report throughput, cache effectiveness and
//! latency percentiles.
//!
//! This is the measurement side of the `repro serve` experiment: the stream
//! (`mpdp_workload::stream`) emits isomorphic-but-relabeled repetitions of a
//! template pool, the service canonicalizes and caches, and this module
//! records per-request service latencies split by cache hit/miss so the
//! cached path's speedup over cold planning is directly visible.

use mpdp::service::{PlanService, ServedPlan};
use mpdp_core::counters::CacheSnapshot;
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_workload::stream::{StreamSpec, ZipfStream};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::stats::percentile;

/// Configuration of one replay run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of queries to replay.
    pub total: usize,
    /// Worker threads sharing the service.
    pub workers: usize,
    /// The Zipf stream the replay draws from.
    pub stream: StreamSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            total: 10_000,
            workers: 4,
            stream: StreamSpec::default(),
        }
    }
}

/// One request's measurement.
#[derive(Copy, Clone, Debug)]
struct Sample {
    micros: f64,
    hit: bool,
}

/// Aggregated outcome of a replay run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests served successfully.
    pub served: usize,
    /// Requests that failed (per-query planning errors; kept separate so a
    /// pathological template can't silently vanish from the stats).
    pub failed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
    /// Cache activity of this replay window (delta over the run, so reports
    /// stay self-consistent even on a reused, pre-warmed service).
    pub cache: CacheSnapshot,
    /// Service-latency percentiles over all requests (µs).
    pub p50_us: f64,
    /// See [`ServeReport::p50_us`].
    pub p99_us: f64,
    /// Median service latency of cache hits (µs); 0.0 if none.
    pub hit_p50_us: f64,
    /// Median service latency of cache misses, i.e. cold plans (µs).
    pub miss_p50_us: f64,
    /// Requests per strategy label actually planned (misses only).
    pub routes: BTreeMap<String, usize>,
}

impl ServeReport {
    /// Served queries per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.served as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Median cold-planning latency over median cached latency — the
    /// amortization factor the serving layer exists for.
    pub fn cached_speedup(&self) -> f64 {
        if self.hit_p50_us <= 0.0 {
            0.0
        } else {
            self.miss_p50_us / self.hit_p50_us
        }
    }

    /// Renders the tab-separated summary block `repro serve` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("metric\tvalue\n");
        out.push_str(&format!("queries_served\t{}\n", self.served));
        out.push_str(&format!("queries_failed\t{}\n", self.failed));
        out.push_str(&format!("workers\t{}\n", self.workers));
        out.push_str(&format!("elapsed_s\t{:.3}\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!(
            "throughput_plans_per_s\t{:.0}\n",
            self.throughput()
        ));
        out.push_str(&format!("cache_hit_rate\t{:.4}\n", self.cache.hit_rate()));
        out.push_str(&format!(
            "cache_hits\t{}\ncache_misses\t{}\ncache_evictions\t{}\n",
            self.cache.hits, self.cache.misses, self.cache.evictions
        ));
        out.push_str(&format!("latency_p50_us\t{:.1}\n", self.p50_us));
        out.push_str(&format!("latency_p99_us\t{:.1}\n", self.p99_us));
        out.push_str(&format!("hit_latency_p50_us\t{:.1}\n", self.hit_p50_us));
        out.push_str(&format!("cold_latency_p50_us\t{:.1}\n", self.miss_p50_us));
        out.push_str(&format!(
            "cached_speedup_p50\t{:.0}x\n",
            self.cached_speedup()
        ));
        for (route, count) in &self.routes {
            out.push_str(&format!("route[{route}]\t{count}\n"));
        }
        out
    }
}

/// Replays `config.total` Zipf-stream queries against `service` from
/// `config.workers` threads and aggregates the measurements.
///
/// The stream is materialized up front (generation cost must not pollute
/// service latencies); workers then race down a shared cursor, so the replay
/// order interleaves arbitrarily across threads — exactly the contention
/// pattern a concurrent service must tolerate.
pub fn replay(
    service: &PlanService,
    model: &dyn CostModel,
    config: &ServeConfig,
) -> Result<ServeReport, OptError> {
    let mut stream = ZipfStream::new(&config.stream, model);
    let queries: Vec<(usize, LargeQuery)> = stream.take(config.total);
    let workers = config.workers.max(1);

    let cursor = AtomicUsize::new(0);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(config.total));
    let routes: Mutex<BTreeMap<String, usize>> = Mutex::new(BTreeMap::new());
    let failed = AtomicUsize::new(0);
    // Counters are cumulative per service; report only this replay's window
    // so reusing one (warm) service still yields a self-consistent report.
    let counters_before = service.cache_counters();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<Sample> = Vec::new();
                let mut local_routes: BTreeMap<String, usize> = BTreeMap::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    match service.plan(&queries[i].1, model) {
                        Ok(ServedPlan {
                            planned,
                            cache_hit,
                            service_time,
                            ..
                        }) => {
                            local.push(Sample {
                                micros: service_time.as_secs_f64() * 1e6,
                                hit: cache_hit,
                            });
                            if !cache_hit {
                                *local_routes.entry(planned.strategy).or_insert(0) += 1;
                            }
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                samples.lock().expect("samples").extend_from_slice(&local);
                let mut shared = routes.lock().expect("routes");
                for (k, v) in local_routes {
                    *shared.entry(k).or_insert(0) += v;
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let samples = samples.into_inner().expect("samples");
    let all: Vec<f64> = samples.iter().map(|s| s.micros).collect();
    let hits: Vec<f64> = samples.iter().filter(|s| s.hit).map(|s| s.micros).collect();
    let misses: Vec<f64> = samples
        .iter()
        .filter(|s| !s.hit)
        .map(|s| s.micros)
        .collect();

    Ok(ServeReport {
        served: samples.len(),
        failed: failed.into_inner(),
        workers,
        elapsed,
        cache: service.cache_counters().since(&counters_before),
        p50_us: percentile(&all, 50.0),
        p99_us: percentile(&all, 99.0),
        hit_p50_us: percentile(&hits, 50.0),
        miss_p50_us: percentile(&misses, 50.0),
        routes: routes.into_inner().expect("routes"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp::service::PlanServiceBuilder;
    use mpdp_cost::PgLikeCost;

    #[test]
    fn small_replay_hits_and_reports() {
        let model = PgLikeCost::new();
        let service = PlanServiceBuilder::new().build();
        let config = ServeConfig {
            total: 300,
            workers: 3,
            stream: StreamSpec {
                templates: 20,
                skew: 1.1,
                min_rels: 6,
                max_rels: 10,
                seed: 11,
            },
        };
        let report = replay(&service, &model, &config).unwrap();
        assert_eq!(report.served + report.failed, 300);
        assert_eq!(report.failed, 0);
        // 20 templates over 300 draws: most arrivals repeat a shape.
        assert_eq!(
            report.cache.hits + report.cache.misses,
            300,
            "every request is exactly one hit or one miss"
        );
        assert!(
            report.cache.hit_rate() > 0.5,
            "hit rate {}",
            report.cache.hit_rate()
        );
        assert!(report.throughput() > 0.0);
        let text = report.render();
        assert!(text.contains("cache_hit_rate"));
        assert!(text.contains("route["));
    }
}
