//! A JOB-like query suite (§7.2.4, Figure 11).
//!
//! The Join Order Benchmark \[20\] runs 113 queries over the IMDB dataset with
//! join sizes from 4 to 17 relations. The IMDB data itself is not available
//! here, so — per the substitution policy in `DESIGN.md` — we reproduce the
//! *optimization-relevant* part: the IMDB schema's PK–FK join graph with
//! realistic cardinalities, and a query suite whose join-size distribution
//! matches JOB's (many queries per size bucket, topping out at 17).
//! Optimization time depends only on this structure.

use mpdp_core::query::{LargeQuery, RelInfo};
use mpdp_cost::catalog::{Catalog, Column, JoinPredicate, Table};
use mpdp_cost::model::CostModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a [`Catalog`] from a schema's `(name, rows)` tables and
/// `(child, parent)` FK edges: every table gets a primary-key column `id`,
/// every FK edge a `{parent}_id` column on the child with NDV
/// `min(child rows, parent rows)` — so the catalog's equi-join estimate for
/// `child.{parent}_id = parent.id` reproduces the `1 / |parent|` PK–FK
/// selectivity the random-walk generators use. Duplicate FKs to one parent
/// get numbered columns (`{parent}_id2`, …).
pub(crate) fn schema_catalog(tables: &[(&str, f64)], fks: &[(usize, usize)]) -> Catalog {
    let mut cols: Vec<Vec<Column>> = tables
        .iter()
        .map(|_| {
            vec![Column {
                name: "id".into(),
                ndv: 0.0,
                primary_key: true,
            }]
        })
        .collect();
    for &(c, p) in fks {
        let base = format!("{}_id", tables[p].0);
        // Count only this parent's columns (`base` or `base<digits>`): a
        // prefix match would also hit another parent whose name extends
        // this one (e.g. `movie_info_idx_id` vs `movie_info_id`).
        let dups = cols[c]
            .iter()
            .filter(|col| {
                col.name == base
                    || col
                        .name
                        .strip_prefix(&base)
                        .is_some_and(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
            })
            .count();
        let name = if dups == 0 {
            base
        } else {
            format!("{base}{}", dups + 1)
        };
        cols[c].push(Column {
            name,
            ndv: tables[c].1.min(tables[p].1),
            primary_key: false,
        });
    }
    let mut catalog = Catalog::new();
    for (i, &(name, rows)) in tables.iter().enumerate() {
        catalog.add_table(Table::new(name, rows, std::mem::take(&mut cols[i])));
    }
    catalog
}

/// The FK predicate `child.{parent}_id = parent.id` between two *query
/// relation* indices backed by the given schema tables.
pub(crate) fn fk_predicate(
    tables: &[(&str, f64)],
    child_rel: usize,
    parent_rel: usize,
    parent_table: usize,
) -> JoinPredicate {
    JoinPredicate {
        left_table: child_rel,
        left_col: format!("{}_id", tables[parent_table].0),
        right_table: parent_rel,
        right_col: "id".into(),
    }
}

/// IMDB-like schema: 21 tables around the `title` hub.
#[derive(Clone, Debug)]
pub struct ImdbSchema {
    /// `(name, rows)` per table.
    pub tables: Vec<(&'static str, f64)>,
    /// FK edges `(child, parent)`.
    pub fks: Vec<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

impl ImdbSchema {
    /// Builds the schema.
    pub fn new() -> Self {
        let tables: Vec<(&'static str, f64)> = vec![
            ("title", 2_528_312.0),           // 0
            ("movie_companies", 2_609_129.0), // 1
            ("company_name", 234_997.0),      // 2
            ("company_type", 4.0),            // 3
            ("movie_info", 14_835_720.0),     // 4
            ("info_type", 113.0),             // 5
            ("movie_info_idx", 1_380_035.0),  // 6
            ("movie_keyword", 4_523_930.0),   // 7
            ("keyword", 134_170.0),           // 8
            ("cast_info", 36_244_344.0),      // 9
            ("name", 4_167_491.0),            // 10
            ("char_name", 3_140_339.0),       // 11
            ("role_type", 12.0),              // 12
            ("aka_name", 901_343.0),          // 13
            ("aka_title", 361_472.0),         // 14
            ("movie_link", 29_997.0),         // 15
            ("link_type", 18.0),              // 16
            ("complete_cast", 135_086.0),     // 17
            ("comp_cast_type", 4.0),          // 18
            ("kind_type", 7.0),               // 19
            ("person_info", 2_963_664.0),     // 20
        ];
        let fks = vec![
            (1, 0),   // movie_companies.movie -> title
            (1, 2),   // movie_companies.company -> company_name
            (1, 3),   // movie_companies.type -> company_type
            (4, 0),   // movie_info.movie -> title
            (4, 5),   // movie_info.info_type -> info_type
            (6, 0),   // movie_info_idx.movie -> title
            (6, 5),   // movie_info_idx.info_type -> info_type
            (7, 0),   // movie_keyword.movie -> title
            (7, 8),   // movie_keyword.keyword -> keyword
            (9, 0),   // cast_info.movie -> title
            (9, 10),  // cast_info.person -> name
            (9, 11),  // cast_info.char -> char_name
            (9, 12),  // cast_info.role -> role_type
            (13, 10), // aka_name.person -> name
            (14, 0),  // aka_title.movie -> title
            (15, 0),  // movie_link.movie -> title
            (15, 16), // movie_link.link_type -> link_type
            (17, 0),  // complete_cast.movie -> title
            (17, 18), // complete_cast.status -> comp_cast_type
            (0, 19),  // title.kind -> kind_type
            (20, 10), // person_info.person -> name
            (20, 5),  // person_info.info_type -> info_type
        ];
        let mut adj = vec![Vec::new(); tables.len()];
        for &(c, p) in &fks {
            adj[c].push(p);
            adj[p].push(c);
        }
        ImdbSchema { tables, fks, adj }
    }

    /// The schema as a statistics [`Catalog`]: one table per IMDB-like
    /// table with a PK `id` column and one `{parent}_id` FK column per FK
    /// edge. This is the entry point for executor-backed experiments — data
    /// is materialized from these statistics and predicate selectivities
    /// come from [`Catalog::predicate_selectivity`] (including any
    /// cardinality-feedback overrides) rather than being hardcoded.
    pub fn catalog(&self) -> Catalog {
        schema_catalog(&self.tables, &self.fks)
    }

    /// A fixed JOB-shaped catalog query joining `title` with `n - 1` of its
    /// satellite tables in FK order (`n ≤ 8`): the table list and
    /// [`JoinPredicate`]s to pass to [`Catalog::build_query`]. Deterministic
    /// by construction — the executor experiments need one stable,
    /// catalog-derived query, not a random walk.
    pub fn catalog_query(&self, n: usize) -> (Vec<usize>, Vec<JoinPredicate>) {
        assert!((2..=8).contains(&n), "catalog query covers 2..=8 tables");
        // title plus FK-connected satellites: (schema table, connecting rel).
        let chosen: [(usize, usize); 8] = [
            (0, usize::MAX), // title
            (1, 0),          // movie_companies -> title
            (2, 1),          // company_name <- movie_companies
            (4, 0),          // movie_info -> title
            (5, 3),          // info_type <- movie_info
            (7, 0),          // movie_keyword -> title
            (8, 5),          // keyword <- movie_keyword
            (6, 0),          // movie_info_idx -> title
        ];
        let tables: Vec<usize> = chosen[..n].iter().map(|&(t, _)| t).collect();
        let preds = chosen[1..n]
            .iter()
            .enumerate()
            .map(|(i, &(t, other_rel))| {
                // The child side of the FK is whichever of the pair holds
                // the FK column in `self.fks`.
                let rel = i + 1;
                let other_table = tables[other_rel];
                if self.fks.contains(&(t, other_table)) {
                    fk_predicate(&self.tables, rel, other_rel, other_table)
                } else {
                    debug_assert!(self.fks.contains(&(other_table, t)));
                    fk_predicate(&self.tables, other_rel, rel, t)
                }
            })
            .collect();
        (tables, preds)
    }

    /// Generates a connected query of `n` relations by random walk over the
    /// schema graph (tables may repeat in JOB via aliases; we allow a table
    /// to appear at most twice, modelling the benchmark's self-join aliases).
    pub fn query(&self, n: usize, seed: u64, model: &dyn CostModel) -> LargeQuery {
        assert!(n >= 2 && n <= 2 * self.tables.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x004a_4f42_u64);
        // occurrences per schema table (max 2).
        let mut occ = vec![0u8; self.tables.len()];
        // chosen query relations as schema-table indices.
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        let mut cur = 0usize; // JOB queries all touch `title`
        occ[cur] = 1;
        chosen.push(cur);
        let mut guard = 0;
        while chosen.len() < n && guard < 100_000 {
            guard += 1;
            let next = self.adj[cur][rng.gen_range(0..self.adj[cur].len())];
            if occ[next] < 2 && (occ[next] == 0 || rng.gen_bool(0.15)) {
                occ[next] += 1;
                chosen.push(next);
            }
            cur = next;
            if guard % 32 == 0 {
                cur = chosen[rng.gen_range(0..chosen.len())];
            }
        }
        // Build: each chosen occurrence is a distinct query relation. Connect
        // every occurrence pair whose schema tables share an FK (first
        // occurrence link only, to keep aliases from forming dense multi-
        // graphs, matching JOB's alias usage).
        let rels: Vec<RelInfo> = chosen
            .iter()
            .map(|&t| {
                let rows = self.tables[t].1;
                RelInfo::new(rows, model.scan_cost(rows))
            })
            .collect();
        let mut q = LargeQuery::new(rels);
        let mut first_of = vec![usize::MAX; self.tables.len()];
        for (qi, &t) in chosen.iter().enumerate() {
            if first_of[t] == usize::MAX {
                first_of[t] = qi;
            }
        }
        for (qi, &t) in chosen.iter().enumerate() {
            for &(c, p) in &self.fks {
                let other = if c == t {
                    p
                } else if p == t {
                    c
                } else {
                    continue;
                };
                let oq = first_of[other];
                if oq != usize::MAX && oq != qi {
                    let parent_rows = self.tables[p].1;
                    q.add_edge(qi, oq, (1.0 / parent_rows).clamp(f64::MIN_POSITIVE, 1.0));
                }
            }
        }
        // Connect any stragglers (second occurrences that found no partner)
        // to their first occurrence via a self-join predicate on the PK.
        for (qi, &t) in chosen.iter().enumerate() {
            if q.adj[qi].is_empty() {
                let fo = first_of[t];
                let target = if fo != qi { fo } else { 0 };
                q.add_edge(qi, target, 1.0 / self.tables[t].1.max(2.0));
            }
        }
        q
    }

    /// The full JOB-like suite: queries distributed over JOB's join sizes
    /// (4–17 relations), several per size.
    pub fn suite(
        &self,
        per_size: usize,
        seed: u64,
        model: &dyn CostModel,
    ) -> Vec<(usize, LargeQuery)> {
        let mut out = Vec::new();
        for n in 4..=17usize {
            for k in 0..per_size {
                let q = self.query(n, seed.wrapping_add((n * 1000 + k) as u64), model);
                out.push((n, q));
            }
        }
        out
    }
}

impl Default for ImdbSchema {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;

    #[test]
    fn schema_shape() {
        let s = ImdbSchema::new();
        assert_eq!(s.tables.len(), 21);
        // title (0) is the hub: most FKs touch it.
        let hub_edges = s.fks.iter().filter(|&&(c, p)| c == 0 || p == 0).count();
        assert!(hub_edges >= 7);
    }

    #[test]
    fn queries_are_connected_and_sized() {
        let s = ImdbSchema::new();
        let m = PgLikeCost::new();
        for n in [4, 8, 12, 17] {
            for seed in 0..5u64 {
                let q = s.query(n, seed, &m);
                assert_eq!(q.num_rels(), n, "n={n} seed={seed}");
                assert!(q.is_connected(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn catalog_reproduces_pk_fk_selectivities() {
        let s = ImdbSchema::new();
        let c = s.catalog();
        assert_eq!(c.tables.len(), s.tables.len());
        // Every FK edge's predicate estimate is 1 / |parent|.
        for &(child, parent) in &s.fks {
            let p = fk_predicate(&s.tables, child, parent, parent);
            let sel = c.predicate_selectivity(&p);
            let expect = 1.0 / s.tables[parent].1;
            assert!(
                (sel - expect).abs() / expect < 1e-12,
                "{} -> {}: {sel} vs {expect}",
                s.tables[child].0,
                s.tables[parent].0
            );
        }
    }

    #[test]
    fn catalog_query_builds_connected_job_shape() {
        let s = ImdbSchema::new();
        let c = s.catalog();
        let m = PgLikeCost::new();
        for n in [2, 5, 7, 8] {
            let (tables, preds) = s.catalog_query(n);
            assert_eq!(tables.len(), n);
            assert_eq!(preds.len(), n - 1);
            let q = c.build_query(&tables, &preds, &m);
            assert_eq!(q.num_rels(), n);
            assert!(q.is_connected(), "n={n}");
            // PK-FK selectivities derived from the catalog, not hardcoded.
            for e in &q.edges {
                assert!(e.sel > 0.0 && e.sel < 1.0);
            }
        }
    }

    #[test]
    fn suite_size_distribution() {
        let s = ImdbSchema::new();
        let m = PgLikeCost::new();
        let suite = s.suite(2, 7, &m);
        assert_eq!(suite.len(), 14 * 2);
        assert_eq!(suite.iter().map(|(n, _)| *n).min(), Some(4));
        assert_eq!(suite.iter().map(|(n, _)| *n).max(), Some(17));
        for (n, q) in &suite {
            assert_eq!(q.num_rels(), *n);
            assert!(q.is_connected());
        }
    }
}
