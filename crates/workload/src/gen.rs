//! Synthetic join-graph generators (§7.2.1).
//!
//! The paper evaluates on star, snowflake and clique join graphs (chains and
//! cycles are discussed but omitted from the figures because their search
//! space is polynomial). All generators are deterministic given a seed, emit
//! [`LargeQuery`] descriptions (convertible to the exact-DP representation
//! when ≤ 64 relations), and use PK–FK statistics: the edge selectivity
//! between a referencing table and the referenced (primary-key) table is
//! `1 / |referenced|`.

use mpdp_core::query::{LargeQuery, RelInfo};
use mpdp_cost::model::CostModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform table-size ranges used by the generators.
const FACT_ROWS: (f64, f64) = (1.0e6, 5.0e7);
const DIM_ROWS: (f64, f64) = (1.0e3, 1.0e6);

fn rows_in(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    // Log-uniform: spreads table sizes across orders of magnitude.
    let (lo, hi) = (range.0.ln(), range.1.ln());
    (rng.gen_range(lo..hi)).exp().round()
}

fn rel(model: &dyn CostModel, rows: f64) -> RelInfo {
    RelInfo::new(rows, model.scan_cost(rows))
}

/// Star join graph: one fact relation (vertex 0) referenced by `n - 1`
/// dimensions. Dimension sizes carry random selection factors so that
/// different join orders have different costs (the Table 2 setup).
pub fn star(n: usize, seed: u64, model: &dyn CostModel) -> LargeQuery {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0057_4152_u64);
    let mut rels = vec![rel(model, rows_in(&mut rng, FACT_ROWS))];
    let mut q;
    let mut dims = Vec::new();
    for _ in 1..n {
        let base = rows_in(&mut rng, DIM_ROWS);
        // Random selection applied to the dimension (keeps 1%..100% of rows)
        // while the join selectivity stays 1/|PK table| (pre-selection).
        let selection = rng.gen_range(0.01f64..1.0);
        dims.push((base, (base * selection).max(1.0).round()));
    }
    rels.extend(dims.iter().map(|&(_, kept)| rel(model, kept)));
    q = LargeQuery::new(rels);
    for (i, &(base, _)) in dims.iter().enumerate() {
        q.add_edge(0, i + 1, 1.0 / base);
    }
    q
}

/// Snowflake join graph: a fact table at the root of a PK–FK tree of maximum
/// depth `depth` (the paper uses depth ≤ 4). Branching factors are random;
/// relation sizes shrink with depth. Like the star generator, each dimension
/// carries a random selection factor (§7.3 generates "queries with
/// selections so that different join orders would result in different
/// costs"): the dimension's kept row count is stored while the join
/// selectivity stays `1 / base rows`, so each dimension join reduces the
/// fact-side cardinality by its selection factor.
pub fn snowflake(n: usize, depth: usize, seed: u64, model: &dyn CostModel) -> LargeQuery {
    assert!(n >= 1 && depth >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x534e_4f57_u64);
    // `rows` holds kept (post-selection) cardinalities; `base` the
    // pre-selection table sizes that drive PK-FK selectivities.
    let mut base = vec![rows_in(&mut rng, FACT_ROWS)];
    let mut rows = vec![base[0]];
    let mut parent: Vec<usize> = vec![usize::MAX];
    let mut sel_to_parent: Vec<f64> = vec![1.0];
    let mut level = vec![0usize];
    // Frontier of nodes that may still take children (below max depth).
    let mut frontier = vec![0usize];
    while rows.len() < n {
        // Pick a random frontier node; attach a child.
        let fi = rng.gen_range(0..frontier.len());
        let p = frontier[fi];
        if level[p] + 1 > depth {
            // Node at max depth cannot take children; drop from frontier.
            frontier.swap_remove(fi);
            if frontier.is_empty() {
                // Everything else is at max depth: fall back to widening the
                // root's fanout (the root can always take more children).
                frontier.push(0);
            }
            continue;
        }
        let (child_base, child_kept, edge_sel);
        if rng.gen_bool(0.18) && level[p] >= 1 {
            // Sub-fact hub: large analytical queries are fact
            // *constellations* — several big fact-like tables share
            // dimensions. The hub holds a foreign key to its parent
            // dimension and is much larger, so joining it expands the
            // running cardinality; the optimal plan reduces each hub with
            // its own dimension subtree bushily before hub-hub joins, which
            // is what makes left-deep-only search (IKKBZ) collapse here.
            let fanout = rng.gen_range(5.0f64..50.0);
            child_base = (base[p] * fanout).round();
            let selection = rng.gen_range(0.05f64..1.0);
            child_kept = (child_base * selection).max(1.0).round();
            edge_sel = 1.0 / base[p];
        } else {
            // Dimension (many-to-one): the parent references the child's
            // PK, so the join keeps the parent-side cardinality scaled by
            // the child's selection factor. Sizes are log-uniform at every
            // depth (real snowflake dimensions are not strictly ordered by
            // level).
            child_base = rows_in(&mut rng, DIM_ROWS).max(10.0).round();
            let selection = rng.gen_range(0.05f64..1.0);
            child_kept = (child_base * selection).max(1.0).round();
            edge_sel = 1.0 / child_base;
        }
        base.push(child_base);
        rows.push(child_kept);
        parent.push(p);
        sel_to_parent.push(edge_sel);
        level.push(level[p] + 1);
        frontier.push(rows.len() - 1);
        // Occasionally retire a node from the frontier to diversify shape.
        if rng.gen_bool(0.3) && frontier.len() > 1 {
            let ri = rng.gen_range(0..frontier.len());
            frontier.swap_remove(ri);
        }
        if frontier.is_empty() {
            frontier.push(0);
        }
    }
    let rels = rows.iter().map(|&r| rel(model, r)).collect();
    let mut q = LargeQuery::new(rels);
    for (child, &p) in parent.iter().enumerate() {
        if p != usize::MAX {
            q.add_edge(p, child, sel_to_parent[child].clamp(f64::MIN_POSITIVE, 1.0));
        }
    }
    // Equivalence-class edges (paper footnote 8: "The equivalence classes
    // introduced because of joins in the given query may change the join
    // graph since they introduce implicit predicates"): siblings that join
    // their parent on the same key are transitively joinable to each other.
    let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (child, &p) in parent.iter().enumerate() {
        if p != usize::MAX {
            children_of[p].push(child);
        }
    }
    for kids in children_of {
        for w in kids.windows(2) {
            // Each consecutive sibling pair shares the parent's join key
            // with probability 0.3.
            if rng.gen_bool(0.3) {
                let (a, b) = (w[0], w[1]);
                let sel = 1.0 / base[a].max(base[b]);
                q.add_edge(a, b, sel.clamp(f64::MIN_POSITIVE, 1.0));
            }
        }
    }
    q
}

/// Chain join graph `0 — 1 — … — n-1`.
pub fn chain(n: usize, seed: u64, model: &dyn CostModel) -> LargeQuery {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0043_4841_u64);
    let rows: Vec<f64> = (0..n).map(|_| rows_in(&mut rng, DIM_ROWS)).collect();
    let rels = rows.iter().map(|&r| rel(model, r)).collect();
    let mut q = LargeQuery::new(rels);
    for i in 1..n {
        q.add_edge(i - 1, i, 1.0 / rows[i].max(rows[i - 1]));
    }
    q
}

/// Cycle join graph: a chain plus a closing edge.
pub fn cycle(n: usize, seed: u64, model: &dyn CostModel) -> LargeQuery {
    assert!(n >= 3);
    let mut q = chain(n, seed, model);
    let r0 = q.rels[0].rows;
    let rl = q.rels[n - 1].rows;
    q.add_edge(n - 1, 0, 1.0 / r0.max(rl));
    q
}

/// Clique join graph: every pair of relations joins (the cross-join stress
/// case of Figure 8 — "join ordering for these graphs are more expensive to
/// compute").
pub fn clique(n: usize, seed: u64, model: &dyn CostModel) -> LargeQuery {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434c_4951_u64);
    let rows: Vec<f64> = (0..n).map(|_| rows_in(&mut rng, DIM_ROWS)).collect();
    let rels = rows.iter().map(|&r| rel(model, r)).collect();
    let mut q = LargeQuery::new(rels);
    for i in 0..n {
        for j in (i + 1)..n {
            q.add_edge(i, j, 1.0 / rows[i].max(rows[j]));
        }
    }
    q
}

/// A random connected graph: a random spanning tree plus `extra_edges`
/// additional random edges (creating cycles). Used by the property tests to
/// cross-validate the exact algorithms on arbitrary topologies.
pub fn random_connected(
    n: usize,
    extra_edges: usize,
    seed: u64,
    model: &dyn CostModel,
) -> LargeQuery {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0052_4e44_u64);
    let rows: Vec<f64> = (0..n).map(|_| rows_in(&mut rng, DIM_ROWS)).collect();
    let rels = rows.iter().map(|&r| rel(model, r)).collect();
    let mut q = LargeQuery::new(rels);
    // Random spanning tree: attach vertex i to a random earlier vertex.
    for i in 1..n {
        let p = rng.gen_range(0..i);
        q.add_edge(p, i, 1.0 / rows[i].max(rows[p]));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 + 100 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        if q.edges
            .iter()
            .any(|e| (e.u as usize, e.v as usize) == (a, b))
        {
            continue;
        }
        q.add_edge(a, b, 1.0 / rows[a].max(rows[b]));
        added += 1;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;

    #[test]
    fn star_shape() {
        let m = PgLikeCost::new();
        let q = star(10, 42, &m);
        assert_eq!(q.num_rels(), 10);
        assert_eq!(q.edges.len(), 9);
        assert!(q.is_connected());
        // Hub is vertex 0: every edge touches it.
        assert!(q.edges.iter().all(|e| e.u == 0 || e.v == 0));
        // Fact bigger than dimensions.
        assert!(q.rels[0].rows >= q.rels[1].rows);
    }

    #[test]
    fn snowflake_shape() {
        let m = PgLikeCost::new();
        let q = snowflake(20, 4, 7, &m);
        assert_eq!(q.num_rels(), 20);
        // Spanning tree plus optional equivalence-class sibling edges.
        assert!(q.edges.len() >= 19);
        assert!(q.edges.len() <= 19 * 2);
        assert!(q.is_connected());
    }

    #[test]
    fn snowflake_depth_one_is_star_plus_eq_edges() {
        let m = PgLikeCost::new();
        let q = snowflake(8, 1, 3, &m);
        // Depth 1: all children attach directly to the root; extra edges (if
        // any) are equivalence-class edges between siblings.
        assert_eq!(q.num_rels(), 8);
        assert!(q.is_connected());
        let tree_edges = q.edges.iter().filter(|e| e.u == 0 || e.v == 0).count();
        assert_eq!(tree_edges, 7);
    }

    #[test]
    fn chain_and_cycle_shapes() {
        let m = PgLikeCost::new();
        let c = chain(6, 1, &m);
        assert_eq!(c.edges.len(), 5);
        let y = cycle(6, 1, &m);
        assert_eq!(y.edges.len(), 6);
        assert!(y.is_connected());
    }

    #[test]
    fn clique_shape() {
        let m = PgLikeCost::new();
        let q = clique(6, 5, &m);
        assert_eq!(q.edges.len(), 6 * 5 / 2);
        assert!(q.is_connected());
    }

    #[test]
    fn random_connected_is_connected() {
        let m = PgLikeCost::new();
        for seed in 0..10 {
            let q = random_connected(12, 5, seed, &m);
            assert!(q.is_connected(), "seed {seed}");
            assert!(q.edges.len() >= 11);
        }
    }

    #[test]
    fn determinism() {
        let m = PgLikeCost::new();
        let a = star(8, 9, &m);
        let b = star(8, 9, &m);
        assert_eq!(a.rels.len(), b.rels.len());
        for (x, y) in a.rels.iter().zip(b.rels.iter()) {
            assert_eq!(x.rows, y.rows);
        }
        for (x, y) in a.edges.iter().zip(b.edges.iter()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert_eq!(x.sel, y.sel);
        }
        // Different seeds differ.
        let c = star(8, 10, &m);
        assert!(a
            .rels
            .iter()
            .zip(c.rels.iter())
            .any(|(x, y)| x.rows != y.rows));
    }

    #[test]
    fn selectivities_in_range() {
        let m = PgLikeCost::new();
        for q in [star(10, 1, &m), snowflake(15, 3, 1, &m), clique(8, 1, &m)] {
            for e in &q.edges {
                assert!(e.sel > 0.0 && e.sel <= 1.0);
            }
        }
    }
}
