//! Zipf-distributed query streams for serving-layer experiments.
//!
//! Production planners see heavy-tailed traffic: a handful of query shapes
//! dominate while a long tail of rare shapes trickles in. [`ZipfStream`]
//! reproduces that regime over this workspace's generators — a pool of
//! distinct *templates* (generated star / snowflake / chain / cycle shapes
//! plus JOB-like and MusicBrainz queries) drawn by Zipf-ranked popularity.
//!
//! Each emission **relabels** the template's relations with a fresh random
//! permutation. Repeated arrivals of one template are therefore not
//! byte-identical — they are isomorphic, the way the same application query
//! re-arrives with different FROM-clause ordering or alias numbering — so a
//! whole-query cache only benefits if it canonicalizes
//! (`mpdp_core::fingerprint`), never by hashing raw bytes.

use crate::{gen, ImdbSchema, MusicBrainz};
use mpdp_core::query::LargeQuery;
use mpdp_cost::model::CostModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a [`ZipfStream`].
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Number of distinct query templates in the pool.
    pub templates: usize,
    /// Zipf exponent: draw probability of rank-`r` template ∝ `1/r^skew`.
    /// 0.0 is uniform; production query traffic is typically near 1.
    pub skew: f64,
    /// Smallest / largest template size (relations). Sizes cycle through
    /// this range across templates.
    pub min_rels: usize,
    /// See [`StreamSpec::min_rels`].
    pub max_rels: usize,
    /// Master seed: streams are fully deterministic given the spec.
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            templates: 400,
            skew: 1.1,
            min_rels: 8,
            max_rels: 18,
            seed: 42,
        }
    }
}

/// One template of the pool.
#[derive(Clone, Debug)]
pub struct Template {
    /// Popularity rank (0 = most popular).
    pub rank: usize,
    /// Generator family this template came from.
    pub family: &'static str,
    /// The query shape (canonical arrival; emissions are relabelings).
    pub query: LargeQuery,
}

/// A deterministic, Zipf-distributed, relabeling query stream.
#[derive(Clone, Debug)]
pub struct ZipfStream {
    templates: Vec<Template>,
    /// Cumulative draw distribution over template ranks.
    cdf: Vec<f64>,
    rng: StdRng,
    emitted: usize,
}

/// The generator families templates cycle through.
const FAMILIES: [&str; 6] = ["star", "snowflake", "chain", "cycle", "job", "musicbrainz"];

impl ZipfStream {
    /// Builds the template pool and the Zipf distribution.
    pub fn new(spec: &StreamSpec, model: &dyn CostModel) -> Self {
        assert!(spec.templates >= 1, "empty template pool");
        assert!(
            1 <= spec.min_rels && spec.min_rels <= spec.max_rels,
            "bad size range"
        );
        let job = ImdbSchema::new();
        let mb = MusicBrainz::new();
        let span = spec.max_rels - spec.min_rels + 1;
        let templates: Vec<Template> = (0..spec.templates)
            .map(|rank| {
                let family = FAMILIES[rank % FAMILIES.len()];
                let n = spec.min_rels + (rank / FAMILIES.len()) % span;
                let seed = spec.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let query = match family {
                    "star" => gen::star(n, seed, model),
                    "snowflake" => gen::snowflake(n, 4, seed, model),
                    "chain" => gen::chain(n, seed, model),
                    "cycle" => gen::cycle(n.max(3), seed, model),
                    "job" => job.query(n.clamp(4, 17), seed, model),
                    "musicbrainz" => {
                        mb.random_walk_query(n.min(mb.num_tables()), seed, true, model)
                    }
                    _ => unreachable!("family table covers all"),
                };
                Template {
                    rank,
                    family,
                    query,
                }
            })
            .collect();
        // Zipf CDF over ranks.
        let weights: Vec<f64> = (0..spec.templates)
            .map(|r| 1.0 / ((r + 1) as f64).powf(spec.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfStream {
            templates,
            cdf,
            rng: StdRng::seed_from_u64(spec.seed ^ 0x5a49_5046),
            emitted: 0,
        }
    }

    /// The template pool, in rank order.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Draws the next query: a Zipf-ranked template relabeled by a fresh
    /// random permutation.
    pub fn next_query(&mut self) -> (usize, LargeQuery) {
        let u: f64 = self.rng.gen();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        let template = &self.templates[rank].query;
        let mut perm: Vec<usize> = (0..template.num_rels()).collect();
        perm.shuffle(&mut self.rng);
        self.emitted += 1;
        (rank, template.relabel(&perm))
    }

    /// Materializes the next `count` draws (rank + relabeled query).
    pub fn take(&mut self, count: usize) -> Vec<(usize, LargeQuery)> {
        (0..count).map(|_| self.next_query()).collect()
    }

    /// Number of queries emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::fingerprint::canonicalize;
    use mpdp_cost::pglike::PgLikeCost;

    fn small_spec() -> StreamSpec {
        StreamSpec {
            templates: 24,
            skew: 1.1,
            min_rels: 6,
            max_rels: 10,
            seed: 7,
        }
    }

    #[test]
    fn templates_cover_families_and_sizes() {
        let m = PgLikeCost::new();
        let s = ZipfStream::new(&small_spec(), &m);
        assert_eq!(s.templates().len(), 24);
        for fam in FAMILIES {
            assert!(
                s.templates().iter().any(|t| t.family == fam),
                "family {fam} missing"
            );
        }
        for t in s.templates() {
            assert!(t.query.is_connected(), "template {} disconnected", t.rank);
        }
    }

    #[test]
    fn stream_is_deterministic_and_skewed() {
        let m = PgLikeCost::new();
        let spec = small_spec();
        let mut a = ZipfStream::new(&spec, &m);
        let mut b = ZipfStream::new(&spec, &m);
        let da: Vec<usize> = a.take(500).into_iter().map(|(r, _)| r).collect();
        let db: Vec<usize> = b.take(500).into_iter().map(|(r, _)| r).collect();
        assert_eq!(da, db, "same spec, same stream");
        // Rank 0 must dominate any deep-tail rank under skew 1.1.
        let head = da.iter().filter(|&&r| r == 0).count();
        let tail = da.iter().filter(|&&r| r >= 12).count() / 12;
        assert!(head > tail, "head {head} not more popular than tail {tail}");
    }

    #[test]
    fn emissions_are_isomorphic_to_their_template() {
        let m = PgLikeCost::new();
        let mut s = ZipfStream::new(&small_spec(), &m);
        for (rank, q) in s.take(50) {
            let t = &s.templates()[rank].query;
            assert_eq!(q.num_rels(), t.num_rels());
            assert_eq!(q.edges.len(), t.edges.len());
            assert_eq!(
                canonicalize(&q).fingerprint,
                canonicalize(t).fingerprint,
                "emission of rank {rank} lost isomorphism"
            );
        }
    }
}
