//! Zipf-distributed query streams for serving-layer experiments.
//!
//! Production planners see heavy-tailed traffic: a handful of query shapes
//! dominate while a long tail of rare shapes trickles in. [`ZipfStream`]
//! reproduces that regime over this workspace's generators — a pool of
//! distinct *templates* (generated star / snowflake / chain / cycle shapes
//! plus JOB-like and MusicBrainz queries) drawn by Zipf-ranked popularity.
//!
//! Each emission **relabels** the template's relations with a fresh random
//! permutation. Repeated arrivals of one template are therefore not
//! byte-identical — they are isomorphic, the way the same application query
//! re-arrives with different FROM-clause ordering or alias numbering — so a
//! whole-query cache only benefits if it canonicalizes
//! (`mpdp_core::fingerprint`), never by hashing raw bytes.
//!
//! For multi-worker load generation, [`ZipfStream::partition`] splits a
//! stream into per-worker substreams that **share** the (expensive) template
//! pool behind an `Arc` and draw from independent, deterministically seeded
//! RNGs — no lock, no contention, and the union of emissions is a fixed
//! function of `(seed, partitions)`.

use crate::{gen, ImdbSchema, MusicBrainz};
use mpdp_core::query::LargeQuery;
use mpdp_cost::model::CostModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of a [`ZipfStream`].
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Number of distinct query templates in the pool.
    pub templates: usize,
    /// Zipf exponent: draw probability of rank-`r` template ∝ `1/r^skew`.
    /// 0.0 is uniform; production query traffic is typically near 1.
    pub skew: f64,
    /// Smallest / largest template size (relations). Sizes cycle through
    /// this range across templates.
    pub min_rels: usize,
    /// See [`StreamSpec::min_rels`].
    pub max_rels: usize,
    /// Master seed: streams are fully deterministic given the spec.
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            templates: 400,
            skew: 1.1,
            min_rels: 8,
            max_rels: 18,
            seed: 42,
        }
    }
}

/// One template of the pool.
#[derive(Clone, Debug)]
pub struct Template {
    /// Popularity rank (0 = most popular).
    pub rank: usize,
    /// Generator family this template came from.
    pub family: &'static str,
    /// The query shape (canonical arrival; emissions are relabelings).
    pub query: LargeQuery,
}

/// The immutable part of a stream: the template pool and its Zipf
/// distribution. Shared (`Arc`) across every substream of a partition so
/// splitting a 400-template stream costs refcounts, not clones.
#[derive(Debug)]
struct StreamShared {
    templates: Vec<Template>,
    /// Cumulative draw distribution over template ranks.
    cdf: Vec<f64>,
}

/// A deterministic, Zipf-distributed, relabeling query stream.
#[derive(Clone, Debug)]
pub struct ZipfStream {
    shared: Arc<StreamShared>,
    /// The master seed this stream (or its partition root) was built from;
    /// substream seeds derive from it.
    seed: u64,
    rng: StdRng,
    emitted: usize,
}

/// The generator families templates cycle through.
const FAMILIES: [&str; 6] = ["star", "snowflake", "chain", "cycle", "job", "musicbrainz"];

impl ZipfStream {
    /// Builds the template pool and the Zipf distribution.
    pub fn new(spec: &StreamSpec, model: &dyn CostModel) -> Self {
        assert!(spec.templates >= 1, "empty template pool");
        assert!(
            1 <= spec.min_rels && spec.min_rels <= spec.max_rels,
            "bad size range"
        );
        let job = ImdbSchema::new();
        let mb = MusicBrainz::new();
        let span = spec.max_rels - spec.min_rels + 1;
        let templates: Vec<Template> = (0..spec.templates)
            .map(|rank| {
                let family = FAMILIES[rank % FAMILIES.len()];
                let n = spec.min_rels + (rank / FAMILIES.len()) % span;
                let seed = spec.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let query = match family {
                    "star" => gen::star(n, seed, model),
                    "snowflake" => gen::snowflake(n, 4, seed, model),
                    "chain" => gen::chain(n, seed, model),
                    "cycle" => gen::cycle(n.max(3), seed, model),
                    "job" => job.query(n.clamp(4, 17), seed, model),
                    "musicbrainz" => {
                        mb.random_walk_query(n.min(mb.num_tables()), seed, true, model)
                    }
                    _ => unreachable!("family table covers all"),
                };
                Template {
                    rank,
                    family,
                    query,
                }
            })
            .collect();
        // Zipf CDF over ranks.
        let weights: Vec<f64> = (0..spec.templates)
            .map(|r| 1.0 / ((r + 1) as f64).powf(spec.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfStream {
            shared: Arc::new(StreamShared { templates, cdf }),
            seed: spec.seed,
            rng: StdRng::seed_from_u64(spec.seed ^ 0x5a49_5046),
            emitted: 0,
        }
    }

    /// Splits the stream into `parts` independent substreams that share the
    /// template pool (an `Arc` clone each — no template is copied) and draw
    /// from per-partition RNGs seeded as a pure function of
    /// `(seed, parts, index)`. For a fixed `(seed, parts)` every substream's
    /// emission sequence is deterministic, so a multi-worker run is exactly
    /// reproducible; no two substreams share RNG state, so workers never
    /// serialize on a stream lock.
    ///
    /// Partitioning is defined by the *originating* spec seed, not the
    /// stream's current RNG position: `s.partition(n)` yields the same
    /// substreams whether or not `s` has already emitted.
    pub fn partition(&self, parts: usize) -> Vec<ZipfStream> {
        let parts = parts.max(1);
        (0..parts as u64)
            .map(|i| {
                // splitmix64-style fold of (seed, parts, i): distinct,
                // well-spread seeds even for adjacent partition indices.
                let mut z = self
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))
                    .wrapping_add((parts as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                ZipfStream {
                    shared: Arc::clone(&self.shared),
                    seed: z,
                    rng: StdRng::seed_from_u64(z),
                    emitted: 0,
                }
            })
            .collect()
    }

    /// The template pool, in rank order.
    pub fn templates(&self) -> &[Template] {
        &self.shared.templates
    }

    /// Draws the next query: a Zipf-ranked template relabeled by a fresh
    /// random permutation.
    pub fn next_query(&mut self) -> (usize, LargeQuery) {
        let u: f64 = self.rng.gen();
        let cdf = &self.shared.cdf;
        let rank = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
        let template = &self.shared.templates[rank].query;
        let mut perm: Vec<usize> = (0..template.num_rels()).collect();
        perm.shuffle(&mut self.rng);
        self.emitted += 1;
        (rank, template.relabel(&perm))
    }

    /// Materializes the next `count` draws (rank + relabeled query).
    pub fn take(&mut self, count: usize) -> Vec<(usize, LargeQuery)> {
        (0..count).map(|_| self.next_query()).collect()
    }

    /// Number of queries emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::fingerprint::canonicalize;
    use mpdp_cost::pglike::PgLikeCost;

    fn small_spec() -> StreamSpec {
        StreamSpec {
            templates: 24,
            skew: 1.1,
            min_rels: 6,
            max_rels: 10,
            seed: 7,
        }
    }

    #[test]
    fn templates_cover_families_and_sizes() {
        let m = PgLikeCost::new();
        let s = ZipfStream::new(&small_spec(), &m);
        assert_eq!(s.templates().len(), 24);
        for fam in FAMILIES {
            assert!(
                s.templates().iter().any(|t| t.family == fam),
                "family {fam} missing"
            );
        }
        for t in s.templates() {
            assert!(t.query.is_connected(), "template {} disconnected", t.rank);
        }
    }

    #[test]
    fn stream_is_deterministic_and_skewed() {
        let m = PgLikeCost::new();
        let spec = small_spec();
        let mut a = ZipfStream::new(&spec, &m);
        let mut b = ZipfStream::new(&spec, &m);
        let da: Vec<usize> = a.take(500).into_iter().map(|(r, _)| r).collect();
        let db: Vec<usize> = b.take(500).into_iter().map(|(r, _)| r).collect();
        assert_eq!(da, db, "same spec, same stream");
        // Rank 0 must dominate any deep-tail rank under skew 1.1.
        let head = da.iter().filter(|&&r| r == 0).count();
        let tail = da.iter().filter(|&&r| r >= 12).count() / 12;
        assert!(head > tail, "head {head} not more popular than tail {tail}");
    }

    #[test]
    fn partitions_are_deterministic_shared_and_independent() {
        let m = PgLikeCost::new();
        let spec = small_spec();
        let s = ZipfStream::new(&spec, &m);
        let mut a = s.partition(4);
        let mut b = ZipfStream::new(&spec, &m).partition(4);
        // The pool is shared, not copied.
        for sub in &a {
            assert!(Arc::ptr_eq(&sub.shared, &s.shared));
        }
        // Fixed (seed, parts): every substream replays identically.
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let dx: Vec<usize> = x.take(200).into_iter().map(|(r, _)| r).collect();
            let dy: Vec<usize> = y.take(200).into_iter().map(|(r, _)| r).collect();
            assert_eq!(dx, dy);
        }
        // Substreams draw independently (astronomically unlikely to agree).
        let d0: Vec<usize> = a[0].take(100).into_iter().map(|(r, _)| r).collect();
        let d1: Vec<usize> = a[1].take(100).into_iter().map(|(r, _)| r).collect();
        assert_ne!(d0, d1, "partitions must not mirror each other");
        // Partitioning ignores the parent's RNG position.
        let mut consumed = ZipfStream::new(&spec, &m);
        consumed.take(50);
        let mut c = consumed.partition(4);
        let da: Vec<usize> = ZipfStream::new(&spec, &m).partition(4)[2]
            .take(100)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        let dc: Vec<usize> = c[2].take(100).into_iter().map(|(r, _)| r).collect();
        assert_eq!(da, dc, "partitioning must be position-independent");
    }

    #[test]
    fn partitioned_emissions_stay_isomorphic_and_skewed() {
        let m = PgLikeCost::new();
        let s = ZipfStream::new(&small_spec(), &m);
        let mut head = 0usize;
        let mut total = 0usize;
        for mut sub in s.partition(3) {
            for (rank, q) in sub.take(150) {
                let t = &s.templates()[rank].query;
                assert_eq!(
                    canonicalize(&q).fingerprint,
                    canonicalize(t).fingerprint,
                    "substream emission of rank {rank} lost isomorphism"
                );
                head += usize::from(rank == 0);
                total += 1;
            }
        }
        assert_eq!(total, 450);
        // The union of substreams keeps the Zipf head dominant.
        assert!(
            head * 10 > total,
            "head rank underrepresented: {head}/{total}"
        );
    }

    #[test]
    fn emissions_are_isomorphic_to_their_template() {
        let m = PgLikeCost::new();
        let mut s = ZipfStream::new(&small_spec(), &m);
        for (rank, q) in s.take(50) {
            let t = &s.templates()[rank].query;
            assert_eq!(q.num_rels(), t.num_rels());
            assert_eq!(q.edges.len(), t.edges.len());
            assert_eq!(
                canonicalize(&q).fingerprint,
                canonicalize(t).fingerprint,
                "emission of rank {rank} lost isomorphism"
            );
        }
    }
}
