//! # mpdp-workload
//!
//! Workload generators reproducing the paper's evaluation inputs:
//!
//! * [`gen`] — synthetic star / snowflake / chain / cycle / clique / random
//!   join graphs with PK–FK statistics (§7.2.1);
//! * [`musicbrainz`] — the 56-table MusicBrainz schema topology and the
//!   random-walk query generator (§7.2.2);
//! * [`job`] — a JOB-like suite over an IMDB-like schema (§7.2.4);
//! * [`stream`] — Zipf-distributed, permutation-relabeling query streams
//!   for the serving-layer experiments (`repro serve`).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod gen;
pub mod job;
pub mod musicbrainz;
pub mod stream;

pub use gen::{chain, clique, cycle, random_connected, snowflake, star};
pub use job::ImdbSchema;
pub use musicbrainz::MusicBrainz;
pub use stream::{StreamSpec, ZipfStream};
