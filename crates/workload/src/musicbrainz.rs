//! A MusicBrainz-like schema and random-walk query generator (§7.2.2).
//!
//! The paper's real-world workload is the public MusicBrainz database: "This
//! database, consisting of 56 tables, include information about artists,
//! release groups, releases, recordings, works, and labels". We reproduce its
//! *topology* — the 56-table PK–FK graph with realistic row counts — because
//! optimization time depends on the join graph and statistics, not the
//! tuples. Queries are generated exactly as described: "We pick a relation at
//! random and then do a random walk on the graph till we get the required
//! number of rels", including all PK–FK predicates among the chosen tables,
//! so generated queries can contain cycles.

use mpdp_core::query::{LargeQuery, RelInfo};
use mpdp_cost::model::CostModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One schema table: name and approximate row count.
#[derive(Clone, Debug)]
pub struct SchemaTable {
    /// Table name.
    pub name: &'static str,
    /// Approximate row count (matching public MusicBrainz magnitudes).
    pub rows: f64,
}

/// The MusicBrainz-like schema: tables plus PK–FK edges
/// `(referencing, referenced)`.
#[derive(Clone, Debug)]
pub struct MusicBrainz {
    /// The 56 tables.
    pub tables: Vec<SchemaTable>,
    /// FK edges as index pairs `(child, parent)`: `child` holds a foreign key
    /// into `parent`'s primary key.
    pub fks: Vec<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

macro_rules! tables {
    ($(($name:ident, $rows:expr)),* $(,)?) => {
        vec![$(SchemaTable { name: stringify!($name), rows: $rows as f64 }),*]
    };
}

impl MusicBrainz {
    /// Builds the schema graph.
    pub fn new() -> Self {
        let tables = tables![
            (artist, 2_000_000),                // 0
            (artist_alias, 250_000),            // 1
            (artist_credit, 2_500_000),         // 2
            (artist_credit_name, 3_200_000),    // 3
            (artist_ipi, 40_000),               // 4
            (artist_isni, 60_000),              // 5
            (artist_meta, 2_000_000),           // 6
            (artist_tag, 600_000),              // 7
            (artist_type, 6),                   // 8
            (area, 120_000),                    // 9
            (area_alias, 50_000),               // 10
            (area_type, 9),                     // 11
            (country_area, 260),                // 12
            (gender, 5),                        // 13
            (label, 250_000),                   // 14
            (label_alias, 20_000),              // 15
            (label_ipi, 10_000),                // 16
            (label_isni, 12_000),               // 17
            (label_type, 9),                    // 18
            (language, 7_000),                  // 19
            (link, 1_800_000),                  // 20
            (link_attribute, 900_000),          // 21
            (link_attribute_type, 800),         // 22
            (link_type, 1_000),                 // 23
            (medium, 4_500_000),                // 24
            (medium_format, 100),               // 25
            (place, 60_000),                    // 26
            (place_alias, 8_000),               // 27
            (place_type, 8),                    // 28
            (recording, 30_000_000),            // 29
            (recording_alias, 150_000),         // 30
            (recording_meta, 30_000_000),       // 31
            (recording_tag, 1_200_000),         // 32
            (release, 4_000_000),               // 33
            (release_alias, 30_000),            // 34
            (release_country, 3_500_000),       // 35
            (release_group, 3_500_000),         // 36
            (release_group_meta, 3_500_000),    // 37
            (release_group_primary_type, 5),    // 38
            (release_group_tag, 900_000),       // 39
            (release_label, 2_500_000),         // 40
            (release_meta, 4_000_000),          // 41
            (release_packaging, 10),            // 42
            (release_status, 6),                // 43
            (release_tag, 700_000),             // 44
            (release_unknown_country, 200_000), // 45
            (script, 200),                      // 46
            (tag, 200_000),                     // 47
            (track, 40_000_000),                // 48
            (work, 2_000_000),                  // 49
            (work_alias, 120_000),              // 50
            (work_attribute, 400_000),          // 51
            (work_attribute_type, 50),          // 52
            (work_meta, 2_000_000),             // 53
            (work_tag, 300_000),                // 54
            (work_type, 30),                    // 55
        ];
        assert_eq!(tables.len(), 56);
        // (child, parent): child.fk -> parent.pk
        let fks = vec![
            (0, 9),   // artist.area -> area
            (0, 13),  // artist.gender -> gender
            (0, 8),   // artist.type -> artist_type
            (1, 0),   // artist_alias.artist -> artist
            (3, 2),   // artist_credit_name.artist_credit -> artist_credit
            (3, 0),   // artist_credit_name.artist -> artist
            (4, 0),   // artist_ipi.artist -> artist
            (5, 0),   // artist_isni.artist -> artist
            (6, 0),   // artist_meta.id -> artist
            (7, 0),   // artist_tag.artist -> artist
            (7, 47),  // artist_tag.tag -> tag
            (10, 9),  // area_alias.area -> area
            (9, 11),  // area.type -> area_type
            (12, 9),  // country_area.area -> area
            (14, 9),  // label.area -> area
            (14, 18), // label.type -> label_type
            (15, 14), // label_alias.label -> label
            (16, 14), // label_ipi.label -> label
            (17, 14), // label_isni.label -> label
            (20, 23), // link.link_type -> link_type
            (21, 20), // link_attribute.link -> link
            (21, 22), // link_attribute.attribute_type -> link_attribute_type
            (24, 33), // medium.release -> release
            (24, 25), // medium.format -> medium_format
            (26, 9),  // place.area -> area
            (26, 28), // place.type -> place_type
            (27, 26), // place_alias.place -> place
            (29, 2),  // recording.artist_credit -> artist_credit
            (30, 29), // recording_alias.recording -> recording
            (31, 29), // recording_meta.id -> recording
            (32, 29), // recording_tag.recording -> recording
            (32, 47), // recording_tag.tag -> tag
            (33, 2),  // release.artist_credit -> artist_credit
            (33, 36), // release.release_group -> release_group
            (33, 19), // release.language -> language
            (33, 46), // release.script -> script
            (33, 43), // release.status -> release_status
            (33, 42), // release.packaging -> release_packaging
            (34, 33), // release_alias.release -> release
            (35, 33), // release_country.release -> release
            (35, 12), // release_country.country -> country_area
            (36, 2),  // release_group.artist_credit -> artist_credit
            (36, 38), // release_group.type -> release_group_primary_type
            (37, 36), // release_group_meta.id -> release_group
            (39, 36), // release_group_tag.release_group -> release_group
            (39, 47), // release_group_tag.tag -> tag
            (40, 33), // release_label.release -> release
            (40, 14), // release_label.label -> label
            (41, 33), // release_meta.id -> release
            (44, 33), // release_tag.release -> release
            (44, 47), // release_tag.tag -> tag
            (45, 33), // release_unknown_country.release -> release
            (48, 24), // track.medium -> medium
            (48, 29), // track.recording -> recording
            (48, 2),  // track.artist_credit -> artist_credit
            (49, 55), // work.type -> work_type
            (50, 49), // work_alias.work -> work
            (51, 49), // work_attribute.work -> work
            (51, 52), // work_attribute.work_attribute_type -> work_attribute_type
            (53, 49), // work_meta.id -> work
            (54, 49), // work_tag.work -> work
            (54, 47), // work_tag.tag -> tag
            (20, 0),  // link rows referencing artists (l_artist_* flattened)
            (20, 29), // link rows referencing recordings
            (49, 20), // works linked via link (l_recording_work flattened)
        ];
        let mut adj = vec![Vec::new(); tables.len()];
        for &(c, p) in &fks {
            adj[c].push(p);
            adj[p].push(c);
        }
        MusicBrainz { tables, fks, adj }
    }

    /// Number of tables (56).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The schema as a statistics [`mpdp_cost::Catalog`] (PK `id` column
    /// per table, one `{parent}_id` FK column per FK edge), for
    /// executor-backed experiments that materialize MusicBrainz-shaped
    /// tables from catalog statistics.
    pub fn catalog(&self) -> mpdp_cost::Catalog {
        let tables: Vec<(&str, f64)> = self.tables.iter().map(|t| (t.name, t.rows)).collect();
        crate::job::schema_catalog(&tables, &self.fks)
    }

    /// `true` if every table is reachable from `artist` — required for random
    /// walks to reach any size.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.tables.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.tables.len()
    }

    /// Generates one query of `n` relations by random walk (§7.2.2):
    /// start at a random table, walk to uniformly random neighbours, adding
    /// newly visited tables until `n` distinct tables are collected; the
    /// query joins those tables with **all** PK–FK predicates among them
    /// (which is what introduces cycles).
    ///
    /// `pk_fk` selects the selectivity model: `true` gives the paper's
    /// primary workload (`sel = 1/|parent|`); `false` the non-PK–FK variant
    /// of Figure 10(b) (`sel = 1/max(ndv)` with NDV ≈ rows/100, producing
    /// much larger intermediate results).
    pub fn random_walk_query(
        &self,
        n: usize,
        seed: u64,
        pk_fk: bool,
        model: &dyn CostModel,
    ) -> LargeQuery {
        assert!(n >= 1 && n <= self.num_tables());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4d42_u64);
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        let mut in_chosen = vec![false; self.num_tables()];
        let mut cur = rng.gen_range(0..self.num_tables());
        chosen.push(cur);
        in_chosen[cur] = true;
        let mut steps = 0usize;
        while chosen.len() < n {
            let next = self.adj[cur][rng.gen_range(0..self.adj[cur].len())];
            if !in_chosen[next] {
                chosen.push(next);
                in_chosen[next] = true;
            }
            cur = next;
            steps += 1;
            // Walks can stall in dead-end corners; restart from a random
            // already-chosen table to keep the induced graph connected.
            if steps.is_multiple_of(64) {
                cur = chosen[rng.gen_range(0..chosen.len())];
            }
        }
        // Build the query over the chosen tables with all induced FK edges.
        let rels: Vec<RelInfo> = chosen
            .iter()
            .map(|&t| {
                let rows = self.tables[t].rows;
                RelInfo::new(rows, model.scan_cost(rows))
            })
            .collect();
        let mut index_of = vec![usize::MAX; self.num_tables()];
        for (qi, &t) in chosen.iter().enumerate() {
            index_of[t] = qi;
        }
        let mut q = LargeQuery::new(rels);
        for &(c, p) in &self.fks {
            let (qc, qp) = (index_of[c], index_of[p]);
            if qc != usize::MAX && qp != usize::MAX {
                let sel = if pk_fk {
                    1.0 / self.tables[p].rows
                } else {
                    let ndv_c = (self.tables[c].rows / 100.0).max(1.0);
                    let ndv_p = (self.tables[p].rows / 100.0).max(1.0);
                    1.0 / ndv_c.max(ndv_p)
                };
                q.add_edge(qc, qp, sel.clamp(f64::MIN_POSITIVE, 1.0));
            }
        }
        q
    }

    /// Generates the paper's per-size query batch: "For any given number of
    /// relation, n, we generate 15 such queries and report its average".
    pub fn query_batch(
        &self,
        n: usize,
        count: usize,
        seed: u64,
        pk_fk: bool,
        model: &dyn CostModel,
    ) -> Vec<LargeQuery> {
        (0..count)
            .map(|i| self.random_walk_query(n, seed.wrapping_add(i as u64 * 7919), pk_fk, model))
            .collect()
    }
}

impl Default for MusicBrainz {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;

    #[test]
    fn schema_has_56_connected_tables() {
        let mb = MusicBrainz::new();
        assert_eq!(mb.num_tables(), 56);
        assert!(mb.is_connected(), "schema graph must be connected");
    }

    #[test]
    fn catalog_covers_every_table_and_fk() {
        let mb = MusicBrainz::new();
        let c = mb.catalog();
        assert_eq!(c.tables.len(), 56);
        for (t, schema) in c.tables.iter().zip(&mb.tables) {
            assert_eq!(t.name, schema.name);
            assert_eq!(t.rows, schema.rows);
            // PK column present with NDV = rows.
            let pk = t.columns.iter().find(|col| col.name == "id").unwrap();
            assert_eq!(pk.ndv, schema.rows);
        }
        // One FK column per FK edge, on the child side.
        let fk_cols: usize = c
            .tables
            .iter()
            .map(|t| t.columns.iter().filter(|col| !col.primary_key).count())
            .sum();
        assert_eq!(fk_cols, mb.fks.len());
    }

    #[test]
    fn fks_are_valid_indices() {
        let mb = MusicBrainz::new();
        for &(c, p) in &mb.fks {
            assert!(c < 56 && p < 56 && c != p);
        }
    }

    #[test]
    fn random_walk_query_shape() {
        let mb = MusicBrainz::new();
        let m = PgLikeCost::new();
        for n in [2, 5, 10, 20, 30] {
            let q = mb.random_walk_query(n, 17, true, &m);
            assert_eq!(q.num_rels(), n);
            assert!(q.is_connected(), "n={n}");
            assert!(q.edges.len() >= n - 1);
        }
    }

    #[test]
    fn queries_can_contain_cycles() {
        // Across a batch of 20-rel queries at least one should have more
        // edges than a tree (the paper: "the generated queries can contain
        // cycles").
        let mb = MusicBrainz::new();
        let m = PgLikeCost::new();
        let qs = mb.query_batch(20, 15, 99, true, &m);
        assert!(qs.iter().any(|q| q.edges.len() > 19));
    }

    #[test]
    fn pk_fk_and_non_pk_fk_selectivities_differ() {
        let mb = MusicBrainz::new();
        let m = PgLikeCost::new();
        let a = mb.random_walk_query(10, 3, true, &m);
        let b = mb.random_walk_query(10, 3, false, &m);
        // Same topology, different selectivities (non-PK-FK is less
        // selective overall).
        assert_eq!(a.edges.len(), b.edges.len());
        let prod_a: f64 = a.edges.iter().map(|e| e.sel).product();
        let prod_b: f64 = b.edges.iter().map(|e| e.sel).product();
        assert!(prod_b > prod_a);
    }

    #[test]
    fn determinism_per_seed() {
        let mb = MusicBrainz::new();
        let m = PgLikeCost::new();
        let a = mb.random_walk_query(12, 5, true, &m);
        let b = mb.random_walk_query(12, 5, true, &m);
        assert_eq!(a.rels.len(), b.rels.len());
        for (x, y) in a.edges.iter().zip(b.edges.iter()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
        }
    }

    #[test]
    fn full_56_table_query() {
        let mb = MusicBrainz::new();
        let m = PgLikeCost::new();
        let q = mb.random_walk_query(56, 1, true, &m);
        assert_eq!(q.num_rels(), 56);
        // Edges = distinct unordered FK pairs of the schema.
        let mut pairs: Vec<(usize, usize)> =
            mb.fks.iter().map(|&(c, p)| (c.min(p), c.max(p))).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(q.edges.len(), pairs.len());
    }
}
