//! DPE — dependency-aware parallel DP (Han & Lee \[11\]).
//!
//! DPE wraps a sequential enumerator (here DPCCP, the strongest choice and
//! the one the paper benchmarks as "DPE (24CPU)") in a producer/consumer
//! pipeline: a producer thread enumerates Join-Pairs into a dependency-aware
//! buffer, and consumer threads evaluate their costs. Because the *plan* for
//! a set must be final before any pair uses that set as an input, pairs are
//! partitioned into dependency classes by the size of their union; class `k`
//! may only be costed after class `k-1` is merged.
//!
//! This structure is exactly why DPE scales poorly (Figure 12): the
//! enumeration itself is sequential, only the costing parallelizes, and the
//! reordering buffer adds per-pair overhead — Amdahl caps the speedup near
//! `(t_enum + t_cost) / t_enum`.

use crate::pool::{chunk_range, with_pool};
use mpdp_core::atomic_memo::AtomicMemo;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::enumerate::SeenTable;
use mpdp_core::{OptError, RelSet};
use mpdp_dp::common::{finish, init_memo, price_pair, OptContext, OptResult};
use mpdp_dp::JoinOrderOptimizer;
use std::sync::atomic::{AtomicU64, Ordering};

/// One enumerated ordered pair in the dependency buffer.
#[derive(Copy, Clone, Debug)]
struct PendingPair {
    left: RelSet,
    right: RelSet,
}

/// Enumerates all CCP pairs with DPCCP's csg-cmp recursion, *without*
/// costing them (the producer side of DPE).
fn enumerate_all_pairs(
    q: &mpdp_core::QueryInfo,
    ctx: &OptContext<'_>,
    buffer: &mut Vec<PendingPair>,
) -> Result<(), OptError> {
    struct Enum<'q> {
        q: &'q mpdp_core::QueryInfo,
        out: Vec<PendingPair>,
    }
    impl<'q> Enum<'q> {
        fn emit(&mut self, s1: RelSet, s2: RelSet) {
            self.out.push(PendingPair {
                left: s1,
                right: s2,
            });
            self.out.push(PendingPair {
                left: s2,
                right: s1,
            });
        }
        fn csg_rec(&mut self, s: RelSet, x: RelSet) {
            let n = self.q.graph.neighbors(s).difference(x);
            if n.is_empty() {
                return;
            }
            for sp in n.subsets_ascending() {
                self.emit_csg(s.union(sp));
            }
            for sp in n.subsets_ascending() {
                self.csg_rec(s.union(sp), x.union(n));
            }
        }
        fn emit_csg(&mut self, s1: RelSet) {
            let min = s1.first().expect("csg non-empty");
            let x = s1.union(RelSet::first_n(min + 1));
            let n = self.q.graph.neighbors(s1).difference(x);
            let mut vs: Vec<usize> = n.iter().collect();
            vs.reverse();
            for v in vs {
                let s2 = RelSet::singleton(v);
                self.emit(s1, s2);
                let b_v_in_n = RelSet::first_n(v + 1).intersect(n);
                self.cmp_rec(s1, s2, x.union(b_v_in_n));
            }
        }
        fn cmp_rec(&mut self, s1: RelSet, s2: RelSet, x: RelSet) {
            let n = self.q.graph.neighbors(s2).difference(x);
            if n.is_empty() {
                return;
            }
            for sp in n.subsets_ascending() {
                self.emit(s1, s2.union(sp));
            }
            for sp in n.subsets_ascending() {
                self.cmp_rec(s1, s2.union(sp), x.union(n));
            }
        }
    }
    let mut e = Enum {
        q,
        out: std::mem::take(buffer),
    };
    for i in (0..q.query_size()).rev() {
        ctx.check_deadline()?;
        e.emit_csg(RelSet::singleton(i));
        e.csg_rec(RelSet::singleton(i), RelSet::first_n(i + 1));
    }
    *buffer = e.out;
    Ok(())
}

/// The DPE optimizer.
#[derive(Copy, Clone, Debug)]
pub struct Dpe {
    /// Consumer thread count.
    pub threads: usize,
}

impl Dpe {
    /// Runs DPE: sequential DPCCP enumeration into a dependency buffer,
    /// parallel costing per dependency class with winners published straight
    /// into the shared atomic memo (no per-thread candidate lists).
    pub fn run(ctx: &OptContext<'_>, threads: usize) -> Result<OptResult, OptError> {
        ctx.validate_exact()?;
        let q = ctx.query;
        let n = q.query_size();
        with_pool(threads, |pool| {
            let mut memo: AtomicMemo = init_memo(q);
            let mut counters = Counters::default();
            let mut profile = Profile::default();

            if n > 1 {
                // Producer: enumerate all pairs (sequential).
                let mut buffer = Vec::new();
                enumerate_all_pairs(q, ctx, &mut buffer)?;

                // Dependency-aware reordering: bucket by union size.
                let mut classes: Vec<Vec<PendingPair>> = vec![Vec::new(); n + 1];
                for p in buffer {
                    classes[p.left.union(p.right).len()].push(p);
                }

                // Consumers: cost each class in parallel; the class barrier
                // is the pool's run boundary.
                #[allow(clippy::needless_range_loop)]
                for k in 2..=n {
                    ctx.check_deadline()?;
                    let class = &classes[k];
                    if class.is_empty() {
                        continue;
                    }
                    // Pre-size the memo for the class's distinct union sets
                    // (the connected sets materialized at this dependency
                    // level); the table never grows during the parallel
                    // phase.
                    let mut unions = SeenTable::with_capacity(class.len() / 2 + 8);
                    let mut class_sets = 0u64;
                    for p in class {
                        if unions.insert(p.left.union(p.right).bits()) {
                            class_sets += 1;
                        }
                    }
                    memo.reserve(class_sets as usize);
                    let probes0 = memo.probe_count();
                    let retries0 = memo.cas_retry_count();
                    let memo_ref = &memo;
                    let writes = AtomicU64::new(0);
                    pool.run(&|worker| {
                        let mut mine = 0u64;
                        for p in &class[chunk_range(class.len(), pool.workers(), worker)] {
                            let Some((cost, rows)) =
                                price_pair(memo_ref, q, ctx.model, p.left, p.right)
                            else {
                                continue;
                            };
                            if memo_ref.insert_if_better(p.left.union(p.right), p.left, cost, rows)
                            {
                                mine += 1;
                            }
                        }
                        writes.fetch_add(mine, Ordering::Relaxed);
                    });
                    let level = LevelStats {
                        size: k,
                        evaluated: class.len() as u64,
                        ccp: class.len() as u64,
                        sets: class_sets,
                        memo_writes: writes.load(Ordering::Relaxed),
                        memo_probes: memo.probe_count() - probes0,
                        cas_retries: memo.cas_retry_count() - retries0,
                        ..Default::default()
                    };
                    counters.evaluated += level.evaluated;
                    counters.ccp += level.ccp;
                    counters.sets += level.sets;
                    profile.record(level);
                }
            }
            finish(&memo, q, counters, profile)
        })
    }
}

impl JoinOrderOptimizer for Dpe {
    fn name(&self) -> &'static str {
        "DPE"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        Dpe::run(ctx, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::dpccp::DpCcp;
    use mpdp_dp::dpsub::DpSub;
    use mpdp_workload::gen;

    #[test]
    fn matches_sequential_optimum() {
        let m = PgLikeCost::new();
        for (i, q) in [
            gen::star(7, 1, &m),
            gen::cycle(7, 1, &m),
            gen::random_connected(8, 3, 5, &m),
        ]
        .iter()
        .enumerate()
        {
            let qi = q.to_query_info().unwrap();
            let ctx = OptContext::new(&qi, &m);
            let seq = DpSub::run(&ctx).unwrap();
            let dpe = Dpe::run(&ctx, 3).unwrap();
            assert!(
                (dpe.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0),
                "query {i}"
            );
            assert!(dpe.plan.validate(&qi.graph).is_none());
        }
    }

    #[test]
    fn pair_count_matches_dpccp() {
        // DPE costs exactly the pairs DPCCP enumerates.
        let m = PgLikeCost::new();
        let q = gen::star(7, 2, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let a = Dpe::run(&ctx, 2).unwrap();
        let b = DpCcp::run(&ctx).unwrap();
        assert_eq!(a.counters.ccp, b.counters.ccp);
        assert_eq!(a.counters.evaluated, a.counters.ccp);
    }

    #[test]
    fn single_relation() {
        let m = PgLikeCost::new();
        let q = gen::star(1, 2, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let r = Dpe::run(&ctx, 2).unwrap();
        assert_eq!(r.plan.num_rels(), 1);
    }
}
