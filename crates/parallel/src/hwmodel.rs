//! Work/span hardware timing model.
//!
//! The paper's headline numbers come from a 24-core Xeon box and a GTX 1080.
//! This container has one core and no GPU, so — per the substitution policy
//! in `DESIGN.md` — multi-core and GPU wall-clock times are *predicted* from
//! each run's per-level [`Profile`] with a calibrated work/span model:
//!
//! * per-operation costs are calibrated from a *measured* single-thread run
//!   in this container (so the model's absolute scale is grounded in real
//!   executions of the real code);
//! * a level-synchronous algorithm's level time is `work / speedup(P) +
//!   sync`, with a contention-degraded `speedup(P)` reproducing Figure 12's
//!   sublinear scaling;
//! * DPE's time keeps enumeration and buffer management sequential, which is
//!   what caps its speedup (Amdahl) and reproduces its Figure 12 plateau;
//! * the GPU model charges kernel launches and PCIe transfers per DP level
//!   (the paper: "MPDP (GPU) does not perform that well [below 10 rels]
//!   because of data transfers cost between CPU and GPU for every level")
//!   plus lane-throughput-limited work.

use mpdp_core::counters::Profile;
use std::time::Duration;

/// Relative operation weights used to turn a profile into "pair-equivalent"
/// work units. An *evaluated Join-Pair* is the unit; unranking a candidate
/// set is far cheaper; per-set overhead (connectivity check, block finding)
/// is a few pair-equivalents.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OpWeights {
    /// Weight of one unranked candidate set.
    pub unrank: f64,
    /// Weight of one connected set's fixed overhead.
    pub set: f64,
    /// Weight of one evaluated Join-Pair.
    pub pair: f64,
    /// Weight of one memo write.
    pub write: f64,
}

impl Default for OpWeights {
    fn default() -> Self {
        OpWeights {
            unrank: 0.15,
            set: 2.0,
            pair: 1.0,
            write: 0.5,
        }
    }
}

/// Calibrated scalar cost: nanoseconds per pair-equivalent operation on one
/// CPU thread of *this* machine.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Calibration {
    /// ns per pair-equivalent unit.
    pub ns_per_unit: f64,
    /// The weights the units were computed with.
    pub weights: OpWeights,
}

impl Calibration {
    /// Default calibration (used when no measured run is available):
    /// ~40 ns per evaluated pair, typical for the release build on this
    /// container.
    pub fn default_for_container() -> Self {
        Calibration {
            ns_per_unit: 40.0,
            weights: OpWeights::default(),
        }
    }

    /// Calibrates from a measured single-thread run.
    pub fn from_measurement(profile: &Profile, elapsed: Duration) -> Self {
        let w = OpWeights::default();
        let units = work_units(profile, &w).max(1.0);
        Calibration {
            ns_per_unit: elapsed.as_nanos() as f64 / units,
            weights: w,
        }
    }
}

/// Total pair-equivalent work units of a profile.
pub fn work_units(profile: &Profile, w: &OpWeights) -> f64 {
    profile
        .levels
        .iter()
        .map(|l| {
            l.unranked as f64 * w.unrank
                + l.sets as f64 * w.set
                + l.evaluated as f64 * w.pair
                + l.memo_writes as f64 * w.write
        })
        .sum()
}

/// A-priori estimate of the pair-equivalent work an *exact* DP spends on an
/// `n`-relation query with `edges` join edges, before any run exists to
/// profile.
///
/// The two closed forms that bracket exact enumeration are the chain
/// (`#CCP ≈ n³/6`, the sparse floor) and the clique (`#CCP ≈ (3ⁿ − 2ⁿ⁺¹)/2`,
/// the dense ceiling); real topologies land in between, roughly
/// log-linearly in edge density. This estimate interpolates the two in log
/// space by density and adds a couple of set-overhead units per pair. It is
/// deliberately coarse — a deadline router only needs the right order of
/// magnitude to decide "can this budget afford exact planning at all", and
/// callers refine it with observed walls (EWMA) as traffic repeats.
pub fn estimate_exact_units(n: usize, edges: usize) -> f64 {
    let n = n.max(2);
    let nf = n as f64;
    let sparse = nf.powi(3) / 2.0;
    // Cap the dense exponent so the estimate stays finite and comparable
    // even for inputs beyond the exact-DP regime.
    let dense = 3f64.powf(nf.min(40.0));
    let min_e = n - 1;
    let max_e = n * (n - 1) / 2;
    let density = if max_e > min_e {
        ((edges.max(min_e) - min_e) as f64 / (max_e - min_e) as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };
    sparse * (dense / sparse).max(1.0).powf(density)
}

/// [`estimate_exact_units`] turned into predicted single-thread wall time
/// with a calibration — the deadline router's "can I afford exact?" check.
pub fn estimate_exact_planning(n: usize, edges: usize, cal: &Calibration) -> Duration {
    Duration::from_nanos((estimate_exact_units(n, edges) * cal.ns_per_unit) as u64)
}

/// Multi-core CPU model.
#[derive(Copy, Clone, Debug)]
pub struct CpuModel {
    /// Number of worker threads.
    pub threads: usize,
    /// Per-extra-thread efficiency loss from cache/memory contention
    /// (Figure 12: "MPDP scales sub-linearly beyond 6 threads since the CPU
    /// caches get swapped out").
    pub contention: f64,
    /// Per-level synchronization barrier cost.
    pub level_sync: Duration,
}

impl CpuModel {
    /// A model for `threads` workers with the defaults used throughout the
    /// benchmarks. The 2 µs level sync reflects the persistent worker pool's
    /// barrier crossings (`mpdp-parallel::pool`); the old per-level
    /// spawn/join + sequential candidate merge is modelled separately by
    /// [`CpuModel::predict_deferred_merge`].
    pub fn new(threads: usize) -> Self {
        CpuModel {
            threads,
            contention: 0.04,
            level_sync: Duration::from_micros(2),
        }
    }

    /// Effective speedup over one thread.
    pub fn speedup(&self) -> f64 {
        let p = self.threads.max(1) as f64;
        p / (1.0 + self.contention * (p - 1.0))
    }

    /// Predicted wall time of a *level-synchronous* algorithm (MPDP, DPSUB,
    /// DPSIZE and their parallel forms) with this CPU.
    pub fn predict_level_parallel(&self, profile: &Profile, cal: &Calibration) -> Duration {
        let mut total_ns = 0.0;
        for l in &profile.levels {
            let units = l.unranked as f64 * cal.weights.unrank
                + l.sets as f64 * cal.weights.set
                + l.evaluated as f64 * cal.weights.pair
                + l.memo_writes as f64 * cal.weights.write;
            total_ns += units * cal.ns_per_unit / self.speedup();
            total_ns += self.level_sync.as_nanos() as f64;
        }
        Duration::from_nanos(total_ns as u64)
    }

    /// Predicted wall time of the *pre-atomic* level-parallel design —
    /// thread-local `Vec<Candidate>` buffers, a sequential per-level merge
    /// into the memo, and a spawn/join round per level (the "deferred
    /// pruning" shape of PDP). `repro scale` reports this next to
    /// [`CpuModel::predict_level_parallel`] so the shared-memo win is
    /// measured against the design it replaced, not asserted.
    pub fn predict_deferred_merge(&self, profile: &Profile, cal: &Calibration) -> Duration {
        // The old pool spawned + joined scoped threads every level.
        const SPAWN_JOIN: Duration = Duration::from_micros(15);
        let mut total_ns = 0.0;
        for l in &profile.levels {
            let par_units = l.unranked as f64 * cal.weights.unrank
                + l.sets as f64 * cal.weights.set
                + l.evaluated as f64 * cal.weights.pair;
            // Every CCP pair became a buffered candidate that the main
            // thread later merged sequentially (insert_if_better + the
            // buffer push/drain, ~3 write-equivalents per candidate).
            let merge_units = l.ccp as f64 * cal.weights.write * 3.0;
            total_ns += par_units * cal.ns_per_unit / self.speedup();
            total_ns += merge_units * cal.ns_per_unit;
            total_ns += SPAWN_JOIN.as_nanos() as f64;
        }
        Duration::from_nanos(total_ns as u64)
    }

    /// Predicted wall time of DPE: enumeration and the dependency buffer are
    /// sequential; only costing scales.
    pub fn predict_dpe(&self, profile: &Profile, cal: &Calibration) -> Duration {
        // Split of per-pair work in DPE: enumeration 25%, buffer insert /
        // reorder 10%, costing 65% (Meister & Saake [22]: parallel DP pays
        // off only when the cost function dominates).
        const ENUM_FRAC: f64 = 0.18;
        const BUFFER_FRAC: f64 = 0.07;
        const COST_FRAC: f64 = 0.75;
        let mut total_ns = 0.0;
        for l in &profile.levels {
            let units =
                l.evaluated as f64 * cal.weights.pair + l.memo_writes as f64 * cal.weights.write;
            let ns = units * cal.ns_per_unit;
            total_ns += ns * (ENUM_FRAC + BUFFER_FRAC);
            total_ns += ns * COST_FRAC / self.speedup();
            total_ns += self.level_sync.as_nanos() as f64;
        }
        Duration::from_nanos(total_ns as u64)
    }
}

/// GPU model with GTX-1080-like constants.
#[derive(Copy, Clone, Debug)]
pub struct GpuModel {
    /// Effective concurrent lanes (SMs × resident warps × 32, derated for
    /// occupancy).
    pub lanes: f64,
    /// How much slower one GPU lane is than one CPU thread on this scalar
    /// workload (clock + memory-latency derating).
    pub lane_slowdown: f64,
    /// Kernel launch latency, charged per kernel per level.
    pub kernel_launch: Duration,
    /// Kernels per DP level (unrank, filter, evaluate+prune fused, scatter).
    pub kernels_per_level: f64,
    /// Host↔device transfer per DP level.
    pub transfer_per_level: Duration,
}

impl GpuModel {
    /// GTX 1080 defaults: 20 SMs, ~64 resident warps each at realistic
    /// occupancy → ~2048 effective lanes, each ~8× slower than a Xeon thread
    /// on branchy scalar code.
    pub fn gtx1080() -> Self {
        GpuModel {
            lanes: 2048.0,
            lane_slowdown: 8.0,
            kernel_launch: Duration::from_micros(8),
            kernels_per_level: 4.0,
            transfer_per_level: Duration::from_micros(60),
        }
    }

    /// Effective throughput multiple over one CPU thread.
    pub fn throughput(&self) -> f64 {
        self.lanes / self.lane_slowdown
    }

    /// Predicted wall time of a level-synchronous algorithm on this GPU.
    ///
    /// `divergence` ≥ 1.0 inflates the work to account for SIMD lockstep
    /// waste (1.0 = perfectly converged warps, e.g. with Collaborative
    /// Context Collection; the `mpdp-gpu` simulator measures the real
    /// factor).
    pub fn predict(&self, profile: &Profile, cal: &Calibration, divergence: f64) -> Duration {
        let mut total_ns = 0.0;
        let per_level_overhead = self.kernel_launch.as_nanos() as f64 * self.kernels_per_level
            + self.transfer_per_level.as_nanos() as f64;
        for l in &profile.levels {
            let units = l.unranked as f64 * cal.weights.unrank
                + l.sets as f64 * cal.weights.set
                + l.evaluated as f64 * cal.weights.pair
                + l.memo_writes as f64 * cal.weights.write;
            total_ns += units * divergence * cal.ns_per_unit / self.throughput();
            total_ns += per_level_overhead;
        }
        Duration::from_nanos(total_ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::counters::LevelStats;

    fn profile(levels: &[(usize, u64, u64, u64)]) -> Profile {
        let mut p = Profile::default();
        for &(size, unranked, sets, evaluated) in levels {
            p.record(LevelStats {
                size,
                unranked,
                sets,
                evaluated,
                ccp: evaluated / 2,
                memo_writes: sets,
                ..Default::default()
            });
        }
        p
    }

    #[test]
    fn speedup_is_sublinear() {
        let m1 = CpuModel::new(1);
        let m6 = CpuModel::new(6);
        let m24 = CpuModel::new(24);
        assert!((m1.speedup() - 1.0).abs() < 1e-9);
        assert!(m6.speedup() > 4.5 && m6.speedup() < 6.0);
        assert!(m24.speedup() > 10.0 && m24.speedup() < 14.0);
    }

    #[test]
    fn more_threads_less_time() {
        let p = profile(&[(2, 100, 50, 5000), (3, 200, 80, 20000)]);
        let cal = Calibration::default_for_container();
        let t1 = CpuModel::new(1).predict_level_parallel(&p, &cal);
        let t8 = CpuModel::new(8).predict_level_parallel(&p, &cal);
        let t24 = CpuModel::new(24).predict_level_parallel(&p, &cal);
        assert!(t1 > t8 && t8 > t24);
    }

    #[test]
    fn deferred_merge_slower_than_atomic_at_scale() {
        // The sequential merge is an Amdahl term the atomic design deletes:
        // at 8+ threads the deferred model must trail, and its speedup over
        // one thread must cap below the atomic design's.
        let p = profile(&[(2, 0, 1000, 200_000), (3, 0, 2000, 800_000)]);
        let cal = Calibration::default_for_container();
        for threads in [4usize, 8, 24] {
            let m = CpuModel::new(threads);
            assert!(
                m.predict_deferred_merge(&p, &cal) > m.predict_level_parallel(&p, &cal),
                "threads={threads}"
            );
        }
        let atomic_speedup = CpuModel::new(8)
            .predict_level_parallel(&p, &cal)
            .as_secs_f64();
        let atomic_speedup = CpuModel::new(1)
            .predict_level_parallel(&p, &cal)
            .as_secs_f64()
            / atomic_speedup;
        let deferred_speedup = CpuModel::new(8)
            .predict_deferred_merge(&p, &cal)
            .as_secs_f64();
        let deferred_speedup = CpuModel::new(1)
            .predict_deferred_merge(&p, &cal)
            .as_secs_f64()
            / deferred_speedup;
        assert!(
            atomic_speedup > deferred_speedup,
            "atomic {atomic_speedup:.2} vs deferred {deferred_speedup:.2}"
        );
    }

    #[test]
    fn dpe_caps_below_level_parallel() {
        // For the same profile and thread count, DPE's sequential enumeration
        // keeps it slower than a level-parallel algorithm at high P.
        let p = profile(&[(2, 0, 100, 100_000), (3, 0, 100, 400_000)]);
        let cal = Calibration::default_for_container();
        let cpu = CpuModel::new(24);
        assert!(cpu.predict_dpe(&p, &cal) > cpu.predict_level_parallel(&p, &cal));
        // And its speedup over 1 thread plateaus under ~3.5x.
        let t1 = CpuModel::new(1).predict_dpe(&p, &cal);
        let t24 = cpu.predict_dpe(&p, &cal);
        let speedup = t1.as_nanos() as f64 / t24.as_nanos() as f64;
        assert!(speedup > 2.0 && speedup < 4.5, "speedup={speedup}");
    }

    #[test]
    fn gpu_wins_big_loses_small() {
        let cal = Calibration::default_for_container();
        let gpu = GpuModel::gtx1080();
        let cpu1 = CpuModel::new(1);
        // Tiny query: overhead dominates; 1-CPU wins.
        let small = profile(&[(2, 10, 5, 20), (3, 10, 4, 30)]);
        assert!(gpu.predict(&small, &cal, 1.0) > cpu1.predict_level_parallel(&small, &cal));
        // Huge level: GPU throughput wins by orders of magnitude.
        let big = profile(&[(20, 1_000_000, 500_000, 500_000_000)]);
        let tg = gpu.predict(&big, &cal, 1.0);
        let tc = cpu1.predict_level_parallel(&big, &cal);
        assert!(tc.as_nanos() > 50 * tg.as_nanos());
    }

    #[test]
    fn divergence_inflates_gpu_time() {
        let cal = Calibration::default_for_container();
        let gpu = GpuModel::gtx1080();
        let p = profile(&[(10, 100_000, 50_000, 10_000_000)]);
        let converged = gpu.predict(&p, &cal, 1.0);
        let diverged = gpu.predict(&p, &cal, 3.0);
        assert!(diverged > converged);
        let ratio = diverged.as_nanos() as f64 / converged.as_nanos() as f64;
        assert!(ratio > 2.0 && ratio < 3.2);
    }

    #[test]
    fn exact_estimate_orders_topologies() {
        // Denser graphs cost more at equal n; bigger n costs more at equal
        // density; and the absolute scale is sane (chain-16 predicted in
        // the µs–ms band with the default container calibration).
        let chain16 = estimate_exact_units(16, 15);
        let dense16 = estimate_exact_units(16, 60);
        let clique16 = estimate_exact_units(16, 120);
        assert!(chain16 < dense16 && dense16 < clique16);
        assert!(estimate_exact_units(10, 9) < chain16);
        let cal = Calibration::default_for_container();
        let t = estimate_exact_planning(16, 15, &cal);
        assert!(t > Duration::from_micros(10) && t < Duration::from_millis(50));
        // Degenerate inputs do not panic or go non-finite.
        assert!(estimate_exact_units(1, 0).is_finite());
        assert!(estimate_exact_units(64, 2016).is_finite());
    }

    #[test]
    fn calibration_from_measurement() {
        let p = profile(&[(2, 0, 10, 1000)]);
        let cal = Calibration::from_measurement(&p, Duration::from_micros(100));
        // 1000 pairs + 10 sets*2 + 10 writes*0.5 = 1025 units over 100µs.
        assert!((cal.ns_per_unit - 100_000.0 / 1025.0).abs() < 1e-6);
    }
}
