//! A persistent, barrier-synchronized worker pool for level-parallel DP.
//!
//! The paper's GPU design has no per-worker buffers and no merge pass:
//! every lane writes winners straight into the device-global hash table with
//! `atomicMin`, and the only synchronization is the level barrier between
//! kernel launches. The CPU backends now mirror that exactly — workers share
//! one `&AtomicMemo` and race their `insert_if_better` CAS loops — so all
//! this module provides is the *shape* of the paper's host loop: a pool of
//! workers spawned once per optimizer run ([`with_pool`]), a fan-out point
//! per DP level ([`PoolHandle::run`]), and the implicit barrier when it
//! returns. There are no candidate lists, no channels and no per-level
//! thread spawns; a level costs two barrier crossings (~1 µs each), not a
//! spawn/join round (~tens of µs).
//!
//! With one worker (or on a single-core host) the pool degenerates to an
//! inline call with zero thread overhead — important on this single-core
//! container, where real fan-out only adds noise.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

/// The per-level task: called once per worker with the worker index in
/// `0..workers`. Workers partition their inputs with [`chunk_range`].
type Task<'a> = &'a (dyn Fn(usize) + Sync);

/// State shared between the driver thread and the pool workers.
struct Shared {
    /// Crossed by all workers + the driver to begin a level.
    start: Barrier,
    /// Crossed again when every worker finished its slice (the level
    /// barrier of the paper's host loop).
    done: Barrier,
    /// The current level's task, valid strictly between the two barriers.
    job: Mutex<Option<SendTask>>,
    /// Set (before a final `start` crossing) to shut the pool down.
    stop: AtomicBool,
    /// First panic payload from any worker, re-thrown by the driver.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A raw task pointer that may cross threads. Soundness: the pointee is a
/// borrow held by [`PoolHandle::run`] for the entire start→done window, and
/// workers dereference it only inside that window (both barriers are
/// acquire/release synchronization points).
struct SendTask(*const (dyn Fn(usize) + Sync));
unsafe impl Send for SendTask {}

/// Handle the driver uses to fan a level out to the pool.
pub struct PoolHandle<'env> {
    shared: Option<&'env Shared>,
    workers: usize,
}

impl PoolHandle<'_> {
    /// Number of workers (including the driver thread, which takes slice 0).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(idx)` on every worker and collects the return values in
    /// worker order — the fan-out/merge shape used outside the DP loop
    /// (e.g. the executor's probe phase: each worker owns a contiguous
    /// morsel range and returns a private output buffer; collecting in
    /// index order keeps the merged result independent of scheduling).
    pub fn map<T: Send>(&self, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let slots: Vec<Mutex<Option<T>>> = (0..self.workers).map(|_| Mutex::new(None)).collect();
        self.run(&|idx| {
            let v = f(idx);
            *slots[idx].lock().unwrap() = Some(v);
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap()
                    .expect("every worker filled its slot")
            })
            .collect()
    }

    /// Runs `task(idx)` on every worker `idx in 0..workers` and returns when
    /// all are done — one DP level. The driver thread participates as
    /// worker 0, so `workers == threads` with no idle coordinator.
    pub fn run(&self, task: Task<'_>) {
        let Some(shared) = self.shared else {
            task(0);
            return;
        };
        // Extend the task borrow for the workers; they only use it inside
        // the start→done window, which this call's borrow of `task` spans.
        *shared.job.lock().unwrap() = Some(SendTask(unsafe {
            std::mem::transmute::<Task<'_>, Task<'static>>(task)
        }));
        shared.start.wait();
        // Catch so the done barrier is always reached; re-thrown below.
        let mine = catch_unwind(AssertUnwindSafe(|| task(0))).err();
        shared.done.wait();
        if let Some(p) = mine.or_else(|| shared.panic.lock().unwrap().take()) {
            resume_unwind(p);
        }
    }
}

/// Event loop of pool worker `idx` (1-based; the driver is worker 0).
fn worker_loop(shared: &Shared, idx: usize) {
    loop {
        shared.start.wait();
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let task = shared.job.lock().unwrap().as_ref().map(|t| t.0);
        if let Some(ptr) = task {
            // SAFETY: the driver keeps the task borrow alive until the done
            // barrier below; see `SendTask`.
            let f: &(dyn Fn(usize) + Sync) = unsafe { &*ptr };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(idx))) {
                shared.panic.lock().unwrap().get_or_insert(p);
            }
        }
        shared.done.wait();
    }
}

/// Releases the workers into their shutdown path even if the driver
/// unwinds, so the enclosing thread scope can always join.
struct Shutdown<'a>(&'a Shared);

impl Drop for Shutdown<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
        self.0.start.wait();
    }
}

/// Spawns a persistent pool of `threads` workers (scoped), hands the driver
/// closure a [`PoolHandle`], and tears the pool down when it returns. With
/// `threads <= 1` no thread is spawned and [`PoolHandle::run`] is an inline
/// call.
pub fn with_pool<T>(threads: usize, driver: impl FnOnce(&PoolHandle<'_>) -> T) -> T {
    let threads = threads.max(1);
    if threads == 1 {
        return driver(&PoolHandle {
            shared: None,
            workers: 1,
        });
    }
    let shared = Shared {
        start: Barrier::new(threads),
        done: Barrier::new(threads),
        job: Mutex::new(None),
        stop: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        for idx in 1..threads {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, idx));
        }
        let _teardown = Shutdown(&shared);
        driver(&PoolHandle {
            shared: Some(&shared),
            workers: threads,
        })
    })
}

/// The contiguous slice of `0..len` that worker `idx` of `workers` owns:
/// balanced within one item, deterministic, and covering `0..len` exactly.
/// Which worker evaluates which item never affects results — the shared
/// memo's `(cost, left)` min is commutative — so this is purely a load
/// balancing choice.
pub fn chunk_range(len: usize, workers: usize, idx: usize) -> std::ops::Range<usize> {
    let workers = workers.max(1);
    debug_assert!(idx < workers);
    let base = len / workers;
    let rem = len % workers;
    let start = idx * base + idx.min(rem);
    let end = start + base + usize::from(idx < rem);
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_partition_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for workers in [1usize, 2, 3, 8, 16] {
                let mut covered = 0;
                for idx in 0..workers {
                    let r = chunk_range(len, workers, idx);
                    assert_eq!(r.start, covered, "len={len} workers={workers} idx={idx}");
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let sum = AtomicU64::new(0);
        with_pool(1, |pool| {
            assert_eq!(pool.workers(), 1);
            pool.run(&|idx| {
                assert_eq!(idx, 0);
                sum.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn all_workers_run_every_level() {
        let sum = AtomicU64::new(0);
        with_pool(4, |pool| {
            for level in 0..50u64 {
                pool.run(&|idx| {
                    sum.fetch_add(level * 10 + idx as u64, Ordering::Relaxed);
                });
            }
        });
        // Σ_level Σ_idx (10*level + idx) = 10*1225*4 + 50*6
        assert_eq!(sum.load(Ordering::Relaxed), 10 * 1225 * 4 + 50 * 6);
    }

    #[test]
    fn levels_are_barriers() {
        // Writes of level k must be visible to every worker at level k+1.
        let cells: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        with_pool(4, |pool| {
            for round in 1..=20u64 {
                pool.run(&|idx| {
                    cells[idx].store(round, Ordering::Relaxed);
                });
                pool.run(&|_| {
                    for c in &cells {
                        assert_eq!(c.load(Ordering::Relaxed), round);
                    }
                });
            }
        });
    }

    #[test]
    fn map_collects_in_worker_order() {
        for workers in [1usize, 2, 4] {
            let out = with_pool(workers, |pool| pool.map(|idx| idx * 10));
            assert_eq!(out, (0..workers).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_pool(3, |pool| {
                pool.run(&|idx| {
                    if idx == 2 {
                        panic!("worker 2 exploded");
                    }
                });
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn driver_return_value_passes_through() {
        let out = with_pool(2, |pool| {
            let sum = AtomicU64::new(0);
            pool.run(&|idx| {
                sum.fetch_add(idx as u64 + 1, Ordering::Relaxed);
            });
            sum.into_inner()
        });
        assert_eq!(out, 3);
    }
}
