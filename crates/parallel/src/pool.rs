//! Chunked fork-join execution on scoped threads.
//!
//! The CPU-parallel optimizers follow the paper's structure: within one DP
//! level every connected set is independent, so a level's set list is split
//! into chunks, each worker evaluates its chunk against the *read-only* memo
//! of the previous levels into thread-local candidate lists, and the main
//! thread merges candidates — the "deferred pruning" of §2.2.2 ("excluding
//! the BestPlan(S) update, which can be deferred to a later pruning step").

use mpdp_core::RelSet;

/// A best-plan candidate produced by a worker.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The set the candidate covers.
    pub set: RelSet,
    /// Left side of the split.
    pub left: RelSet,
    /// Plan cost.
    pub cost: f64,
    /// Output rows.
    pub rows: f64,
}

/// Splits `items` into at most `threads` contiguous chunks and runs `f` on
/// each chunk in parallel, returning the per-chunk results in order.
///
/// With `threads == 1` (or a single-item input) the call degenerates to a
/// plain sequential invocation with zero thread overhead — important on this
/// single-core container where real thread fan-out only adds noise.
pub fn parallel_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| {
                let fr = &f;
                scope.spawn(move || fr(c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fallback() {
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_chunks(&items, 1, |c| c.iter().sum::<u32>());
        assert_eq!(out, vec![45]);
    }

    #[test]
    fn chunked_results_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_chunks(&items, 4, |c| c.to_vec());
        let flat: Vec<u32> = out.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2];
        let out = parallel_chunks(&items, 16, |c| c.iter().sum::<u32>());
        let total: u32 = out.iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_input() {
        let items: [u32; 0] = [];
        let out = parallel_chunks(&items, 4, |c| c.len());
        assert_eq!(out, vec![0]);
    }
}
