//! # mpdp-parallel
//!
//! CPU-parallel DP variants and the hardware timing model:
//!
//! * [`level_par`] — parallel MPDP ("MPDP (24CPU)"), parallel DPSUB, and
//!   PDP (parallel DPSIZE, Han et al. \[10\]);
//! * [`dpe`] — DPE (Han & Lee \[11\]): sequential DPCCP enumeration with
//!   dependency-aware parallel costing;
//! * [`pool`] — chunked scoped-thread fork/join;
//! * [`hwmodel`] — the calibrated work/span model predicting multi-core and
//!   GPU wall times on this single-core container (see `DESIGN.md` §2).

#![warn(missing_docs)]

pub mod dpe;
pub mod hwmodel;
pub mod level_par;
pub mod pool;

pub use dpe::Dpe;
pub use hwmodel::{Calibration, CpuModel, GpuModel, OpWeights};
pub use level_par::{DpSubCpu, MpdpCpu, Pdp};
