//! CPU-parallel level-synchronous DP: parallel MPDP, DPSUB and DPSIZE (PDP).
//!
//! All three share the paper's MPDP-GPU skeleton (§5), transplanted to
//! shared-memory CPUs:
//!
//! 1. enumerate the level's work items sequentially (cheap),
//! 2. fan the items out to the persistent worker pool; each worker evaluates
//!    Join-Pairs against the previous levels' entries (quiescent, read-only)
//!    and writes winners *straight into the shared
//!    [`mpdp_core::atomic_memo::AtomicMemo`]* with CAS min-updates — the CPU
//!    analogue of the paper's `atomicMin` on the device-global hash table,
//! 3. barrier, next level.
//!
//! There is no thread-local candidate buffering and no sequential merge
//! step (the "deferred pruning" shape of PDP \[10\] that used to live here):
//! the table itself is the reduction. Result equality with the sequential
//! algorithms is exact and bit-identical at any worker count: the same pairs
//! are priced by the same shared costing (`mpdp_dp::common::price_pair`),
//! and every memo keeps the minimum under the same deterministic
//! `(cost, left)` tie-break, which is order-insensitive.

use crate::pool::{chunk_range, with_pool};
use mpdp_core::atomic_memo::AtomicMemo;
use mpdp_core::blocks::find_blocks;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::enumerate::EnumerationMode;
use mpdp_core::{OptError, RelSet};
use mpdp_dp::common::{finish, init_memo, price_pair, LevelEnumerator, OptContext, OptResult};
use mpdp_dp::JoinOrderOptimizer;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which level-parallel algorithm to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LevelAlgo {
    /// Parallel MPDP (block-level hybrid enumeration).
    Mpdp,
    /// Parallel DPSUB (powerset splits).
    DpSub,
}

/// One worker's tallies for its slice of a level, merged into the level's
/// atomic accumulators when the slice is done (sums are partition-invariant,
/// so totals are deterministic at any worker count).
#[derive(Default)]
struct SliceTally {
    evaluated: u64,
    ccp: u64,
    writes: u64,
}

/// Level-wide accumulators the workers fold their tallies into.
#[derive(Default)]
struct LevelTally {
    evaluated: AtomicU64,
    ccp: AtomicU64,
    writes: AtomicU64,
}

impl LevelTally {
    fn absorb(&self, t: &SliceTally) {
        self.evaluated.fetch_add(t.evaluated, Ordering::Relaxed);
        self.ccp.fetch_add(t.ccp, Ordering::Relaxed);
        self.writes.fetch_add(t.writes, Ordering::Relaxed);
    }

    fn fill(&self, level: &mut LevelStats) {
        level.evaluated += self.evaluated.load(Ordering::Relaxed);
        level.ccp += self.ccp.load(Ordering::Relaxed);
        level.memo_writes += self.writes.load(Ordering::Relaxed);
    }
}

fn eval_set_mpdp(
    q: &mpdp_core::QueryInfo,
    model: &dyn mpdp_cost::model::CostModel,
    memo: &AtomicMemo,
    s: RelSet,
    tally: &mut SliceTally,
) {
    let decomposition = find_blocks(&q.graph, s);
    for &block in &decomposition.blocks {
        for lb in block.subsets() {
            if lb == block {
                continue;
            }
            let rb = block.difference(lb);
            tally.evaluated += 1;
            if lb.is_empty() || rb.is_empty() {
                continue;
            }
            if !q.graph.is_connected(lb) || !q.graph.is_connected(rb) {
                continue;
            }
            if !q.graph.sets_connected(lb, rb) {
                continue;
            }
            tally.ccp += 1;
            let sleft = q.graph.grow(lb, s.difference(rb));
            let sright = s.difference(sleft);
            emit_atomic(q, model, memo, sleft, sright, tally);
        }
    }
}

fn eval_set_dpsub(
    q: &mpdp_core::QueryInfo,
    model: &dyn mpdp_cost::model::CostModel,
    memo: &AtomicMemo,
    s: RelSet,
    tally: &mut SliceTally,
) {
    for sl in s.subsets() {
        tally.evaluated += 1;
        let sr = s.difference(sl);
        if sl.is_empty() || sr.is_empty() {
            continue;
        }
        if !q.graph.is_connected(sl) || !q.graph.is_connected(sr) {
            continue;
        }
        if !q.graph.sets_connected(sl, sr) {
            continue;
        }
        tally.ccp += 1;
        emit_atomic(q, model, memo, sl, sr, tally);
    }
}

/// Prices `(sl, sr)` against the shared memo and publishes the candidate
/// with an atomic min-update — the worker-side `CreatePlan` + `atomicMin`.
/// Both sides live in strictly smaller (quiescent) levels; a missing entry
/// is skipped here and surfaces as a plan-extraction failure, exactly as in
/// the old deferred-merge path.
#[inline]
fn emit_atomic(
    q: &mpdp_core::QueryInfo,
    model: &dyn mpdp_cost::model::CostModel,
    memo: &AtomicMemo,
    sl: RelSet,
    sr: RelSet,
    tally: &mut SliceTally,
) {
    if let Some((cost, rows)) = price_pair(memo, q, model, sl, sr) {
        if memo.insert_if_better(sl.union(sr), sl, cost, rows) {
            tally.writes += 1;
        }
    }
}

/// Snapshot of the memo's cumulative probe/CAS counters, used to attribute
/// per-level deltas to [`LevelStats`].
struct MemoMarks {
    probes: u64,
    retries: u64,
}

impl MemoMarks {
    fn take(memo: &AtomicMemo) -> MemoMarks {
        MemoMarks {
            probes: memo.probe_count(),
            retries: memo.cas_retry_count(),
        }
    }

    fn delta_into(&self, memo: &AtomicMemo, level: &mut LevelStats) {
        level.memo_probes = memo.probe_count() - self.probes;
        level.cas_retries = memo.cas_retry_count() - self.retries;
    }
}

/// Runs a level-parallel algorithm with `threads` workers sharing one
/// atomic memo.
pub fn run_level_parallel(
    ctx: &OptContext<'_>,
    algo: LevelAlgo,
    threads: usize,
) -> Result<OptResult, OptError> {
    ctx.validate_exact()?;
    let q = ctx.query;
    let n = q.query_size();
    with_pool(threads, |pool| {
        let mut memo: AtomicMemo = init_memo(q);
        let mut counters = Counters::default();
        let mut profile = Profile::default();
        let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);
        for i in 2..=n {
            ctx.check_deadline()?;
            // Frontier expansion (or legacy unrank + filter) — sequential
            // here; the per-level table sizing happens between barriers,
            // which is the only time the memo may grow.
            let lvl = enumerator.level(ctx, i)?;
            let mut level = LevelStats {
                size: i,
                unranked: lvl.unranked,
                sets: lvl.sets.len() as u64,
                ..Default::default()
            };
            memo.reserve(lvl.sets.len());
            let marks = MemoMarks::take(&memo);

            let sets = lvl.sets;
            let memo_ref = &memo;
            let tally = LevelTally::default();
            pool.run(&|worker| {
                let mut mine = SliceTally::default();
                for &s in &sets[chunk_range(sets.len(), pool.workers(), worker)] {
                    match algo {
                        LevelAlgo::Mpdp => eval_set_mpdp(q, ctx.model, memo_ref, s, &mut mine),
                        LevelAlgo::DpSub => eval_set_dpsub(q, ctx.model, memo_ref, s, &mut mine),
                    }
                }
                tally.absorb(&mine);
            });
            // Implicit level barrier: pool.run returned, so every winner of
            // this level is published before the next level reads it.
            tally.fill(&mut level);
            marks.delta_into(&memo, &mut level);
            counters.evaluated += level.evaluated;
            counters.ccp += level.ccp;
            counters.sets += level.sets;
            counters.unranked += level.unranked;
            profile.record(level);
        }
        finish(&memo, q, counters, profile)
    })
}

/// PDP — parallel DPSIZE \[10\]: per level, the cross products of the
/// previous levels' plan lists are split among workers, which now publish
/// winners straight into the shared atomic memo (no deferred pruning).
///
/// The per-size plan lists come from the frontier enumerator in *both*
/// enumeration modes: DPSIZE never unranks subsets (its candidates are
/// cross products of plan lists), and the discovered-set list of the legacy
/// merge was provably identical to the frontier's connected-set list, so
/// this keeps counters and results bit-identical while letting the memo be
/// sized before each parallel phase.
pub fn run_dpsize_parallel(ctx: &OptContext<'_>, threads: usize) -> Result<OptResult, OptError> {
    ctx.validate_exact()?;
    let q = ctx.query;
    let n = q.query_size();
    with_pool(threads, |pool| {
        let mut memo: AtomicMemo = init_memo(q);
        let mut counters = Counters::default();
        let mut profile = Profile::default();
        let mut sets_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
        sets_by_size[1] = (0..n).map(RelSet::singleton).collect();
        let mut enumerator = LevelEnumerator::new(&q.graph, EnumerationMode::Frontier);
        // Work items, reused across levels: (right-size, left set).
        let mut items: Vec<(usize, RelSet)> = Vec::new();

        for i in 2..=n {
            ctx.check_deadline()?;
            let mut level = LevelStats {
                size: i,
                ..Default::default()
            };
            let lvl = enumerator.level(ctx, i)?;
            memo.reserve(lvl.sets.len());
            sets_by_size[i] = lvl.sets.to_vec();
            level.sets = sets_by_size[i].len() as u64;

            items.clear();
            #[allow(clippy::needless_range_loop)]
            for k in 1..i {
                for &l in &sets_by_size[k] {
                    items.push((i - k, l));
                }
            }
            let marks = MemoMarks::take(&memo);
            let memo_ref = &memo;
            let items_ref = &items;
            let sizes_ref = &sets_by_size;
            let tally = LevelTally::default();
            pool.run(&|worker| {
                let mut mine = SliceTally::default();
                for &(rk, left) in &items_ref[chunk_range(items_ref.len(), pool.workers(), worker)]
                {
                    for &right in &sizes_ref[rk] {
                        mine.evaluated += 1;
                        if !left.is_disjoint(right) {
                            continue;
                        }
                        if !q.graph.sets_connected(left, right) {
                            continue;
                        }
                        mine.ccp += 1;
                        emit_atomic(q, ctx.model, memo_ref, left, right, &mut mine);
                    }
                }
                tally.absorb(&mine);
            });
            tally.fill(&mut level);
            marks.delta_into(&memo, &mut level);
            counters.evaluated += level.evaluated;
            counters.ccp += level.ccp;
            counters.sets += level.sets;
            profile.record(level);
        }
        finish(&memo, q, counters, profile)
    })
}

/// Parallel MPDP on CPU ("MPDP (24CPU)" in Figures 6–9).
#[derive(Copy, Clone, Debug)]
pub struct MpdpCpu {
    /// Worker thread count.
    pub threads: usize,
}

impl JoinOrderOptimizer for MpdpCpu {
    fn name(&self) -> &'static str {
        "MPDP(CPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        run_level_parallel(ctx, LevelAlgo::Mpdp, self.threads)
    }
}

/// Parallel DPSUB on CPU.
#[derive(Copy, Clone, Debug)]
pub struct DpSubCpu {
    /// Worker thread count.
    pub threads: usize,
}

impl JoinOrderOptimizer for DpSubCpu {
    fn name(&self) -> &'static str {
        "DPSub(CPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        run_level_parallel(ctx, LevelAlgo::DpSub, self.threads)
    }
}

/// PDP — parallel DPSIZE on CPU \[10\].
#[derive(Copy, Clone, Debug)]
pub struct Pdp {
    /// Worker thread count.
    pub threads: usize,
}

impl JoinOrderOptimizer for Pdp {
    fn name(&self) -> &'static str {
        "PDP"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        run_dpsize_parallel(ctx, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::dpsub::DpSub;
    use mpdp_workload::gen;

    fn check_matches_sequential(q: &mpdp_core::QueryInfo) {
        let model = PgLikeCost::new();
        let ctx = OptContext::new(q, &model);
        let seq = DpSub::run(&ctx).unwrap();
        for threads in [1, 2, 4] {
            let par_mpdp = run_level_parallel(&ctx, LevelAlgo::Mpdp, threads).unwrap();
            assert!(
                (par_mpdp.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0),
                "mpdp threads={threads}"
            );
            assert_eq!(par_mpdp.counters.ccp, seq.counters.ccp);
            let par_sub = run_level_parallel(&ctx, LevelAlgo::DpSub, threads).unwrap();
            assert_eq!(par_sub.cost.to_bits(), seq.cost.to_bits());
            assert_eq!(par_sub.counters.evaluated, seq.counters.evaluated);
            let pdp = run_dpsize_parallel(&ctx, threads).unwrap();
            assert!((pdp.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_star() {
        let m = PgLikeCost::new();
        let q = gen::star(7, 3, &m).to_query_info().unwrap();
        check_matches_sequential(&q);
    }

    #[test]
    fn parallel_matches_sequential_on_cycle() {
        let m = PgLikeCost::new();
        let q = gen::cycle(7, 3, &m).to_query_info().unwrap();
        check_matches_sequential(&q);
    }

    #[test]
    fn parallel_matches_sequential_on_random() {
        let m = PgLikeCost::new();
        for seed in 0..3 {
            let q = gen::random_connected(8, 4, seed, &m)
                .to_query_info()
                .unwrap();
            check_matches_sequential(&q);
        }
    }

    #[test]
    fn frontier_and_unranked_modes_match_in_parallel() {
        let m = PgLikeCost::new();
        let q = gen::cycle(8, 5, &m).to_query_info().unwrap();
        let frontier = OptContext::new(&q, &m);
        let unranked = OptContext::new(&q, &m).with_enumeration(EnumerationMode::Unranked);
        for algo in [LevelAlgo::Mpdp, LevelAlgo::DpSub] {
            let f = run_level_parallel(&frontier, algo, 2).unwrap();
            let u = run_level_parallel(&unranked, algo, 2).unwrap();
            assert_eq!(f.cost.to_bits(), u.cost.to_bits());
            assert_eq!(f.counters.evaluated, u.counters.evaluated);
            assert_eq!(f.counters.ccp, u.counters.ccp);
            assert_eq!(f.counters.sets, u.counters.sets);
            assert_eq!(f.counters.unranked, 0);
            assert!(u.counters.unranked > 0);
        }
        let fp = run_dpsize_parallel(&frontier, 2).unwrap();
        let up = run_dpsize_parallel(&unranked, 2).unwrap();
        assert_eq!(fp.cost.to_bits(), up.cost.to_bits());
        assert_eq!(fp.counters, up.counters);
    }

    #[test]
    fn plans_validate() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(9, 3, 11, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, 3).unwrap();
        assert!(r.plan.validate(&q.graph).is_none());
        assert_eq!(r.plan.num_rels(), 9);
    }

    #[test]
    fn plans_bit_identical_across_worker_counts() {
        // The tie-break makes the whole memo — and therefore the extracted
        // plan — a pure function of the candidate multiset, independent of
        // scheduling. Compare the plan trees structurally.
        let m = PgLikeCost::new();
        for q in [
            gen::star(8, 2, &m).to_query_info().unwrap(),
            gen::random_connected(9, 5, 7, &m).to_query_info().unwrap(),
        ] {
            let ctx = OptContext::new(&q, &m);
            let base = run_level_parallel(&ctx, LevelAlgo::Mpdp, 1).unwrap();
            for threads in [2, 4, 8] {
                let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, threads).unwrap();
                assert_eq!(r.plan, base.plan, "threads={threads}");
                assert_eq!(r.cost.to_bits(), base.cost.to_bits());
                assert_eq!(r.counters, base.counters);
            }
        }
    }

    #[test]
    fn profile_reports_memo_health() {
        let m = PgLikeCost::new();
        let q = gen::cycle(8, 1, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, 2).unwrap();
        let health = r.profile.memo.expect("finish stamps memo health");
        assert_eq!(health.entries, r.memo_entries);
        assert!(health.load_factor() > 0.0 && health.load_factor() <= 0.7 + 1e-9);
        assert!(r.profile.levels.iter().map(|l| l.memo_probes).sum::<u64>() > 0);
    }
}
