//! CPU-parallel level-synchronous DP: parallel MPDP, DPSUB and DPSIZE (PDP).
//!
//! All three share the same skeleton (the paper's "MPDP (24CPU)", the DPSUB
//! parallelization of §2.2.2, and PDP \[10\]):
//!
//! 1. enumerate the level's work items sequentially (cheap),
//! 2. fan the items out to workers; each worker evaluates Join-Pairs against
//!    the previous levels' memo (read-only) and keeps thread-local best
//!    candidates,
//! 3. merge candidates into the memo (the deferred pruning step),
//! 4. barrier, next level.
//!
//! Result equality with the sequential algorithms is exact: the same pairs
//! are evaluated with the same cost function; only the reduction order
//! differs, and `min` is order-insensitive.

use crate::pool::{parallel_chunks, Candidate};
use mpdp_core::blocks::find_blocks;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::enumerate::EnumerationMode;
use mpdp_core::memo::MemoTable;
use mpdp_core::{OptError, RelSet};
use mpdp_cost::model::InputEst;
use mpdp_dp::common::{finish, init_memo, LevelEnumerator, OptContext, OptResult};
use mpdp_dp::JoinOrderOptimizer;
use std::collections::HashMap;

/// Which level-parallel algorithm to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LevelAlgo {
    /// Parallel MPDP (block-level hybrid enumeration).
    Mpdp,
    /// Parallel DPSUB (powerset splits).
    DpSub,
}

/// Worker result for one chunk of sets.
struct ChunkResult {
    candidates: Vec<Candidate>,
    evaluated: u64,
    ccp: u64,
}

fn eval_set_mpdp(
    q: &mpdp_core::QueryInfo,
    model: &dyn mpdp_cost::model::CostModel,
    memo: &MemoTable,
    s: RelSet,
    out: &mut Vec<Candidate>,
    evaluated: &mut u64,
    ccp: &mut u64,
) {
    let decomposition = find_blocks(&q.graph, s);
    for &block in &decomposition.blocks {
        for lb in block.subsets() {
            if lb == block {
                continue;
            }
            let rb = block.difference(lb);
            *evaluated += 1;
            if lb.is_empty() || rb.is_empty() {
                continue;
            }
            if !q.graph.is_connected(lb) || !q.graph.is_connected(rb) {
                continue;
            }
            if !q.graph.sets_connected(lb, rb) {
                continue;
            }
            *ccp += 1;
            let sleft = q.graph.grow(lb, s.difference(rb));
            let sright = s.difference(sleft);
            push_candidate(q, model, memo, sleft, sright, out);
        }
    }
}

fn eval_set_dpsub(
    q: &mpdp_core::QueryInfo,
    model: &dyn mpdp_cost::model::CostModel,
    memo: &MemoTable,
    s: RelSet,
    out: &mut Vec<Candidate>,
    evaluated: &mut u64,
    ccp: &mut u64,
) {
    for sl in s.subsets() {
        *evaluated += 1;
        let sr = s.difference(sl);
        if sl.is_empty() || sr.is_empty() {
            continue;
        }
        if !q.graph.is_connected(sl) || !q.graph.is_connected(sr) {
            continue;
        }
        if !q.graph.sets_connected(sl, sr) {
            continue;
        }
        *ccp += 1;
        push_candidate(q, model, memo, sl, sr, out);
    }
}

/// Prices `(sl, sr)` against the read-only memo and records the candidate.
fn push_candidate(
    q: &mpdp_core::QueryInfo,
    model: &dyn mpdp_cost::model::CostModel,
    memo: &MemoTable,
    sl: RelSet,
    sr: RelSet,
    out: &mut Vec<Candidate>,
) {
    let (el, er) = match (memo.get(sl), memo.get(sr)) {
        (Some(l), Some(r)) => (l, r),
        // Sub-entries are complete for all strictly smaller sets, so this
        // cannot happen; workers cannot return Result without complicating
        // the merge, so candidates for missing entries are skipped and the
        // final plan extraction reports the inconsistency.
        _ => return,
    };
    let sel = q.graph.selectivity_between(sl, sr);
    let rows = el.rows * er.rows * sel;
    let cost = model.join_cost(
        InputEst {
            cost: el.cost,
            rows: el.rows,
        },
        InputEst {
            cost: er.cost,
            rows: er.rows,
        },
        rows,
    );
    out.push(Candidate {
        set: sl.union(sr),
        left: sl,
        cost,
        rows,
    });
}

/// Runs a level-parallel algorithm with `threads` workers.
pub fn run_level_parallel(
    ctx: &OptContext<'_>,
    algo: LevelAlgo,
    threads: usize,
) -> Result<OptResult, OptError> {
    ctx.validate_exact()?;
    let q = ctx.query;
    let n = q.query_size();
    let mut memo = init_memo(q);
    let mut counters = Counters::default();
    let mut profile = Profile::default();

    let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);
    for i in 2..=n {
        ctx.check_deadline()?;
        // Frontier expansion (or legacy unrank + filter) — sequential here;
        // the frontier expansion of disjoint chunks is itself embarrassingly
        // parallel in principle and on the simulated GPU.
        let lvl = enumerator.level(ctx, i)?;
        let mut level = LevelStats {
            size: i,
            unranked: lvl.unranked,
            sets: lvl.sets.len() as u64,
            ..Default::default()
        };
        memo.reserve(lvl.sets.len());

        // Evaluate in parallel against the read-only memo.
        let memo_ref = &memo;
        let results: Vec<ChunkResult> = parallel_chunks(lvl.sets, threads, |chunk| {
            let mut r = ChunkResult {
                candidates: Vec::new(),
                evaluated: 0,
                ccp: 0,
            };
            for &s in chunk {
                match algo {
                    LevelAlgo::Mpdp => eval_set_mpdp(
                        q,
                        ctx.model,
                        memo_ref,
                        s,
                        &mut r.candidates,
                        &mut r.evaluated,
                        &mut r.ccp,
                    ),
                    LevelAlgo::DpSub => eval_set_dpsub(
                        q,
                        ctx.model,
                        memo_ref,
                        s,
                        &mut r.candidates,
                        &mut r.evaluated,
                        &mut r.ccp,
                    ),
                }
            }
            r
        });

        // Merge (deferred pruning).
        for r in results {
            level.evaluated += r.evaluated;
            level.ccp += r.ccp;
            for c in r.candidates {
                if memo.insert_if_better(c.set, c.left, c.cost, c.rows) {
                    level.memo_writes += 1;
                }
            }
        }
        counters.evaluated += level.evaluated;
        counters.ccp += level.ccp;
        counters.sets += level.sets;
        counters.unranked += level.unranked;
        profile.record(level);
    }
    finish(&memo, q, counters, profile)
}

/// PDP — parallel DPSIZE \[10\]: per level, the cross products of the
/// previous levels' plan lists are split among workers.
pub fn run_dpsize_parallel(ctx: &OptContext<'_>, threads: usize) -> Result<OptResult, OptError> {
    ctx.validate_exact()?;
    let q = ctx.query;
    let n = q.query_size();
    let mut memo = init_memo(q);
    let mut counters = Counters::default();
    let mut profile = Profile::default();
    let mut sets_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
    sets_by_size[1] = (0..n).map(RelSet::singleton).collect();
    let mut enumerator = LevelEnumerator::new(&q.graph, ctx.enumeration);

    for i in 2..=n {
        ctx.check_deadline()?;
        let mut level = LevelStats {
            size: i,
            ..Default::default()
        };
        if ctx.enumeration == EnumerationMode::Frontier {
            // The level's plan list comes straight from the enumerator; the
            // legacy path below discovers it from the workers' candidates.
            let lvl = enumerator.level(ctx, i)?;
            memo.reserve(lvl.sets.len());
            sets_by_size[i] = lvl.sets.to_vec();
        }
        // Work items: (k, index into left list). Workers scan the whole
        // right list per item.
        let mut items: Vec<(usize, RelSet)> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for k in 1..i {
            for &l in &sets_by_size[k] {
                items.push((i - k, l));
            }
        }
        let memo_ref = &memo;
        let sizes_ref = &sets_by_size;
        let results: Vec<ChunkResult> = parallel_chunks(&items, threads, |chunk| {
            let mut r = ChunkResult {
                candidates: Vec::new(),
                evaluated: 0,
                ccp: 0,
            };
            for &(rk, left) in chunk {
                for &right in &sizes_ref[rk] {
                    r.evaluated += 1;
                    if !left.is_disjoint(right) {
                        continue;
                    }
                    if !q.graph.sets_connected(left, right) {
                        continue;
                    }
                    r.ccp += 1;
                    push_candidate(q, ctx.model, memo_ref, left, right, &mut r.candidates);
                }
            }
            r
        });
        // Legacy mode discovers the level's list from the workers'
        // candidates; frontier mode already enumerated it above.
        let discover = ctx.enumeration != EnumerationMode::Frontier;
        let mut new_sets: HashMap<u64, ()> = HashMap::new();
        for r in results {
            level.evaluated += r.evaluated;
            level.ccp += r.ccp;
            for c in r.candidates {
                let is_new = discover && memo.get(c.set).is_none();
                if memo.insert_if_better(c.set, c.left, c.cost, c.rows) {
                    level.memo_writes += 1;
                }
                if is_new {
                    new_sets.insert(c.set.bits(), ());
                }
            }
        }
        if discover {
            level.sets = new_sets.len() as u64;
            let mut discovered: Vec<RelSet> = new_sets.keys().map(|&b| RelSet(b)).collect();
            discovered.sort_unstable();
            sets_by_size[i] = discovered;
        } else {
            level.sets = sets_by_size[i].len() as u64;
        }
        counters.evaluated += level.evaluated;
        counters.ccp += level.ccp;
        counters.sets += level.sets;
        profile.record(level);
    }
    finish(&memo, q, counters, profile)
}

/// Parallel MPDP on CPU ("MPDP (24CPU)" in Figures 6–9).
#[derive(Copy, Clone, Debug)]
pub struct MpdpCpu {
    /// Worker thread count.
    pub threads: usize,
}

impl JoinOrderOptimizer for MpdpCpu {
    fn name(&self) -> &'static str {
        "MPDP(CPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        run_level_parallel(ctx, LevelAlgo::Mpdp, self.threads)
    }
}

/// Parallel DPSUB on CPU.
#[derive(Copy, Clone, Debug)]
pub struct DpSubCpu {
    /// Worker thread count.
    pub threads: usize,
}

impl JoinOrderOptimizer for DpSubCpu {
    fn name(&self) -> &'static str {
        "DPSub(CPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        run_level_parallel(ctx, LevelAlgo::DpSub, self.threads)
    }
}

/// PDP — parallel DPSIZE on CPU \[10\].
#[derive(Copy, Clone, Debug)]
pub struct Pdp {
    /// Worker thread count.
    pub threads: usize,
}

impl JoinOrderOptimizer for Pdp {
    fn name(&self) -> &'static str {
        "PDP"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        run_dpsize_parallel(ctx, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::dpsub::DpSub;
    use mpdp_workload::gen;

    fn check_matches_sequential(q: &mpdp_core::QueryInfo) {
        let model = PgLikeCost::new();
        let ctx = OptContext::new(q, &model);
        let seq = DpSub::run(&ctx).unwrap();
        for threads in [1, 2, 4] {
            let par_mpdp = run_level_parallel(&ctx, LevelAlgo::Mpdp, threads).unwrap();
            assert!(
                (par_mpdp.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0),
                "mpdp threads={threads}"
            );
            assert_eq!(par_mpdp.counters.ccp, seq.counters.ccp);
            let par_sub = run_level_parallel(&ctx, LevelAlgo::DpSub, threads).unwrap();
            assert!((par_sub.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0));
            assert_eq!(par_sub.counters.evaluated, seq.counters.evaluated);
            let pdp = run_dpsize_parallel(&ctx, threads).unwrap();
            assert!((pdp.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_star() {
        let m = PgLikeCost::new();
        let q = gen::star(7, 3, &m).to_query_info().unwrap();
        check_matches_sequential(&q);
    }

    #[test]
    fn parallel_matches_sequential_on_cycle() {
        let m = PgLikeCost::new();
        let q = gen::cycle(7, 3, &m).to_query_info().unwrap();
        check_matches_sequential(&q);
    }

    #[test]
    fn parallel_matches_sequential_on_random() {
        let m = PgLikeCost::new();
        for seed in 0..3 {
            let q = gen::random_connected(8, 4, seed, &m)
                .to_query_info()
                .unwrap();
            check_matches_sequential(&q);
        }
    }

    #[test]
    fn frontier_and_unranked_modes_match_in_parallel() {
        let m = PgLikeCost::new();
        let q = gen::cycle(8, 5, &m).to_query_info().unwrap();
        let frontier = OptContext::new(&q, &m);
        let unranked = OptContext::new(&q, &m).with_enumeration(EnumerationMode::Unranked);
        for algo in [LevelAlgo::Mpdp, LevelAlgo::DpSub] {
            let f = run_level_parallel(&frontier, algo, 2).unwrap();
            let u = run_level_parallel(&unranked, algo, 2).unwrap();
            assert_eq!(f.cost.to_bits(), u.cost.to_bits());
            assert_eq!(f.counters.evaluated, u.counters.evaluated);
            assert_eq!(f.counters.ccp, u.counters.ccp);
            assert_eq!(f.counters.sets, u.counters.sets);
            assert_eq!(f.counters.unranked, 0);
            assert!(u.counters.unranked > 0);
        }
        let fp = run_dpsize_parallel(&frontier, 2).unwrap();
        let up = run_dpsize_parallel(&unranked, 2).unwrap();
        assert_eq!(fp.cost.to_bits(), up.cost.to_bits());
        assert_eq!(fp.counters, up.counters);
    }

    #[test]
    fn plans_validate() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(9, 3, 11, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let r = run_level_parallel(&ctx, LevelAlgo::Mpdp, 3).unwrap();
        assert!(r.plan.validate(&q.graph).is_none());
        assert_eq!(r.plan.num_rels(), 9);
    }
}
