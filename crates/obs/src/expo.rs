//! The unified exposition surface: one canonical Prometheus-text and
//! JSON renderer over every counter family the stack produces.
//!
//! [`ObsSnapshot`] is a plain value: the serve front-end, the cluster,
//! and the benches each assemble one from their own snapshots and call
//! [`ObsSnapshot::metrics_text`] / [`ObsSnapshot::to_json`], so the
//! metric names and label scheme live in exactly one place. Sections are
//! emitted only when populated — a serve-only snapshot renders the exact
//! byte-for-byte output `ServeFront::metrics_text` always produced, and
//! a cluster snapshot adds per-shard series without inventing a second
//! formatter.

use mpdp_core::counters::{CacheSnapshot, ServeSnapshot};
use std::fmt::Write;

use crate::hist::Hist64;

/// The `(name, value)` pairs of the serve-counter family, in exposition
/// order.
fn serve_fields(s: &ServeSnapshot) -> [(&'static str, u64); 11] {
    [
        ("accepted_total", s.accepted),
        ("shed_queue_full_total", s.shed_queue_full),
        ("shed_quota_total", s.shed_quota),
        ("completed_total", s.completed),
        ("failed_total", s.failed),
        ("queue_depth", s.queue_depth),
        ("queue_depth_peak", s.queue_depth_peak),
        ("in_flight", s.in_flight),
        ("worker_respawns_total", s.worker_respawns),
        ("reactor_respawns_total", s.reactor_respawns),
        ("abandoned_tickets_total", s.abandoned_tickets),
    ]
}

/// The `(name, value)` pairs of the cache-counter family, in exposition
/// order.
fn cache_fields(c: &CacheSnapshot) -> [(&'static str, u64); 10] {
    [
        ("hits_total", c.hits),
        ("misses_total", c.misses),
        ("coalesced_total", c.coalesced),
        ("degraded_total", c.degraded),
        ("deadline_exceeded_total", c.deadline_exceeded),
        ("insertions_total", c.insertions),
        ("evictions_total", c.evictions),
        ("expirations_total", c.expirations),
        ("feedback_checks_total", c.feedback_checks),
        ("feedback_invalidations_total", c.feedback_invalidations),
    ]
}

/// A unified snapshot of every counter family one component exposes.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// Front-end serve counters (`mpdp_serve_*`), when the component has
    /// an admission tier.
    pub serve: Option<ServeSnapshot>,
    /// Per-tenant cache counters (`mpdp_cache_*{tenant="..."}`), in
    /// exposition order.
    pub tenants: Vec<(String, CacheSnapshot)>,
    /// Per-shard cache counters (`mpdp_cluster_cache_*{shard="N"}`), in
    /// exposition order.
    pub shards: Vec<(u32, CacheSnapshot)>,
    /// Named latency histograms (`mpdp_latency_ns{series="...",q="P"}`),
    /// values in nanoseconds.
    pub hists: Vec<(String, Hist64)>,
}

impl ObsSnapshot {
    /// An empty snapshot to be filled section by section.
    pub fn new() -> ObsSnapshot {
        ObsSnapshot::default()
    }

    /// The exact field-wise [`CacheSnapshot::merge`] fold over the tenant
    /// section.
    pub fn tenant_total(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for (_, c) in &self.tenants {
            total.merge(c);
        }
        total
    }

    /// The exact field-wise [`CacheSnapshot::merge`] fold over the shard
    /// section.
    pub fn shard_total(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for (_, c) in &self.shards {
            total.merge(c);
        }
        total
    }

    /// Prometheus text exposition: serve counters first, then per-tenant
    /// cache series, per-shard cache series, and histogram quantiles.
    /// Empty sections emit nothing.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        if let Some(s) = &self.serve {
            for (name, v) in serve_fields(s) {
                let _ = writeln!(out, "mpdp_serve_{name} {v}");
            }
        }
        for (tenant, c) in &self.tenants {
            for (name, v) in cache_fields(c) {
                let _ = writeln!(out, "mpdp_cache_{name}{{tenant=\"{tenant}\"}} {v}");
            }
        }
        for (shard, c) in &self.shards {
            for (name, v) in cache_fields(c) {
                let _ = writeln!(out, "mpdp_cluster_cache_{name}{{shard=\"{shard}\"}} {v}");
            }
        }
        for (series, h) in &self.hists {
            let _ = writeln!(
                out,
                "mpdp_latency_count{{series=\"{series}\"}} {}",
                h.count()
            );
            let _ = writeln!(
                out,
                "mpdp_latency_ns_sum{{series=\"{series}\"}} {}",
                h.sum()
            );
            for (q, v) in [
                ("50", h.percentile(50.0)),
                ("90", h.percentile(90.0)),
                ("99", h.percentile(99.0)),
                ("100", h.max()),
            ] {
                let _ = writeln!(out, "mpdp_latency_ns{{series=\"{series}\",q=\"{q}\"}} {v}");
            }
        }
        out
    }

    /// One self-contained JSON object mirroring [`metrics_text`]'s
    /// sections (`serve`, `tenants`, `shards`, `hists`).
    ///
    /// [`metrics_text`]: ObsSnapshot::metrics_text
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match &self.serve {
            Some(s) => {
                out.push_str("\"serve\": {");
                for (i, (name, v)) in serve_fields(s).iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{name}\": {v}");
                }
                out.push_str("}, ");
            }
            None => out.push_str("\"serve\": null, "),
        }
        let cache_json = |c: &CacheSnapshot| {
            let mut s = String::from("{");
            for (i, (name, v)) in cache_fields(c).iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{name}\": {v}");
            }
            s.push('}');
            s
        };
        out.push_str("\"tenants\": {");
        for (i, (tenant, c)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{tenant}\": {}", cache_json(c));
        }
        out.push_str("}, \"shards\": {");
        for (i, (shard, c)) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{shard}\": {}", cache_json(c));
        }
        out.push_str("}, \"hists\": {");
        for (i, (series, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{series}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                h.count(),
                h.sum(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.min(),
                h.max()
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(hits: u64, misses: u64) -> CacheSnapshot {
        CacheSnapshot {
            hits,
            misses,
            coalesced: hits / 2,
            insertions: misses,
            evictions: 1,
            expirations: 0,
            feedback_checks: misses,
            feedback_invalidations: 0,
            degraded: 2,
            deadline_exceeded: 1,
        }
    }

    #[test]
    fn serve_section_matches_the_historical_front_end_format() {
        let snap = ObsSnapshot {
            serve: Some(ServeSnapshot {
                accepted: 5,
                completed: 4,
                failed: 1,
                ..Default::default()
            }),
            tenants: vec![("default".to_string(), cache(3, 2))],
            ..Default::default()
        };
        let text = snap.metrics_text();
        assert!(text.contains("mpdp_serve_accepted_total 5"));
        assert!(text.contains("mpdp_serve_completed_total 4"));
        assert!(text.contains("mpdp_serve_worker_respawns_total 0"));
        assert!(text.contains("mpdp_serve_abandoned_tickets_total 0"));
        assert!(text.contains("mpdp_cache_hits_total{tenant=\"default\"} 3"));
        assert!(text.contains("mpdp_cache_misses_total{tenant=\"default\"} 2"));
        assert!(text.contains("mpdp_cache_degraded_total{tenant=\"default\"} 2"));
        // No cluster or histogram lines appear for empty sections.
        assert!(!text.contains("mpdp_cluster_cache_"));
        assert!(!text.contains("mpdp_latency_"));
    }

    #[test]
    fn exposed_lines_sum_exactly_to_the_merge_fold() {
        // The exact-sum consistency contract: the per-label values the
        // text surface exposes, summed per field, equal the associative
        // CacheSnapshot::merge fold.
        let shards = vec![(0, cache(10, 4)), (1, cache(7, 9)), (2, cache(0, 1))];
        let snap = ObsSnapshot {
            shards: shards.clone(),
            ..Default::default()
        };
        let total = snap.shard_total();
        let text = snap.metrics_text();
        let sum_of = |name: &str| -> u64 {
            text.lines()
                .filter(|l| l.starts_with(&format!("mpdp_cluster_cache_{name}{{")))
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum()
        };
        assert_eq!(sum_of("hits_total"), total.hits);
        assert_eq!(sum_of("misses_total"), total.misses);
        assert_eq!(sum_of("coalesced_total"), total.coalesced);
        assert_eq!(sum_of("insertions_total"), total.insertions);
        assert_eq!(sum_of("degraded_total"), total.degraded);
        assert_eq!(sum_of("feedback_checks_total"), total.feedback_checks);
        // And the fold is what a hand sum says it is.
        assert_eq!(total.hits, 17);
        assert_eq!(total.misses, 14);
    }

    #[test]
    fn histogram_section_exposes_quantiles() {
        let mut h = Hist64::new();
        for v in [1_000u64, 2_000, 3_000, 400_000] {
            h.record(v);
        }
        let snap = ObsSnapshot {
            hists: vec![("hit".to_string(), h)],
            ..Default::default()
        };
        let text = snap.metrics_text();
        assert!(text.contains("mpdp_latency_count{series=\"hit\"} 4"));
        assert!(text.contains("mpdp_latency_ns{series=\"hit\",q=\"50\"}"));
        assert!(text.contains("mpdp_latency_ns{series=\"hit\",q=\"100\"} 400000"));
        let json = snap.to_json();
        assert!(json.contains("\"hit\": {\"count\": 4"));
        assert!(json.contains("\"serve\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
