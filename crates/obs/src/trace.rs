//! Structured span tracing with per-thread lock-free ring buffers.
//!
//! The discipline mirrors `mpdp-core::faults`: a [`Tracer`] is either
//! **disabled** (`inner: None` — every operation is one `Option`
//! discriminant branch, no clock read, no allocation, no atomic RMW) or
//! **armed** (a shared [`Arc`] of tracer state). Arming is a construction-
//! time decision, so production paths pay only the branch; because the
//! disabled path never observes the clock or touches shared state, tracing
//! cannot perturb the bit-identical plan/executor results the workspace's
//! determinism gates pin.
//!
//! When armed, each recording thread lazily registers one fixed-capacity
//! ring of atomic slots with the tracer. A finished span is written with
//! relaxed stores into the thread's own ring at `cursor % capacity`
//! (overwrite-oldest, single producer per ring), so recording is wait-free
//! and never contends across threads. [`Tracer::drain`] is meant for
//! quiescent collection (after a replay window); a drain racing live
//! producers may observe an in-flight slot as vacant or stale, never a
//! torn mix of two different spans' identifiers, because the `span` word
//! is cleared first and published last.
//!
//! Identity model: a [`Tracer`] mints one `trace` id per request
//! ([`Tracer::begin_request`]) and globally-unique `span` ids. A
//! [`SpanCtx`] is the cheap, cloneable propagation handle (threaded
//! through `PlanRequest` and the executor); [`SpanCtx::span`] opens a
//! child [`SpanGuard`] that records itself on drop. Zero-duration
//! *events* ([`SpanCtx::event`], [`Tracer::event`]) annotate a trace (or
//! the global timeline, `trace = 0`) with fault injections, routing
//! decisions and gossip rounds.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use mpdp_core::sync::lock_recover;

/// All tracer atomics use relaxed ordering: slots are single-producer and
/// drains are quiescent, so no store needs to order anything but itself.
const ORD: Ordering = Ordering::Relaxed;

/// A span site: where in the request path a span or event was recorded.
///
/// Kept as a dense index into a static name table (not a `&'static str`)
/// so a whole site fits one atomic slot word.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site(pub u16);

/// The span-site catalog (DESIGN.md §12). One constant per instrumented
/// point in the serve → cluster → service → strategy → executor path.
pub mod sites {
    use super::Site;

    /// Root span of one admitted request (opened at admission in the
    /// serve front-end, closed when its lease settles).
    pub const REQUEST: Site = Site(0);
    /// Routing decision event; `attr` is `shard_id + 1` for cluster
    /// backends, 0 for a single-service backend.
    pub const ROUTE: Site = Site(1);
    /// Plan cache hit event.
    pub const CACHE_HIT: Site = Site(2);
    /// Single-flight leader span: this request planned on behalf of every
    /// coalesced waiter.
    pub const FLIGHT_LEAD: Site = Site(3);
    /// Single-flight waiter span: parked on another request's flight;
    /// duration is the wait, `attr` the arrival order within the flight.
    pub const FLIGHT_WAIT: Site = Site(4);
    /// Planner strategy invocation span (the optimizer itself).
    pub const STRATEGY: Site = Site(5);
    /// Degraded service event: the request was answered by the heuristic
    /// fallback instead of its routed exact strategy.
    pub const DEGRADE: Site = Site(6);
    /// Executor hash-join build span; `attr` is build rows.
    pub const EXEC_BUILD: Site = Site(7);
    /// Executor probe span covering the whole morsel fan-out; `attr` is
    /// probe rows.
    pub const EXEC_PROBE: Site = Site(8);
    /// Per-worker morsel batch span inside one probe; `attr` is the
    /// number of morsels the worker processed.
    pub const EXEC_MORSELS: Site = Site(9);
    /// Injected fault fired at this point (`attr` is the fault site
    /// index) — chaos runs become causally readable timelines.
    pub const FAULT: Site = Site(10);
    /// Cluster anti-entropy round event; `attr` is the number of gossip
    /// deliveries the round made.
    pub const GOSSIP: Site = Site(11);
}

/// Site names, indexed by `Site.0`; `serve.request` is the root.
const NAMES: &[&str] = &[
    "serve.request",
    "serve.route",
    "cache.hit",
    "flight.lead",
    "flight.wait",
    "strategy.invoke",
    "service.degrade",
    "exec.build",
    "exec.probe",
    "exec.morsels",
    "fault.injected",
    "cluster.gossip",
];

impl Site {
    /// The catalog name of this site (`"site.unknown"` for out-of-catalog
    /// indices, so exports never panic on forward-versioned records).
    pub fn name(self) -> &'static str {
        NAMES
            .get(self.0 as usize)
            .copied()
            .unwrap_or("site.unknown")
    }
}

/// One recorded span (or zero-duration event) drained from the rings.
///
/// Timestamps are nanoseconds since the tracer's arming instant, so every
/// record of one tracer shares a clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Request trace id (0 for global events such as gossip rounds).
    pub trace: u64,
    /// Unique span id (never 0 — 0 marks a vacant ring slot).
    pub span: u64,
    /// Parent span id (0 for roots and global events).
    pub parent: u64,
    /// Where this span was recorded.
    pub site: Site,
    /// Start, nanoseconds since arming.
    pub start_ns: u64,
    /// End, nanoseconds since arming (`== start_ns` for events).
    pub end_ns: u64,
    /// Site-specific attribute (see the [`sites`] catalog).
    pub attr: u64,
}

impl SpanRec {
    /// Inclusive duration of this span (0 for events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Whether this record is a zero-duration event annotation.
    pub fn is_event(&self) -> bool {
        self.end_ns == self.start_ns
    }
}

/// One ring slot: a struct of atomics, not an `UnsafeCell` — relaxed
/// per-word stores keep recording safe under a racing drain without any
/// unsafe code. `span == 0` marks the slot vacant or mid-write.
#[derive(Default)]
struct Slot {
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    site: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    attr: AtomicU64,
}

/// A fixed-capacity overwrite-oldest span ring, one per recording thread.
struct Ring {
    slots: Box<[Slot]>,
    cursor: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let slots: Vec<Slot> = (0..capacity.max(1)).map(|_| Slot::default()).collect();
        Ring {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Single-producer append: claims the next slot (wrapping) and
    /// publishes the record, `span` word last.
    fn push(&self, rec: &SpanRec) {
        let i = self.cursor.fetch_add(1, ORD) % self.slots.len();
        let s = &self.slots[i];
        s.span.store(0, ORD);
        s.trace.store(rec.trace, ORD);
        s.parent.store(rec.parent, ORD);
        s.site.store(rec.site.0 as u64, ORD);
        s.start.store(rec.start_ns, ORD);
        s.end.store(rec.end_ns, ORD);
        s.attr.store(rec.attr, ORD);
        s.span.store(rec.span, ORD);
    }

    /// Copies every occupied slot out and vacates the ring.
    fn drain_into(&self, out: &mut Vec<SpanRec>) {
        for s in self.slots.iter() {
            let span = s.span.load(ORD);
            if span == 0 {
                continue;
            }
            out.push(SpanRec {
                trace: s.trace.load(ORD),
                span,
                parent: s.parent.load(ORD),
                site: Site(s.site.load(ORD) as u16),
                start_ns: s.start.load(ORD),
                end_ns: s.end.load(ORD),
                attr: s.attr.load(ORD),
            });
            s.span.store(0, ORD);
        }
        self.cursor.store(0, ORD);
    }
}

/// Shared state of an armed tracer.
struct Armed {
    /// Distinguishes tracers in the per-thread ring registry (monotonic,
    /// never reused).
    id: u64,
    /// Clock origin: every timestamp is `epoch.elapsed()`.
    epoch: Instant,
    /// Per-thread ring capacity, in spans.
    capacity: usize,
    /// Next span id (starts at 1; 0 is the vacant-slot marker).
    next_span: AtomicU64,
    /// Next request trace id (starts at 1; 0 is the global timeline).
    next_trace: AtomicU64,
    /// Every ring any thread registered, for draining.
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// Monotonic armed-tracer id source.
static NEXT_TRACER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's rings, keyed by tracer id. Entries hold `Weak` so a
    /// dropped tracer's rings are freed with it; dead entries are purged
    /// on the next lookup.
    static RINGS: RefCell<Vec<(u64, Weak<Ring>)>> = const { RefCell::new(Vec::new()) };
}

impl Armed {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The calling thread's ring for this tracer, registering one on
    /// first use.
    fn ring(&self) -> Arc<Ring> {
        RINGS.with(|cell| {
            let mut regs = cell.borrow_mut();
            regs.retain(|(_, w)| w.strong_count() > 0);
            if let Some(r) = regs
                .iter()
                .find(|(id, _)| *id == self.id)
                .and_then(|(_, w)| w.upgrade())
            {
                return r;
            }
            let r = Arc::new(Ring::new(self.capacity));
            lock_recover(&self.rings).push(r.clone());
            regs.push((self.id, Arc::downgrade(&r)));
            r
        })
    }

    fn push(&self, rec: &SpanRec) {
        self.ring().push(rec);
    }
}

/// The tracing handle: disabled by default, armed by construction.
///
/// Cloning shares the armed state (like `Faults`), so one tracer can be
/// handed to the serve front-end, the cluster, and the executor and all
/// records land in one drainable set.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Armed>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("armed", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// The disabled tracer: every operation is one branch.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Arms a tracer with `capacity_per_thread` span slots in each
    /// recording thread's ring (overwrite-oldest beyond that).
    pub fn armed(capacity_per_thread: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Armed {
                id: NEXT_TRACER.fetch_add(1, ORD),
                epoch: Instant::now(),
                capacity: capacity_per_thread,
                next_span: AtomicU64::new(1),
                next_trace: AtomicU64::new(1),
                rings: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Mints a fresh trace id and opens its root span at `site`
    /// (conventionally [`sites::REQUEST`]). Disabled tracers return an
    /// inert guard without touching the clock.
    pub fn begin_request(&self, site: Site) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(a) => {
                let trace = a.next_trace.fetch_add(1, ORD);
                SpanGuard::start(a.clone(), trace, 0, site)
            }
        }
    }

    /// Records a zero-duration event on the global timeline (`trace = 0`)
    /// — gossip rounds, topology changes.
    pub fn event(&self, site: Site, attr: u64) {
        if let Some(a) = &self.inner {
            let now = a.now_ns();
            let span = a.next_span.fetch_add(1, ORD);
            a.push(&SpanRec {
                trace: 0,
                span,
                parent: 0,
                site,
                start_ns: now,
                end_ns: now,
                attr,
            });
        }
    }

    /// Nanoseconds since arming (0 when disabled) — lets harnesses put
    /// wall-clock thresholds on the same clock as the spans.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |a| a.now_ns())
    }

    /// Collects and vacates every thread's ring. Intended for quiescent
    /// use (between replay windows); a drain racing live producers may
    /// miss the spans being written at that instant.
    pub fn drain(&self) -> Vec<SpanRec> {
        let mut out = Vec::new();
        if let Some(a) = &self.inner {
            let rings: Vec<Arc<Ring>> = lock_recover(&a.rings).clone();
            for ring in rings {
                ring.drain_into(&mut out);
            }
            out.sort_by_key(|r| (r.trace, r.start_ns, r.span));
        }
        out
    }
}

/// The cheap propagation handle: which trace (and parent span) work on
/// behalf of a request should attach to. `Default` is the disabled
/// context, so `PlanRequest::default()` stays tracing-free.
#[derive(Clone, Default)]
pub struct SpanCtx {
    inner: Option<Arc<Armed>>,
    trace: u64,
    parent: u64,
}

impl std::fmt::Debug for SpanCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanCtx")
            .field("armed", &self.inner.is_some())
            .field("trace", &self.trace)
            .field("parent", &self.parent)
            .finish()
    }
}

impl SpanCtx {
    /// The disabled context.
    pub fn none() -> SpanCtx {
        SpanCtx::default()
    }

    /// Whether spans opened from this context record anywhere.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id this context attaches to (0 when disabled).
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Opens a child span at `site`; it records itself when the returned
    /// guard drops.
    pub fn span(&self, site: Site) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::disabled(),
            Some(a) => SpanGuard::start(a.clone(), self.trace, self.parent, site),
        }
    }

    /// Records a zero-duration event under this context's parent span.
    pub fn event(&self, site: Site, attr: u64) {
        if let Some(a) = &self.inner {
            let now = a.now_ns();
            let span = a.next_span.fetch_add(1, ORD);
            a.push(&SpanRec {
                trace: self.trace,
                span,
                parent: self.parent,
                site,
                start_ns: now,
                end_ns: now,
                attr,
            });
        }
    }
}

/// Live-span state carried by an armed [`SpanGuard`].
struct GuardInner {
    armed: Arc<Armed>,
    trace: u64,
    span: u64,
    parent: u64,
    site: Site,
    start_ns: u64,
    attr: u64,
}

/// An open span; records `(start, end]` into the dropping thread's ring
/// when dropped. The inert (disabled) guard is a no-op on every path.
#[derive(Default)]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("armed", &self.inner.is_some())
            .finish()
    }
}

impl SpanGuard {
    /// The inert guard (what disabled tracers hand out).
    pub fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    fn start(armed: Arc<Armed>, trace: u64, parent: u64, site: Site) -> SpanGuard {
        let span = armed.next_span.fetch_add(1, ORD);
        let start_ns = armed.now_ns();
        SpanGuard {
            inner: Some(GuardInner {
                armed,
                trace,
                span,
                parent,
                site,
                start_ns,
                attr: 0,
            }),
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// A context whose children attach under this span.
    pub fn ctx(&self) -> SpanCtx {
        match &self.inner {
            None => SpanCtx::default(),
            Some(g) => SpanCtx {
                inner: Some(g.armed.clone()),
                trace: g.trace,
                parent: g.span,
            },
        }
    }

    /// Sets the site-specific attribute recorded with this span.
    pub fn set_attr(&mut self, attr: u64) {
        if let Some(g) = &mut self.inner {
            g.attr = attr;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            let end_ns = g.armed.now_ns();
            g.armed.push(&SpanRec {
                trace: g.trace,
                span: g.span,
                parent: g.parent,
                site: g.site,
                start_ns: g.start_ns,
                end_ns,
                attr: g.attr,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_armed());
        let root = t.begin_request(sites::REQUEST);
        assert!(!root.is_armed());
        let ctx = root.ctx();
        assert!(!ctx.is_armed());
        let child = ctx.span(sites::STRATEGY);
        ctx.event(sites::FAULT, 3);
        t.event(sites::GOSSIP, 1);
        drop(child);
        drop(root);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn spans_nest_and_drain_with_parentage() {
        let t = Tracer::armed(128);
        let mut root = t.begin_request(sites::REQUEST);
        root.set_attr(42);
        let ctx = root.ctx();
        ctx.event(sites::ROUTE, 3);
        {
            let lead = ctx.span(sites::FLIGHT_LEAD);
            let _strategy = lead.ctx().span(sites::STRATEGY);
        }
        drop(root);
        let recs = t.drain();
        assert_eq!(recs.len(), 4);
        let root_rec = recs.iter().find(|r| r.site == sites::REQUEST).unwrap();
        let route = recs.iter().find(|r| r.site == sites::ROUTE).unwrap();
        let lead = recs.iter().find(|r| r.site == sites::FLIGHT_LEAD).unwrap();
        let strat = recs.iter().find(|r| r.site == sites::STRATEGY).unwrap();
        assert_eq!(root_rec.parent, 0);
        assert_eq!(root_rec.attr, 42);
        assert!(root_rec.trace > 0);
        assert!(recs.iter().all(|r| r.trace == root_rec.trace));
        assert_eq!(route.parent, root_rec.span);
        assert!(route.is_event());
        assert_eq!(lead.parent, root_rec.span);
        assert_eq!(strat.parent, lead.span);
        // Children close before (or when) their parents do.
        assert!(strat.end_ns <= lead.end_ns);
        assert!(lead.end_ns <= root_rec.end_ns);
        // Drain vacated the rings.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn distinct_requests_get_distinct_traces() {
        let t = Tracer::armed(64);
        let a = t.begin_request(sites::REQUEST);
        let b = t.begin_request(sites::REQUEST);
        let (ta, tb) = (a.ctx().trace_id(), b.ctx().trace_id());
        assert_ne!(ta, tb);
        drop(a);
        drop(b);
        let recs = t.drain();
        assert_eq!(recs.len(), 2);
        assert_ne!(recs[0].trace, recs[1].trace);
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let t = Tracer::armed(4);
        for _ in 0..10 {
            drop(t.begin_request(sites::REQUEST));
        }
        let recs = t.drain();
        assert_eq!(recs.len(), 4);
        // The survivors are the newest four traces (7..=10).
        let mut traces: Vec<u64> = recs.iter().map(|r| r.trace).collect();
        traces.sort_unstable();
        assert_eq!(traces, vec![7, 8, 9, 10]);
    }

    #[test]
    fn threads_record_into_private_rings() {
        let t = Tracer::armed(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..8 {
                        drop(t.begin_request(sites::REQUEST));
                    }
                });
            }
        });
        assert_eq!(t.drain().len(), 32);
    }

    #[test]
    fn global_events_live_on_trace_zero() {
        let t = Tracer::armed(16);
        t.event(sites::GOSSIP, 5);
        let recs = t.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].trace, 0);
        assert_eq!(recs[0].attr, 5);
        assert!(recs[0].is_event());
    }

    #[test]
    fn site_names_resolve() {
        assert_eq!(sites::REQUEST.name(), "serve.request");
        assert_eq!(sites::GOSSIP.name(), "cluster.gossip");
        assert_eq!(Site(999).name(), "site.unknown");
    }
}
