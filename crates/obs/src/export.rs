//! Span exports: Chrome-trace JSON, flamegraph tables, span trees, and
//! the complete-trace acceptance predicate.
//!
//! Everything here consumes the flat `Vec<SpanRec>` a [`Tracer`]
//! (`crate::trace::Tracer`) drains and needs no allocation-time
//! cooperation from the recording side.
//!
//! [`Tracer`]: crate::trace::Tracer

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write;

use crate::trace::{sites, SpanRec};

/// Renders spans in the Chrome trace event format (the JSON object form,
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` and Perfetto.
///
/// Mapping: one process, `tid` = trace id (so each request reads as one
/// track, the global timeline as track 0), complete (`"X"`) events for
/// spans and instant (`"i"`) events for zero-duration annotations;
/// timestamps in microseconds with nanosecond precision preserved as
/// fractions.
pub fn chrome_trace_json(spans: &[SpanRec]) -> String {
    let mut out = String::with_capacity(spans.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = r.start_ns as f64 / 1e3;
        if r.is_event() {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"mpdp\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts:.3},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"span\":{},\"parent\":{},\"attr\":{}}}}}",
                r.site.name(),
                r.trace,
                r.span,
                r.parent,
                r.attr
            );
        } else {
            let dur = r.duration_ns() as f64 / 1e3;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"mpdp\",\"ph\":\"X\",\
                 \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"span\":{},\"parent\":{},\"attr\":{}}}}}",
                r.site.name(),
                r.trace,
                r.span,
                r.parent,
                r.attr
            );
        }
    }
    out.push_str("]}");
    out
}

/// One row of the flamegraph table: aggregate time at a site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteAgg {
    /// Site name (from the catalog).
    pub site: &'static str,
    /// Spans recorded at this site (events excluded).
    pub count: u64,
    /// Summed span durations.
    pub inclusive_ns: u64,
    /// Inclusive time minus time attributed to direct children
    /// (saturating per span — overlapping child clocks can't drive a
    /// site negative).
    pub exclusive_ns: u64,
}

/// Aggregates spans into per-site inclusive/exclusive totals, sorted by
/// inclusive time descending. Events contribute nothing; a span's
/// exclusive time subtracts only its *direct* children.
pub fn flamegraph(spans: &[SpanRec]) -> Vec<SiteAgg> {
    let mut child_time: HashMap<u64, u64> = HashMap::new();
    for r in spans {
        if !r.is_event() && r.parent != 0 {
            *child_time.entry(r.parent).or_insert(0) += r.duration_ns();
        }
    }
    let mut by_site: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for r in spans {
        if r.is_event() {
            continue;
        }
        let inc = r.duration_ns();
        let exc = inc.saturating_sub(child_time.get(&r.span).copied().unwrap_or(0));
        let slot = by_site.entry(r.site.name()).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += inc;
        slot.2 += exc;
    }
    let mut rows: Vec<SiteAgg> = by_site
        .into_iter()
        .map(|(site, (count, inclusive_ns, exclusive_ns))| SiteAgg {
            site,
            count,
            inclusive_ns,
            exclusive_ns,
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.inclusive_ns));
    rows
}

/// Renders the flamegraph table as aligned text (site, span count,
/// inclusive/exclusive milliseconds, mean inclusive microseconds).
pub fn render_flamegraph(rows: &[SiteAgg]) -> String {
    let mut out = String::new();
    out.push_str("site              count  incl_ms    excl_ms    mean_incl_us\n");
    for r in rows {
        let mean_us = if r.count == 0 {
            0.0
        } else {
            r.inclusive_ns as f64 / r.count as f64 / 1e3
        };
        let _ = writeln!(
            out,
            "{:<17} {:>6}  {:>9.3}  {:>9.3}  {:>12.2}",
            r.site,
            r.count,
            r.inclusive_ns as f64 / 1e6,
            r.exclusive_ns as f64 / 1e6,
            mean_us
        );
    }
    out
}

/// Groups records by trace id (the global timeline, trace 0, included
/// under key 0), each group sorted by start time.
pub fn by_trace(spans: &[SpanRec]) -> BTreeMap<u64, Vec<SpanRec>> {
    let mut map: BTreeMap<u64, Vec<SpanRec>> = BTreeMap::new();
    for r in spans {
        map.entry(r.trace).or_default().push(*r);
    }
    for group in map.values_mut() {
        group.sort_by_key(|r| (r.start_ns, r.span));
    }
    map
}

/// Renders one trace's records as an indented span tree; spans whose
/// parent is missing (overwritten in the ring) surface as extra roots
/// rather than disappearing.
pub fn render_tree(trace: &[SpanRec]) -> String {
    let present: HashMap<u64, ()> = trace.iter().map(|r| (r.span, ())).collect();
    let mut children: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    let mut roots: Vec<&SpanRec> = Vec::new();
    for r in trace {
        if r.parent != 0 && present.contains_key(&r.parent) {
            children.entry(r.parent).or_default().push(r);
        } else {
            roots.push(r);
        }
    }
    fn emit(out: &mut String, r: &SpanRec, depth: usize, children: &BTreeMap<u64, Vec<&SpanRec>>) {
        let indent = "  ".repeat(depth);
        if r.is_event() {
            let _ = writeln!(
                out,
                "{indent}* {} @ {:.3} ms (attr={})",
                r.site.name(),
                r.start_ns as f64 / 1e6,
                r.attr
            );
        } else {
            let _ = writeln!(
                out,
                "{indent}- {} {:.3} ms [{:.3}..{:.3}] (attr={})",
                r.site.name(),
                r.duration_ns() as f64 / 1e6,
                r.start_ns as f64 / 1e6,
                r.end_ns as f64 / 1e6,
                r.attr
            );
        }
        if let Some(kids) = children.get(&r.span) {
            let mut kids = kids.clone();
            kids.sort_by_key(|k| (k.start_ns, k.span));
            for k in kids {
                emit(out, k, depth + 1, children);
            }
        }
    }
    let mut out = String::new();
    roots.sort_by_key(|r| (r.start_ns, r.span));
    for r in roots {
        emit(&mut out, r, 0, &children);
    }
    out
}

/// The acceptance predicate for one request trace: a complete tree walks
/// every tier — an admission root ([`sites::REQUEST`]), a routing
/// decision ([`sites::ROUTE`]), a planning disposition (cache hit,
/// flight lead/wait, strategy invocation, or degrade), and an executor
/// span (build/probe/morsels).
pub fn trace_is_complete(trace: &[SpanRec]) -> bool {
    let has = |pred: &dyn Fn(&SpanRec) -> bool| trace.iter().any(pred);
    has(&|r| r.site == sites::REQUEST)
        && has(&|r| r.site == sites::ROUTE)
        && has(&|r| {
            matches!(
                r.site,
                s if s == sites::CACHE_HIT
                    || s == sites::FLIGHT_LEAD
                    || s == sites::FLIGHT_WAIT
                    || s == sites::STRATEGY
                    || s == sites::DEGRADE
            )
        })
        && has(&|r| {
            matches!(
                r.site,
                s if s == sites::EXEC_BUILD || s == sites::EXEC_PROBE || s == sites::EXEC_MORSELS
            )
        })
}

/// Counts `(complete, total)` over every request trace (traces containing
/// a [`sites::REQUEST`] span; the global timeline is ignored).
pub fn completeness(spans: &[SpanRec]) -> (usize, usize) {
    let mut complete = 0;
    let mut total = 0;
    for (trace, group) in by_trace(spans) {
        if trace == 0 || !group.iter().any(|r| r.site == sites::REQUEST) {
            continue;
        }
        total += 1;
        if trace_is_complete(&group) {
            complete += 1;
        }
    }
    (complete, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Site, SpanRec};

    fn rec(trace: u64, span: u64, parent: u64, site: Site, start: u64, end: u64) -> SpanRec {
        SpanRec {
            trace,
            span,
            parent,
            site,
            start_ns: start,
            end_ns: end,
            attr: 0,
        }
    }

    fn full_trace(trace: u64, base_span: u64) -> Vec<SpanRec> {
        vec![
            rec(trace, base_span, 0, sites::REQUEST, 0, 10_000),
            rec(trace, base_span + 1, base_span, sites::ROUTE, 100, 100),
            rec(trace, base_span + 2, base_span, sites::STRATEGY, 200, 6_000),
            rec(
                trace,
                base_span + 3,
                base_span,
                sites::EXEC_PROBE,
                6_500,
                9_000,
            ),
        ]
    }

    #[test]
    fn chrome_json_is_wellformed_and_typed() {
        let spans = full_trace(1, 1);
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"serve.request\""));
        assert!(json.contains("\"ph\":\"X\""));
        // The route event renders as an instant.
        assert!(json.contains("\"ph\":\"i\""));
        assert_eq!(json.matches("{\"name\":").count(), spans.len());
        // Balanced braces — cheap structural sanity without a parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn flamegraph_attributes_exclusive_time_to_parents() {
        let spans = full_trace(1, 1);
        let rows = flamegraph(&spans);
        let req = rows.iter().find(|r| r.site == "serve.request").unwrap();
        assert_eq!(req.inclusive_ns, 10_000);
        // 10_000 - (5_800 strategy + 2_500 probe) = 1_700 exclusive.
        assert_eq!(req.exclusive_ns, 1_700);
        let strat = rows.iter().find(|r| r.site == "strategy.invoke").unwrap();
        assert_eq!(strat.inclusive_ns, strat.exclusive_ns);
        // Sorted by inclusive descending: the root leads.
        assert_eq!(rows[0].site, "serve.request");
        let text = render_flamegraph(&rows);
        assert!(text.contains("serve.request"));
        assert!(text.contains("incl_ms"));
    }

    #[test]
    fn tree_renders_nested_and_orphans_surface() {
        let mut spans = full_trace(7, 10);
        // An orphan whose parent was overwritten in the ring.
        spans.push(rec(7, 99, 55, sites::EXEC_MORSELS, 7_000, 8_000));
        let text = render_tree(&spans);
        assert!(text.contains("- serve.request"));
        assert!(text.contains("  * serve.route"));
        assert!(text.contains("  - strategy.invoke"));
        assert!(
            text.contains("\n- exec.morsels"),
            "orphan is a root: {text}"
        );
    }

    #[test]
    fn completeness_counts_only_request_traces() {
        let mut spans = full_trace(1, 1);
        // Trace 2: no executor span — incomplete.
        spans.push(rec(2, 50, 0, sites::REQUEST, 0, 1_000));
        spans.push(rec(2, 51, 50, sites::ROUTE, 10, 10));
        spans.push(rec(2, 52, 50, sites::CACHE_HIT, 20, 20));
        // Global gossip event: ignored.
        spans.push(rec(0, 60, 0, sites::GOSSIP, 5, 5));
        let (complete, total) = completeness(&spans);
        assert_eq!((complete, total), (1, 2));
        spans.push(rec(2, 53, 50, sites::EXEC_PROBE, 30, 400));
        assert_eq!(completeness(&spans), (2, 2));
    }
}
