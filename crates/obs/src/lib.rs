//! # mpdp-obs
//!
//! The observability layer of the MPDP stack: request-scoped span
//! tracing, log-bucketed latency histograms, and the single canonical
//! metrics-exposition surface every tier shares.
//!
//! Three design rules govern everything here (DESIGN.md §12):
//!
//! 1. **Disabled means free.** A disarmed [`Tracer`] (like a disarmed
//!    `mpdp-core::faults::Faults`) costs one `Option` discriminant branch
//!    per site — no clock read, no atomic RMW, no allocation — so
//!    production paths and the perf-gated benches are unperturbed.
//! 2. **Armed means wait-free and deterministic-output-safe.** Recording
//!    writes relaxed atomics into the recording thread's own fixed ring
//!    (overwrite-oldest); tracing never takes a lock on a request path
//!    and never feeds back into planning or execution, so armed runs stay
//!    bit-identical to untraced ones.
//! 3. **One formatter.** Counters are exposed through
//!    [`ObsSnapshot`] only; serve, cluster and the benches assemble
//!    sections instead of each owning a private `metrics_text`.

#![warn(missing_docs)]

pub mod expo;
pub mod export;
pub mod hist;
pub mod trace;

pub use expo::ObsSnapshot;
pub use export::{
    by_trace, chrome_trace_json, completeness, flamegraph, render_flamegraph, render_tree,
    trace_is_complete, SiteAgg,
};
pub use hist::Hist64;
pub use trace::{sites, Site, SpanCtx, SpanGuard, SpanRec, Tracer};
