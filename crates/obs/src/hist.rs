//! Log-bucketed `u64` histograms with bounded relative error.
//!
//! [`Hist64`] buckets a value by its binary octave split into 32 linear
//! sub-buckets (`SUB_BITS = 5`): values below 32 are stored exactly, and
//! every larger bucket spans `2^(exp-5)` consecutive values starting at
//! `2^exp`. Reading a bucket back as its midpoint bounds the relative
//! error by `2^(exp-5) / (2 · 2^exp) = 1/64 ≈ 1.6%` — under the 2% budget
//! the serving benches need for p50/p99 columns.
//!
//! Like [`CacheSnapshot::merge`](mpdp_core::counters::CacheSnapshot::merge),
//! [`Hist64::merge`] is an exact field-wise sum, so per-worker or per-window
//! histograms fold associatively into cluster-wide ones. The struct is
//! fixed-size (`BUCKETS` slots of `u64`, ~15 KiB), so an open-loop bench
//! window costs the same memory at 1k and at 10M recorded latencies —
//! unlike the sort-the-whole-`Vec` percentile code it replaces.

/// Linear sub-bucket bits per octave. 32 sub-buckets ⇒ ≤ 1/64 relative
/// error at the bucket midpoint.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: octaves 5..=63 each contribute `SUBS` buckets on
/// top of the 32 exact small-value slots, and `bucket_of(u64::MAX)` lands
/// on the last one (index `BUCKETS - 1`).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & (SUBS as u64 - 1);
        ((exp - SUB_BITS + 1) << SUB_BITS) as usize + sub as usize
    }
}

/// The representative (midpoint) value of bucket `i` — the value quantile
/// queries report for any sample that landed there.
#[inline]
fn bucket_mid(i: usize) -> u64 {
    if i < 2 * SUBS {
        // Octaves 0..=5 are exact: one value per bucket.
        i as u64
    } else {
        let exp = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (i & (SUBS - 1)) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        let lo = (1u64 << exp) + sub * width;
        lo + width / 2
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (typically
/// nanoseconds), ~1.6% worst-case relative error on quantiles.
#[derive(Clone)]
pub struct Hist64 {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist64 {
    fn default() -> Self {
        Hist64::new()
    }
}

impl std::fmt::Debug for Hist64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist64")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Hist64 {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist64 {
            buckets: Box::new([0u64; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating at
    /// `u64::MAX` — ~584 years).
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile (`p` in 0..=100): the representative value
    /// of the bucket holding the ceil(p/100·count)-th smallest sample,
    /// clamped to the exact observed min/max. Matches the convention of
    /// `mpdp_bench::stats::percentile` up to the ≤1.6% bucket error. O(1)
    /// in the sample count. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Field-wise sum with another histogram — exact and associative, the
    /// same discipline as `CacheSnapshot::merge`, so per-shard or
    /// per-window histograms fold into aggregates without re-recording.
    pub fn merge(&mut self, other: &Hist64) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist64::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // Octaves 0..=5 are one-value buckets: every percentile lands on a
        // real recorded value.
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.count(), 64);
        assert_eq!(h.sum(), (0..64).sum::<u64>());
    }

    #[test]
    fn relative_error_is_under_two_percent() {
        // Every representative stays within 1/64 of any value in its
        // bucket, across the full range.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let mid = bucket_mid(bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-12, "v={v} mid={mid} err={err}");
            v = v.saturating_mul(3) / 2 + 1;
        }
        // The extremes map in range.
        assert!(bucket_of(u64::MAX) < BUCKETS);
        assert_eq!(bucket_of(0), 0);
    }

    #[test]
    fn percentiles_track_nearest_rank_within_bound() {
        // Compare against the sort-the-vec convention this histogram
        // replaces, on a deliberately skewed sample set.
        let mut h = Hist64::new();
        let mut xs: Vec<u64> = Vec::new();
        let mut x = 7u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 100 + (x % 1_000_000) + if i % 97 == 0 { 50_000_000 } else { 0 };
            h.record(v);
            xs.push(v);
        }
        xs.sort_unstable();
        for p in [50.0, 90.0, 99.0, 99.9] {
            let rank = (((p / 100.0) * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1] as f64;
            let approx = h.percentile(p) as f64;
            assert!(
                (approx - exact).abs() / exact <= 0.02,
                "p{p}: exact {exact} approx {approx}"
            );
        }
        assert_eq!(h.min(), *xs.first().unwrap());
        assert_eq!(h.max(), *xs.last().unwrap());
    }

    #[test]
    fn merge_is_exact_fieldwise_sum() {
        let mut a = Hist64::new();
        let mut b = Hist64::new();
        let mut all = Hist64::new();
        for v in [3u64, 40, 1_000, 65_537, 12, 9_999_999] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 77, 4_096, 123_456_789] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p), "p={p}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Hist64::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
