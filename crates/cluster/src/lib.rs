//! `mpdp-cluster` — the sharded planning tier.
//!
//! PRs 3–8 scaled one [`PlanService`] to ~136k plans/s on a single core;
//! past that, the shared cache and flight table are the wall. This crate
//! is the next multiplier the ROADMAP names: N *independent* services
//! ("shards", each with its own cache, flight table and counters) placed
//! behind consistent hashing on the query fingerprint, so aggregate
//! throughput scales with shard count while each query still enjoys a
//! warm, single-flighted cache.
//!
//! Three mechanisms carry the design:
//!
//! * **Consistent-hash routing** — an [`mpdp_core::ring::HashRing`] (vnode
//!   ring, deterministic from a seed) maps each canonical fingerprint to
//!   its owning shard. Adding or removing a shard moves only ~1/N of the
//!   fingerprints (and the movers all land on the new shard), so a rehash
//!   does not cold-start the survivors' caches.
//! * **Hot-template replication** — a Zipf-skewed workload concentrates on
//!   a head of templates; with pure ownership routing the head serializes
//!   on one shard and the model speedup stalls well short of N. Templates
//!   whose routed-request count crosses [`ClusterConfig::hot_threshold`]
//!   are instead served round-robin across their ring replica set (the
//!   first [`ClusterConfig::replicas`] distinct shards after the key's
//!   position). Each replica cold-plans the template once on first
//!   arrival and serves hits thereafter — replication is a routing policy
//!   plus organic cache fill, not a plan-shipping protocol.
//! * **Feedback gossip** — cardinality feedback
//!   ([`PlanService::observe`]-style invalidations and the executor's
//!   `selectivity_overrides`) recorded on one shard must take effect on
//!   every replica, or the hot head keeps serving a plan its own
//!   execution disproved. Each observation becomes an event in the
//!   origin shard's log; [`PlanCluster::run_gossip_round`] performs one
//!   anti-entropy round in which every shard pushes its log to both of
//!   its neighbours on the (ordered) shard ring. An event therefore
//!   travels one hop in each direction per round and reaches all N
//!   shards within `floor(N/2)` rounds — the staleness bound
//!   [`PlanCluster::staleness_bound`] returns and the tests assert.
//!
//! The tier is in-process (shards are `Arc<PlanService>`s, gossip rounds
//! are method calls) — the unit under study is the *policy* (ring,
//! replication threshold, staleness bound), measured by `repro cluster`
//! with the same model-normalized methodology the parallel-planning
//! benches use on the 1-core container.

#![warn(missing_docs)]

use mpdp::service::{cache_key, PlanRequest, PlanService, PlanServiceBuilder, ServedPlan};
use mpdp_core::counters::CacheSnapshot;
use mpdp_core::fingerprint::{canonicalize, Fingerprint};
use mpdp_core::ring::{HashRing, DEFAULT_VNODES};
use mpdp_core::sync::lock_recover;
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_exec::feedback::selectivity_overrides;
use mpdp_exec::ExecReport;
use mpdp_obs::{sites, ObsSnapshot, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Configuration for [`PlanCluster`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shards to start with.
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Ring seed: the same seed and shard set always produce the same
    /// routing (tests and benches replay routing decisions exactly).
    pub seed: u64,
    /// Routed-request count at which a template is declared hot and its
    /// traffic spreads round-robin over the replica set.
    pub hot_threshold: u64,
    /// Replica-set size R for hot templates (clamped to the shard count).
    pub replicas: usize,
    /// Per-shard service template; each shard builds its own independent
    /// `PlanService` from a clone of this builder.
    pub service: PlanServiceBuilder,
    /// Span tracer: gossip rounds record a global `cluster.gossip` event
    /// (attr = deliveries) on it. Disabled by default; a serving front-end
    /// propagates its own armed handle here.
    pub tracer: Tracer,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            vnodes: DEFAULT_VNODES,
            seed: 0x6d70_6470, // "mpdp"
            hot_threshold: 32,
            replicas: 2,
            service: PlanServiceBuilder::new(),
            tracer: Tracer::disabled(),
        }
    }
}

/// One gossip event: an observation made on some shard that every other
/// shard must eventually apply. `(origin, seq)` identifies it globally.
#[derive(Clone, Debug)]
struct Event {
    origin: u32,
    seq: u64,
    payload: Payload,
}

#[derive(Clone, Debug)]
enum Payload {
    /// Evict the plan under `key` (already model-folded) if its cached
    /// estimate deviates from `observed_rows` beyond the receiving
    /// shard's feedback threshold. Carrying the key rather than the
    /// model keeps events self-contained: a replica applies one with
    /// [`PlanService::invalidate_key_if_stale`], no model handle needed.
    Invalidate {
        key: Fingerprint,
        observed_rows: f64,
    },
    /// Corrected per-edge selectivities observed for a fingerprint, for
    /// any shard re-planning that template after the eviction.
    Overrides { fp: u128, edges: Vec<(usize, f64)> },
}

/// Per-shard gossip state: the events this shard knows (its own plus
/// received), a dedup set, and the override store fed by `Overrides`
/// events.
#[derive(Debug, Default)]
struct GossipState {
    events: Vec<Event>,
    seen: HashSet<(u32, u64)>,
    next_seq: u64,
    overrides: HashMap<u128, Vec<(usize, f64)>>,
}

#[derive(Debug)]
struct Shard {
    id: u32,
    service: Arc<PlanService>,
    gossip: Mutex<GossipState>,
}

impl Shard {
    /// Applies `ev` if not yet seen; returns whether it was new.
    fn receive(&self, ev: &Event) -> bool {
        let mut st = lock_recover(&self.gossip);
        if !st.seen.insert((ev.origin, ev.seq)) {
            return false;
        }
        st.events.push(ev.clone());
        match &ev.payload {
            Payload::Invalidate { key, observed_rows } => {
                // Apply outside the gossip lock? The cache has its own
                // shard locks and never takes the gossip lock, so the
                // ordering here cannot deadlock; keep it simple.
                self.service.invalidate_key_if_stale(*key, *observed_rows);
            }
            Payload::Overrides { fp, edges } => {
                st.overrides.insert(*fp, edges.clone());
            }
        }
        true
    }

    /// Records a locally-originated event (already applied locally).
    fn originate(&self, payload: Payload) {
        let mut st = lock_recover(&self.gossip);
        let seq = st.next_seq;
        st.next_seq += 1;
        let id = self.id;
        st.seen.insert((id, seq));
        st.events.push(Event {
            origin: id,
            seq,
            payload,
        });
    }
}

/// Live topology: the ring and the shard list (ascending by id, which is
/// also the gossip-ring order). Swapped wholesale under a write lock on
/// add/remove; every routing decision reads one consistent view.
#[derive(Debug)]
struct Topology {
    ring: HashRing,
    shards: Vec<Arc<Shard>>,
}

impl Topology {
    fn shard(&self, id: u32) -> Option<&Arc<Shard>> {
        self.shards
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| &self.shards[i])
    }
}

/// A [`ServedPlan`] plus the shard that served it.
#[derive(Clone, Debug)]
pub struct ClusterServed {
    /// The planning outcome, exactly as the owning shard produced it.
    pub served: ServedPlan,
    /// Id of the shard that served the request.
    pub shard: u32,
}

/// Per-template routing statistics, striped to keep the hot path off a
/// single lock.
#[derive(Debug)]
struct HotTable {
    stripes: Vec<Mutex<HashMap<u128, u64>>>,
}

impl HotTable {
    fn new() -> HotTable {
        HotTable {
            stripes: (0..16).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Increments and returns the routed-request count for `key`.
    fn bump(&self, key: u128) -> u64 {
        let stripe = ((key >> 64) as u64 ^ key as u64) as usize % self.stripes.len();
        let mut map = lock_recover(&self.stripes[stripe]);
        let count = map.entry(key).or_insert(0);
        *count += 1;
        *count
    }

    fn count(&self, key: u128) -> u64 {
        let stripe = ((key >> 64) as u64 ^ key as u64) as usize % self.stripes.len();
        lock_recover(&self.stripes[stripe])
            .get(&key)
            .copied()
            .unwrap_or(0)
    }
}

/// The sharded planning tier: N independent [`PlanService`] shards behind
/// consistent-hash routing, hot-template replication and feedback gossip.
/// See the module docs for the design; construct with
/// [`PlanCluster::new`], serve with [`PlanCluster::plan`], feed execution
/// reports back with [`PlanCluster::observe`], and drive anti-entropy
/// with [`PlanCluster::run_gossip_round`].
#[derive(Debug)]
pub struct PlanCluster {
    topo: RwLock<Topology>,
    hot: HotTable,
    config: ClusterConfig,
    next_id: AtomicU32,
}

impl PlanCluster {
    /// Builds a cluster of `config.shards` fresh shards.
    pub fn new(config: ClusterConfig) -> PlanCluster {
        assert!(config.shards > 0, "cluster needs at least one shard");
        assert!(config.replicas > 0, "replica set must be non-empty");
        let shards: Vec<Arc<Shard>> = (0..config.shards as u32)
            .map(|id| {
                Arc::new(Shard {
                    id,
                    service: Arc::new(config.service.clone().build()),
                    gossip: Mutex::new(GossipState::default()),
                })
            })
            .collect();
        let ids: Vec<u32> = shards.iter().map(|s| s.id).collect();
        let ring = HashRing::new(config.seed, config.vnodes, &ids);
        PlanCluster {
            topo: RwLock::new(Topology { ring, shards }),
            hot: HotTable::new(),
            next_id: AtomicU32::new(config.shards as u32),
            config,
        }
    }

    fn read_topo(&self) -> std::sync::RwLockReadGuard<'_, Topology> {
        self.topo.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_topo(&self) -> std::sync::RwLockWriteGuard<'_, Topology> {
        self.topo.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of live shards.
    pub fn shards(&self) -> usize {
        self.read_topo().shards.len()
    }

    /// Live shard ids, ascending.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.read_topo().shards.iter().map(|s| s.id).collect()
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shard id that will serve `fp`'s *next* request, accounting for
    /// hot-template round-robin (this call advances the round-robin
    /// counter, exactly like a served request would).
    pub fn route(&self, fp: Fingerprint) -> u32 {
        let topo = self.read_topo();
        let key = fp.as_u128();
        let count = self.hot.bump(key);
        if count > self.config.hot_threshold && self.config.replicas > 1 && topo.ring.len() > 1 {
            let set = topo.ring.shards_of(key, self.config.replicas);
            set[(count % set.len() as u64) as usize]
        } else {
            topo.ring.shard_of(key)
        }
    }

    /// The primary owner of `fp` (no round-robin, no counter side
    /// effects) — where a cold template lives and where [`PlanCluster::observe`]
    /// records its observation.
    pub fn owner(&self, fp: Fingerprint) -> u32 {
        self.read_topo().ring.shard_of(fp.as_u128())
    }

    /// The replica set a hot `fp` round-robins over.
    pub fn replica_set(&self, fp: Fingerprint) -> Vec<u32> {
        self.read_topo()
            .ring
            .shards_of(fp.as_u128(), self.config.replicas)
    }

    /// Routed-request count recorded for `fp` so far.
    pub fn hot_count(&self, fp: Fingerprint) -> u64 {
        self.hot.count(fp.as_u128())
    }

    /// Routes `q` and returns the serving shard's service together with
    /// the canonical fingerprint and the shard id — the hook a serving
    /// front-end uses to dispatch onto the shard's own (async,
    /// single-flight) entry points instead of the blocking
    /// [`PlanCluster::plan`].
    pub fn route_service(&self, q: &LargeQuery) -> (Arc<PlanService>, Fingerprint, u32) {
        let fp = canonicalize(q).fingerprint;
        let id = self.route(fp);
        let topo = self.read_topo();
        // The id came from this or an earlier topology; under a concurrent
        // remove it may be gone — fall back to the current primary owner
        // (ring ids are live ids by construction).
        let shard = topo
            .shard(id)
            .or_else(|| topo.shard(topo.ring.shard_of(fp.as_u128())))
            .expect("consistent-hash ring only contains live shards");
        (Arc::clone(&shard.service), fp, shard.id)
    }

    /// Plans `q` on its routed shard (single-flight, cache-first).
    pub fn plan(&self, q: &LargeQuery, model: &dyn CostModel) -> Result<ClusterServed, OptError> {
        self.plan_with(q, model, &PlanRequest::default())
    }

    /// Plans `q` on its routed shard with per-request options.
    pub fn plan_with(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        req: &PlanRequest,
    ) -> Result<ClusterServed, OptError> {
        let (service, _fp, shard) = self.route_service(q);
        let served = service.plan_coalesced(q, model, req)?;
        Ok(ClusterServed { served, shard })
    }

    /// The service behind a shard id (tests and benches inspect shards
    /// directly; production traffic goes through [`PlanCluster::plan`]).
    pub fn shard_service(&self, id: u32) -> Option<Arc<PlanService>> {
        self.read_topo().shard(id).map(|s| Arc::clone(&s.service))
    }

    /// Feeds an execution report back on the fingerprint's primary owner
    /// — see [`PlanCluster::observe_on`].
    pub fn observe(
        &self,
        fingerprint: Fingerprint,
        model: &dyn CostModel,
        report: &ExecReport,
    ) -> bool {
        let owner = self.owner(fingerprint);
        self.observe_on(owner, fingerprint, model, report)
    }

    /// Feeds an execution report back *on one shard* (where the feedback
    /// arrived): applies the compare-and-evict locally, stores the
    /// report's selectivity overrides, and originates gossip events so
    /// every other shard applies the same observation within
    /// [`PlanCluster::staleness_bound`] rounds. Returns whether the local
    /// shard evicted its entry.
    pub fn observe_on(
        &self,
        shard_id: u32,
        fingerprint: Fingerprint,
        model: &dyn CostModel,
        report: &ExecReport,
    ) -> bool {
        let key = cache_key(fingerprint, model);
        let observed_rows = report.root_rows as f64;
        let topo = self.read_topo();
        let Some(shard) = topo.shard(shard_id) else {
            return false;
        };
        let invalidated = shard.service.invalidate_key_if_stale(key, observed_rows);
        shard.originate(Payload::Invalidate { key, observed_rows });
        let edges = selectivity_overrides(report);
        if !edges.is_empty() {
            let fp = fingerprint.as_u128();
            lock_recover(&shard.gossip)
                .overrides
                .insert(fp, edges.clone());
            shard.originate(Payload::Overrides { fp, edges });
        }
        invalidated
    }

    /// Runs one anti-entropy round: every shard pushes its event log to
    /// both neighbours on the ordered shard ring, which apply the events
    /// they have not seen (evicting stale replicas, storing overrides).
    /// Logs are snapshotted up front, so one round moves information
    /// exactly one hop in each direction — `floor(N/2)` rounds flood any
    /// event to all N shards. Returns the number of event deliveries
    /// (applications on a shard that had not seen the event).
    pub fn run_gossip_round(&self) -> u64 {
        let topo = self.read_topo();
        let n = topo.shards.len();
        if n <= 1 {
            return 0;
        }
        let logs: Vec<Vec<Event>> = topo
            .shards
            .iter()
            .map(|s| lock_recover(&s.gossip).events.clone())
            .collect();
        let mut delivered = 0u64;
        for (i, events) in logs.iter().enumerate() {
            for j in [(i + 1) % n, (i + n - 1) % n] {
                if j == i {
                    continue;
                }
                for ev in events {
                    delivered += u64::from(topo.shards[j].receive(ev));
                }
            }
        }
        // Global annotation (trace 0): gossip rounds belong to no single
        // request but show up in trace timelines next to the requests
        // whose replicas they invalidate.
        self.config.tracer.event(sites::GOSSIP, delivered);
        delivered
    }

    /// The documented staleness window: the number of gossip rounds after
    /// which an event recorded on any shard has been applied on every
    /// shard. Bidirectional neighbour push moves an event one hop each
    /// way per round, so the bound is the ring's max hop distance,
    /// `floor(N/2)` (0 for a single shard).
    pub fn staleness_bound(&self) -> usize {
        self.shards() / 2
    }

    /// How many live shards currently cache a plan for `fingerprint`
    /// under `model` — the probe the staleness tests and the bench use to
    /// watch an invalidation flood the replica set.
    pub fn cached_replicas(&self, fingerprint: Fingerprint, model: &dyn CostModel) -> usize {
        self.read_topo()
            .shards
            .iter()
            .filter(|s| s.service.has_cached(fingerprint, model))
            .count()
    }

    /// Selectivity overrides shard `shard_id` has learned (its own
    /// observations plus gossiped ones) for `fingerprint`.
    pub fn overrides_for(
        &self,
        shard_id: u32,
        fingerprint: Fingerprint,
    ) -> Option<Vec<(usize, f64)>> {
        let topo = self.read_topo();
        let shard = topo.shard(shard_id)?;
        let found = lock_recover(&shard.gossip)
            .overrides
            .get(&fingerprint.as_u128())
            .cloned();
        found
    }

    /// Exact cluster-level counters: the field-wise
    /// [`CacheSnapshot::merge`] fold of every live shard's snapshot.
    pub fn aggregate_cache(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for s in &self.read_topo().shards {
            total.merge(&s.service.cache_counters());
        }
        total
    }

    /// Per-shard `(id, snapshot)` pairs, ascending by id.
    pub fn shard_snapshots(&self) -> Vec<(u32, CacheSnapshot)> {
        self.read_topo()
            .shards
            .iter()
            .map(|s| (s.id, s.service.cache_counters()))
            .collect()
    }

    /// The cluster's counters as an [`ObsSnapshot`]: one
    /// `mpdp_cluster_cache_*{shard="N"}` section per live shard plus the
    /// exact aggregate as tenant `"cluster"`.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            tenants: vec![("cluster".to_string(), self.aggregate_cache())],
            shards: self.shard_snapshots(),
            ..ObsSnapshot::default()
        }
    }

    /// Prometheus text exposition of [`PlanCluster::obs_snapshot`], via
    /// the canonical `mpdp-obs` formatter (same names and label scheme as
    /// the serve front-end's `/metrics`).
    pub fn metrics_text(&self) -> String {
        self.obs_snapshot().metrics_text()
    }

    /// Total plans cached across all shards (replicated templates count
    /// once per replica).
    pub fn cached_plans(&self) -> usize {
        self.read_topo()
            .shards
            .iter()
            .map(|s| s.service.cached_plans())
            .sum()
    }

    /// Adds a fresh shard (rehash): only ~1/(N+1) of the fingerprints
    /// move, all of them onto the new shard, whose cache warms
    /// organically. Returns the new shard's id.
    pub fn add_shard(&self) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = Arc::new(Shard {
            id,
            service: Arc::new(self.config.service.clone().build()),
            gossip: Mutex::new(GossipState::default()),
        });
        let mut topo = self.write_topo();
        topo.ring = topo.ring.with_shard(id);
        topo.shards.push(shard);
        topo.shards.sort_by_key(|s| s.id);
        id
    }

    /// Removes a shard (node loss): its cached plans are gone, its keys
    /// redistribute to their next ring successors, and every fingerprint
    /// stays routable. Returns `false` if the id is unknown or it is the
    /// last shard (an unroutable cluster is not a valid state).
    pub fn remove_shard(&self, id: u32) -> bool {
        let mut topo = self.write_topo();
        if topo.shards.len() <= 1 || topo.shard(id).is_none() {
            return false;
        }
        topo.ring = topo.ring.without_shard(id);
        topo.shards.retain(|s| s.id != id);
        true
    }
}
