//! GPU optimizer drivers: MPDP (GPU), DPSUB (GPU) and DPSIZE (GPU).
//!
//! Each driver runs the Algorithm 5 host loop: per DP level it launches the
//! unrank / filter / evaluate / (prune) / scatter kernels on the software
//! SIMT machine, then at the end extracts the plan from the device memo —
//! "the final relation is recursively fetched using its left and right join
//! relations, building a join tree in CPU memory".
//!
//! Configuration mirrors the paper's §5 enhancements and §7.2.5 ablation:
//!
//! * `fused_prune` — prune inside the evaluate kernel via shared memory (one
//!   global write per warp) instead of a separate prune kernel;
//! * `ccc` — Collaborative Context Collection for the evaluate kernels.
//!
//! MPDP (GPU) defaults to both on (the paper's configuration); the Meister &
//! Saake baselines (DPSUB-GPU "COMB", DPSIZE-GPU "H+F") default to both off,
//! as in the original work the paper compares against.

use crate::kernels::{
    self, evaluate_dpsub_kernel, evaluate_mpdp_kernel, expand_kernel, filter_kernel,
    level_transfer, unrank_kernel,
};
use crate::simt::{GpuConfig, GpuStats, WarpPolicy};
use mpdp_core::atomic_memo::AtomicMemo;
use mpdp_core::counters::{Counters, LevelStats, Profile};
use mpdp_core::enumerate::EnumerationMode;
use mpdp_core::{OptError, RelSet};
use mpdp_dp::common::{finish, init_memo, price_pair, LevelEnumerator, OptContext, OptResult};
use mpdp_dp::JoinOrderOptimizer;
use std::time::Duration;

/// Which evaluate kernel a GPU driver uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum GpuAlgo {
    Mpdp,
    DpSub,
    DpSize,
}

/// Result bundle of a GPU run: the usual optimizer result plus device stats.
#[derive(Clone, Debug)]
pub struct GpuRun {
    /// Plan, counters, profile — identical semantics to the CPU optimizers.
    pub result: OptResult,
    /// Device execution statistics.
    pub stats: GpuStats,
    /// Simulated wall time under the driver's [`GpuConfig`].
    pub simulated_time: Duration,
}

/// Shared driver configuration.
#[derive(Copy, Clone, Debug)]
pub struct GpuDriverConfig {
    /// Device constants.
    pub device: GpuConfig,
    /// Fuse pruning into the evaluate kernel (§5 "Reducing the number of
    /// global memory writes").
    pub fused_prune: bool,
    /// Use Collaborative Context Collection (§5 "Avoiding 'If' branch
    /// divergence").
    pub ccc: bool,
}

impl GpuDriverConfig {
    /// The paper's MPDP (GPU) configuration: both enhancements on.
    pub fn enhanced() -> Self {
        GpuDriverConfig {
            device: GpuConfig::gtx1080(),
            fused_prune: true,
            ccc: true,
        }
    }

    /// The \[23\] baseline configuration: separate prune, no CCC.
    pub fn baseline() -> Self {
        GpuDriverConfig {
            device: GpuConfig::gtx1080(),
            fused_prune: false,
            ccc: false,
        }
    }

    fn policy(&self) -> WarpPolicy {
        if self.ccc {
            WarpPolicy::Ccc {
                overhead_per_pass: 4,
            }
        } else {
            WarpPolicy::Lockstep
        }
    }
}

fn run_level_structured(
    ctx: &OptContext<'_>,
    algo: GpuAlgo,
    cfg: &GpuDriverConfig,
) -> Result<GpuRun, OptError> {
    ctx.validate_exact()?;
    let q = ctx.query;
    let n = q.query_size();
    // The simulated *device-global* memo: the lock-free table every kernel
    // lane publishes into with atomic min-updates. The host loop only sizes
    // it between levels (reserve) and extracts the plan at the end.
    let mut memo: AtomicMemo = init_memo(q);
    let mut counters = Counters::default();
    let mut profile = Profile::default();
    let mut stats = GpuStats::default();

    // DPSIZE-GPU keeps per-size plan lists instead of unranking subsets;
    // the lists are the levels' connected sets, which the host enumerates
    // through the frontier engine (free of stats charges — the real H+F
    // driver reads them back from the previous scatter, which is the same
    // list).
    let mut sets_by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
    sets_by_size[1] = (0..n).map(RelSet::singleton).collect();
    let mut dpsize_levels = LevelEnumerator::new(&q.graph, EnumerationMode::Frontier);
    // Previous level's connected sets, device-resident — the frontier
    // expand kernel's input (unused in unranked mode).
    let mut prev_sets: Vec<RelSet> = (0..n).map(RelSet::singleton).collect();

    for i in 2..=n {
        ctx.check_deadline()?;
        let mut level = LevelStats {
            size: i,
            ..Default::default()
        };
        let marks = (memo.probe_count(), memo.cas_retry_count());
        match algo {
            GpuAlgo::Mpdp | GpuAlgo::DpSub => {
                match ctx.enumeration {
                    EnumerationMode::Frontier => {
                        prev_sets = expand_kernel(q, &prev_sets, &mut stats);
                    }
                    EnumerationMode::Unranked => {
                        let candidates = unrank_kernel(n, i, &mut stats);
                        level.unranked = candidates.len() as u64;
                        prev_sets = filter_kernel(q, candidates, &mut stats);
                    }
                }
                let sets = &prev_sets;
                memo.reserve(sets.len());
                let out = if algo == GpuAlgo::Mpdp {
                    evaluate_mpdp_kernel(
                        q,
                        ctx.model,
                        &memo,
                        sets,
                        cfg.policy(),
                        cfg.fused_prune,
                        &mut stats,
                    )
                } else {
                    evaluate_dpsub_kernel(
                        q,
                        ctx.model,
                        &memo,
                        sets,
                        cfg.policy(),
                        cfg.fused_prune,
                        &mut stats,
                    )
                };
                level.evaluated = out.evaluated;
                level.ccp = out.ccp;
                level.sets = sets.len() as u64;
                level.memo_writes = out.memo_writes;
            }
            GpuAlgo::DpSize => {
                // H+F-GPU: lanes take (left, right) pairs from the size-(k,
                // i-k) lists; invalid (overlapping / cross-product) pairs
                // stall their warp. Survivors hit the global table with
                // their own atomicMin (fused: one per set after an in-warp
                // reduction).
                let lvl = dpsize_levels.level(ctx, i)?;
                memo.reserve(lvl.sets.len());
                sets_by_size[i] = lvl.sets.to_vec();
                stats.kernel_launches += 1;
                let probes_before = memo.probe_count();
                let mut lane_costs: Vec<u32> = Vec::new();
                let mut publishes = 0u64;
                for k in 1..i {
                    for &left in &sets_by_size[k] {
                        for &right in &sets_by_size[i - k] {
                            level.evaluated += 1;
                            let mut lane = kernels::cycles::CHECK;
                            if !left.is_disjoint(right) {
                                lane_costs.push(lane);
                                continue;
                            }
                            lane += kernels::cycles::CHECK;
                            if !q.graph.sets_connected(left, right) {
                                lane_costs.push(lane);
                                continue;
                            }
                            level.ccp += 1;
                            lane += kernels::cycles::COST_EVAL;
                            lane_costs.push(lane);
                            if let Some((cost, rows)) = price_pair(&memo, q, ctx.model, left, right)
                            {
                                stats.global_reads += 2; // two memo probes
                                publishes += 1;
                                if memo.insert_if_better(left.union(right), left, cost, rows) {
                                    level.memo_writes += 1;
                                }
                            }
                        }
                    }
                }
                let (cyc, sh) = crate::simt::schedule_warp(cfg.policy(), &lane_costs);
                stats.warp_cycles += cyc;
                stats.busy_cycles += lane_costs.iter().map(|&x| x as u64).sum::<u64>();
                stats.shared_ops += sh;
                stats.global_reads += memo.probe_count() - probes_before;
                if cfg.fused_prune {
                    // In-warp reduction first: one global atomic per set.
                    stats.global_writes += sets_by_size[i].len() as u64;
                } else {
                    stats.global_writes += publishes + sets_by_size[i].len() as u64;
                    stats.global_reads += publishes;
                    stats.kernel_launches += 1;
                }
                level.sets = sets_by_size[i].len() as u64;
            }
        }
        level.memo_probes = memo.probe_count() - marks.0;
        level.cas_retries = memo.cas_retry_count() - marks.1;
        level_transfer(level.sets as usize, &mut stats);
        counters.evaluated += level.evaluated;
        counters.ccp += level.ccp;
        counters.sets += level.sets;
        counters.unranked += level.unranked;
        profile.record(level);
    }

    let result = finish(&memo, q, counters, profile)?;
    let simulated_time = stats.simulated_time(&cfg.device);
    Ok(GpuRun {
        result,
        stats,
        simulated_time,
    })
}

/// MPDP on the simulated GPU — the paper's primary configuration.
#[derive(Copy, Clone, Debug)]
pub struct MpdpGpu {
    /// Driver configuration (enhancements + device constants).
    pub config: GpuDriverConfig,
}

impl MpdpGpu {
    /// Paper configuration: kernel fusion + CCC on a GTX-1080 model.
    pub fn new() -> Self {
        MpdpGpu {
            config: GpuDriverConfig::enhanced(),
        }
    }

    /// Runs and returns the full GPU bundle (plan + device stats +
    /// simulated time).
    pub fn run(&self, ctx: &OptContext<'_>) -> Result<GpuRun, OptError> {
        run_level_structured(ctx, GpuAlgo::Mpdp, &self.config)
    }
}

impl Default for MpdpGpu {
    fn default() -> Self {
        Self::new()
    }
}

impl JoinOrderOptimizer for MpdpGpu {
    fn name(&self) -> &'static str {
        "MPDP(GPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        Ok(self.run(ctx)?.result)
    }
}

/// DPSUB on the simulated GPU (COMB-GPU of \[23\]).
#[derive(Copy, Clone, Debug)]
pub struct DpSubGpu {
    /// Driver configuration.
    pub config: GpuDriverConfig,
}

impl DpSubGpu {
    /// Baseline configuration (no fusion, no CCC) as in \[23\].
    pub fn new() -> Self {
        DpSubGpu {
            config: GpuDriverConfig::baseline(),
        }
    }

    /// Runs and returns the full GPU bundle.
    pub fn run(&self, ctx: &OptContext<'_>) -> Result<GpuRun, OptError> {
        run_level_structured(ctx, GpuAlgo::DpSub, &self.config)
    }
}

impl Default for DpSubGpu {
    fn default() -> Self {
        Self::new()
    }
}

impl JoinOrderOptimizer for DpSubGpu {
    fn name(&self) -> &'static str {
        "DPSub(GPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        Ok(self.run(ctx)?.result)
    }
}

/// DPSIZE on the simulated GPU (H+F-GPU of \[23\]).
#[derive(Copy, Clone, Debug)]
pub struct DpSizeGpu {
    /// Driver configuration.
    pub config: GpuDriverConfig,
}

impl DpSizeGpu {
    /// Baseline configuration as in \[23\].
    pub fn new() -> Self {
        DpSizeGpu {
            config: GpuDriverConfig::baseline(),
        }
    }

    /// Runs and returns the full GPU bundle.
    pub fn run(&self, ctx: &OptContext<'_>) -> Result<GpuRun, OptError> {
        run_level_structured(ctx, GpuAlgo::DpSize, &self.config)
    }
}

impl Default for DpSizeGpu {
    fn default() -> Self {
        Self::new()
    }
}

impl JoinOrderOptimizer for DpSizeGpu {
    fn name(&self) -> &'static str {
        "DPSize(GPU)"
    }

    fn optimize(&self, ctx: &OptContext<'_>) -> Result<OptResult, OptError> {
        Ok(self.run(ctx)?.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::dpsub::DpSub;
    use mpdp_workload::gen;

    fn queries() -> Vec<mpdp_core::QueryInfo> {
        let m = PgLikeCost::new();
        vec![
            gen::star(7, 1, &m).to_query_info().unwrap(),
            gen::cycle(7, 2, &m).to_query_info().unwrap(),
            gen::random_connected(8, 3, 3, &m).to_query_info().unwrap(),
        ]
    }

    #[test]
    fn gpu_drivers_match_cpu_optimum() {
        let m = PgLikeCost::new();
        for q in queries() {
            let ctx = OptContext::new(&q, &m);
            let seq = DpSub::run(&ctx).unwrap();
            for (name, run) in [
                ("mpdp", MpdpGpu::new().run(&ctx).unwrap()),
                ("dpsub", DpSubGpu::new().run(&ctx).unwrap()),
                ("dpsize", DpSizeGpu::new().run(&ctx).unwrap()),
            ] {
                assert!(
                    (run.result.cost - seq.cost).abs() < 1e-6 * seq.cost.max(1.0),
                    "{name}: gpu={} cpu={}",
                    run.result.cost,
                    seq.cost
                );
                assert!(run.result.plan.validate(&q.graph).is_none());
            }
        }
    }

    #[test]
    fn gpu_counters_match_cpu_counterparts() {
        let m = PgLikeCost::new();
        let q = gen::star(7, 4, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let cpu_sub = DpSub::run(&ctx).unwrap();
        let gpu_sub = DpSubGpu::new().run(&ctx).unwrap();
        assert_eq!(
            gpu_sub.result.counters.evaluated,
            cpu_sub.counters.evaluated
        );
        assert_eq!(gpu_sub.result.counters.ccp, cpu_sub.counters.ccp);
        let cpu_mpdp = mpdp_dp::mpdp::Mpdp::run(&ctx).unwrap();
        let gpu_mpdp = MpdpGpu::new().run(&ctx).unwrap();
        assert_eq!(
            gpu_mpdp.result.counters.evaluated,
            cpu_mpdp.counters.evaluated
        );
        assert_eq!(gpu_mpdp.result.counters.ccp, cpu_mpdp.counters.ccp);
    }

    #[test]
    fn frontier_and_unranked_drivers_match() {
        let m = PgLikeCost::new();
        for q in queries() {
            let frontier = OptContext::new(&q, &m);
            let unranked = OptContext::new(&q, &m).with_enumeration(EnumerationMode::Unranked);
            let f = MpdpGpu::new().run(&frontier).unwrap();
            let u = MpdpGpu::new().run(&unranked).unwrap();
            assert_eq!(f.result.cost.to_bits(), u.result.cost.to_bits());
            assert_eq!(f.result.counters.evaluated, u.result.counters.evaluated);
            assert_eq!(f.result.counters.ccp, u.result.counters.ccp);
            assert_eq!(f.result.counters.sets, u.result.counters.sets);
            assert_eq!(f.result.counters.unranked, 0);
            assert!(u.result.counters.unranked > 0);
        }
        // On a sparse shape the frontier pipeline never walks dead
        // candidates, so it does strictly less device work.
        let chain = gen::chain(12, 1, &m).to_query_info().unwrap();
        let f = MpdpGpu::new().run(&OptContext::new(&chain, &m)).unwrap();
        let u = MpdpGpu::new()
            .run(&OptContext::new(&chain, &m).with_enumeration(EnumerationMode::Unranked))
            .unwrap();
        assert!(f.stats.busy_cycles < u.stats.busy_cycles);
        assert!(f.stats.warp_cycles < u.stats.warp_cycles);
    }

    #[test]
    fn mpdp_gpu_fewer_cycles_than_dpsub_gpu() {
        // The core claim: fewer evaluated pairs -> fewer device cycles.
        let m = PgLikeCost::new();
        let q = gen::star(9, 6, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let a = MpdpGpu::new().run(&ctx).unwrap();
        let b = DpSubGpu::new().run(&ctx).unwrap();
        assert!(a.stats.warp_cycles < b.stats.warp_cycles);
        assert!(a.result.counters.evaluated < b.result.counters.evaluated);
    }

    #[test]
    fn ablation_fusion_reduces_global_writes() {
        let m = PgLikeCost::new();
        let q = gen::cycle(8, 3, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let mut fused = MpdpGpu::new();
        fused.config.fused_prune = true;
        let mut unfused = MpdpGpu::new();
        unfused.config.fused_prune = false;
        let a = fused.run(&ctx).unwrap();
        let b = unfused.run(&ctx).unwrap();
        assert!(a.stats.global_writes < b.stats.global_writes);
        assert!(a.simulated_time <= b.simulated_time);
    }

    #[test]
    fn ablation_ccc_reduces_divergence() {
        let m = PgLikeCost::new();
        let q = gen::star(9, 2, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let mut with = MpdpGpu::new();
        with.config.ccc = true;
        let mut without = MpdpGpu::new();
        without.config.ccc = false;
        let a = with.run(&ctx).unwrap();
        let b = without.run(&ctx).unwrap();
        assert!(a.stats.warp_cycles <= b.stats.warp_cycles);
        assert!(b.stats.divergence_factor() >= a.stats.divergence_factor());
    }

    #[test]
    fn simulated_time_positive_and_stats_filled() {
        let m = PgLikeCost::new();
        let q = gen::star(6, 8, &m).to_query_info().unwrap();
        let ctx = OptContext::new(&q, &m);
        let run = MpdpGpu::new().run(&ctx).unwrap();
        assert!(run.simulated_time > Duration::ZERO);
        // ≥3 kernels × 5 levels: expand (map + compaction) + fused
        // evaluate — the scatter launch is gone, the table is updated by
        // the evaluate lanes themselves.
        assert!(run.stats.kernel_launches >= 3 * 5);
        assert!(run.stats.bytes_transferred > 0);
        assert_eq!(run.stats.levels, 5);
    }
}
