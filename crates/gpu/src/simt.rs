//! A software SIMT machine: warps, lockstep execution, branch divergence and
//! Collaborative Context Collection.
//!
//! This is the workspace's substitute for CUDA hardware (see `DESIGN.md` §2).
//! GPU "kernels" in `mpdp-gpu` execute their real per-lane work in ordinary
//! Rust, and charge their cycle costs to the warp scheduler ([`schedule_warp`]): tasks are assigned to
//! 32-lane warps that advance in lockstep, so a warp's batch costs
//! `max(lane costs)` cycles — lanes that exit early (an invalid Join-Pair
//! failing its first CCP check) stall until the slowest lane finishes. That
//! is exactly the §5 divergence problem, and Collaborative Context Collection
//! \[16\] is modelled the way the technique works on hardware: deferred work is
//! stashed in shared memory until a full warp's worth is available, so lane
//! utilization approaches 100% at the price of a small stash-management
//! overhead per pass.

use std::time::Duration;

/// Lanes per warp (CUDA warp width).
pub const WARP_WIDTH: usize = 32;

/// Aggregate execution statistics of one simulated GPU run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GpuStats {
    /// Kernel launches performed.
    pub kernel_launches: u64,
    /// Total warp-cycles consumed (the device's busy time in cycles,
    /// summed over warps).
    pub warp_cycles: u64,
    /// Sum of per-task costs — the work a perfectly converged machine would
    /// do. `warp_cycles ≥ busy_cycles / 32`.
    pub busy_cycles: u64,
    /// Global-memory write transactions.
    pub global_writes: u64,
    /// Global-memory read transactions.
    pub global_reads: u64,
    /// Shared-memory operations (CCC stash traffic, warp reductions).
    pub shared_ops: u64,
    /// Host↔device bytes moved.
    pub bytes_transferred: u64,
    /// DP levels executed (each costs one round of launches + transfers).
    pub levels: u64,
}

impl GpuStats {
    /// Merges another run's stats (e.g. per-level accumulation).
    pub fn merge(&mut self, o: &GpuStats) {
        self.kernel_launches += o.kernel_launches;
        self.warp_cycles += o.warp_cycles;
        self.busy_cycles += o.busy_cycles;
        self.global_writes += o.global_writes;
        self.global_reads += o.global_reads;
        self.shared_ops += o.shared_ops;
        self.bytes_transferred += o.bytes_transferred;
        self.levels += o.levels;
    }

    /// Ratio of actual warp-cycles to the perfectly-converged lower bound —
    /// 1.0 means no SIMD waste; DPSUB-style kernels without CCC typically
    /// sit at 2–4.
    pub fn divergence_factor(&self) -> f64 {
        let ideal = (self.busy_cycles as f64 / WARP_WIDTH as f64).max(1.0);
        (self.warp_cycles as f64 / ideal).max(1.0)
    }

    /// Converts the counters into simulated wall time under `cfg`.
    pub fn simulated_time(&self, cfg: &GpuConfig) -> Duration {
        let compute_ns = self.warp_cycles as f64 / (cfg.parallel_warps * cfg.clock_ghz);
        let mem_ns = (self.global_reads + self.global_writes) as f64 * cfg.global_mem_ns
            / cfg.parallel_warps;
        let launch_ns = self.kernel_launches as f64 * cfg.kernel_launch_us * 1000.0;
        let transfer_ns = self.bytes_transferred as f64 / cfg.pcie_gb_per_s
            + self.levels as f64 * cfg.transfer_latency_us * 1000.0;
        Duration::from_nanos((compute_ns + mem_ns + launch_ns + transfer_ns) as u64)
    }
}

/// Device constants (defaults model the paper's NVIDIA GTX 1080).
#[derive(Copy, Clone, Debug)]
pub struct GpuConfig {
    /// Warps the device retires concurrently (SMs × dual issue).
    pub parallel_warps: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Kernel launch latency in µs.
    pub kernel_launch_us: f64,
    /// Amortized cost of one global-memory transaction in ns (per warp).
    pub global_mem_ns: f64,
    /// PCIe bandwidth in bytes/ns (≈ GB/s ÷ 1e9 × 1e9).
    pub pcie_gb_per_s: f64,
    /// Per-level host↔device round-trip latency in µs.
    pub transfer_latency_us: f64,
}

impl GpuConfig {
    /// GTX 1080: 20 SMs at ~1.6 GHz, PCIe 3.0 x16.
    pub fn gtx1080() -> Self {
        GpuConfig {
            parallel_warps: 40.0,
            clock_ghz: 1.6,
            kernel_launch_us: 8.0,
            global_mem_ns: 4.0,
            pcie_gb_per_s: 12.0,
            transfer_latency_us: 25.0,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx1080()
    }
}

/// Scheduling policy of a simulated kernel.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WarpPolicy {
    /// Plain lockstep: a warp's batch costs `max(lane costs)`.
    Lockstep,
    /// Collaborative Context Collection: deferred tasks are stashed in
    /// shared memory and re-packed, so cycles approach `Σ costs / 32` plus a
    /// stash overhead per repacking pass.
    Ccc {
        /// Shared-memory stash management cost per warp pass, in cycles.
        overhead_per_pass: u32,
    },
}

/// Executes one warp-scheduled task list and returns the consumed cycles.
///
/// `costs` holds the per-task cycle counts (the caller computed the tasks'
/// real work). Returns `(warp_cycles, shared_ops)`.
pub fn schedule_warp(policy: WarpPolicy, costs: &[u32]) -> (u64, u64) {
    if costs.is_empty() {
        return (0, 0);
    }
    match policy {
        WarpPolicy::Lockstep => {
            let mut cycles = 0u64;
            for batch in costs.chunks(WARP_WIDTH) {
                cycles += *batch.iter().max().unwrap() as u64;
            }
            (cycles, 0)
        }
        WarpPolicy::Ccc { overhead_per_pass } => {
            let total: u64 = costs.iter().map(|&c| c as u64).sum();
            let passes = costs.len().div_ceil(WARP_WIDTH) as u64;
            let packed = total.div_ceil(WARP_WIDTH as u64);
            // Each pass stashes/unstashes via shared memory: 2 shared ops per
            // task plus bookkeeping.
            let shared = 2 * costs.len() as u64 + passes;
            (packed + passes * overhead_per_pass as u64, shared)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_charges_max_per_batch() {
        // One warp: 31 cheap lanes + 1 expensive -> whole warp pays 100.
        let mut costs = vec![4u32; 31];
        costs.push(100);
        let (cycles, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
        assert_eq!(cycles, 100);
        // Two warps.
        let costs2 = vec![10u32; 33];
        let (cycles2, _) = schedule_warp(WarpPolicy::Lockstep, &costs2);
        assert_eq!(cycles2, 20);
    }

    #[test]
    fn ccc_packs_work() {
        let mut costs = vec![4u32; 31];
        costs.push(100);
        let (lockstep, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
        let (ccc, shared) = schedule_warp(
            WarpPolicy::Ccc {
                overhead_per_pass: 4,
            },
            &costs,
        );
        assert!(ccc < lockstep, "ccc={ccc} lockstep={lockstep}");
        assert!(shared > 0);
        // Lower bound: ceil(sum/32).
        let sum: u64 = costs.iter().map(|&c| c as u64).sum();
        assert!(ccc >= sum.div_ceil(32));
    }

    #[test]
    fn ccc_never_helps_uniform_work() {
        // Uniform costs have no divergence; CCC's overhead makes it slightly
        // worse — matching the paper's "impact depends on graph topology".
        let costs = vec![50u32; 64];
        let (lockstep, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
        let (ccc, _) = schedule_warp(
            WarpPolicy::Ccc {
                overhead_per_pass: 4,
            },
            &costs,
        );
        assert!(ccc >= lockstep);
    }

    #[test]
    fn empty_task_list() {
        assert_eq!(schedule_warp(WarpPolicy::Lockstep, &[]), (0, 0));
        assert_eq!(
            schedule_warp(
                WarpPolicy::Ccc {
                    overhead_per_pass: 4
                },
                &[]
            ),
            (0, 0)
        );
    }

    #[test]
    fn divergence_factor_sane() {
        let s = GpuStats {
            warp_cycles: 300,
            busy_cycles: 3200, // ideal = 100
            ..Default::default()
        };
        assert!((s.divergence_factor() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn simulated_time_components() {
        let cfg = GpuConfig::gtx1080();
        let a = GpuStats {
            warp_cycles: 1_000_000,
            ..Default::default()
        };
        let base = a.simulated_time(&cfg);
        let mut b = a;
        b.kernel_launches = 100;
        assert!(b.simulated_time(&cfg) > base);
        let mut c = a;
        c.bytes_transferred = 100_000_000;
        assert!(c.simulated_time(&cfg) > base);
    }

    #[test]
    fn stats_merge() {
        let mut a = GpuStats {
            kernel_launches: 1,
            warp_cycles: 10,
            busy_cycles: 20,
            global_writes: 3,
            global_reads: 4,
            shared_ops: 5,
            bytes_transferred: 6,
            levels: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.kernel_launches, 2);
        assert_eq!(a.warp_cycles, 20);
        assert_eq!(a.levels, 2);
    }
}
