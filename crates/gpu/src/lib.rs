//! # mpdp-gpu
//!
//! The GPU subsystem: a software SIMT simulator standing in for the paper's
//! CUDA implementation (see `DESIGN.md` §2 for the substitution rationale),
//! plus the three GPU optimizer drivers the paper evaluates:
//!
//! * [`drivers::MpdpGpu`] — "MPDP (GPU)", with the §5 enhancements (kernel
//!   fusion of the prune step, Collaborative Context Collection);
//! * [`drivers::DpSubGpu`] — "DPSub (GPU)", the COMB-GPU baseline of \[23\];
//! * [`drivers::DpSizeGpu`] — "DPSize (GPU)", the H+F-GPU baseline of \[23\].
//!
//! Kernels do their real enumeration and costing work (plans are identical
//! to the CPU algorithms — tested), while cycles, divergence, memory traffic
//! and transfers are charged to [`simt::GpuStats`] and converted to
//! simulated wall time with GTX-1080 constants.

#![warn(missing_docs)]

pub mod drivers;
pub mod kernels;
pub mod simt;

pub use drivers::{DpSizeGpu, DpSubGpu, GpuDriverConfig, GpuRun, MpdpGpu};
pub use simt::{GpuConfig, GpuStats, WarpPolicy, WARP_WIDTH};
