//! The Algorithm 5 kernel pipeline: unrank → filter → evaluate (→ prune),
//! executed on the software SIMT machine.
//!
//! Each phase does its *real* work (the same enumeration and costing as the
//! CPU algorithms, producing bit-identical memo contents) while charging
//! cycles, memory transactions and transfers to [`GpuStats`]. Cycle costs per
//! micro-operation are rough GTX-1080 instruction-latency figures; absolute
//! times are therefore approximate, but the *relative* behaviour the paper's
//! figures rest on — evaluated-pair counts, divergence, global-write volume —
//! is measured, not assumed.
//!
//! The device memo is the lock-free [`AtomicMemo`] — the same global hash
//! table the paper's lanes hit with `atomicMin`. Evaluate kernels publish
//! winners into it directly: with kernel fusion (§5) a warp first reduces
//! its set's candidates in shared memory and issues *one* atomic publish per
//! set; without fusion every surviving pair performs its own global
//! `atomicMin` and a separate prune launch is charged, as in the \[23\]
//! baselines. Either way the table converges to the identical
//! `(cost, left)`-minimum — the fusion flag only changes the *traffic*, which
//! is exactly what the §7.2.5 ablation measures. The former host-side
//! `scatter` merge no longer exists.

use crate::simt::{schedule_warp, GpuStats, WarpPolicy};
use mpdp_core::atomic_memo::AtomicMemo;
use mpdp_core::combinatorics::{binomial, unrank_subset};
use mpdp_core::query::QueryInfo;
use mpdp_core::RelSet;
use mpdp_cost::model::{CostModel, InputEst};

/// Cycle-cost constants for the simulated lanes.
pub mod cycles {
    /// Unranking one combination (binomial-ladder walk).
    pub const UNRANK_PER_BIT: u32 = 3;
    /// One step of the `grow`/connectivity loop.
    pub const GROW_STEP: u32 = 4;
    /// One CCP-block check (empty/disjoint/edge tests).
    pub const CHECK: u32 = 3;
    /// Evaluating the cost function for a valid pair (selectivity product +
    /// three operator costings).
    pub const COST_EVAL: u32 = 48;
    /// Finding blocks for one set (per vertex of the set).
    pub const BLOCKS_PER_VERTEX: u32 = 10;
    /// One hash-table probe.
    pub const HASH_PROBE: u32 = 6;
}

/// A priced candidate produced by an evaluate kernel.
#[derive(Copy, Clone, Debug)]
pub struct GpuCandidate {
    /// Covered set.
    pub set: RelSet,
    /// Winning left side.
    pub left: RelSet,
    /// Plan cost.
    pub cost: f64,
    /// Output rows.
    pub rows: f64,
}

/// Unrank kernel: produce all `C(n, i)` candidate sets of size `i`
/// (§5 "Unrank"). Uniform per-lane cost — no divergence.
pub fn unrank_kernel(n: usize, i: usize, stats: &mut GpuStats) -> Vec<RelSet> {
    let total = binomial(n as u64, i as u64);
    let mut out = Vec::with_capacity(total as usize);
    for r in 0..total {
        out.push(unrank_subset(n, i, r));
    }
    stats.kernel_launches += 1;
    let per_lane = cycles::UNRANK_PER_BIT * n as u32;
    let costs = vec![per_lane; total as usize];
    let (c, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
    stats.warp_cycles += c;
    stats.busy_cycles += per_lane as u64 * total;
    stats.global_writes += total; // each lane stores its set
    out
}

/// Filter kernel: drop disconnected sets and compact the survivors
/// (§5 "Filter", e.g. `thrust::remove`).
pub fn filter_kernel(q: &QueryInfo, sets: Vec<RelSet>, stats: &mut GpuStats) -> Vec<RelSet> {
    stats.kernel_launches += 1;
    let mut costs = Vec::with_capacity(sets.len());
    let mut kept = Vec::new();
    for s in sets {
        // Connectivity by grow: cost proportional to the set size.
        let connected = q.graph.is_connected(s);
        costs.push(cycles::GROW_STEP * s.len() as u32);
        if connected {
            kept.push(s);
        }
    }
    let (c, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
    stats.warp_cycles += c;
    stats.busy_cycles += costs.iter().map(|&x| x as u64).sum::<u64>();
    stats.global_reads += costs.len() as u64;
    stats.global_writes += kept.len() as u64; // stream compaction output
    kept
}

/// Expand kernel — the frontier alternative to unrank+filter (§5 pipeline
/// with the connected-subset enumerator): one lane per (set, neighbor) pair
/// of the previous level's connected sets; each lane ORs one neighbor bit
/// into its set and publishes the candidate through the Murmur3 seen-table,
/// and a compaction pass (sort + unique, as `thrust::sort`/`unique` would)
/// yields the level's connected sets in ascending bitmap order. Every
/// candidate is connected by construction, so no `grow` walk ever runs.
/// Charged as two launches: the expansion map and the compaction.
pub fn expand_kernel(q: &QueryInfo, prev: &[RelSet], stats: &mut GpuStats) -> Vec<RelSet> {
    stats.kernel_launches += 2;
    let mut seen = mpdp_core::enumerate::SeenTable::with_capacity(prev.len());
    let mut out = Vec::new();
    let mut costs = Vec::new();
    for &s in prev {
        // Neighborhood of the whole set: a handful of word ORs per lane.
        let nb = q.graph.neighbors(s);
        for v in nb.iter() {
            let t = s.with(v);
            // One OR + one hash-table publish per lane; uniform cost.
            costs.push(cycles::CHECK + cycles::HASH_PROBE);
            if seen.insert(t.bits()) {
                out.push(t);
            }
        }
    }
    out.sort_unstable();
    let (c, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
    stats.warp_cycles += c;
    stats.busy_cycles += costs.iter().map(|&x| x as u64).sum::<u64>();
    stats.global_reads += costs.len() as u64; // each lane loads its source set
    stats.global_writes += out.len() as u64; // compaction output
    out
}

/// Prices one ordered pair against the device memo, charging probe costs.
#[allow(clippy::too_many_arguments)]
fn price_pair(
    q: &QueryInfo,
    model: &dyn CostModel,
    memo: &AtomicMemo,
    sl: RelSet,
    sr: RelSet,
    stats: &mut GpuStats,
) -> Option<GpuCandidate> {
    let el = memo.get(sl)?;
    let er = memo.get(sr)?;
    stats.global_reads += 2; // two memo probes
    let sel = q.graph.selectivity_between(sl, sr);
    let rows = el.rows * er.rows * sel;
    let cost = model.join_cost(
        InputEst {
            cost: el.cost,
            rows: el.rows,
        },
        InputEst {
            cost: er.cost,
            rows: er.rows,
        },
        rows,
    );
    Some(GpuCandidate {
        set: sl.union(sr),
        left: sl,
        cost,
        rows,
    })
}

/// Outcome of an evaluate kernel over a level's sets. Winners are already
/// in the device memo (published atomically); only counters come back.
pub struct EvaluateOutcome {
    /// Join-Pairs evaluated.
    pub evaluated: u64,
    /// CCP pairs found.
    pub ccp: u64,
    /// Successful memo min-updates (the level's `memo_writes`).
    pub memo_writes: u64,
}

/// Publishes candidates into the device memo as atomic min-updates,
/// charging the traffic: one global atomic per candidate plus the table's
/// probe reads (the paper's "parallel store on the GPU hash table").
/// Returns the number of successful updates.
fn publish_atomic(
    memo: &AtomicMemo,
    candidates: impl IntoIterator<Item = GpuCandidate>,
    stats: &mut GpuStats,
) -> u64 {
    let probes_before = memo.probe_count();
    let mut attempts = 0u64;
    let mut writes = 0u64;
    for c in candidates {
        attempts += 1;
        if memo.insert_if_better(c.set, c.left, c.cost, c.rows) {
            writes += 1;
        }
    }
    stats.global_writes += attempts;
    stats.global_reads += memo.probe_count() - probes_before;
    let costs = vec![cycles::HASH_PROBE; attempts as usize];
    let (cyc, _) = schedule_warp(WarpPolicy::Lockstep, &costs);
    stats.warp_cycles += cyc;
    stats.busy_cycles += costs.iter().map(|&x| x as u64).sum::<u64>();
    writes
}

/// Keeps the better of two candidates for the same set under the memo's
/// deterministic `(cost, left)` order — the in-warp shared-memory reduction
/// of the fused prune. Using the memo's own tie-break is what keeps the
/// fused and unfused paths (and every CPU backend) bit-identical on exact
/// cost ties.
#[inline]
fn warp_min(best: &mut Option<GpuCandidate>, c: GpuCandidate) {
    match best {
        Some(b)
            if mpdp_core::memo::candidate_key(b.cost, b.left)
                <= mpdp_core::memo::candidate_key(c.cost, c.left) => {}
        _ => *best = Some(c),
    }
}

/// Evaluate kernel, DPSUB style (§5 / \[23\] COMB-GPU): one warp per set; each
/// lane takes one submask (expanded with PDEP), runs the CCP block and costs
/// survivors. Highly divergent: most lanes fail an early check while a few
/// run the full costing. Winners go straight into the device-global
/// [`AtomicMemo`]: one reduced publish per set with the fused prune, one
/// `atomicMin` per surviving pair (plus a separate prune launch) without.
pub fn evaluate_dpsub_kernel(
    q: &QueryInfo,
    model: &dyn CostModel,
    memo: &AtomicMemo,
    sets: &[RelSet],
    policy: WarpPolicy,
    fused_prune: bool,
    stats: &mut GpuStats,
) -> EvaluateOutcome {
    stats.kernel_launches += 1;
    let mut out = EvaluateOutcome {
        evaluated: 0,
        ccp: 0,
        memo_writes: 0,
    };
    let mut pending: Vec<GpuCandidate> = Vec::new();
    for &s in sets {
        let mut lane_costs: Vec<u32> = Vec::with_capacity(1 << s.len());
        let mut best: Option<GpuCandidate> = None;
        for sl in s.subsets() {
            out.evaluated += 1;
            let mut lane = cycles::CHECK; // emptiness checks
            let sr = s.difference(sl);
            let candidate = 'eval: {
                if sl.is_empty() || sr.is_empty() {
                    break 'eval None;
                }
                lane += cycles::GROW_STEP * sl.len() as u32;
                if !q.graph.is_connected(sl) {
                    break 'eval None;
                }
                lane += cycles::GROW_STEP * sr.len() as u32;
                if !q.graph.is_connected(sr) {
                    break 'eval None;
                }
                lane += cycles::CHECK; // disjointness + edge test
                if !q.graph.sets_connected(sl, sr) {
                    break 'eval None;
                }
                lane += cycles::COST_EVAL;
                out.ccp += 1;
                price_pair(q, model, memo, sl, sr, stats)
            };
            if let Some(c) = candidate {
                if fused_prune {
                    warp_min(&mut best, c);
                } else {
                    pending.push(c);
                }
            }
            lane_costs.push(lane);
        }
        let (c, sh) = schedule_warp(policy, &lane_costs);
        stats.warp_cycles += c;
        stats.busy_cycles += lane_costs.iter().map(|&x| x as u64).sum::<u64>();
        stats.shared_ops += sh;
        if fused_prune {
            // In-warp reduction in shared memory; one atomic publish per set.
            stats.shared_ops += lane_costs.len() as u64;
            out.memo_writes += publish_atomic(memo, best, stats);
        }
    }
    if !fused_prune {
        // Separate prune kernel: every surviving pair re-read from global
        // memory and min-merged into the table with its own atomic.
        stats.kernel_launches += 1;
        stats.global_reads += pending.len() as u64;
        out.memo_writes += publish_atomic(memo, pending, stats);
    }
    out
}

/// Evaluate kernel, MPDP style (§5 "Evaluate"): one warp per set; the warp
/// first finds the blocks of the set (the parallel Find-Blocks of \[29\]),
/// then each lane takes one block submask, grows it, and costs the pair.
/// Winners publish into the device-global [`AtomicMemo`] exactly as in
/// [`evaluate_dpsub_kernel`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_mpdp_kernel(
    q: &QueryInfo,
    model: &dyn CostModel,
    memo: &AtomicMemo,
    sets: &[RelSet],
    policy: WarpPolicy,
    fused_prune: bool,
    stats: &mut GpuStats,
) -> EvaluateOutcome {
    stats.kernel_launches += 1;
    let mut out = EvaluateOutcome {
        evaluated: 0,
        ccp: 0,
        memo_writes: 0,
    };
    let mut pending: Vec<GpuCandidate> = Vec::new();
    for &s in sets {
        // Warp-cooperative block finding: charged once per set.
        let decomposition = mpdp_core::blocks::find_blocks(&q.graph, s);
        let block_cost = cycles::BLOCKS_PER_VERTEX * s.len() as u32;
        let mut lane_costs: Vec<u32> = vec![block_cost];
        let mut best: Option<GpuCandidate> = None;
        for &block in &decomposition.blocks {
            for lb in block.subsets() {
                if lb == block {
                    continue;
                }
                out.evaluated += 1;
                let rb = block.difference(lb);
                let mut lane = cycles::CHECK;
                let candidate = 'eval: {
                    if lb.is_empty() || rb.is_empty() {
                        break 'eval None;
                    }
                    lane += cycles::GROW_STEP * lb.len() as u32;
                    if !q.graph.is_connected(lb) {
                        break 'eval None;
                    }
                    lane += cycles::GROW_STEP * rb.len() as u32;
                    if !q.graph.is_connected(rb) {
                        break 'eval None;
                    }
                    lane += cycles::CHECK;
                    if !q.graph.sets_connected(lb, rb) {
                        break 'eval None;
                    }
                    out.ccp += 1;
                    lane += cycles::GROW_STEP * s.len() as u32; // the grow to S-level
                    let sleft = q.graph.grow(lb, s.difference(rb));
                    let sright = s.difference(sleft);
                    lane += cycles::COST_EVAL;
                    price_pair(q, model, memo, sleft, sright, stats)
                };
                if let Some(c) = candidate {
                    if fused_prune {
                        warp_min(&mut best, c);
                    } else {
                        pending.push(c);
                    }
                }
                lane_costs.push(lane);
            }
        }
        let (c, sh) = schedule_warp(policy, &lane_costs);
        stats.warp_cycles += c;
        stats.busy_cycles += lane_costs.iter().map(|&x| x as u64).sum::<u64>();
        stats.shared_ops += sh;
        if fused_prune {
            stats.shared_ops += lane_costs.len() as u64;
            out.memo_writes += publish_atomic(memo, best, stats);
        }
    }
    if !fused_prune {
        stats.kernel_launches += 1; // the separate prune kernel for the level
        stats.global_reads += pending.len() as u64;
        out.memo_writes += publish_atomic(memo, pending, stats);
    }
    out
}

/// Charges the per-level host↔device transfer: the host ships level metadata
/// down and reads the level's best-plan count back.
pub fn level_transfer(sets: usize, stats: &mut GpuStats) {
    stats.levels += 1;
    stats.bytes_transferred += (sets * std::mem::size_of::<u64>()) as u64 + 64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::init_memo;
    use mpdp_workload::gen;

    fn setup(n: usize) -> (QueryInfo, PgLikeCost, AtomicMemo) {
        let m = PgLikeCost::new();
        let q = gen::star(n, 5, &m).to_query_info().unwrap();
        let memo: AtomicMemo = init_memo(&q);
        (q, m, memo)
    }

    #[test]
    fn unrank_produces_all_combinations() {
        let mut stats = GpuStats::default();
        let sets = unrank_kernel(6, 3, &mut stats);
        assert_eq!(sets.len(), 20);
        assert!(sets.iter().all(|s| s.len() == 3));
        assert!(stats.warp_cycles > 0);
        assert_eq!(stats.kernel_launches, 1);
    }

    #[test]
    fn filter_keeps_connected_only() {
        let (q, _, _) = setup(5);
        let mut stats = GpuStats::default();
        let sets = unrank_kernel(5, 2, &mut stats);
        let kept = filter_kernel(&q, sets, &mut stats);
        // Star: connected 2-sets are exactly the 4 edges.
        assert_eq!(kept.len(), 4);
        assert!(kept.iter().all(|s| q.graph.is_connected(*s)));
    }

    #[test]
    fn evaluate_dpsub_finds_pairs() {
        let (q, m, memo) = setup(4);
        let mut stats = GpuStats::default();
        let sets: Vec<RelSet> = (1..4).map(|d| RelSet::from_indices([0, d])).collect();
        let out =
            evaluate_dpsub_kernel(&q, &m, &memo, &sets, WarpPolicy::Lockstep, true, &mut stats);
        assert_eq!(out.memo_writes, 3); // one published winner per set
        assert_eq!(out.ccp, 6); // 2 ordered pairs per 2-set
        assert_eq!(out.evaluated, 9); // 2^2-1 submasks per set
        for s in sets {
            assert!(memo.get(s).is_some(), "winner for {s} is in the table");
        }
    }

    #[test]
    fn fused_prune_writes_less() {
        let (q, m, _) = setup(6);
        let sets: Vec<RelSet> = (1..6).map(|d| RelSet::from_indices([0, d])).collect();
        let mut fused = GpuStats::default();
        let mut separate = GpuStats::default();
        let memo_a: AtomicMemo = init_memo(&q);
        let memo_b: AtomicMemo = init_memo(&q);
        let a = evaluate_dpsub_kernel(
            &q,
            &m,
            &memo_a,
            &sets,
            WarpPolicy::Lockstep,
            true,
            &mut fused,
        );
        let b = evaluate_dpsub_kernel(
            &q,
            &m,
            &memo_b,
            &sets,
            WarpPolicy::Lockstep,
            false,
            &mut separate,
        );
        assert!(fused.global_writes < separate.global_writes);
        // Both paths converge the table to the identical winners.
        assert_eq!(a.ccp, b.ccp);
        for s in &sets {
            let (ea, eb) = (memo_a.get(*s).unwrap(), memo_b.get(*s).unwrap());
            assert_eq!(ea.cost.to_bits(), eb.cost.to_bits());
            assert_eq!(ea.left, eb.left);
        }
    }

    #[test]
    fn ccc_reduces_cycles_on_divergent_work() {
        // Level-3 star sets: 7 submasks per set, most failing an early CCP
        // check while two run the full costing — classic divergence.
        let m = PgLikeCost::new();
        let q = gen::star(8, 5, &m).to_query_info().unwrap();
        let memo: AtomicMemo = init_memo(&q);
        let mut memo_stats = GpuStats::default();
        // Fill level 2 so pricing works at level 3 (the evaluate kernel
        // publishes winners directly into the device table).
        let l2: Vec<RelSet> = (1..8).map(|d| RelSet::from_indices([0, d])).collect();
        evaluate_dpsub_kernel(
            &q,
            &m,
            &memo,
            &l2,
            WarpPolicy::Lockstep,
            true,
            &mut memo_stats,
        );
        // Level 3 sets {0, a, b}.
        let mut l3 = Vec::new();
        for a in 1..8 {
            for b in (a + 1)..8 {
                l3.push(RelSet::from_indices([0, a, b]));
            }
        }
        let mut lockstep = GpuStats::default();
        let mut ccc = GpuStats::default();
        let o1 = evaluate_dpsub_kernel(
            &q,
            &m,
            &memo,
            &l3,
            WarpPolicy::Lockstep,
            true,
            &mut lockstep,
        );
        let o2 = evaluate_dpsub_kernel(
            &q,
            &m,
            &memo,
            &l3,
            WarpPolicy::Ccc {
                overhead_per_pass: 4,
            },
            true,
            &mut ccc,
        );
        assert_eq!(o1.ccp, o2.ccp);
        assert!(ccc.warp_cycles < lockstep.warp_cycles);
        assert!(lockstep.divergence_factor() > 1.2);
    }

    #[test]
    fn evaluate_publishes_then_lookup() {
        let (q, m, memo) = setup(3);
        let mut stats = GpuStats::default();
        let sets: Vec<RelSet> = (1..3).map(|d| RelSet::from_indices([0, d])).collect();
        let out =
            evaluate_dpsub_kernel(&q, &m, &memo, &sets, WarpPolicy::Lockstep, true, &mut stats);
        assert_eq!(out.memo_writes, 2);
        assert!(memo.get(RelSet::from_indices([0, 1])).is_some());
        // Publishing charged the hash-table traffic.
        assert!(stats.global_writes >= 2);
        assert!(stats.global_reads >= 2);
    }
}
