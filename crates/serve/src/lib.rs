//! # mpdp-serve
//!
//! Async serving front-end for the MPDP planning stack: the layer that turns
//! `PlanService` (a concurrent library) into a *service* — bounded
//! admission, single-flight planning, per-tenant isolation, and `/metrics`
//! observability — without adding a single external dependency. The
//! executor and reactor are hand-rolled on `std` (see [`executor`] and
//! [`reactor`]); the planning itself is `mpdp`'s `PlanService::plan_async`,
//! which single-flights cold fingerprints so N concurrent misses on one
//! query shape cost one DP run.
//!
//! ## Request lifecycle
//!
//! ```text
//! submit(tenant, query [, deadline])
//!   │ tenant quota check ──✗──▶ Rejected::QuotaExhausted   (counted shed)
//!   │ bounded queue push ──✗──▶ Rejected::QueueFull        (counted shed)
//!   ▼
//! PlanTicket ◀── accepted; the caller holds the completion handle
//!   │
//! dispatcher task pops ──▶ PlanService::plan_async
//!   │                        ──▶ hit | cold | coalesced | degraded
//!   ▼                                              (exact counters)
//! ticket completes: plan in the caller's labels + end-to-end latency
//! ```
//!
//! Admission control is *explicit*: an overloaded front-end answers
//! [`Rejected`] immediately — it never blocks the submitter and never drops
//! a request silently — and every accepted request completes, including
//! through shutdown (the queue drains before the executor stops). Load past
//! the queue bound therefore degrades into counted sheds while goodput
//! plateaus, which is the overload behavior the bench harness measures.
//!
//! Tenancy: each tenant gets its own `PlanService` (its own sharded
//! `PlanCache` partition — capacity isolation, no cross-tenant eviction
//! pressure) and an in-flight quota. The quota is the cheap fairness knob:
//! a tenant flooding the front-end exhausts its own quota and sheds,
//! leaving the shared queue for the others.
//!
//! ## Failure domains
//!
//! "Every accepted request completes" has to survive more than a clean
//! shutdown. Each accepted request's accounting — its tenant quota slot,
//! its ticket completion, the front-door gauges — is owned by an RAII
//! *lease* that settles the books exactly once however the request leaves
//! the system, including on a panicking dispatcher's stack. Dispatcher
//! loops run under per-request and per-loop `catch_unwind` with a
//! supervisor that restarts them (counted as `worker_respawns`); executor
//! task polls and the reactor driver are panic-isolated the same way (see
//! [`executor`] and [`reactor`]); and every lock in the crate recovers from
//! poison instead of cascading. Deadline-carrying requests that cannot
//! afford exact planning degrade to a heuristic plan inside `PlanService`
//! rather than blowing their budget. The whole surface is exercised by
//! seeded fault injection ([`mpdp_core::faults`]) in the chaos suite.

#![warn(missing_docs)]

pub mod executor;
pub mod queue;
pub mod reactor;

pub use executor::{CatchUnwind, Executor, Join, JoinError};
pub use queue::{Bounded, PushError};
pub use reactor::{Reactor, Sleep};

use mpdp::service::{PlanRequest, PlanService, PlanServiceBuilder, ServedPlan};
use mpdp_cluster::{ClusterConfig, PlanCluster};
use mpdp_core::counters::{CacheSnapshot, ServeCounters, ServeSnapshot};
use mpdp_core::faults::{site, Faults};
use mpdp_core::sync::{lock_recover, wait_recover, wait_timeout_recover};
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use mpdp_obs::{sites, ObsSnapshot, SpanCtx, SpanGuard, Tracer};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-tenant configuration: one cache partition + one quota.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Label used in metrics output.
    pub name: String,
    /// Plan-cache capacity of this tenant's partition.
    pub cache_capacity: usize,
    /// Shard count of this tenant's partition.
    pub cache_shards: usize,
    /// Maximum requests this tenant may have accepted-but-incomplete
    /// (queued + planning). Beyond it, submissions shed with
    /// [`Rejected::QuotaExhausted`].
    pub max_in_flight: usize,
    /// Cluster-backed mode: when set, this tenant's requests are served by
    /// a sharded [`PlanCluster`] (consistent-hash routing on the query
    /// fingerprint, hot-template replication, feedback gossip) instead of
    /// one `PlanService`. The front-end still owns service construction:
    /// the config's `service` builder is replaced with one derived from
    /// this tenant's cache sizing and the front-end's budget/faults, so a
    /// cluster shard is configured exactly like the single-service backend
    /// would have been.
    pub cluster: Option<ClusterConfig>,
}

impl TenantConfig {
    /// A tenant with the given name and workspace-default cache sizing.
    pub fn named(name: impl Into<String>) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            cache_capacity: 4096,
            cache_shards: 16,
            max_in_flight: usize::MAX,
            cluster: None,
        }
    }

    /// Backs this tenant with a sharded planning tier (see
    /// [`TenantConfig::cluster`]).
    pub fn clustered(mut self, config: ClusterConfig) -> TenantConfig {
        self.cluster = Some(config);
        self
    }
}

/// Front-end configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bounded request-queue depth — the admission-control knob. A full
    /// queue sheds with [`Rejected::QueueFull`].
    pub queue_depth: usize,
    /// Concurrent dispatcher tasks (the planning parallelism; each runs one
    /// request at a time).
    pub dispatchers: usize,
    /// Executor worker threads. Keep ≥ 2 so coalesced waiters make progress
    /// while a leader's cold plan occupies a worker.
    pub executor_threads: usize,
    /// Default per-request optimization budget.
    pub budget: Option<Duration>,
    /// Default per-request deadline: each submission's absolute deadline
    /// becomes `now + default_deadline` unless
    /// [`ServeFront::submit_with_deadline`] overrides it. Requests that
    /// cannot afford their routed exact strategy within the remaining
    /// budget — or that time out mid-flight — degrade to a heuristic plan
    /// (`ServedVia::Degraded`) instead of missing the deadline. `None`
    /// disables the deadline machinery.
    pub default_deadline: Option<Duration>,
    /// Fault-injection handle shared by every component (queue, executor,
    /// reactor, dispatcher, planner). Chaos tests arm it with a seeded
    /// [`mpdp_core::FaultPlan`]; production leaves it disarmed (the
    /// default), which costs one branch per instrumented site.
    pub faults: Faults,
    /// Request tracer. Disabled by default (one branch per span site,
    /// matching the `faults` discipline); arm it to record a
    /// `serve.request` span per admitted request, threaded through
    /// routing, single-flight, and strategy invocation down to the
    /// executor's morsels. The same handle is propagated into
    /// cluster-backed tenants.
    pub tracer: Tracer,
    /// The tenants; at least one. Requests address tenants by index.
    pub tenants: Vec<TenantConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 1024,
            dispatchers: 4,
            executor_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2),
            budget: None,
            default_deadline: None,
            faults: Faults::disarmed(),
            tracer: Tracer::disabled(),
            tenants: vec![TenantConfig::named("default")],
        }
    }
}

/// Why a submission was refused. Shedding is an *answer*, not an error
/// path: the caller is told immediately and the shed is counted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded request queue is at capacity.
    QueueFull,
    /// The tenant has `max_in_flight` requests outstanding.
    QuotaExhausted,
    /// The front-end is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "request queue full"),
            Rejected::QuotaExhausted => write!(f, "tenant in-flight quota exhausted"),
            Rejected::ShuttingDown => write!(f, "front-end shutting down"),
        }
    }
}

/// A completed request: the planning outcome plus its end-to-end latency
/// (submit → completion, queueing included — the number the open-loop
/// harness reports, unlike `ServedPlan::service_time` which starts at
/// dispatch).
#[derive(Clone, Debug)]
pub struct Completed {
    /// The planning outcome, plan leaves in the submitter's relation ids.
    pub result: Result<ServedPlan, OptError>,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// The request's span context (disabled unless the front-end's tracer
    /// is armed). Callers that execute the served plan pass this to
    /// `Executor::with_trace` so executor spans join the request's trace.
    pub trace: SpanCtx,
}

struct TicketState {
    slot: Mutex<Option<Completed>>,
    cv: Condvar,
}

impl TicketState {
    fn new() -> Arc<TicketState> {
        Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        })
    }
}

/// Completion handle for one accepted request. Dropping a ticket without
/// taking its result is counted (`abandoned_tickets`); the request itself
/// still completes and settles its quota slot through its lease.
pub struct PlanTicket {
    state: Arc<TicketState>,
    /// Present until the result is taken; `Drop` uses it to count
    /// abandonment.
    counters: Option<Arc<ServeCounters>>,
}

impl std::fmt::Debug for PlanTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanTicket").finish_non_exhaustive()
    }
}

impl PlanTicket {
    /// Blocks until the request completes. Accepted requests always
    /// complete — the dispatcher finishes or fails each popped request,
    /// leases settle requests dropped on a panicking path, and shutdown
    /// drains the queue first — so this cannot hang.
    pub fn wait(mut self) -> Completed {
        self.counters = None;
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(done) = slot.take() {
                return done;
            }
            slot = wait_recover(&self.state.cv, slot);
        }
    }

    /// Blocks until the request completes or `timeout` elapses — the
    /// hang-proof harvest primitive the chaos suite uses (a hung ticket is
    /// a test failure, not a hung test run).
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Completed> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(done) = slot.take() {
                self.counters = None;
                return Some(done);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            slot = wait_timeout_recover(&self.state.cv, slot, deadline - now).0;
        }
    }

    /// The completion, if already available (non-blocking).
    pub fn try_take(&mut self) -> Option<Completed> {
        let done = lock_recover(&self.state.slot).take();
        if done.is_some() {
            self.counters = None;
        }
        done
    }
}

impl Drop for PlanTicket {
    fn drop(&mut self) {
        if let Some(counters) = self.counters.take() {
            counters.record_abandoned_ticket();
        }
    }
}

/// RAII ownership of one accepted request's accounting: the tenant quota
/// slot, the ticket completion, and the front-door gauges. However the
/// request leaves the system — served, failed, or *dropped* on a panicked
/// dispatcher's stack — the lease settles the books exactly once. This is
/// what keeps `accepted == completed + failed`, the gauges at zero, and
/// every waiter released through every chaos schedule.
struct Lease {
    tenants: Arc<Vec<Tenant>>,
    counters: Arc<ServeCounters>,
    ticket: Arc<TicketState>,
    tenant: usize,
    submitted: Instant,
    /// The request's span context, surfaced on the [`Completed`] it fills.
    trace: SpanCtx,
    /// Counted accepted (pushed to the queue). A lease dropped before the
    /// push settles only its quota slot.
    accepted: bool,
    /// The dispatch gauge move already happened for this request.
    dispatched: bool,
    done: bool,
}

impl Lease {
    /// Completes the request: releases the quota slot, records the
    /// completion, fills the ticket, wakes waiters. Idempotent.
    fn finish(&mut self, result: Result<ServedPlan, OptError>) {
        if self.done {
            return;
        }
        self.done = true;
        let ok = result.is_ok();
        self.tenants[self.tenant]
            .in_flight
            .fetch_sub(1, Ordering::Release);
        self.counters.record_done(ok);
        *lock_recover(&self.ticket.slot) = Some(Completed {
            result,
            latency: self.submitted.elapsed(),
            trace: self.trace.clone(),
        });
        self.ticket.cv.notify_all();
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        if self.accepted {
            // Dropped while owned by a dispatcher chunk (or the queue at
            // teardown): the request will never be planned. Fail its ticket
            // instead of stranding the waiter, and keep the gauges exact.
            if !self.dispatched {
                self.counters.record_dispatch();
                self.dispatched = true;
            }
            self.finish(Err(OptError::Internal(
                "request dropped before planning (dispatcher failure or shutdown)".to_string(),
            )));
        } else {
            // Never entered the queue (push refused): give back the quota
            // slot reserved at construction; no ticket was handed out.
            self.done = true;
            self.tenants[self.tenant]
                .in_flight
                .fetch_sub(1, Ordering::Release);
        }
    }
}

/// One queued request.
struct Request {
    query: LargeQuery,
    deadline: Option<Instant>,
    lease: Lease,
    /// Root `serve.request` span, minted at admission. Held through
    /// planning so its recorded extent is admission → settle; the guard
    /// drops (records) after the lease finishes, field order aside —
    /// `dispatch_loop` drops the whole `Request` after `finish`.
    span: SpanGuard,
}

/// What actually plans a tenant's requests.
enum Backend {
    /// One `PlanService` — the classic per-tenant partition.
    Single(Arc<PlanService>),
    /// A sharded planning tier; each request routes to its fingerprint's
    /// shard (hot templates round-robin over their replica set).
    Cluster(Arc<PlanCluster>),
}

struct Tenant {
    name: String,
    backend: Backend,
    max_in_flight: usize,
    in_flight: AtomicUsize,
}

impl Tenant {
    /// The service that plans `query`: the tenant's single service, or the
    /// cluster shard its fingerprint routes to. Records a `serve.route`
    /// event on the request's trace (attr = shard id + 1; 0 marks the
    /// single-service backend).
    fn route(&self, query: &LargeQuery, trace: &SpanCtx) -> Arc<PlanService> {
        match &self.backend {
            Backend::Single(service) => {
                trace.event(sites::ROUTE, 0);
                Arc::clone(service)
            }
            Backend::Cluster(cluster) => {
                let (service, _, shard) = cluster.route_service(query);
                trace.event(sites::ROUTE, shard as u64 + 1);
                service
            }
        }
    }
}

/// The serving front-end. Construct with [`ServeFront::new`], submit with
/// [`ServeFront::submit`], observe with [`ServeFront::metrics_text`] /
/// [`ServeFront::serve_counters`]. Dropping the front-end drains accepted
/// requests, then stops the executor and reactor.
pub struct ServeFront {
    tenants: Arc<Vec<Tenant>>,
    queue: Arc<Bounded<Request>>,
    counters: Arc<ServeCounters>,
    reactor: Arc<Reactor>,
    default_deadline: Option<Duration>,
    faults: Faults,
    tracer: Tracer,
    /// Executor poll panics, readable after the executor is dropped.
    executor_panics: Arc<AtomicU64>,
    dispatchers: Vec<Join<()>>,
    /// Dropped last (field order): dispatchers must finish before workers
    /// stop, and `shutdown` enforces that ordering explicitly anyway.
    executor: Option<Executor>,
}

impl std::fmt::Debug for ServeFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFront")
            .field("tenants", &self.tenants.len())
            .field("queue", &self.queue)
            .field("counters", &self.serve_counters())
            .finish()
    }
}

/// One dispatcher's serving loop: pop, drain a chunk, plan each request,
/// settle each lease. Runs under the supervisor's `CatchUnwind`; a panic
/// anywhere in here (injected `queue.pop` / `dispatch.chunk` faults, a
/// planner panic that escapes the per-request isolation, a poisoned
/// downstream lock) unwinds with the in-flight chunk on this stack, whose
/// leases fail their tickets on the way down — then the supervisor restarts
/// the loop.
async fn dispatch_loop(
    queue: Arc<Bounded<Request>>,
    counters: Arc<ServeCounters>,
    model: Arc<dyn CostModel + Send + Sync>,
    faults: Faults,
) {
    // Drain in chunks: after the awaited head request, take up to a chunk
    // more under one lock — at 100k+ req/s, per-request lock and gauge
    // traffic is the difference between plateauing and collapsing under
    // overload. A chunk rides on one dispatcher, so a cold plan delays its
    // chunk-mates; chunks are kept small and cold plans are rare by
    // construction (single-flight + warm cache).
    const CHUNK: usize = 32;
    let mut batch: Vec<Request> = Vec::with_capacity(CHUNK);
    while let Some(req) = queue.pop().await {
        batch.push(req);
        queue.drain_into(&mut batch, CHUNK - 1);
        counters.record_dispatch_n(batch.len() as u64);
        for r in batch.iter_mut() {
            r.lease.dispatched = true;
        }
        // Fault site: one check per chunk, after the gauge move so a panic
        // here leaves the books settled by the leases (`Error` has no
        // channel at chunk granularity and is a no-op).
        let _ = faults.apply_panic_stall(site::DISPATCH_CHUNK);
        for mut req in batch.drain(..) {
            let opts = PlanRequest {
                deadline: req.deadline,
                trace: req.span.ctx(),
                ..PlanRequest::default()
            };
            // Route here, per request: a cluster-backed tenant picks the
            // shard by the query's fingerprint (advancing hot-template
            // round-robin); a single-backed tenant has one choice.
            let ctx = req.span.ctx();
            let service = req.lease.tenants[req.lease.tenant].route(&req.query, &ctx);
            let m: &(dyn CostModel + Sync) = &*model;
            // Per-request panic isolation: a planner that blows up fails
            // *this* ticket and the loop keeps serving its chunk-mates.
            let result = match CatchUnwind::new(service.plan_async(&req.query, m, &opts)).await {
                Ok(result) => result,
                Err(_) => Err(OptError::Internal(
                    "planner panicked; request failed in isolation".to_string(),
                )),
            };
            req.lease.finish(result);
        }
    }
}

impl ServeFront {
    /// Builds the front-end and starts its executor, reactor, and
    /// dispatcher tasks. `model` is the cost model every request is planned
    /// under (per-model serving fronts are cheaper than per-request model
    /// plumbing, and the cache keys fold the model anyway).
    pub fn new(config: ServeConfig, model: Arc<dyn CostModel + Send + Sync>) -> ServeFront {
        assert!(!config.tenants.is_empty(), "at least one tenant");
        let tenants: Arc<Vec<Tenant>> = Arc::new(
            config
                .tenants
                .iter()
                .map(|t| {
                    let mut builder = PlanServiceBuilder::new()
                        .cache_capacity(t.cache_capacity)
                        .cache_shards(t.cache_shards)
                        .faults(config.faults.clone());
                    if let Some(budget) = config.budget {
                        builder = builder.budget(budget);
                    }
                    let backend = match &t.cluster {
                        None => Backend::Single(Arc::new(builder.build())),
                        Some(cluster) => {
                            // Each cluster shard gets the same service
                            // configuration the single backend would have,
                            // and the front-end's tracer (gossip events
                            // land in the same drainable set).
                            let mut cfg = cluster.clone();
                            cfg.service = builder;
                            cfg.tracer = config.tracer.clone();
                            Backend::Cluster(Arc::new(PlanCluster::new(cfg)))
                        }
                    };
                    Tenant {
                        name: t.name.clone(),
                        backend,
                        max_in_flight: t.max_in_flight.max(1),
                        in_flight: AtomicUsize::new(0),
                    }
                })
                .collect(),
        );
        let queue: Arc<Bounded<Request>> = Arc::new(Bounded::with_faults(
            config.queue_depth,
            config.faults.clone(),
        ));
        let counters = Arc::new(ServeCounters::default());
        let executor = Executor::with_faults(config.executor_threads, config.faults.clone());
        let executor_panics = executor.panic_counter();
        let reactor = Arc::new(Reactor::with_faults(config.faults.clone()));

        let dispatchers = (0..config.dispatchers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let model = Arc::clone(&model);
                let faults = config.faults.clone();
                // Supervisor: restart the serving loop after any caught
                // panic, until the queue reports closed-and-drained.
                // `spawn_critical` exempts the supervisor itself from the
                // injected executor.poll site — it *is* the containment.
                executor.spawn_critical(async move {
                    loop {
                        let serving = dispatch_loop(
                            Arc::clone(&queue),
                            Arc::clone(&counters),
                            Arc::clone(&model),
                            faults.clone(),
                        );
                        match CatchUnwind::new(serving).await {
                            Ok(()) => break,
                            Err(_) => counters.record_worker_respawn(),
                        }
                    }
                })
            })
            .collect();

        ServeFront {
            tenants,
            queue,
            counters,
            reactor,
            default_deadline: config.default_deadline,
            faults: config.faults,
            tracer: config.tracer,
            executor_panics,
            dispatchers,
            executor: Some(executor),
        }
    }

    fn config_deadline(&self) -> Option<Instant> {
        self.default_deadline.map(|d| Instant::now() + d)
    }

    fn ticket(&self, state: Arc<TicketState>) -> PlanTicket {
        PlanTicket {
            state,
            counters: Some(Arc::clone(&self.counters)),
        }
    }

    /// Submits a query for tenant `tenant` (index into the configured
    /// tenant list), with the config's default deadline (if any). Returns
    /// the completion ticket, or the explicit admission-control verdict —
    /// this call never blocks on planning.
    pub fn submit(&self, tenant: usize, query: LargeQuery) -> Result<PlanTicket, Rejected> {
        self.submit_with_deadline(tenant, query, self.config_deadline())
    }

    /// [`ServeFront::submit`] with an explicit absolute deadline (`None`
    /// disables the deadline for this request regardless of the config
    /// default). A deadline-carrying request that cannot afford its routed
    /// exact strategy degrades to a heuristic plan instead of missing it.
    pub fn submit_with_deadline(
        &self,
        tenant: usize,
        query: LargeQuery,
        deadline: Option<Instant>,
    ) -> Result<PlanTicket, Rejected> {
        let t = &self.tenants[tenant];
        // Reserve quota optimistically; the lease gives it back on any
        // refusal below (and on every completion path after acceptance).
        let reserved = t
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < t.max_in_flight).then_some(cur + 1)
            });
        if reserved.is_err() {
            self.counters.record_shed_quota();
            return Err(Rejected::QuotaExhausted);
        }
        let state = TicketState::new();
        // Root span minted at admission: everything downstream (routing,
        // single-flight, strategy, executor morsels) parents under it.
        let span = self.tracer.begin_request(sites::REQUEST);
        let request = Request {
            query,
            deadline,
            lease: Lease {
                tenants: Arc::clone(&self.tenants),
                counters: Arc::clone(&self.counters),
                ticket: Arc::clone(&state),
                tenant,
                submitted: Instant::now(),
                trace: span.ctx(),
                // Set before the push: the dispatcher may pop and settle
                // the request before `try_push` even returns.
                accepted: true,
                dispatched: false,
                done: false,
            },
            span,
        };
        match self.queue.try_push(request) {
            Ok(()) => {
                self.counters.record_accept();
                Ok(self.ticket(state))
            }
            Err(PushError::Full(mut r)) => {
                r.lease.accepted = false; // never entered the queue
                self.counters.record_shed_queue_full();
                drop(r); // lease releases the quota slot
                Err(Rejected::QueueFull)
            }
            Err(PushError::Closed(mut r)) => {
                r.lease.accepted = false;
                drop(r);
                Err(Rejected::ShuttingDown)
            }
        }
    }

    /// Batch admission: submits a pacing tick's worth of `offered` requests
    /// for one tenant in one quota reservation and one queue lock, appending
    /// a ticket per accepted request to `tickets` and returning how many
    /// were shed (counted, per kind, like [`ServeFront::submit`]).
    ///
    /// The query source is *lazy*: `queries` is pulled once per **admitted**
    /// request only, so a shed costs a counter increment — never a query
    /// materialization or drop. That is what keeps throughput flat past
    /// saturation: a front door that parses (or here, builds) every request
    /// it is about to reject spends its overload budget on garbage. The
    /// caller promises the iterator can yield at least `offered` items;
    /// anything it yields beyond the admitted prefix stays untouched in the
    /// iterator.
    ///
    /// Admission is conservative under races: the batch is sized to the
    /// quota headroom and free queue capacity observed at entry, so a
    /// concurrent producer can cause a shed that a per-request retry would
    /// have squeezed in. That is the intended policy — an open-loop
    /// generator sheds and moves on; it never blocks on admission.
    pub fn submit_many(
        &self,
        tenant: usize,
        offered: usize,
        queries: impl IntoIterator<Item = LargeQuery>,
        tickets: &mut Vec<PlanTicket>,
    ) -> u64 {
        let t = &self.tenants[tenant];
        let mut queries = queries.into_iter();
        // A closed front sheds nothing — mirror `submit`'s `ShuttingDown`
        // (which is not a counted shed) and refuse the batch unpulled.
        if self.queue.is_closed() {
            return offered as u64;
        }
        // Reserve quota headroom for the whole batch at once.
        let mut reserved = 0usize;
        let _ = t
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                reserved = offered.min(t.max_in_flight.saturating_sub(cur));
                (reserved > 0).then(|| cur + reserved)
            });
        let room = self.queue.free_capacity();
        let admit = reserved.min(room);
        let now = Instant::now();
        let deadline = self.config_deadline();
        let mut batch: Vec<Request> = Vec::with_capacity(admit);
        for query in queries.by_ref().take(admit) {
            let span = self.tracer.begin_request(sites::REQUEST);
            batch.push(Request {
                query,
                deadline,
                lease: Lease {
                    tenants: Arc::clone(&self.tenants),
                    counters: Arc::clone(&self.counters),
                    ticket: TicketState::new(),
                    tenant,
                    submitted: now,
                    trace: span.ctx(),
                    accepted: true,
                    dispatched: false,
                    done: false,
                },
                span,
            });
        }
        let built = batch.len();
        let states: Vec<Arc<TicketState>> =
            batch.iter().map(|r| Arc::clone(&r.lease.ticket)).collect();
        let pushed = self.queue.try_push_batch(&mut batch);
        // The unpushed tail (capacity sheds, close races) never entered the
        // queue; their leases release the quota slots on drop.
        for r in &mut batch {
            r.lease.accepted = false;
        }
        drop(batch);
        // Quota reserved beyond what was even built (iterator underrun,
        // capacity clamp) is given back in one move.
        let over_reserved = reserved - built;
        if over_reserved > 0 {
            t.in_flight.fetch_sub(over_reserved, Ordering::Release);
        }
        tickets.extend(
            states
                .into_iter()
                .take(pushed)
                .map(|state| self.ticket(state)),
        );
        self.counters.record_accept_n(pushed as u64);
        let quota_shed = offered.saturating_sub(reserved) as u64;
        let queue_shed = (offered - pushed) as u64 - quota_shed;
        self.counters.record_shed_quota_n(quota_shed);
        self.counters.record_shed_queue_full_n(queue_shed);
        queue_shed + quota_shed
    }

    /// The tenant's `PlanService` (e.g. to pre-warm its cache partition or
    /// feed `observe` cardinality feedback).
    ///
    /// # Panics
    /// For a cluster-backed tenant, which has no single service — use
    /// [`ServeFront::cluster`] there instead.
    pub fn service(&self, tenant: usize) -> &Arc<PlanService> {
        match &self.tenants[tenant].backend {
            Backend::Single(service) => service,
            Backend::Cluster(_) => {
                panic!("tenant {tenant} is cluster-backed; use ServeFront::cluster")
            }
        }
    }

    /// The tenant's [`PlanCluster`], if it is cluster-backed (pre-warm
    /// shards, feed observations, drive gossip rounds through it).
    pub fn cluster(&self, tenant: usize) -> Option<&Arc<PlanCluster>> {
        match &self.tenants[tenant].backend {
            Backend::Single(_) => None,
            Backend::Cluster(cluster) => Some(cluster),
        }
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's configured name.
    pub fn tenant_name(&self, tenant: usize) -> &str {
        &self.tenants[tenant].name
    }

    /// The shared fault-injection handle (chaos tests inspect fired counts
    /// through it).
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// The request tracer (drain it after a traced run to harvest spans).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Front-door counters (accepted / sheds / completed / gauges), with
    /// the executor's contained poll panics folded into `worker_respawns`
    /// and the reactor's driver restarts into `reactor_respawns`.
    pub fn serve_counters(&self) -> ServeSnapshot {
        let mut s = self.counters.snapshot();
        s.worker_respawns += self.executor_panics.load(Ordering::Relaxed);
        s.reactor_respawns += self.reactor.respawns();
        s
    }

    /// The tenant's cache counters (hits / misses / coalesced / …). For a
    /// cluster-backed tenant this is the exact merge over its shards.
    pub fn cache_counters(&self, tenant: usize) -> CacheSnapshot {
        match &self.tenants[tenant].backend {
            Backend::Single(service) => service.cache_counters(),
            Backend::Cluster(cluster) => cluster.aggregate_cache(),
        }
    }

    /// Cache counters summed over all tenants (and, for cluster-backed
    /// tenants, over their shards): the associative
    /// [`CacheSnapshot::merge`] fold, so every field is an exact sum.
    pub fn aggregate_cache(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for tenant in 0..self.tenants.len() {
            total.merge(&self.cache_counters(tenant));
        }
        total
    }

    /// Spawns an auxiliary future on the front-end's executor (the open-loop
    /// generator runs this way, paced by [`ServeFront::sleep_until`]).
    pub fn spawn<F, T>(&self, fut: F) -> Join<T>
    where
        F: std::future::Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.executor
            .as_ref()
            .expect("executor live until drop")
            .spawn(fut)
    }

    /// A timer future from the front-end's reactor.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        self.reactor.sleep_until(deadline)
    }

    /// The front-end's counters as an [`ObsSnapshot`]: the serve section
    /// plus one tenant cache section per tenant, ready for
    /// [`ObsSnapshot::metrics_text`] / [`ObsSnapshot::to_json`] or for the
    /// caller to extend with histogram series before rendering.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            serve: Some(self.serve_counters()),
            tenants: self
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| (t.name.clone(), self.cache_counters(i)))
                .collect(),
            ..ObsSnapshot::default()
        }
    }

    /// A `/metrics`-style snapshot: Prometheus exposition format, counters
    /// first, per-tenant cache series labeled by tenant. Rendered by the
    /// canonical [`ObsSnapshot`] formatter (`mpdp-obs`), so the names and
    /// label scheme are shared with the cluster and bench surfaces.
    pub fn metrics_text(&self) -> String {
        self.obs_snapshot().metrics_text()
    }

    /// Stops admission without blocking: subsequent submissions answer
    /// [`Rejected::ShuttingDown`], and the dispatchers drain what was
    /// already accepted (every outstanding ticket still resolves). Safe to
    /// call from any thread — the non-joining half of
    /// [`ServeFront::shutdown`], for callers that share the front behind an
    /// `Arc` and cannot take `&mut self` yet.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Stops admission, drains every accepted request, and joins the
    /// dispatcher tasks. Idempotent; also runs on drop. Submissions during
    /// or after shutdown answer [`Rejected::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.queue.close();
        for d in self.dispatchers.drain(..) {
            // Supervisors catch everything below them, so this is Ok on
            // every path; tolerate an Err anyway rather than panic during
            // shutdown/drop.
            let _ = d.join();
        }
        // Dispatchers are done; now the executor can stop its workers.
        self.executor.take();
    }
}

impl Drop for ServeFront {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::faults::{FaultAction, FaultPlan};
    use mpdp_cost::PgLikeCost;
    use mpdp_workload::gen;

    fn front(config: ServeConfig) -> ServeFront {
        ServeFront::new(config, Arc::new(PgLikeCost::new()))
    }

    #[test]
    fn accepted_requests_complete_with_valid_plans() {
        let front = front(ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let q = gen::star(9, 3, &m);
        let tickets: Vec<PlanTicket> = (0..16)
            .map(|_| front.submit(0, q.clone()).expect("under capacity"))
            .collect();
        for t in tickets {
            let done = t.wait();
            let plan = done.result.expect("plans");
            assert_eq!(plan.planned.plan.num_rels(), 9);
        }
        let s = front.serve_counters();
        assert_eq!(s.accepted, 16);
        assert_eq!(s.completed, 16);
        assert_eq!((s.queue_depth, s.in_flight), (0, 0));
        assert_eq!(s.abandoned_tickets, 0, "every ticket was waited on");
        let c = front.cache_counters(0);
        assert_eq!(c.hits + c.misses + c.coalesced, 16, "exact accounting");
        assert_eq!(c.misses, 1, "single-flight: one cold plan");
    }

    #[test]
    fn quota_sheds_are_explicit_and_counted() {
        let config = ServeConfig {
            tenants: vec![
                TenantConfig {
                    max_in_flight: 1,
                    ..TenantConfig::named("throttled")
                },
                TenantConfig::named("open"),
            ],
            ..Default::default()
        };
        // Quota 1, 64 back-to-back submissions: dispatchers cannot complete
        // every predecessor between two adjacent submits (a cold 12-relation
        // plan costs orders of magnitude more than a submit), so at least
        // one submission observes the quota held and sheds.
        let front = front(config);
        let m = PgLikeCost::new();
        let q = gen::chain(12, 5, &m);
        let mut sheds = 0;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            match front.submit(0, q.clone()) {
                Ok(t) => tickets.push(t),
                Err(Rejected::QuotaExhausted) => sheds += 1,
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(sheds > 0, "quota must shed under a flood");
        assert_eq!(front.serve_counters().shed_quota, sheds);
        // The open tenant is unaffected by the throttled tenant's quota.
        let ok = front.submit(1, q.clone()).expect("open tenant admits");
        ok.wait().result.expect("plans");
        for t in tickets {
            t.wait().result.expect("accepted requests complete");
        }
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let front = front(ServeConfig::default());
        let m = PgLikeCost::new();
        front
            .submit(0, gen::cycle(6, 2, &m))
            .expect("admitted")
            .wait()
            .result
            .expect("plans");
        let text = front.metrics_text();
        assert!(text.contains("mpdp_serve_accepted_total 1"));
        assert!(text.contains("mpdp_serve_completed_total 1"));
        assert!(text.contains("mpdp_serve_worker_respawns_total 0"));
        assert!(text.contains("mpdp_serve_abandoned_tickets_total 0"));
        assert!(text.contains("mpdp_cache_misses_total{tenant=\"default\"} 1"));
        assert!(text.contains("mpdp_cache_degraded_total{tenant=\"default\"} 0"));
    }

    #[test]
    fn armed_tracer_stitches_request_trees_through_planning() {
        use mpdp_obs::by_trace;
        let tracer = Tracer::armed(4_096);
        let mut front = front(ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            tracer: tracer.clone(),
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let q = gen::star(8, 2, &m);
        let tickets: Vec<PlanTicket> = (0..6)
            .map(|_| front.submit(0, q.clone()).expect("admitted"))
            .collect();
        let mut trace_ids = Vec::new();
        for t in tickets {
            let done = t.wait();
            done.result.expect("plans");
            assert!(done.trace.is_armed(), "completion carries the span ctx");
            trace_ids.push(done.trace.trace_id());
        }
        let mut distinct = trace_ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), trace_ids.len(), "one trace per request");
        // Root spans record when the dispatcher drops each request —
        // quiesce (drain + join the dispatchers) before draining rings.
        front.shutdown();
        let spans = tracer.drain();
        let grouped = by_trace(&spans);
        for id in trace_ids {
            let tree = &grouped[&id];
            assert!(tree.iter().any(|r| r.site == sites::REQUEST));
            assert!(tree.iter().any(|r| r.site == sites::ROUTE));
            // Every request has a planning disposition: the cold leader
            // ran a strategy, everyone else hit or waited.
            assert!(tree.iter().any(|r| r.site == sites::CACHE_HIT
                || r.site == sites::FLIGHT_LEAD
                || r.site == sites::FLIGHT_WAIT
                || r.site == sites::STRATEGY));
            // Parentage stitches: every non-root record hangs off a span
            // recorded in the same trace.
            let ids: std::collections::HashSet<u64> = tree.iter().map(|r| r.span).collect();
            for r in tree {
                if r.site != sites::REQUEST {
                    assert!(
                        ids.contains(&r.parent),
                        "orphan record at site {}",
                        r.site.name()
                    );
                }
            }
        }
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let mut front = front(ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let tickets: Vec<PlanTicket> = (0..8)
            .map(|i| {
                front
                    .submit(0, gen::star(6 + (i % 3), i as u64, &m))
                    .expect("admitted")
            })
            .collect();
        front.shutdown();
        for t in tickets {
            t.wait().result.expect("drained before stopping");
        }
        assert!(matches!(
            front.submit(0, gen::star(6, 1, &m)),
            Err(Rejected::ShuttingDown)
        ));
    }

    #[test]
    fn abandoned_tickets_are_counted_and_release_quota() {
        let front = front(ServeConfig {
            dispatchers: 1,
            executor_threads: 2,
            tenants: vec![TenantConfig {
                max_in_flight: 4,
                ..TenantConfig::named("t")
            }],
            ..Default::default()
        });
        let m = PgLikeCost::new();
        for i in 0..4 {
            // Drop each ticket without taking its result.
            let _ = front
                .submit(0, gen::star(6 + i, i as u64, &m))
                .expect("admitted");
        }
        // The requests complete server-side and release their quota slots:
        // with quota 4 and 4 abandoned predecessors, a 5th submission must
        // eventually be admitted.
        let deadline = Instant::now() + Duration::from_secs(10);
        let ticket = loop {
            match front.submit(0, gen::star(9, 99, &m)) {
                Ok(t) => break t,
                Err(Rejected::QuotaExhausted) => {
                    assert!(Instant::now() < deadline, "quota slots never released");
                    std::thread::yield_now();
                }
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        };
        ticket.wait().result.expect("plans");
        let s = front.serve_counters();
        assert_eq!(s.abandoned_tickets, 4);
        assert_eq!(s.accepted, s.completed + s.failed);
    }

    #[test]
    fn deadline_pressed_requests_degrade_instead_of_failing() {
        let front = front(ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            // A deadline far too tight for an exact 14-relation cold plan.
            default_deadline: Some(Duration::from_micros(50)),
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let done = front
            .submit(0, gen::chain(14, 7, &m))
            .expect("admitted")
            .wait();
        let plan = done.result.expect("degraded requests still get a plan");
        assert_eq!(plan.planned.plan.num_rels(), 14);
        assert_eq!(plan.via, mpdp::service::ServedVia::Degraded);
        let c = front.cache_counters(0);
        assert_eq!(c.degraded, 1);
        assert_eq!(c.misses, 0, "a degraded request is not a miss");
    }

    #[test]
    fn dispatcher_panics_are_respawned_and_requests_settle() {
        let faults = FaultPlan::new()
            .fault(site::DISPATCH_CHUNK, 0, FaultAction::Panic)
            .fault(site::DISPATCH_CHUNK, 2, FaultAction::Panic)
            .arm();
        let mut front = front(ServeConfig {
            dispatchers: 1,
            executor_threads: 2,
            faults: faults.clone(),
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let q = gen::star(8, 1, &m);
        let mut tickets: Vec<PlanTicket> = (0..12)
            .map(|_| front.submit(0, q.clone()).expect("admitted"))
            .collect();
        // Every ticket resolves (served or failed-by-lease), none hang.
        for t in &mut tickets {
            assert!(
                t.wait_timeout(Duration::from_secs(30)).is_some(),
                "ticket hung after dispatcher panic"
            );
        }
        drop(tickets);
        front.shutdown();
        let s = front.serve_counters();
        assert!(faults.fired_at(site::DISPATCH_CHUNK) >= 1);
        assert!(s.worker_respawns >= 1, "panicked loop must be respawned");
        assert_eq!(s.accepted, s.completed + s.failed, "exact accounting");
        assert_eq!(
            (s.queue_depth, s.in_flight),
            (0, 0),
            "gauges return to zero"
        );
    }
}
