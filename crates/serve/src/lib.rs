//! # mpdp-serve
//!
//! Async serving front-end for the MPDP planning stack: the layer that turns
//! `PlanService` (a concurrent library) into a *service* — bounded
//! admission, single-flight planning, per-tenant isolation, and `/metrics`
//! observability — without adding a single external dependency. The
//! executor and reactor are hand-rolled on `std` (see [`executor`] and
//! [`reactor`]); the planning itself is `mpdp`'s `PlanService::plan_async`,
//! which single-flights cold fingerprints so N concurrent misses on one
//! query shape cost one DP run.
//!
//! ## Request lifecycle
//!
//! ```text
//! submit(tenant, query)
//!   │ tenant quota check ──✗──▶ Rejected::QuotaExhausted   (counted shed)
//!   │ bounded queue push ──✗──▶ Rejected::QueueFull        (counted shed)
//!   ▼
//! PlanTicket ◀── accepted; the caller holds the completion handle
//!   │
//! dispatcher task pops ──▶ PlanService::plan_async ──▶ hit | cold | coalesced
//!   │                                                      (exact counters)
//!   ▼
//! ticket completes: plan in the caller's labels + end-to-end latency
//! ```
//!
//! Admission control is *explicit*: an overloaded front-end answers
//! [`Rejected`] immediately — it never blocks the submitter and never drops
//! a request silently — and every accepted request completes, including
//! through shutdown (the queue drains before the executor stops). Load past
//! the queue bound therefore degrades into counted sheds while goodput
//! plateaus, which is the overload behavior the bench harness measures.
//!
//! Tenancy: each tenant gets its own `PlanService` (its own sharded
//! `PlanCache` partition — capacity isolation, no cross-tenant eviction
//! pressure) and an in-flight quota. The quota is the cheap fairness knob:
//! a tenant flooding the front-end exhausts its own quota and sheds,
//! leaving the shared queue for the others.

#![warn(missing_docs)]

pub mod executor;
pub mod queue;
pub mod reactor;

pub use executor::{Executor, Join};
pub use queue::{Bounded, PushError};
pub use reactor::{Reactor, Sleep};

use mpdp::service::{PlanRequest, PlanService, PlanServiceBuilder, ServedPlan};
use mpdp_core::counters::{CacheSnapshot, ServeCounters, ServeSnapshot};
use mpdp_core::{LargeQuery, OptError};
use mpdp_cost::model::CostModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-tenant configuration: one cache partition + one quota.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Label used in metrics output.
    pub name: String,
    /// Plan-cache capacity of this tenant's partition.
    pub cache_capacity: usize,
    /// Shard count of this tenant's partition.
    pub cache_shards: usize,
    /// Maximum requests this tenant may have accepted-but-incomplete
    /// (queued + planning). Beyond it, submissions shed with
    /// [`Rejected::QuotaExhausted`].
    pub max_in_flight: usize,
}

impl TenantConfig {
    /// A tenant with the given name and workspace-default cache sizing.
    pub fn named(name: impl Into<String>) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            cache_capacity: 4096,
            cache_shards: 16,
            max_in_flight: usize::MAX,
        }
    }
}

/// Front-end configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bounded request-queue depth — the admission-control knob. A full
    /// queue sheds with [`Rejected::QueueFull`].
    pub queue_depth: usize,
    /// Concurrent dispatcher tasks (the planning parallelism; each runs one
    /// request at a time).
    pub dispatchers: usize,
    /// Executor worker threads. Keep ≥ 2 so coalesced waiters make progress
    /// while a leader's cold plan occupies a worker.
    pub executor_threads: usize,
    /// Default per-request optimization budget.
    pub budget: Option<Duration>,
    /// The tenants; at least one. Requests address tenants by index.
    pub tenants: Vec<TenantConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 1024,
            dispatchers: 4,
            executor_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2),
            budget: None,
            tenants: vec![TenantConfig::named("default")],
        }
    }
}

/// Why a submission was refused. Shedding is an *answer*, not an error
/// path: the caller is told immediately and the shed is counted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded request queue is at capacity.
    QueueFull,
    /// The tenant has `max_in_flight` requests outstanding.
    QuotaExhausted,
    /// The front-end is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "request queue full"),
            Rejected::QuotaExhausted => write!(f, "tenant in-flight quota exhausted"),
            Rejected::ShuttingDown => write!(f, "front-end shutting down"),
        }
    }
}

/// A completed request: the planning outcome plus its end-to-end latency
/// (submit → completion, queueing included — the number the open-loop
/// harness reports, unlike `ServedPlan::service_time` which starts at
/// dispatch).
#[derive(Clone, Debug)]
pub struct Completed {
    /// The planning outcome, plan leaves in the submitter's relation ids.
    pub result: Result<ServedPlan, OptError>,
    /// Submit-to-completion latency.
    pub latency: Duration,
}

struct TicketState {
    slot: Mutex<Option<Completed>>,
    cv: Condvar,
}

/// Completion handle for one accepted request.
pub struct PlanTicket {
    state: Arc<TicketState>,
}

impl std::fmt::Debug for PlanTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanTicket").finish_non_exhaustive()
    }
}

impl PlanTicket {
    /// Blocks until the request completes. Accepted requests always
    /// complete (the dispatcher finishes or fails each popped request, and
    /// shutdown drains the queue first), so this cannot hang.
    pub fn wait(self) -> Completed {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(done) = slot.take() {
                return done;
            }
            slot = self.state.cv.wait(slot).expect("ticket poisoned");
        }
    }

    /// The completion, if already available (non-blocking).
    pub fn try_take(&self) -> Option<Completed> {
        self.state.slot.lock().expect("ticket poisoned").take()
    }
}

/// One queued request.
struct Request {
    tenant: usize,
    query: LargeQuery,
    submitted: Instant,
    ticket: Arc<TicketState>,
}

struct Tenant {
    name: String,
    service: Arc<PlanService>,
    max_in_flight: usize,
    in_flight: AtomicUsize,
}

/// The serving front-end. Construct with [`ServeFront::new`], submit with
/// [`ServeFront::submit`], observe with [`ServeFront::metrics_text`] /
/// [`ServeFront::serve_counters`]. Dropping the front-end drains accepted
/// requests, then stops the executor and reactor.
pub struct ServeFront {
    tenants: Arc<Vec<Tenant>>,
    queue: Arc<Bounded<Request>>,
    counters: Arc<ServeCounters>,
    reactor: Arc<Reactor>,
    dispatchers: Vec<Join<()>>,
    /// Dropped last (field order): dispatchers must finish before workers
    /// stop, and `shutdown` enforces that ordering explicitly anyway.
    executor: Option<Executor>,
}

impl std::fmt::Debug for ServeFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFront")
            .field("tenants", &self.tenants.len())
            .field("queue", &self.queue)
            .field("counters", &self.counters.snapshot())
            .finish()
    }
}

impl ServeFront {
    /// Builds the front-end and starts its executor, reactor, and
    /// dispatcher tasks. `model` is the cost model every request is planned
    /// under (per-model serving fronts are cheaper than per-request model
    /// plumbing, and the cache keys fold the model anyway).
    pub fn new(config: ServeConfig, model: Arc<dyn CostModel + Send + Sync>) -> ServeFront {
        assert!(!config.tenants.is_empty(), "at least one tenant");
        let tenants: Arc<Vec<Tenant>> = Arc::new(
            config
                .tenants
                .iter()
                .map(|t| Tenant {
                    name: t.name.clone(),
                    service: Arc::new({
                        let mut b = PlanServiceBuilder::new()
                            .cache_capacity(t.cache_capacity)
                            .cache_shards(t.cache_shards);
                        if let Some(budget) = config.budget {
                            b = b.budget(budget);
                        }
                        b.build()
                    }),
                    max_in_flight: t.max_in_flight.max(1),
                    in_flight: AtomicUsize::new(0),
                })
                .collect(),
        );
        let queue: Arc<Bounded<Request>> = Arc::new(Bounded::new(config.queue_depth));
        let counters = Arc::new(ServeCounters::default());
        let executor = Executor::new(config.executor_threads);
        let reactor = Arc::new(Reactor::new());

        let dispatchers = (0..config.dispatchers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let tenants = Arc::clone(&tenants);
                let counters = Arc::clone(&counters);
                let model = Arc::clone(&model);
                executor.spawn(async move {
                    let req_opts = PlanRequest::default();
                    // Drain in chunks: after the awaited head request, take
                    // up to a chunk more under one lock — at 100k+ req/s,
                    // per-request lock and gauge traffic is the difference
                    // between plateauing and collapsing under overload. A
                    // chunk rides on one dispatcher, so a cold plan delays
                    // its chunk-mates; chunks are kept small and cold plans
                    // are rare by construction (single-flight + warm cache).
                    const CHUNK: usize = 32;
                    let mut batch: Vec<Request> = Vec::with_capacity(CHUNK);
                    while let Some(req) = queue.pop().await {
                        batch.push(req);
                        queue.drain_into(&mut batch, CHUNK - 1);
                        counters.record_dispatch_n(batch.len() as u64);
                        for req in batch.drain(..) {
                            let tenant = &tenants[req.tenant];
                            let m: &(dyn CostModel + Sync) = &*model;
                            let result = tenant.service.plan_async(&req.query, m, &req_opts).await;
                            tenant.in_flight.fetch_sub(1, Ordering::Release);
                            counters.record_done(result.is_ok());
                            let done = Completed {
                                result,
                                latency: req.submitted.elapsed(),
                            };
                            *req.ticket.slot.lock().expect("ticket poisoned") = Some(done);
                            req.ticket.cv.notify_all();
                        }
                    }
                })
            })
            .collect();

        ServeFront {
            tenants,
            queue,
            counters,
            reactor,
            dispatchers,
            executor: Some(executor),
        }
    }

    /// Submits a query for tenant `tenant` (index into the configured
    /// tenant list). Returns the completion ticket, or the explicit
    /// admission-control verdict — this call never blocks on planning.
    pub fn submit(&self, tenant: usize, query: LargeQuery) -> Result<PlanTicket, Rejected> {
        let t = &self.tenants[tenant];
        // Reserve quota optimistically; roll back on any later refusal.
        let reserved = t
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < t.max_in_flight).then_some(cur + 1)
            });
        if reserved.is_err() {
            self.counters.record_shed_quota();
            return Err(Rejected::QuotaExhausted);
        }
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let request = Request {
            tenant,
            query,
            submitted: Instant::now(),
            ticket: Arc::clone(&state),
        };
        match self.queue.try_push(request) {
            Ok(()) => {
                self.counters.record_accept();
                Ok(PlanTicket { state })
            }
            Err(PushError::Full(_)) => {
                t.in_flight.fetch_sub(1, Ordering::Release);
                self.counters.record_shed_queue_full();
                Err(Rejected::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                t.in_flight.fetch_sub(1, Ordering::Release);
                Err(Rejected::ShuttingDown)
            }
        }
    }

    /// Batch admission: submits a pacing tick's worth of `offered` requests
    /// for one tenant in one quota reservation and one queue lock, appending
    /// a ticket per accepted request to `tickets` and returning how many
    /// were shed (counted, per kind, like [`ServeFront::submit`]).
    ///
    /// The query source is *lazy*: `queries` is pulled once per **admitted**
    /// request only, so a shed costs a counter increment — never a query
    /// materialization or drop. That is what keeps throughput flat past
    /// saturation: a front door that parses (or here, builds) every request
    /// it is about to reject spends its overload budget on garbage. The
    /// caller promises the iterator can yield at least `offered` items;
    /// anything it yields beyond the admitted prefix stays untouched in the
    /// iterator.
    ///
    /// Admission is conservative under races: the batch is sized to the
    /// quota headroom and free queue capacity observed at entry, so a
    /// concurrent producer can cause a shed that a per-request retry would
    /// have squeezed in. That is the intended policy — an open-loop
    /// generator sheds and moves on; it never blocks on admission.
    pub fn submit_many(
        &self,
        tenant: usize,
        offered: usize,
        queries: impl IntoIterator<Item = LargeQuery>,
        tickets: &mut Vec<PlanTicket>,
    ) -> u64 {
        let t = &self.tenants[tenant];
        let mut queries = queries.into_iter();
        // A closed front sheds nothing — mirror `submit`'s `ShuttingDown`
        // (which is not a counted shed) and refuse the batch unpulled.
        if self.queue.is_closed() {
            return offered as u64;
        }
        // Reserve quota headroom for the whole batch at once.
        let mut reserved = 0usize;
        let _ = t
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                reserved = offered.min(t.max_in_flight.saturating_sub(cur));
                (reserved > 0).then(|| cur + reserved)
            });
        let room = self.queue.free_capacity();
        let admit = reserved.min(room);
        let now = Instant::now();
        let mut batch: Vec<Request> = Vec::with_capacity(admit);
        for query in queries.by_ref().take(admit) {
            batch.push(Request {
                tenant,
                query,
                submitted: now,
                ticket: Arc::new(TicketState {
                    slot: Mutex::new(None),
                    cv: Condvar::new(),
                }),
            });
        }
        let states: Vec<Arc<TicketState>> = batch.iter().map(|r| Arc::clone(&r.ticket)).collect();
        let pushed = self.queue.try_push_batch(&mut batch);
        tickets.extend(
            states
                .into_iter()
                .take(pushed)
                .map(|state| PlanTicket { state }),
        );
        // Give back what was reserved but not pushed (quota sheds beyond
        // `reserved`, capacity sheds and close-races within it).
        let unused = reserved - pushed;
        if unused > 0 {
            t.in_flight.fetch_sub(unused, Ordering::Release);
        }
        self.counters.record_accept_n(pushed as u64);
        let quota_shed = offered.saturating_sub(reserved) as u64;
        let queue_shed = (offered - pushed) as u64 - quota_shed;
        self.counters.record_shed_quota_n(quota_shed);
        self.counters.record_shed_queue_full_n(queue_shed);
        queue_shed + quota_shed
    }

    /// The tenant's `PlanService` (e.g. to pre-warm its cache partition or
    /// feed `observe` cardinality feedback).
    pub fn service(&self, tenant: usize) -> &Arc<PlanService> {
        &self.tenants[tenant].service
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's configured name.
    pub fn tenant_name(&self, tenant: usize) -> &str {
        &self.tenants[tenant].name
    }

    /// Front-door counters (accepted / sheds / completed / gauges).
    pub fn serve_counters(&self) -> ServeSnapshot {
        self.counters.snapshot()
    }

    /// The tenant's cache counters (hits / misses / coalesced / …).
    pub fn cache_counters(&self, tenant: usize) -> CacheSnapshot {
        self.tenants[tenant].service.cache_counters()
    }

    /// Cache counters summed over all tenants.
    pub fn aggregate_cache(&self) -> CacheSnapshot {
        let mut total = CacheSnapshot::default();
        for t in self.tenants.iter() {
            let s = t.service.cache_counters();
            total.hits += s.hits;
            total.misses += s.misses;
            total.coalesced += s.coalesced;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.expirations += s.expirations;
            total.feedback_checks += s.feedback_checks;
            total.feedback_invalidations += s.feedback_invalidations;
        }
        total
    }

    /// Spawns an auxiliary future on the front-end's executor (the open-loop
    /// generator runs this way, paced by [`ServeFront::sleep_until`]).
    pub fn spawn<F, T>(&self, fut: F) -> Join<T>
    where
        F: std::future::Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.executor
            .as_ref()
            .expect("executor live until drop")
            .spawn(fut)
    }

    /// A timer future from the front-end's reactor.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        self.reactor.sleep_until(deadline)
    }

    /// A `/metrics`-style snapshot: Prometheus exposition format, counters
    /// first, per-tenant cache series labeled by tenant.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let s = self.counters.snapshot();
        let mut line = |name: &str, v: u64| {
            let _ = writeln!(out, "mpdp_serve_{name} {v}");
        };
        line("accepted_total", s.accepted);
        line("shed_queue_full_total", s.shed_queue_full);
        line("shed_quota_total", s.shed_quota);
        line("completed_total", s.completed);
        line("failed_total", s.failed);
        line("queue_depth", s.queue_depth);
        line("queue_depth_peak", s.queue_depth_peak);
        line("in_flight", s.in_flight);
        for t in self.tenants.iter() {
            let c = t.service.cache_counters();
            let tenant = &t.name;
            let mut tline = |name: &str, v: u64| {
                let _ = writeln!(out, "mpdp_cache_{name}{{tenant=\"{tenant}\"}} {v}");
            };
            tline("hits_total", c.hits);
            tline("misses_total", c.misses);
            tline("coalesced_total", c.coalesced);
            tline("insertions_total", c.insertions);
            tline("evictions_total", c.evictions);
            tline("expirations_total", c.expirations);
            tline("feedback_checks_total", c.feedback_checks);
            tline("feedback_invalidations_total", c.feedback_invalidations);
        }
        out
    }

    /// Stops admission, drains every accepted request, and joins the
    /// dispatcher tasks. Idempotent; also runs on drop. Submissions during
    /// or after shutdown answer [`Rejected::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.queue.close();
        for d in self.dispatchers.drain(..) {
            d.wait();
        }
        // Dispatchers are done; now the executor can stop its workers.
        self.executor.take();
    }
}

impl Drop for ServeFront {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;
    use mpdp_workload::gen;

    fn front(config: ServeConfig) -> ServeFront {
        ServeFront::new(config, Arc::new(PgLikeCost::new()))
    }

    #[test]
    fn accepted_requests_complete_with_valid_plans() {
        let front = front(ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let q = gen::star(9, 3, &m);
        let tickets: Vec<PlanTicket> = (0..16)
            .map(|_| front.submit(0, q.clone()).expect("under capacity"))
            .collect();
        for t in tickets {
            let done = t.wait();
            let plan = done.result.expect("plans");
            assert_eq!(plan.planned.plan.num_rels(), 9);
        }
        let s = front.serve_counters();
        assert_eq!(s.accepted, 16);
        assert_eq!(s.completed, 16);
        assert_eq!((s.queue_depth, s.in_flight), (0, 0));
        let c = front.cache_counters(0);
        assert_eq!(c.hits + c.misses + c.coalesced, 16, "exact accounting");
        assert_eq!(c.misses, 1, "single-flight: one cold plan");
    }

    #[test]
    fn quota_sheds_are_explicit_and_counted() {
        let config = ServeConfig {
            tenants: vec![
                TenantConfig {
                    max_in_flight: 1,
                    ..TenantConfig::named("throttled")
                },
                TenantConfig::named("open"),
            ],
            ..Default::default()
        };
        // Quota 1, 64 back-to-back submissions: dispatchers cannot complete
        // every predecessor between two adjacent submits (a cold 12-relation
        // plan costs orders of magnitude more than a submit), so at least
        // one submission observes the quota held and sheds.
        let front = front(config);
        let m = PgLikeCost::new();
        let q = gen::chain(12, 5, &m);
        let mut sheds = 0;
        let mut tickets = Vec::new();
        for _ in 0..64 {
            match front.submit(0, q.clone()) {
                Ok(t) => tickets.push(t),
                Err(Rejected::QuotaExhausted) => sheds += 1,
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(sheds > 0, "quota must shed under a flood");
        assert_eq!(front.serve_counters().shed_quota, sheds);
        // The open tenant is unaffected by the throttled tenant's quota.
        let ok = front.submit(1, q.clone()).expect("open tenant admits");
        ok.wait().result.expect("plans");
        for t in tickets {
            t.wait().result.expect("accepted requests complete");
        }
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let front = front(ServeConfig::default());
        let m = PgLikeCost::new();
        front
            .submit(0, gen::cycle(6, 2, &m))
            .expect("admitted")
            .wait()
            .result
            .expect("plans");
        let text = front.metrics_text();
        assert!(text.contains("mpdp_serve_accepted_total 1"));
        assert!(text.contains("mpdp_serve_completed_total 1"));
        assert!(text.contains("mpdp_cache_misses_total{tenant=\"default\"} 1"));
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let mut front = front(ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            ..Default::default()
        });
        let m = PgLikeCost::new();
        let tickets: Vec<PlanTicket> = (0..8)
            .map(|i| {
                front
                    .submit(0, gen::star(6 + (i % 3), i as u64, &m))
                    .expect("admitted")
            })
            .collect();
        front.shutdown();
        for t in tickets {
            t.wait().result.expect("drained before stopping");
        }
        assert!(matches!(
            front.submit(0, gen::star(6, 1, &m)),
            Err(Rejected::ShuttingDown)
        ));
    }
}
