//! A minimal multi-threaded async executor, hand-rolled on `std` only.
//!
//! The workspace vendors no async runtime, and the serving loop needs very
//! little of one: a pool of worker threads polling a shared run queue of
//! tasks, with wakeups that never get lost. That is exactly what this module
//! provides — no I/O driver (timers live in [`crate::reactor`]), no task
//! budgets, no work stealing; a global injector queue is plenty at the
//! fan-in this front-end runs (dispatcher tasks count in the tens, and the
//! single-digit-microsecond hit path spends its time planning, not queuing).
//!
//! ## Lost-wakeup-free scheduling
//!
//! Each task carries an atomic state machine:
//!
//! ```text
//!   Idle ──wake──▶ Scheduled ──worker pops──▶ Running ──pending──▶ Idle
//!                      ▲                        │   ▲─ready─▶ Done
//!                      └──────worker repush── Rescheduled ◀─wake──┘
//! ```
//!
//! A wake during `Running` (the poll itself triggered the event it waits
//! for, from another thread) moves the task to `Rescheduled`; the worker
//! observes that after the poll returns `Pending` and pushes the task back
//! instead of parking it — the classic race where a wakeup lands between
//! "poll returned Pending" and "task parked" cannot drop the task. A wake
//! during `Scheduled`/`Rescheduled` is a no-op (the task will be polled
//! again anyway), so wake storms collapse into one poll.
//!
//! ## Panic isolation
//!
//! A future that panics mid-poll must cost *one task*, not a worker thread
//! and every later holder of the locks that thread was trampling. Every
//! poll runs under `catch_unwind`: on a panic the task's future is dropped,
//! its state is forced to `Done`, and its **abort hook** runs — completing
//! the task's [`Join`] with [`JoinError`] so no waiter hangs on a task that
//! will never finish. The worker thread itself wears a second
//! `catch_unwind` backstop (a panic escaping the per-poll one restarts the
//! loop in place), and all pool locks go through the poison-recovering
//! helpers so an unwind never cascades. Caught polls are counted; the
//! front-end surfaces them as `worker_respawns`.

use mpdp_core::faults::{site, Faults};
use mpdp_core::sync::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task states; see the module docs for the transition diagram.
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const RESCHEDULED: u8 = 3;
const DONE: u8 = 4;

/// The task's future panicked (or was dropped unfinished at executor
/// shutdown) before producing its output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JoinError;

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked or was aborted before completing")
    }
}

impl std::error::Error for JoinError {}

struct Task {
    state: AtomicU8,
    /// The future, polled under this mutex. Wakers never touch the slot
    /// (they only flip `state` and push to the run queue), so the lock is
    /// uncontended except against a task being polled on two workers — which
    /// the state machine already rules out.
    future: Mutex<Option<BoxFuture>>,
    /// Runs when the task dies without completing (poll panic, or dropped
    /// unfinished with the pool): completes the `Join` with an error so no
    /// waiter hangs. A completed task's hook is a no-op.
    abort: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    /// Critical tasks (dispatcher supervisors — the recovery machinery
    /// itself) are exempt from the injected `executor.poll` fault site;
    /// their resilience is exercised by the faults that unwind *into* them.
    exempt: bool,
    /// Weak: tasks must not keep the pool alive after the executor drops.
    pool: Weak<Pool>,
}

impl Task {
    /// Transitions the task toward a poll; the module docs' `wake` edges.
    fn schedule(self: &Arc<Self>) {
        loop {
            let cur = self.state.load(Ordering::Acquire);
            let next = match cur {
                IDLE => SCHEDULED,
                RUNNING => RESCHEDULED,
                // Already queued for another poll, or finished.
                SCHEDULED | RESCHEDULED | DONE => return,
                _ => unreachable!("invalid task state {cur}"),
            };
            if self
                .state
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if next == SCHEDULED {
                    if let Some(pool) = self.pool.upgrade() {
                        pool.push(Arc::clone(self));
                    }
                }
                return;
            }
        }
    }

    /// Invokes the abort hook (idempotent: the hook is taken, and a
    /// completed task's hook finds its join slot already filled).
    fn abort(&self) {
        if let Some(hook) = lock_recover(&self.abort).take() {
            hook();
        }
    }

    /// One poll, on a worker thread. The task is in `Scheduled` state.
    fn run(self: &Arc<Self>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(self));
        let pool = self.pool.upgrade();
        let polled = catch_unwind(AssertUnwindSafe(|| {
            // Fault site inside the catch region: an injected panic takes
            // exactly the containment path a real poll panic takes.
            if !self.exempt {
                if let Some(pool) = &pool {
                    let _ = pool.faults.apply_panic_stall(site::EXECUTOR_POLL);
                }
            }
            let mut cx = Context::from_waker(&waker);
            let mut slot = lock_recover(&self.future);
            let Some(fut) = slot.as_mut() else {
                return true; // already completed (defensive; DONE never re-queues)
            };
            if fut.as_mut().poll(&mut cx).is_ready() {
                *slot = None; // drop the future's captures promptly
                true
            } else {
                false
            }
        }));
        match polled {
            Ok(true) => {
                self.state.store(DONE, Ordering::Release);
            }
            Ok(false) => {
                // Pending: park, unless a wake arrived during the poll.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // RESCHEDULED — the wake's push was suppressed (state was
                    // not IDLE); requeue on its behalf.
                    self.state.store(SCHEDULED, Ordering::Release);
                    if let Some(pool) = self.pool.upgrade() {
                        pool.push(Arc::clone(self));
                    }
                }
            }
            Err(_) => {
                // The poll panicked. The task is dead: drop its future (it
                // must never be polled again), complete its join with an
                // error, and count the containment. The worker thread
                // itself is unharmed.
                *lock_recover(&self.future) = None;
                self.state.store(DONE, Ordering::Release);
                // Count before completing the join: an observer woken by the
                // JoinError must already see this containment in the counter.
                if let Some(pool) = &pool {
                    pool.panics.fetch_add(1, Ordering::Relaxed);
                }
                self.abort();
            }
        }
    }
}

impl Drop for Task {
    /// A task dropped unfinished (executor shutdown with the future still
    /// parked on an external event) completes its join with an error
    /// instead of stranding the waiter. Completed tasks' hooks are no-ops.
    fn drop(&mut self) {
        if let Ok(mut hook) = self.abort.lock() {
            if let Some(hook) = hook.take() {
                hook();
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// The shared run queue + shutdown flag.
struct Pool {
    queue: Mutex<PoolState>,
    cv: Condvar,
    /// Poll panics caught and contained (the front-end folds this into its
    /// `worker_respawns` metric). Shared as an `Arc` so observers outlive
    /// the executor.
    panics: Arc<AtomicU64>,
    faults: Faults,
}

struct PoolState {
    run: VecDeque<Arc<Task>>,
    shutdown: bool,
}

impl Pool {
    fn push(&self, task: Arc<Task>) {
        let mut q = lock_recover(&self.queue);
        q.run.push_back(task);
        drop(q);
        self.cv.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = lock_recover(&self.queue);
                loop {
                    if let Some(task) = q.run.pop_front() {
                        break task;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = wait_recover(&self.cv, q);
                }
            };
            task.run();
        }
    }
}

/// Completion slot shared between a spawned task and its [`Join`] handle.
struct JoinState<T> {
    slot: Mutex<Option<Result<T, JoinError>>>,
    cv: Condvar,
}

/// Handle to a spawned task's result; [`Join::wait`] blocks the calling
/// *thread* (it is how synchronous code — the bench harness, tests —
/// harvests async work; async code just awaits the future directly).
pub struct Join<T> {
    state: Arc<JoinState<T>>,
}

impl<T> Join<T> {
    /// Blocks until the task completes and returns its output, panicking if
    /// the task itself panicked (use [`Join::join`] to observe that as a
    /// value). Cannot hang: a task that dies before completing — poll
    /// panic, executor shutdown — resolves the join with [`JoinError`].
    pub fn wait(self) -> T {
        match self.join() {
            Ok(out) => out,
            Err(e) => panic!("Join::wait: {e}"),
        }
    }

    /// Blocks until the task completes; `Err(JoinError)` if it panicked or
    /// was aborted instead of producing an output.
    pub fn join(self) -> Result<T, JoinError> {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = wait_recover(&self.state.cv, slot);
        }
    }

    /// The task's outcome, if it already completed (non-blocking).
    pub fn try_take(&self) -> Option<Result<T, JoinError>> {
        lock_recover(&self.state.slot).take()
    }

    /// `true` once the task has completed (or died) and its outcome is
    /// waiting to be taken.
    pub fn is_finished(&self) -> bool {
        lock_recover(&self.state.slot).is_some()
    }
}

/// Future combinator: polls the inner future with `catch_unwind`, turning a
/// panic during the poll into `Err(JoinError)` instead of unwinding the
/// caller. The dispatcher uses it at two granularities — around one
/// request's planning (a planner panic fails one ticket) and around its
/// whole loop (anything else restarts the loop via the supervisor).
///
/// After an `Err` the inner future is poisoned and must not be polled
/// again; `CatchUnwind` fuses itself by dropping the future.
pub struct CatchUnwind<F> {
    inner: Option<F>,
}

impl<F> CatchUnwind<F> {
    /// Wraps `fut`.
    pub fn new(fut: F) -> CatchUnwind<F> {
        CatchUnwind { inner: Some(fut) }
    }
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = Result<F::Output, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural projection into the only field; the inner
        // future is never moved out while pinned (dropping in place on
        // panic is allowed for pinned values).
        let this = unsafe { self.get_unchecked_mut() };
        let Some(fut) = this.inner.as_mut() else {
            return Poll::Ready(Err(JoinError)); // polled after a panic
        };
        let fut = unsafe { Pin::new_unchecked(fut) };
        match catch_unwind(AssertUnwindSafe(|| fut.poll(cx))) {
            Ok(Poll::Ready(out)) => Poll::Ready(Ok(out)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(_) => {
                this.inner = None;
                Poll::Ready(Err(JoinError))
            }
        }
    }
}

/// A fixed-size worker pool executing `'static` futures.
pub struct Executor {
    pool: Arc<Pool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers.len())
            .field("panics", &self.pool.panics.load(Ordering::Relaxed))
            .finish()
    }
}

impl Executor {
    /// Starts `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor::with_faults(threads, Faults::disarmed())
    }

    /// [`Executor::new`] with an armed fault-injection handle: each
    /// non-critical task poll checks [`site::EXECUTOR_POLL`].
    pub fn with_faults(threads: usize, faults: Faults) -> Executor {
        let pool = Arc::new(Pool {
            queue: Mutex::new(PoolState {
                run: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            panics: Arc::new(AtomicU64::new(0)),
            faults,
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("mpdp-serve-worker-{i}"))
                    .spawn(move || {
                        // Backstop: the per-poll catch_unwind should contain
                        // everything, but a panic escaping it (queue lock
                        // machinery, allocator) restarts the loop in place
                        // instead of silently shrinking the pool.
                        loop {
                            if catch_unwind(AssertUnwindSafe(|| pool.worker_loop())).is_ok() {
                                break;
                            }
                            pool.panics.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { pool, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Poll panics caught so far, as a handle that stays readable after the
    /// executor is dropped (the front-end folds it into `worker_respawns`).
    pub fn panic_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.pool.panics)
    }

    /// Spawns a future onto the pool, returning a handle to its output.
    pub fn spawn<F, T>(&self, fut: F) -> Join<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.spawn_inner(fut, false)
    }

    /// [`Executor::spawn`] for recovery-critical tasks (the front-end's
    /// dispatcher supervisors): exempt from the injected `executor.poll`
    /// fault site, since they *are* the containment the chaos suite tests —
    /// faults reach them by unwinding out of the work they supervise.
    pub fn spawn_critical<F, T>(&self, fut: F) -> Join<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.spawn_inner(fut, true)
    }

    fn spawn_inner<F, T>(&self, fut: F, exempt: bool) -> Join<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        let state = Arc::new(JoinState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let task_state = Arc::clone(&state);
        let abort_state = Arc::clone(&state);
        let task = Arc::new(Task {
            state: AtomicU8::new(IDLE),
            future: Mutex::new(Some(Box::pin(async move {
                let out = fut.await;
                *lock_recover(&task_state.slot) = Some(Ok(out));
                task_state.cv.notify_all();
            }))),
            abort: Mutex::new(Some(Box::new(move || {
                let mut slot = lock_recover(&abort_state.slot);
                if slot.is_none() {
                    *slot = Some(Err(JoinError));
                }
                drop(slot);
                abort_state.cv.notify_all();
            }))),
            exempt,
            pool: Arc::downgrade(&self.pool),
        });
        task.schedule();
        Join { state }
    }
}

impl Drop for Executor {
    /// Graceful: workers drain the run queue, then exit. Tasks parked on an
    /// external event (never re-woken) are dropped with the pool — their
    /// abort hooks resolve any `Join` with [`JoinError`]; the serving
    /// front-end closes its request queue *before* dropping the executor so
    /// its dispatchers run to completion first.
    fn drop(&mut self) {
        {
            let mut q = lock_recover(&self.pool.queue);
            q.shutdown = true;
        }
        self.pool.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::faults::{FaultAction, FaultPlan};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawn_and_join_many() {
        let ex = Executor::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let joins: Vec<Join<usize>> = (0..100)
            .map(|i| {
                let hits = Arc::clone(&hits);
                ex.spawn(async move {
                    hits.fetch_add(1, Ordering::Relaxed);
                    i * 2
                })
            })
            .collect();
        let mut total = 0usize;
        for j in joins {
            total += j.wait();
        }
        assert_eq!(total, (0..100).map(|i| i * 2).sum::<usize>());
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    /// A future that returns Pending once and is woken from another thread —
    /// exercises the Running→Rescheduled edge under racing wakes.
    #[test]
    fn cross_thread_wakeups_are_not_lost() {
        struct Yield {
            woken: bool,
        }
        impl Future for Yield {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.woken {
                    Poll::Ready(())
                } else {
                    self.woken = true;
                    // Wake from another thread while (possibly) still inside
                    // this poll.
                    let w = cx.waker().clone();
                    std::thread::spawn(move || w.wake());
                    Poll::Pending
                }
            }
        }
        let ex = Executor::new(2);
        let joins: Vec<Join<()>> = (0..64).map(|_| ex.spawn(Yield { woken: false })).collect();
        for j in joins {
            j.wait();
        }
    }

    #[test]
    fn drop_joins_workers() {
        let ex = Executor::new(2);
        let j = ex.spawn(async { 7 });
        assert_eq!(j.wait(), 7);
        drop(ex); // must not hang
    }

    /// A panicking task costs one JoinError, not a worker or a sibling.
    #[test]
    fn panicking_task_is_contained() {
        let ex = Executor::new(2);
        let bad = ex.spawn(async {
            panic!("task boom");
        });
        assert_eq!(bad.join(), Err(JoinError));
        // The pool still serves work on every thread afterwards.
        let joins: Vec<Join<u32>> = (0..32).map(|i| ex.spawn(async move { i })).collect();
        let total: u32 = joins.into_iter().map(|j| j.wait()).sum();
        assert_eq!(total, (0..32).sum::<u32>());
        assert_eq!(ex.panic_counter().load(Ordering::Relaxed), 1);
    }

    /// Injected executor.poll faults take the same containment path.
    #[test]
    fn injected_poll_panic_resolves_join_with_error() {
        let faults = FaultPlan::new()
            .fault(site::EXECUTOR_POLL, 0, FaultAction::Panic)
            .arm();
        let ex = Executor::with_faults(1, faults.clone());
        let j = ex.spawn(async { 1u32 });
        assert_eq!(j.join(), Err(JoinError));
        assert_eq!(faults.fired_at(site::EXECUTOR_POLL), 1);
        // Subsequent tasks (no more scheduled faults) run normally.
        assert_eq!(ex.spawn(async { 2u32 }).wait(), 2);
    }

    /// Executor shutdown resolves still-parked tasks' joins instead of
    /// stranding their waiters.
    #[test]
    fn dropping_executor_aborts_parked_tasks() {
        let ex = Executor::new(1);
        let j = ex.spawn(async {
            std::future::pending::<()>().await;
            3u32
        });
        drop(ex);
        assert_eq!(j.join(), Err(JoinError));
    }

    #[test]
    fn catch_unwind_wraps_panics_and_passthroughs() {
        let ex = Executor::new(1);
        let j = ex.spawn(async {
            let ok = CatchUnwind::new(async { 5u32 }).await;
            let bad = CatchUnwind::new(async {
                panic!("inner boom");
            })
            .await;
            (ok, bad.is_err())
        });
        let (ok, caught) = j.wait();
        assert_eq!(ok, Ok(5));
        assert!(caught);
    }
}
