//! A minimal multi-threaded async executor, hand-rolled on `std` only.
//!
//! The workspace vendors no async runtime, and the serving loop needs very
//! little of one: a pool of worker threads polling a shared run queue of
//! tasks, with wakeups that never get lost. That is exactly what this module
//! provides — no I/O driver (timers live in [`crate::reactor`]), no task
//! budgets, no work stealing; a global injector queue is plenty at the
//! fan-in this front-end runs (dispatcher tasks count in the tens, and the
//! single-digit-microsecond hit path spends its time planning, not queuing).
//!
//! ## Lost-wakeup-free scheduling
//!
//! Each task carries an atomic state machine:
//!
//! ```text
//!   Idle ──wake──▶ Scheduled ──worker pops──▶ Running ──pending──▶ Idle
//!                      ▲                        │   ▲─ready─▶ Done
//!                      └──────worker repush── Rescheduled ◀─wake──┘
//! ```
//!
//! A wake during `Running` (the poll itself triggered the event it waits
//! for, from another thread) moves the task to `Rescheduled`; the worker
//! observes that after the poll returns `Pending` and pushes the task back
//! instead of parking it — the classic race where a wakeup lands between
//! "poll returned Pending" and "task parked" cannot drop the task. A wake
//! during `Scheduled`/`Rescheduled` is a no-op (the task will be polled
//! again anyway), so wake storms collapse into one poll.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task states; see the module docs for the transition diagram.
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const RESCHEDULED: u8 = 3;
const DONE: u8 = 4;

struct Task {
    state: AtomicU8,
    /// The future, polled under this mutex. Wakers never touch the slot
    /// (they only flip `state` and push to the run queue), so the lock is
    /// uncontended except against a task being polled on two workers — which
    /// the state machine already rules out.
    future: Mutex<Option<BoxFuture>>,
    /// Weak: tasks must not keep the pool alive after the executor drops.
    pool: Weak<Pool>,
}

impl Task {
    /// Transitions the task toward a poll; the module docs' `wake` edges.
    fn schedule(self: &Arc<Self>) {
        loop {
            let cur = self.state.load(Ordering::Acquire);
            let next = match cur {
                IDLE => SCHEDULED,
                RUNNING => RESCHEDULED,
                // Already queued for another poll, or finished.
                SCHEDULED | RESCHEDULED | DONE => return,
                _ => unreachable!("invalid task state {cur}"),
            };
            if self
                .state
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if next == SCHEDULED {
                    if let Some(pool) = self.pool.upgrade() {
                        pool.push(Arc::clone(self));
                    }
                }
                return;
            }
        }
    }

    /// One poll, on a worker thread. The task is in `Scheduled` state.
    fn run(self: &Arc<Self>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().expect("task future poisoned");
        let Some(fut) = slot.as_mut() else {
            return; // already completed (defensive; DONE never re-queues)
        };
        if fut.as_mut().poll(&mut cx).is_ready() {
            *slot = None; // drop the future's captures promptly
            self.state.store(DONE, Ordering::Release);
            return;
        }
        drop(slot);
        // Pending: park, unless a wake arrived during the poll.
        if self
            .state
            .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // RESCHEDULED — the wake's push was suppressed (state was not
            // IDLE); requeue on its behalf.
            self.state.store(SCHEDULED, Ordering::Release);
            if let Some(pool) = self.pool.upgrade() {
                pool.push(Arc::clone(self));
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// The shared run queue + shutdown flag.
struct Pool {
    queue: Mutex<PoolState>,
    cv: Condvar,
}

struct PoolState {
    run: VecDeque<Arc<Task>>,
    shutdown: bool,
}

impl Pool {
    fn push(&self, task: Arc<Task>) {
        let mut q = self.queue.lock().expect("run queue poisoned");
        q.run.push_back(task);
        drop(q);
        self.cv.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().expect("run queue poisoned");
                loop {
                    if let Some(task) = q.run.pop_front() {
                        break task;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.cv.wait(q).expect("run queue poisoned");
                }
            };
            task.run();
        }
    }
}

/// Completion slot shared between a spawned task and its [`Join`] handle.
struct JoinState<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

/// Handle to a spawned task's result; [`Join::wait`] blocks the calling
/// *thread* (it is how synchronous code — the bench harness, tests —
/// harvests async work; async code just awaits the future directly).
pub struct Join<T> {
    state: Arc<JoinState<T>>,
}

impl<T> Join<T> {
    /// Blocks until the task completes and returns its output.
    pub fn wait(self) -> T {
        let mut slot = self.state.slot.lock().expect("join slot poisoned");
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.state.cv.wait(slot).expect("join slot poisoned");
        }
    }

    /// `Some(output)` if the task already completed, without blocking.
    pub fn try_take(&self) -> Option<T> {
        self.state.slot.lock().expect("join slot poisoned").take()
    }
}

/// A fixed-size worker pool executing `'static` futures.
pub struct Executor {
    pool: Arc<Pool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Executor {
    /// Starts `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        let pool = Arc::new(Pool {
            queue: Mutex::new(PoolState {
                run: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("mpdp-serve-worker-{i}"))
                    .spawn(move || pool.worker_loop())
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { pool, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Spawns a future onto the pool, returning a handle to its output.
    pub fn spawn<F, T>(&self, fut: F) -> Join<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        let state = Arc::new(JoinState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let task_state = Arc::clone(&state);
        let task = Arc::new(Task {
            state: AtomicU8::new(IDLE),
            future: Mutex::new(Some(Box::pin(async move {
                let out = fut.await;
                *task_state.slot.lock().expect("join slot poisoned") = Some(out);
                task_state.cv.notify_all();
            }))),
            pool: Arc::downgrade(&self.pool),
        });
        task.schedule();
        Join { state }
    }
}

impl Drop for Executor {
    /// Graceful: workers drain the run queue, then exit. Tasks parked on an
    /// external event (never re-woken) are simply dropped with the pool;
    /// the serving front-end closes its request queue *before* dropping the
    /// executor so its dispatchers run to completion first.
    fn drop(&mut self) {
        {
            let mut q = self.pool.queue.lock().expect("run queue poisoned");
            q.shutdown = true;
        }
        self.cv_broadcast();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Executor {
    fn cv_broadcast(&self) {
        self.pool.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::task::Poll;

    #[test]
    fn spawn_and_join_many() {
        let ex = Executor::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let joins: Vec<Join<usize>> = (0..100)
            .map(|i| {
                let hits = Arc::clone(&hits);
                ex.spawn(async move {
                    hits.fetch_add(1, Ordering::Relaxed);
                    i * 2
                })
            })
            .collect();
        let mut total = 0usize;
        for j in joins {
            total += j.wait();
        }
        assert_eq!(total, (0..100).map(|i| i * 2).sum::<usize>());
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    /// A future that returns Pending once and is woken from another thread —
    /// exercises the Running→Rescheduled edge under racing wakes.
    #[test]
    fn cross_thread_wakeups_are_not_lost() {
        struct Yield {
            woken: bool,
        }
        impl Future for Yield {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.woken {
                    Poll::Ready(())
                } else {
                    self.woken = true;
                    // Wake from another thread while (possibly) still inside
                    // this poll.
                    let w = cx.waker().clone();
                    std::thread::spawn(move || w.wake());
                    Poll::Pending
                }
            }
        }
        let ex = Executor::new(2);
        let joins: Vec<Join<()>> = (0..64).map(|_| ex.spawn(Yield { woken: false })).collect();
        for j in joins {
            j.wait();
        }
    }

    #[test]
    fn drop_joins_workers() {
        let ex = Executor::new(2);
        let j = ex.spawn(async { 7 });
        assert_eq!(j.wait(), 7);
        drop(ex); // must not hang
    }
}
