//! A minimal timer reactor: the event source for [`crate::executor`] tasks.
//!
//! The serving loop's only external events are time-based — open-loop pacing
//! ticks and test timeouts — so the reactor is exactly a deadline min-heap
//! and one driver thread. [`Reactor::sleep`] registers a deadline and
//! returns a future; the driver thread sleeps (condvar with timeout, so a
//! new earlier deadline re-arms it immediately) until the next deadline and
//! wakes the futures that reached theirs. No file descriptors, no polling
//! syscalls — `std` only, like the rest of the crate.
//!
//! ## Failure containment
//!
//! The driver thread is a watchdog loop: a panic inside a drive iteration
//! (including injected [`site::REACTOR_TICK`] faults) is caught, counted in
//! [`Reactor::respawns`], and the drive loop restarts over the surviving
//! timer heap — registered timers outlive the tick that crashed. Due timers
//! are marked `fired` *before* any waker runs, so a panic mid-wake can
//! strand no timer in a not-fired limbo, and each waker runs under its own
//! `catch_unwind`. Dropping the reactor errors out the pending heap by
//! firing everything, so no sleeper outlives its driver.

use mpdp_core::faults::{site, Faults};
use mpdp_core::sync::{lock_recover, wait_recover, wait_timeout_recover};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Completion state shared between one [`Sleep`] future and the driver.
struct Timer {
    fired: AtomicBool,
    /// The sleeping task's waker. The driver takes it under this lock
    /// *after* setting `fired`, and `Sleep::poll` stores it under this lock
    /// after re-checking `fired` — so a timer firing concurrently with a
    /// poll either wakes the fresh waker or is observed by the poll itself.
    waker: Mutex<Option<Waker>>,
}

struct Entry {
    deadline: Instant,
    /// Tie-breaker so the heap never compares `Arc`s.
    seq: u64,
    timer: Arc<Timer>,
}

// Min-heap on deadline (BinaryHeap is a max-heap, so the order is reversed).
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Entry {}

struct State {
    heap: BinaryHeap<Entry>,
    seq: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    respawns: AtomicU64,
    faults: Faults,
}

/// The timer driver. Owns one background thread; dropped with the front-end.
pub struct Reactor {
    shared: Arc<Shared>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("respawns", &self.respawns())
            .finish_non_exhaustive()
    }
}

impl Default for Reactor {
    fn default() -> Self {
        Self::new()
    }
}

impl Reactor {
    /// Starts the driver thread.
    pub fn new() -> Reactor {
        Reactor::with_faults(Faults::disarmed())
    }

    /// [`Reactor::new`] with an armed fault-injection handle: each driver
    /// tick checks [`site::REACTOR_TICK`].
    pub fn with_faults(faults: Faults) -> Reactor {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            respawns: AtomicU64::new(0),
            faults,
        });
        let driver_shared = Arc::clone(&shared);
        let driver = std::thread::Builder::new()
            .name("mpdp-serve-reactor".into())
            .spawn(move || {
                // Watchdog loop: a panicked drive iteration is caught and
                // the driver re-enters over the surviving timer heap.
                loop {
                    match catch_unwind(AssertUnwindSafe(|| Self::drive(&driver_shared))) {
                        Ok(()) => break,
                        Err(_) => {
                            driver_shared.respawns.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .expect("spawn reactor driver");
        Reactor {
            shared,
            driver: Some(driver),
        }
    }

    /// Driver restarts after caught panics; zero on a healthy box.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    fn drive(shared: &Shared) {
        let mut state = lock_recover(&shared.state);
        loop {
            if state.shutdown {
                return;
            }
            if shared.faults.is_armed() {
                // Fault site, checked with the lock released so a stall
                // never blocks timer registration and an injected panic
                // leaves the heap untouched. `Error` has no channel here.
                drop(state);
                let _ = shared.faults.apply_panic_stall(site::REACTOR_TICK);
                state = lock_recover(&shared.state);
                if state.shutdown {
                    return;
                }
            }
            let now = Instant::now();
            // Fire everything due; collect wakers to call outside the lock.
            let mut due: Vec<Arc<Timer>> = Vec::new();
            while state.heap.peek().is_some_and(|e| e.deadline <= now) {
                let timer = state.heap.pop().expect("peeked").timer;
                // Mark fired while still under the lock, before any waker
                // can run (and panic): a popped timer is never lost.
                timer.fired.store(true, Ordering::Release);
                due.push(timer);
            }
            if !due.is_empty() {
                drop(state);
                for timer in due {
                    let waker = lock_recover(&timer.waker).take();
                    if let Some(w) = waker {
                        // One misbehaving waker must not take down the
                        // driver or its remaining due siblings.
                        let _ = catch_unwind(AssertUnwindSafe(|| w.wake()));
                    }
                }
                state = lock_recover(&shared.state);
                continue;
            }
            state = match state.heap.peek().map(|e| e.deadline) {
                // Sleep exactly until the next deadline; a new earlier timer
                // or shutdown notifies the condvar and re-arms.
                Some(next) => {
                    let timeout = next.saturating_duration_since(now);
                    wait_timeout_recover(&shared.cv, state, timeout).0
                }
                None => wait_recover(&shared.cv, state),
            };
        }
    }

    /// A future that resolves `dur` from now (registered immediately, so
    /// the countdown starts at the call, not at first poll).
    pub fn sleep(&self, dur: Duration) -> Sleep {
        self.sleep_until(Instant::now() + dur)
    }

    /// A future that resolves at `deadline` — the open-loop generator's
    /// pacing primitive (absolute deadlines don't accumulate drift).
    ///
    /// A deadline already in the past resolves on the first poll without
    /// touching the heap or the driver. This matters under overload: a
    /// behind-schedule generator's every tick is a past deadline, and
    /// suspending the task for each one costs a reactor round trip plus a
    /// rescheduling delay behind busy dispatcher tasks — the fast path
    /// lets a late generator catch up without yielding its worker.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        let timer = Arc::new(Timer {
            fired: AtomicBool::new(deadline <= Instant::now()),
            waker: Mutex::new(None),
        });
        if timer.fired.load(Ordering::Relaxed) {
            return Sleep { timer };
        }
        let mut state = lock_recover(&self.shared.state);
        state.seq += 1;
        let re_arm = state
            .heap
            .peek()
            .is_none_or(|head| deadline < head.deadline);
        let entry = Entry {
            deadline,
            seq: state.seq,
            timer: Arc::clone(&timer),
        };
        state.heap.push(entry);
        drop(state);
        if re_arm {
            // The new timer is the earliest: the driver's current wait is
            // too long, cut it short.
            self.shared.cv.notify_one();
        }
        Sleep { timer }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            // Pending sleeps will never fire; wake them now so no task is
            // stranded (they observe `fired == false` forever otherwise).
            let heap = std::mem::take(&mut state.heap);
            drop(state);
            for entry in heap {
                entry.timer.fired.store(true, Ordering::Release);
                if let Some(w) = lock_recover(&entry.timer.waker).take() {
                    let _ = catch_unwind(AssertUnwindSafe(|| w.wake()));
                }
            }
        }
        self.shared.cv.notify_all();
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
    }
}

/// Future returned by [`Reactor::sleep`] / [`Reactor::sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    timer: Arc<Timer>,
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("fired", &self.fired.load(Ordering::Relaxed))
            .finish()
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.timer.fired.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        let mut waker = lock_recover(&self.timer.waker);
        // Re-check under the lock: the driver sets `fired` before taking
        // this lock, so a fire between the fast check and here is seen now.
        if self.timer.fired.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        match &mut *waker {
            Some(w) if w.will_wake(cx.waker()) => {}
            slot => *slot = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use mpdp_core::faults::{FaultAction, FaultPlan};

    #[test]
    fn sleeps_resolve_in_deadline_order() {
        let ex = Executor::new(2);
        let reactor = Arc::new(Reactor::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();
        let joins: Vec<_> = [30u64, 10, 20]
            .into_iter()
            .map(|ms| {
                let sleep = reactor.sleep(Duration::from_millis(ms));
                let order = Arc::clone(&order);
                ex.spawn(async move {
                    sleep.await;
                    order.lock().unwrap().push(ms);
                })
            })
            .collect();
        for j in joins {
            j.wait();
        }
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn dropping_the_reactor_releases_sleepers() {
        let ex = Executor::new(1);
        let reactor = Reactor::new();
        let sleep = reactor.sleep(Duration::from_secs(3600));
        let j = ex.spawn(async move {
            sleep.await;
        });
        drop(reactor); // far-future sleep must resolve, not strand the task
        j.wait();
    }

    /// A panicking driver tick is caught and respawned; timers registered
    /// before and after the crash still fire.
    #[test]
    fn driver_survives_injected_tick_panics() {
        let faults = FaultPlan::new()
            .fault(site::REACTOR_TICK, 0, FaultAction::Panic)
            .fault(site::REACTOR_TICK, 2, FaultAction::Panic)
            .arm();
        let ex = Executor::new(1);
        let reactor = Reactor::with_faults(faults.clone());
        let early = reactor.sleep(Duration::from_millis(10));
        let j1 = ex.spawn(early);
        j1.wait();
        let late = reactor.sleep(Duration::from_millis(10));
        let j2 = ex.spawn(late);
        j2.wait();
        assert!(reactor.respawns() >= 1, "tick panic must be counted");
        assert!(faults.fired_at(site::REACTOR_TICK) >= 1);
    }
}
