//! A bounded MPMC queue: the admission-control buffer of the front-end.
//!
//! Producers are synchronous (`try_push` from any thread — the submit path
//! must answer *reject or accept* immediately, never block the caller), and
//! consumers are async dispatcher tasks (`pop().await`). Capacity is the
//! admission policy: a full queue is an explicit [`PushError::Full`] the
//! front-end converts into a counted shed, never a silent drop. Closing the
//! queue lets already-accepted items drain — `pop` keeps returning items
//! until the queue is empty, then resolves to `None` — which is what gives
//! the front-end its "every accepted request completes" guarantee during
//! shutdown.

use mpdp_core::faults::{site, Faults};
use mpdp_core::sync::lock_recover;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Why a push was refused. The payload is handed back so the caller can
/// report the rejected request (it still owns it).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — admission control says shed.
    Full(T),
    /// The queue is closed (front-end shutting down).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Wakers of dispatcher tasks parked in [`Pop`]. One waker per push;
    /// all on close.
    poppers: Vec<Waker>,
}

/// The shared bounded queue. Cheap to clone by wrapping in `Arc` at the
/// call site; internally one mutex (the hot path holds it for a
/// `VecDeque` operation, and the capacity bound keeps it small).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Fault-injection handle ([`site::QUEUE_PUSH`] on the submitter's
    /// thread, [`site::QUEUE_POP`] on the consumer's); disarmed by default.
    faults: Faults,
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded::with_faults(capacity, Faults::disarmed())
    }

    /// [`Bounded::new`] with an armed fault-injection handle (chaos tests).
    pub fn with_faults(capacity: usize, faults: Faults) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                poppers: Vec::new(),
            }),
            capacity: capacity.max(1),
            faults,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// `true` if no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: enqueues `item` or explains why not.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        // Fault site on the submitter's thread: seeded plans only stall
        // here (never panic — `submit` callers must not unwind); an
        // explicit `Error` sheds as if the queue were full.
        if self.faults.apply_panic_stall(site::QUEUE_PUSH) {
            return Err(PushError::Full(item));
        }
        let waker = {
            let mut state = lock_recover(&self.state);
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() >= self.capacity {
                return Err(PushError::Full(item));
            }
            state.items.push_back(item);
            state.poppers.pop()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// `true` once [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }

    /// Free slots remaining (0 when closed). A snapshot — concurrent
    /// producers and consumers move it — useful for sizing an admission
    /// batch before building per-request state that a full queue would
    /// throw away.
    pub fn free_capacity(&self) -> usize {
        let state = lock_recover(&self.state);
        if state.closed {
            0
        } else {
            self.capacity - state.items.len().min(self.capacity)
        }
    }

    /// Pushes a whole batch under one lock acquisition, stopping at
    /// capacity (or rejecting everything once closed). Returns the number
    /// pushed; the unpushed tail is handed back in `items` (order
    /// preserved). Wakes as many parked poppers as items pushed.
    pub fn try_push_batch(&self, items: &mut Vec<T>) -> usize {
        // Same submitter-thread fault site as `try_push`; an `Error` sheds
        // the whole batch (handed back untouched, like a full queue).
        if self.faults.apply_panic_stall(site::QUEUE_PUSH) {
            return 0;
        }
        let (pushed, wakers) = {
            let mut state = lock_recover(&self.state);
            if state.closed {
                return 0;
            }
            let room = self.capacity - state.items.len().min(self.capacity);
            let pushed = items.len().min(room);
            state.items.extend(items.drain(..pushed));
            let n_wake = pushed.min(state.poppers.len());
            let at = state.poppers.len() - n_wake;
            (pushed, state.poppers.split_off(at))
        };
        for w in wakers {
            w.wake();
        }
        pushed
    }

    /// Pops up to `max` items into `buf` under one lock acquisition,
    /// returning how many were taken. The consumer-side batch half of
    /// [`Bounded::try_push_batch`]: a dispatcher that drains its backlog in
    /// chunks pays one lock per chunk instead of one per request.
    pub fn drain_into(&self, buf: &mut Vec<T>, max: usize) -> usize {
        // Consumer-side fault site, checked before any item is removed so
        // an injected panic never loses a request (it unwinds into the
        // dispatcher supervisor with the queue intact). `Error` has no
        // channel here and is a no-op.
        let _ = self.faults.apply_panic_stall(site::QUEUE_POP);
        let mut state = lock_recover(&self.state);
        let take = state.items.len().min(max);
        buf.extend(state.items.drain(..take));
        take
    }

    /// Resolves to the next item, or `None` once the queue is closed *and*
    /// drained. Fair enough for dispatchers (whoever polls first wins); a
    /// woken popper that loses the race simply re-registers.
    pub fn pop(self: &Arc<Self>) -> Pop<T> {
        Pop {
            queue: Arc::clone(self),
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// parked poppers are woken, and `pop` drains the remaining items
    /// before reporting the end of the stream.
    pub fn close(&self) {
        let poppers = {
            let mut state = lock_recover(&self.state);
            state.closed = true;
            std::mem::take(&mut state.poppers)
        };
        for w in poppers {
            w.wake();
        }
    }
}

/// Future returned by [`Bounded::pop`].
#[derive(Debug)]
pub struct Pop<T> {
    queue: Arc<Bounded<T>>,
}

impl<T> Future for Pop<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        // Consumer-side fault site, checked with the queue lock released
        // (a stalled popper must not block submitters). `Error` is a no-op:
        // `pop` has no error channel, and resolving `None` early would
        // fake a shutdown.
        let _ = self.queue.faults.apply_panic_stall(site::QUEUE_POP);
        let mut state = lock_recover(&self.queue.state);
        if let Some(item) = state.items.pop_front() {
            return Poll::Ready(Some(item));
        }
        if state.closed {
            return Poll::Ready(None);
        }
        state.poppers.retain(|w| !w.will_wake(cx.waker()));
        state.poppers.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    #[test]
    fn capacity_is_enforced_and_reported() {
        let q: Bounded<u32> = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        q.close();
        match q.try_push(4) {
            Err(PushError::Closed(4)) => {}
            other => panic!("expected Closed(4), got {other:?}"),
        }
    }

    #[test]
    fn consumers_drain_across_threads_then_observe_close() {
        let q: Arc<Bounded<u64>> = Arc::new(Bounded::new(64));
        let ex = Executor::new(3);
        let total = Arc::new(Mutex::new(0u64));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let total = Arc::clone(&total);
                ex.spawn(async move {
                    while let Some(v) = q.pop().await {
                        *total.lock().unwrap() += v;
                    }
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=200u64 {
            // Push with backpressure: retry while full.
            let mut item = v;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => unreachable!("not closed yet"),
                }
            }
            pushed += v;
        }
        q.close();
        for c in consumers {
            c.wait();
        }
        assert_eq!(*total.lock().unwrap(), pushed, "every accepted item served");
    }
}
