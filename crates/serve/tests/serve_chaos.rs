//! Chaos suite: the serving front-end under seeded fault injection.
//!
//! Each case arms a deterministic [`FaultPlan`] (panics, stalls, and errors
//! at the queue, dispatcher, planner, executor, and reactor sites — see
//! `mpdp_core::faults::site`) and drives a real [`ServeFront`] through it.
//! The assertions are the failure-domain contract, not performance:
//!
//! - **No hung waiter.** Every ticket resolves within a generous timeout,
//!   whatever died underneath it.
//! - **Exact accounting.** `accepted == completed + failed` — a panicked
//!   dispatcher may *fail* requests, it may never *lose* one — and the
//!   queue-depth / in-flight gauges return to zero once drained.
//! - **Single-flight survives.** At most one successful cold plan per
//!   fingerprint, even while injected faults error and panic flights.
//! - **Deadlines degrade, not explode.** Requests that cannot afford exact
//!   planning resolve with a heuristic plan inside their budget.
//!
//! Schedules are seeded, so a failing seed replays exactly:
//! `cargo test --test serve_chaos` (or `repro serve --faults-seed K` for
//! the open-loop variant).

use mpdp::service::ServedVia;
use mpdp_core::faults::FaultPlan;
use mpdp_core::LargeQuery;
use mpdp_cost::PgLikeCost;
use mpdp_serve::{PlanTicket, Rejected, ServeConfig, ServeFront, TenantConfig};
use mpdp_workload::gen;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pool of distinct query templates (mixed topologies and sizes, small
/// enough that a single case stays fast).
fn templates(count: usize) -> Vec<LargeQuery> {
    let m = PgLikeCost::new();
    (0..count)
        .map(|i| {
            let n = 5 + i % 4;
            let seed = i as u64;
            match i % 3 {
                0 => gen::star(n, seed, &m),
                1 => gen::chain(n, seed, &m),
                _ => gen::cycle(n, seed, &m),
            }
        })
        .collect()
}

/// Drives one seeded fault schedule through a small front-end and asserts
/// the failure-domain contract. Returns how many injected faults fired.
fn run_chaos_seed(seed: u64) -> u64 {
    let faults = FaultPlan::seeded(seed).arm();
    let pool = templates(32);
    let mut front = ServeFront::new(
        ServeConfig {
            queue_depth: 64,
            dispatchers: 2,
            executor_threads: 3,
            default_deadline: Some(Duration::from_millis(300)),
            faults: faults.clone(),
            tenants: vec![TenantConfig::named("chaos")],
            ..ServeConfig::default()
        },
        Arc::new(PgLikeCost::new()),
    );

    // No pre-warm: cold planning, single-flight leadership, and degradation
    // all happen *during* the fault schedule.
    let mut tickets: Vec<PlanTicket> = Vec::new();
    for i in 0..120usize {
        match front.submit(0, pool[i % pool.len()].clone()) {
            Ok(t) => tickets.push(t),
            // Injected queue.push errors shed as QueueFull; both sheds are
            // legitimate answers under chaos, never a lost request.
            Err(Rejected::QueueFull) | Err(Rejected::QuotaExhausted) => {}
            Err(Rejected::ShuttingDown) => panic!("front closed itself (seed {seed})"),
        }
    }

    // No hung waiters: every ticket resolves, served or explicitly failed.
    for (i, t) in tickets.iter_mut().enumerate() {
        assert!(
            t.wait_timeout(Duration::from_secs(30)).is_some(),
            "seed {seed}: ticket {i} hung"
        );
    }
    drop(tickets);
    front.shutdown();

    let s = front.serve_counters();
    assert_eq!(
        s.accepted,
        s.completed + s.failed,
        "seed {seed}: accepted requests must complete or fail, never vanish"
    );
    assert_eq!(
        (s.queue_depth, s.in_flight),
        (0, 0),
        "seed {seed}: gauges must return to zero after drain"
    );
    let c = front.cache_counters(0);
    // Single-flight under fire: at most one *successful* cold plan (= cache
    // insertion) per fingerprint. `misses` may exceed the fingerprint count
    // because a flight failed by an injected planner error counts as a miss
    // and the next request legitimately plans cold again.
    assert!(
        c.insertions <= 32,
        "seed {seed}: {} cold insertions for 32 fingerprints — single-flight broken",
        c.insertions
    );
    // Every request that reached planning is exactly one of
    // hit/miss/coalesced/degraded; requests failed before planning (lease
    // settlement of a panicked dispatcher's chunk) touch no cache counter.
    let served_subtotal = c.hits + c.misses + c.coalesced + c.degraded;
    assert!(
        served_subtotal >= s.completed && served_subtotal <= s.completed + s.failed,
        "seed {seed}: cache partition {served_subtotal} outside \
         [completed {} .. completed+failed {}]",
        s.completed,
        s.completed + s.failed
    );
    faults.fired()
}

/// 32 seeded schedules, exercised end to end. Aggregate, the schedules must
/// actually fire (a chaos suite that injects nothing tests nothing).
#[test]
fn thirty_two_seeded_schedules_hold_the_contract() {
    let mut fired_total = 0;
    for seed in 0..32u64 {
        fired_total += run_chaos_seed(seed);
    }
    assert!(
        fired_total >= 32,
        "only {fired_total} injected faults fired across 32 schedules"
    );
}

/// Deadline-carrying requests resolve *within* their budget (plus scheduling
/// slack) by degrading to a heuristic plan — never by blowing through it
/// with exact planning, never by failing.
#[test]
fn deadline_requests_degrade_within_budget() {
    let deadline = Duration::from_millis(60);
    let front = ServeFront::new(
        ServeConfig {
            dispatchers: 2,
            executor_threads: 2,
            default_deadline: Some(deadline),
            ..ServeConfig::default()
        },
        Arc::new(PgLikeCost::new()),
    );
    let m = PgLikeCost::new();
    // Cliques: exact planning enumerates every connected subgraph (dense —
    // orders of magnitude past the deadline), so the affordability check
    // must reroute. (Chains of the same size are *cheap* for DP and would
    // be planned exactly well inside 60ms.)
    let queries: Vec<LargeQuery> = (0..6)
        .map(|i| gen::clique(12 + i % 2, i as u64, &m))
        .collect();
    let start = Instant::now();
    let tickets: Vec<PlanTicket> = queries
        .into_iter()
        .map(|q| front.submit(0, q).expect("admitted"))
        .collect();
    let mut degraded = 0;
    for t in tickets {
        let done = t.wait();
        let plan = done.result.expect("deadline requests resolve with a plan");
        if plan.via == ServedVia::Degraded {
            degraded += 1;
        }
        // Generous slack over the 60ms budget: CI boxes stall, but an exact
        // 14-relation plan (seconds) would still blow far past this.
        assert!(
            done.latency < deadline + Duration::from_millis(500),
            "latency {:?} ignored the deadline budget",
            done.latency
        );
    }
    assert!(
        degraded > 0,
        "tight deadlines must reroute to the heuristic"
    );
    assert!(start.elapsed() < Duration::from_secs(5));
}

/// The close-during-push / ticket-drop hammer: eight submitter threads race
/// a closing front-end while randomly abandoning tickets. However the race
/// lands, `close()` must drain every accepted request and the books must
/// balance.
fn hammer_close_race(case_seed: u64) {
    let pool = Arc::new(templates(8));
    let front = Arc::new(ServeFront::new(
        ServeConfig {
            queue_depth: 32,
            dispatchers: 2,
            executor_threads: 2,
            tenants: vec![TenantConfig {
                max_in_flight: 48,
                ..TenantConfig::named("hammer")
            }],
            ..ServeConfig::default()
        },
        Arc::new(PgLikeCost::new()),
    ));

    let submitters: Vec<_> = (0..8u64)
        .map(|tid| {
            let front = Arc::clone(&front);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut kept: Vec<PlanTicket> = Vec::new();
                let mut rng = case_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tid;
                for i in 0..50usize {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    match front.submit(0, pool[i % pool.len()].clone()) {
                        // Keep some tickets, abandon the rest mid-flight.
                        Ok(t) if rng & 1 == 0 => kept.push(t),
                        Ok(_abandoned) => {}
                        Err(Rejected::ShuttingDown) => break,
                        Err(_shed) => {}
                    }
                }
                kept
            })
        })
        .collect();

    // Close at a seed-dependent moment inside the submission storm.
    std::thread::sleep(Duration::from_micros(200 * (case_seed % 20)));
    front.close();

    for s in submitters {
        for mut ticket in s.join().expect("submitter panicked") {
            assert!(
                ticket.wait_timeout(Duration::from_secs(30)).is_some(),
                "ticket hung across close()"
            );
        }
    }
    // Take the front back (all submitter clones are joined) and drain.
    let mut front =
        Arc::try_unwrap(front).unwrap_or_else(|_| panic!("submitters still hold the front"));
    front.shutdown();

    let s = front.serve_counters();
    assert_eq!(
        s.accepted,
        s.completed + s.failed,
        "close() must drain every accepted request (case {case_seed})"
    );
    assert_eq!((s.queue_depth, s.in_flight), (0, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized close-timing and abandonment patterns for the hammer.
    #[test]
    fn close_during_push_and_ticket_drop_races(case_seed in 0u64..10_000) {
        hammer_close_race(case_seed);
    }
}
